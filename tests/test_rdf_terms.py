"""Tests for RDF terms, namespaces and triples."""

import pytest

from repro.semantics.rdf.namespace import Namespace, NamespaceManager, RDF, RDFS, XSD
from repro.semantics.rdf.term import BlankNode, IRI, Literal, Variable, as_term
from repro.semantics.rdf.triple import Triple

EX = Namespace("http://example.org/")


class TestIRI:
    def test_value_round_trip(self):
        iri = IRI("http://example.org/sensor/1")
        assert iri.value == "http://example.org/sensor/1"
        assert str(iri) == iri.value

    def test_n3_form(self):
        assert IRI("http://example.org/a").n3() == "<http://example.org/a>"

    def test_local_name_hash_and_slash(self):
        assert IRI("http://example.org/ont#Sensor").local_name == "Sensor"
        assert IRI("http://example.org/ont/Sensor").local_name == "Sensor"

    def test_namespace_part(self):
        assert IRI("http://example.org/ont#Sensor").namespace == "http://example.org/ont#"

    def test_equality_and_hash(self):
        assert IRI("http://example.org/a") == IRI("http://example.org/a")
        assert hash(IRI("http://example.org/a")) == hash(IRI("http://example.org/a"))
        assert IRI("http://example.org/a") != IRI("http://example.org/b")

    def test_invalid_characters_rejected(self):
        with pytest.raises(ValueError):
            IRI("http://example.org/has space")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IRI("")

    def test_immutable(self):
        iri = IRI("http://example.org/a")
        with pytest.raises(AttributeError):
            iri.value = "http://example.org/b"


class TestLiteral:
    def test_integer_datatype_inferred(self):
        assert Literal(3).datatype.local_name == "integer"
        assert Literal(3).to_python() == 3

    def test_float_datatype_inferred(self):
        assert Literal(2.5).datatype.local_name == "double"
        assert Literal(2.5).to_python() == pytest.approx(2.5)

    def test_boolean_datatype_inferred(self):
        assert Literal(True).to_python() is True
        assert Literal(False).to_python() is False

    def test_string_literal(self):
        lit = Literal("drought")
        assert lit.to_python() == "drought"
        assert lit.n3() == '"drought"'

    def test_language_tag(self):
        lit = Literal("Hoehe", lang="de")
        assert lit.lang == "de"
        assert lit.n3().endswith("@de")

    def test_lang_and_datatype_conflict(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD.string, lang="en")

    def test_numeric_check(self):
        assert Literal(1).is_numeric()
        assert Literal(1.0).is_numeric()
        assert not Literal("one").is_numeric()

    def test_n3_escaping(self):
        lit = Literal('say "hi"\nplease')
        assert '\\"' in lit.n3()
        assert "\\n" in lit.n3()

    def test_equality(self):
        assert Literal(3) == Literal(3)
        assert Literal(3) != Literal(3.0)
        assert Literal("a", lang="en") != Literal("a")


class TestBlankNodeAndVariable:
    def test_blank_nodes_unique_by_default(self):
        assert BlankNode() != BlankNode()

    def test_blank_node_explicit_id(self):
        assert BlankNode("b1") == BlankNode("b1")
        assert BlankNode("b1").n3() == "_:b1"

    def test_variable_strips_question_mark(self):
        assert Variable("?x") == Variable("x")
        assert Variable("x").n3() == "?x"

    def test_variable_not_concrete(self):
        assert not Variable("x").is_concrete()
        assert IRI("http://example.org/a").is_concrete()

    def test_empty_variable_rejected(self):
        with pytest.raises(ValueError):
            Variable("?")


class TestAsTerm:
    def test_passthrough(self):
        iri = EX.a
        assert as_term(iri) is iri

    def test_url_string_becomes_iri(self):
        assert isinstance(as_term("http://example.org/x"), IRI)

    def test_scalar_becomes_literal(self):
        assert isinstance(as_term(5), Literal)
        assert isinstance(as_term("plain"), Literal)

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            as_term(object())

    def test_free_text_embedding_url_stays_literal(self):
        # regression: strings that merely *contain* a URL (alert messages,
        # descriptions) must not be silently coerced to IRI
        for text in [
            "Alert: see http://example.org/advisory for details",
            "visit https://x.org or call",
            "prefix http://x.org",
            "http://x.org then more words",
        ]:
            term = as_term(text)
            assert isinstance(term, Literal), text
            assert term.lexical == text

    def test_whole_string_iris_still_coerce(self):
        for text in [
            "http://example.org/x",
            "https://example.org/path?q=1#frag",
            "urn-like+scheme://host/path",
            "coap://device-7/sensors/3",
        ]:
            term = as_term(text)
            assert isinstance(term, IRI), text
            assert term.value == text

    def test_scheme_must_lead_with_alpha(self):
        assert isinstance(as_term("1http://x.org"), Literal)
        assert isinstance(as_term("://x.org"), Literal)

    def test_forbidden_iri_characters_stay_literal(self):
        # would be rejected by the IRI constructor; as_term must not raise
        assert isinstance(as_term('http://x.org/"quoted"'), Literal)
        assert isinstance(as_term("http://x.org/{tpl}"), Literal)


class TestNamespace:
    def test_attribute_access(self):
        assert EX.Sensor == IRI("http://example.org/Sensor")

    def test_item_access(self):
        assert EX["Sensor"] == EX.Sensor

    def test_contains(self):
        assert EX.Sensor in EX
        assert IRI("http://other.org/x") not in EX

    def test_manager_compact_and_expand(self):
        manager = NamespaceManager()
        manager.bind("ex", EX)
        assert manager.compact(EX.Sensor) == "ex:Sensor"
        assert manager.expand("ex:Sensor") == EX.Sensor

    def test_manager_expand_unknown_prefix(self):
        with pytest.raises(KeyError):
            NamespaceManager().expand("nope:thing")

    def test_manager_compact_falls_back_to_n3(self):
        manager = NamespaceManager()
        assert manager.compact(EX.Sensor).startswith("<")

    def test_default_prefixes_present(self):
        manager = NamespaceManager()
        assert manager.namespace("rdf") == RDF
        assert manager.namespace("rdfs") == RDFS


class TestTriple:
    def test_round_trip_and_equality(self):
        t1 = Triple(EX.s, EX.p, Literal(1))
        t2 = Triple(EX.s, EX.p, Literal(1))
        assert t1 == t2 and hash(t1) == hash(t2)

    def test_literal_subject_rejected(self):
        with pytest.raises(TypeError):
            Triple(Literal(1), EX.p, EX.o)

    def test_blank_node_predicate_rejected(self):
        with pytest.raises(TypeError):
            Triple(EX.s, BlankNode(), EX.o)

    def test_is_ground(self):
        assert Triple(EX.s, EX.p, EX.o).is_ground()
        assert not Triple(Variable("s"), EX.p, EX.o).is_ground()

    def test_matches_binds_variables(self):
        pattern = Triple(Variable("s"), EX.p, Variable("o"))
        bindings = pattern.matches(Triple(EX.a, EX.p, Literal(2)))
        assert bindings[Variable("s")] == EX.a
        assert bindings[Variable("o")] == Literal(2)

    def test_matches_repeated_variable_must_agree(self):
        pattern = Triple(Variable("x"), EX.p, Variable("x"))
        assert pattern.matches(Triple(EX.a, EX.p, EX.a)) is not None
        assert pattern.matches(Triple(EX.a, EX.p, EX.b)) is None

    def test_matches_mismatch_returns_none(self):
        pattern = Triple(EX.a, EX.p, Variable("o"))
        assert pattern.matches(Triple(EX.b, EX.p, EX.o)) is None

    def test_substitute(self):
        pattern = Triple(Variable("s"), EX.p, Variable("o"))
        result = pattern.substitute({Variable("s"): EX.a, Variable("o"): Literal(1)})
        assert result == Triple(EX.a, EX.p, Literal(1))

    def test_n3(self):
        assert Triple(EX.s, EX.p, EX.o).n3().endswith(" .")
