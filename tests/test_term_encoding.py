"""Randomized encoded-vs-decoded equivalence suite for dictionary encoding.

The graph stores dictionary-encoded ``(int, int, int)`` triples and the
default join loops bind variables to ids; the decoded-object paths —
``query(..., use_planner=False)``, ``BGP(..., use_ids=False)``,
``RuleEngine(use_ids=False)`` and a brute-force reference store kept in
this file — are the oracles.  Random graphs, random mutation sequences and
random SPARQL / rule workloads must produce identical triples, solutions,
statistics and deltas through both representations.

Dictionary edge cases get their own explicit tests: blank nodes,
language-tagged and datatyped literals that are ``==``-distinct while
string-equal, id stability across mutation and ``clear()``.
"""

import random
from collections import Counter

import pytest

from repro.semantics.rdf.dictionary import TermDictionary
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import Namespace, RDF, RDFS
from repro.semantics.rdf.term import BlankNode, IRI, Literal, Variable
from repro.semantics.rdf.triple import Triple
from repro.semantics.rules import Rule, RuleEngine
from repro.semantics.sparql.algebra import BGP
from repro.semantics.sparql.bindings import Bindings
from repro.semantics.sparql.evaluator import query, select

EX = Namespace("http://example.org/")


# --------------------------------------------------------------------- #
# dictionary unit behaviour and edge cases
# --------------------------------------------------------------------- #

class TestTermDictionary:
    def test_encode_is_idempotent_and_dense(self):
        d = TermDictionary()
        a = d.encode(EX.a)
        b = d.encode(EX.b)
        assert (a, b) == (0, 1)
        assert d.encode(EX.a) == a
        assert d.encode(IRI("http://example.org/a")) == a  # structural equality
        assert len(d) == 2

    def test_lookup_never_interns(self):
        d = TermDictionary()
        assert d.lookup(EX.a) is None
        assert len(d) == 0
        d.encode(EX.a)
        assert d.lookup(EX.a) == 0

    def test_decode_round_trip(self):
        d = TermDictionary()
        terms = [EX.a, BlankNode("n1"), Literal(3), Literal("x", lang="en")]
        ids = [d.encode(t) for t in terms]
        assert [d.decode(i) for i in ids] == terms

    def test_string_equal_but_distinct_literals_get_distinct_ids(self):
        d = TermDictionary()
        variants = [
            Literal(5),                      # "5"^^xsd:integer
            Literal("5"),                    # "5"^^xsd:string
            Literal("5", lang="en"),         # "5"@en
            Literal("5", datatype=EX.custom),
            IRI("http://example.org/5"),
        ]
        ids = [d.encode(t) for t in variants]
        assert len(set(ids)) == len(variants)
        for term, term_id in zip(variants, ids):
            assert d.decode(term_id) == term

    def test_blank_nodes_encode_by_id(self):
        d = TermDictionary()
        assert d.encode(BlankNode("x")) == d.encode(BlankNode("x"))
        assert d.encode(BlankNode("x")) != d.encode(BlankNode("y"))
        # a blank node and an IRI with the same spelling stay distinct
        assert d.encode(BlankNode("http://example.org/a")) != d.encode(EX.a)

    def test_triple_round_trip(self):
        d = TermDictionary()
        t = Triple(EX.s, EX.p, Literal("v", lang="de"))
        ids = d.encode_triple(t)
        assert d.decode_triple(ids) == t
        assert d.lookup_triple(t) == ids
        assert d.lookup_triple(Triple(EX.s, EX.p, Literal("v"))) is None


class TestGraphIdStability:
    def test_ids_survive_removal_and_clear(self):
        g = Graph()
        t = Triple(EX.s, EX.p, EX.o)
        g.add(t)
        ids = g.dictionary.lookup_triple(t)
        g.remove(t)
        assert g.dictionary.lookup_triple(t) == ids
        g.add(t)
        g.clear()
        assert g.dictionary.lookup_triple(t) == ids
        # re-adding after clear reuses the same ids
        g.add(t)
        assert list(g.triples_ids()) == [ids]

    def test_tracker_journal_decodes_after_later_mutations(self):
        g = Graph()
        tracker = g.track_changes()
        first = Triple(EX.a, EX.p, EX.b)
        g.add(first)
        # mutate further before draining: the append-only dictionary keeps
        # the journalled ids valid
        g.add(Triple(EX.c, EX.p, EX.d))
        g.remove(Triple(EX.c, EX.p, EX.d))
        delta = tracker.drain()
        assert delta.added[0] == first
        assert delta.retracted

    def test_shared_dictionary_set_operations(self):
        g = Graph()
        g.add(Triple(EX.a, EX.p, EX.b))
        g.add(Triple(EX.c, EX.p, EX.d))
        copied = g.copy()
        assert copied.dictionary is g.dictionary
        assert set(copied) == set(g)
        other = Graph(dictionary=g.dictionary)
        other.add(Triple(EX.a, EX.p, EX.b))
        assert set(g.difference(other)) == {Triple(EX.c, EX.p, EX.d)}
        assert set(g.intersection(other)) == {Triple(EX.a, EX.p, EX.b)}
        assert set(g.union(other)) == set(g)

    def test_cross_dictionary_set_operations_still_work(self):
        g = Graph()
        g.add(Triple(EX.a, EX.p, EX.b))
        other = Graph()  # private dictionary
        other.add(Triple(EX.a, EX.p, EX.b))
        other.add(Triple(EX.x, EX.p, EX.y))
        assert set(g.intersection(other)) == {Triple(EX.a, EX.p, EX.b)}
        assert set(other.difference(g)) == {Triple(EX.x, EX.p, EX.y)}


# --------------------------------------------------------------------- #
# randomized graph-level equivalence against a brute-force store
# --------------------------------------------------------------------- #

class ReferenceStore:
    """Decoded-object oracle: a plain set of triples, scanned per query."""

    def __init__(self):
        self.triples = set()

    def add(self, t):
        self.triples.add(t)

    def remove(self, t):
        self.triples.discard(t)

    def clear(self):
        self.triples.clear()

    def match(self, pattern):
        s, p, o = (None if isinstance(t, Variable) else t for t in pattern)
        return {
            t for t in self.triples
            if (s is None or t.subject == s)
            and (p is None or t.predicate == p)
            and (o is None or t.object == o)
        }


def _random_term(rng, kind=None):
    kind = kind or rng.choice(["iri", "iri", "bnode", "literal"])
    if kind == "iri":
        return EX[f"node{rng.randrange(12)}"]
    if kind == "bnode":
        return BlankNode(f"b{rng.randrange(6)}")
    which = rng.randrange(4)
    if which == 0:
        return Literal(rng.randrange(5))
    if which == 1:
        return Literal(str(rng.randrange(5)))          # string-equal to ints
    if which == 2:
        return Literal(str(rng.randrange(5)), lang="en")
    return Literal(rng.uniform(0, 3))


def _random_triple(rng):
    return Triple(
        _random_term(rng, rng.choice(["iri", "bnode"])),
        EX[f"p{rng.randrange(5)}"],
        _random_term(rng),
    )


@pytest.mark.parametrize("seed", [1, 7, 23, 91])
def test_random_mutations_match_reference(seed):
    rng = random.Random(seed)
    g = Graph()
    ref = ReferenceStore()
    for step in range(300):
        action = rng.random()
        if action < 0.62:
            t = _random_triple(rng)
            assert g.add(t) == (t not in ref.triples)
            ref.add(t)
        elif action < 0.85:
            t = _random_triple(rng)
            assert g.remove(t) == (t in ref.triples)
            ref.remove(t)
        elif action < 0.97:
            pattern = (
                _random_term(rng, "iri") if rng.random() < 0.5 else None,
                EX[f"p{rng.randrange(5)}"] if rng.random() < 0.5 else None,
                _random_term(rng) if rng.random() < 0.5 else None,
            )
            expected = ref.match(pattern)
            assert g.remove_matching(*pattern) == len(expected)
            for t in expected:
                ref.remove(t)
        else:
            g.clear()
            ref.clear()
        if step % 25 == 0:
            _assert_graph_matches_reference(g, ref, rng)
    _assert_graph_matches_reference(g, ref, rng)


def _assert_graph_matches_reference(g, ref, rng):
    assert len(g) == len(ref.triples)
    assert set(g) == ref.triples
    for _ in range(15):
        pattern = (
            _random_term(rng) if rng.random() < 0.5 else None,
            EX[f"p{rng.randrange(5)}"] if rng.random() < 0.5 else None,
            _random_term(rng) if rng.random() < 0.5 else None,
        )
        expected = ref.match(pattern)
        assert set(g.triples(pattern)) == expected
        assert g.pattern_cardinality(pattern) == len(expected)
    # maintained statistics vs enumeration
    for p_index in range(5):
        p = EX[f"p{p_index}"]
        with_p = [t for t in ref.triples if t.predicate == p]
        assert g.predicate_cardinality(p) == len(with_p)
        assert g.distinct_subjects_count(p) == len({t.subject for t in with_p})
        assert g.distinct_objects_count(p) == len({t.object for t in with_p})
    assert g.distinct_subjects_count() == len({t.subject for t in ref.triples})
    assert g.distinct_predicates_count() == len({t.predicate for t in ref.triples})
    # membership for present and absent triples
    present = list(ref.triples)[:10]
    for t in present:
        assert t in g
    assert Triple(EX.never, EX.seen, EX.before) not in g


# --------------------------------------------------------------------- #
# randomized SPARQL equivalence: encoded joins vs decoded oracle
# --------------------------------------------------------------------- #

def _random_workload_graph(rng, size):
    g = Graph()
    g.namespaces.bind("ex", EX)
    for _ in range(size):
        g.add(_random_triple(rng))
    return g


def _random_query_text(rng):
    variables = ["?a", "?b", "?c"]

    def term(allow_var=True):
        if allow_var and rng.random() < 0.55:
            return rng.choice(variables)
        return f"ex:node{rng.randrange(12)}"

    patterns = []
    for _ in range(rng.randrange(1, 4)):
        patterns.append(
            f"{term()} ex:p{rng.randrange(5)} {term()} ."
        )
    optional = ""
    if rng.random() < 0.4:
        optional = f"OPTIONAL {{ ?a ex:p{rng.randrange(5)} ?opt . }}"
    filt = ""
    if rng.random() < 0.35:
        filt = f"FILTER (?a != ex:node{rng.randrange(12)})"
    body = "\n".join(patterns)
    return f"SELECT * WHERE {{ {body} {optional} {filt} }}"


@pytest.mark.parametrize("seed", [3, 19, 57])
def test_random_queries_encoded_equals_decoded(seed):
    rng = random.Random(seed)
    graph = _random_workload_graph(rng, 150)
    for _ in range(25):
        text = _random_query_text(rng)
        planned = query(graph, text)                    # encoded id joins
        oracle = query(graph, text, use_planner=False)  # decoded objects
        assert Counter(planned.solutions) == Counter(oracle.solutions), text


@pytest.mark.parametrize("seed", [5, 41])
def test_random_bgp_use_ids_flag_equivalence(seed):
    rng = random.Random(seed)
    graph = _random_workload_graph(rng, 120)
    v = [Variable("x"), Variable("y"), Variable("z")]
    for _ in range(40):
        patterns = []
        for _ in range(rng.randrange(1, 4)):
            patterns.append(Triple(
                rng.choice(v) if rng.random() < 0.6 else _random_term(rng, "iri"),
                rng.choice(v) if rng.random() < 0.3 else EX[f"p{rng.randrange(5)}"],
                rng.choice(v) if rng.random() < 0.6 else _random_term(rng),
            ))
        encoded = Counter(BGP(patterns, use_ids=True).solutions(graph))
        decoded = Counter(BGP(patterns, use_ids=False).solutions(graph))
        assert encoded == decoded
        # seeded entry point (the rule engine's join path)
        seed_bindings = Bindings({v[0]: _random_term(rng, "iri")})
        encoded_seeded = Counter(
            BGP(patterns, use_ids=True).solutions_from(graph, seed_bindings)
        )
        decoded_seeded = Counter(
            BGP(patterns, use_ids=False).solutions_from(graph, seed_bindings)
        )
        assert encoded_seeded == decoded_seeded


def test_seeded_join_passes_through_foreign_bindings():
    g = Graph()
    g.add(Triple(EX.a, EX.p, EX.b))
    x, other = Variable("x"), Variable("other")
    bgp = BGP([Triple(x, EX.p, EX.b)])
    # ?other is not mentioned by the pattern and its term was never
    # interned; it must pass through untouched (decoded path semantics)
    seeded = list(bgp.solutions_from(g, Bindings({other: EX.unseen})))
    assert seeded == [Bindings({x: EX.a, other: EX.unseen})]
    # a never-interned term bound to a variable the pattern *does* use
    # means no solutions on both paths
    assert list(bgp.solutions_from(g, Bindings({x: EX.unseen}))) == []
    assert list(
        BGP([Triple(x, EX.p, EX.b)], use_ids=False).solutions_from(
            g, Bindings({x: EX.unseen})
        )
    ) == []


def test_select_planned_vs_oracle_on_encoded_graph():
    rng = random.Random(11)
    graph = _random_workload_graph(rng, 100)
    x, y = Variable("x"), Variable("y")
    patterns = [
        Triple(x, EX.p0, y),
        Triple(y, EX.p1, Variable("z")),
    ]
    planned = select(graph, patterns)
    oracle = select(graph, patterns, use_planner=False)
    assert Counter(planned.solutions) == Counter(oracle.solutions)


# --------------------------------------------------------------------- #
# randomized rule-engine equivalence: encoded vs decoded, incremental
# --------------------------------------------------------------------- #

def _random_rules(rng):
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    rules = [
        Rule(
            "chain",
            body=[Triple(x, EX.p0, y), Triple(y, EX.p0, z)],
            head=[Triple(x, EX.derived, z)],
        ),
        Rule(
            "type-prop",
            body=[Triple(x, RDF.type, y), Triple(y, RDFS.subClassOf, z)],
            head=[Triple(x, RDF.type, z)],
        ),
        Rule(
            "wildcard-pred",
            body=[Triple(x, Variable("p"), y), Triple(Variable("p"), EX.marked, EX.yes)],
            head=[Triple(x, EX.flagged, y)],
            guard=lambda b: not isinstance(b.get(Variable("y")), Literal),
        ),
    ]
    return rng.sample(rules, k=rng.randrange(1, len(rules) + 1))


def _rules_workload(rng, size):
    g = Graph()
    classes = [EX[f"C{i}"] for i in range(4)]
    for i in range(3):
        g.add(Triple(classes[i], RDFS.subClassOf, classes[i + 1]))
    g.add(Triple(EX.p0, EX.marked, EX.yes))
    for _ in range(size):
        g.add(_random_triple(rng))
        if rng.random() < 0.3:
            g.add(Triple(EX[f"node{rng.randrange(12)}"], RDF.type, rng.choice(classes)))
    return g


@pytest.mark.parametrize("seed", [2, 29, 83])
def test_rule_engine_encoded_equals_decoded(seed):
    rng = random.Random(seed)
    rules = _random_rules(rng)

    encoded_graph = _rules_workload(random.Random(seed + 1), 60)
    decoded_graph = _rules_workload(random.Random(seed + 1), 60)
    assert set(encoded_graph) == set(decoded_graph)

    encoded_trace = RuleEngine(rules, use_ids=True).run(encoded_graph)
    decoded_trace = RuleEngine(rules, use_ids=False).run(decoded_graph)
    assert set(encoded_graph) == set(decoded_graph)
    assert encoded_trace.inferred == decoded_trace.inferred
    assert encoded_trace.by_rule == decoded_trace.by_rule


@pytest.mark.parametrize("seed", [13, 67])
def test_incremental_encoded_equals_full_decoded(seed):
    rng = random.Random(seed)
    rules = _random_rules(rng)

    incremental_graph = _rules_workload(random.Random(seed + 1), 40)
    full_graph = _rules_workload(random.Random(seed + 1), 40)

    incremental_engine = RuleEngine(rules, use_ids=True)
    incremental_engine.run(incremental_graph)
    decoded_engine = RuleEngine(rules, use_ids=False)
    decoded_engine.run(full_graph)
    assert set(incremental_graph) == set(full_graph)

    # grow both graphs with the same delta; close one incrementally over
    # encoded joins, the other from scratch over decoded joins
    delta = []
    delta_rng = random.Random(seed + 2)
    for _ in range(15):
        t = _random_triple(delta_rng)
        if incremental_graph.add(t):
            delta.append(t)
        full_graph.add(t)
    incremental_engine.run_incremental(incremental_graph, delta)
    decoded_engine.run(full_graph)
    assert set(incremental_graph) == set(full_graph)


# --------------------------------------------------------------------- #
# delta journal equivalence
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("seed", [17, 53])
def test_tracker_delta_matches_actual_insertions(seed):
    rng = random.Random(seed)
    g = Graph()
    tracker = g.track_changes()
    inserted = []
    for _ in range(120):
        t = _random_triple(rng)
        if rng.random() < 0.85:
            if g.add(t):
                inserted.append(t)
        else:
            g.remove(t)
    delta = tracker.drain()
    assert delta.added == inserted
    assert delta.added_ids == [g.dictionary.lookup_triple(t) for t in inserted]
