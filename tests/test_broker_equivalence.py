"""Randomized equivalence: trie-indexed routing vs. a linear-scan matcher.

The `SubscriptionTrie` must route exactly like the reference behaviour —
scanning every subscription and applying :func:`topic_matches` — over any
set of patterns with ``+`` / ``#`` wildcards, including after random
cancellations, and retained-message replay for a late subscriber must
deliver exactly the latest retained message of every matching topic.
"""

import random

import pytest

from repro.streams.broker import (
    Broker,
    Subscription,
    SubscriptionTrie,
    topic_matches,
    validate_pattern,
)

SEGMENTS = ["alpha", "beta", "gamma", "delta"]


def random_topic(rng: random.Random) -> str:
    depth = rng.randint(1, 4)
    return "/".join(rng.choice(SEGMENTS) for _ in range(depth))


def random_pattern(rng: random.Random) -> str:
    depth = rng.randint(1, 4)
    parts = [rng.choice(SEGMENTS + ["+"]) for _ in range(depth)]
    if rng.random() < 0.35:
        # '#' replaces the tail (it must be the last segment)
        cut = rng.randint(0, depth - 1)
        parts = parts[:cut] + ["#"]
    return "/".join(parts)


def linear_match(subscriptions, topic):
    """The reference matcher: scan everything, apply topic_matches."""
    return {
        s.subscription_id
        for s in subscriptions
        if s.active and topic_matches(s.pattern, topic)
    }


@pytest.mark.parametrize("seed", range(15))
def test_trie_match_equals_linear_scan(seed):
    rng = random.Random(seed)
    trie = SubscriptionTrie()
    subscriptions = []
    for index in range(rng.randint(5, 40)):
        pattern = random_pattern(rng)
        subscription = Subscription(
            subscription_id=index, pattern=pattern, handler=lambda m: None
        )
        trie.insert(subscription, validate_pattern(pattern))
        subscriptions.append(subscription)

    topics = [random_topic(rng) for _ in range(60)]
    for topic in topics:
        trie_ids = {s.subscription_id for s in trie.match(topic)}
        assert trie_ids == linear_match(subscriptions, topic), (topic, seed)

    # cancel a random subset and compare again
    for subscription in rng.sample(subscriptions, k=len(subscriptions) // 2):
        subscription.active = False
        trie.remove(subscription)
    for topic in topics:
        trie_ids = {s.subscription_id for s in trie.match(topic)}
        assert trie_ids == linear_match(subscriptions, topic), (topic, seed)


@pytest.mark.parametrize("seed", range(10))
def test_broker_delivery_equals_reference(seed):
    """Interleaved subscribe / publish / cancel, checked against a log."""
    rng = random.Random(100 + seed)
    broker = Broker()
    deliveries = []
    reference = []  # (pattern, active) in subscription order
    live = []

    def handler(name):
        return lambda message: deliveries.append((name, message.topic, message.payload))

    expected = []
    for step in range(120):
        roll = rng.random()
        if roll < 0.25 or not live:
            pattern = random_pattern(rng)
            name = f"sub{step}"
            live.append((name, pattern, broker.subscribe(pattern, handler(name),
                                                         receive_retained=False)))
        elif roll < 0.35 and live:
            name, pattern, subscription = live.pop(rng.randrange(len(live)))
            subscription.cancel()
        else:
            topic = random_topic(rng)
            broker.publish(topic, payload=step)
            for name, pattern, subscription in live:
                if topic_matches(pattern, topic):
                    expected.append((name, topic, step))

    # fan-out order within one publish is unspecified (the trie walks its
    # own order); the payload ties each delivery to its publish, so the
    # sorted logs must agree exactly
    assert sorted(deliveries) == sorted(expected)


@pytest.mark.parametrize("seed", range(10))
def test_retained_replay_equals_reference(seed):
    rng = random.Random(200 + seed)
    broker = Broker()

    latest = {}  # topic -> payload of the latest retained message
    for step in range(40):
        topic = random_topic(rng)
        broker.publish(topic, payload=step, retain=True)
        latest[topic] = step

    for index in range(25):
        pattern = random_pattern(rng)
        received = []
        broker.subscribe(pattern, lambda m, out=received: out.append(m.payload),
                         subscriber_name=f"late{index}")
        expected = {
            payload for topic, payload in latest.items()
            if topic_matches(pattern, topic)
        }
        assert set(received) == expected, (pattern, seed)
        assert len(received) == len(expected)
