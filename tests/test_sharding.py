"""Sharded per-area partitions vs the single-graph oracle.

The single shared graph (``shards=1``) is the correctness oracle of the
sharded ontology segment layer: for any record stream, a ``shards=N``
deployment must produce the same canonical events (including minted
annotation IRIs), the same derived events, and — through the scatter-gather
federator — the same decoded solution *bags* (row multisets) for every in-contract SPARQL
and entailment query.  The randomized suite drives both configurations with
the same mixed streams (valid observations, IK sightings, unresolvable and
invalid records, multiple districts) and compares everything observable.

Unit tests cover the pieces: the stable router, axiom replication and
cross-dictionary bulk loads, federated modifier semantics (DISTINCT /
ORDER BY / LIMIT / OFFSET / ASK), per-shard cache survival, and the
multi-graph service registry.
"""

from __future__ import annotations

import math
import random
from collections import Counter

import pytest

from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.core.shard_router import ShardRouter
from repro.ontologies.library import build_unified_ontology
from repro.ontologies.vocabulary import AFRICRID
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import Namespace
from repro.semantics.rdf.sharding import ShardedGraphStore
from repro.semantics.rdf.term import IRI, Literal
from repro.semantics.rdf.triple import Triple
from repro.semantics.sparql.planner import federated_query, planner_for
from repro.streams.messages import ObservationRecord

EX = Namespace("http://example.org/")

DISTRICTS = ["thabo", "mangaung", "xhariep", "lejwe", "fezile", "matjhabeng"]
PROPERTIES = [
    ("soil moisture", "percent", 20.0),
    ("rainfall", "mm", 3.0),
    ("air temperature", "degC", 18.0),
    ("relative humidity", "percent", 50.0),
]
SIGHTINGS = ["sifennefene_worms", "mutiga_tree_flowering", "aloe_profuse_bloom"]


# --------------------------------------------------------------------- #
# workload generation
# --------------------------------------------------------------------- #


def make_stream(rng: random.Random, count: int):
    """A mixed raw-record stream: observations, sightings, junk."""
    records = []
    for index in range(count):
        district = rng.choice(DISTRICTS)
        roll = rng.random()
        if roll < 0.08:
            records.append(
                ObservationRecord(
                    source_id=f"{district}-observer-{rng.randrange(3):02d}",
                    source_kind="ik_sighting",
                    property_name=rng.choice(SIGHTINGS),
                    value=rng.choice([0.5, 1.0]),
                    unit=None,
                    timestamp=600.0 * index,
                    metadata={"area": district},
                )
            )
            continue
        name, unit, base = rng.choice(PROPERTIES)
        value = base + rng.randrange(12)
        if roll < 0.13:
            name = "flux capacitance"  # unresolvable term -> mediate drop
        elif roll < 0.18:
            value = math.nan  # validate drop
        records.append(
            ObservationRecord(
                source_id=f"{district}-mote-{rng.randrange(5):02d}",
                source_kind="wsn_mote",
                property_name=name,
                value=value,
                unit=unit,
                timestamp=600.0 * index,
                location=(rng.uniform(-30, -28), rng.uniform(26, 28)),
                metadata={"area": district},
            )
        )
    return records


def build_middleware(shards: int, **config_kwargs) -> SemanticMiddleware:
    """A middleware over a *fresh* library (sharding replicates the base
    graph at construction, so configurations must not share a mutated
    library)."""
    return SemanticMiddleware(
        library=build_unified_ontology(materialize=True),
        config=MiddlewareConfig(shards=shards, **config_kwargs),
    )


def event_key(event):
    return (
        event.event_type,
        event.value,
        event.timestamp,
        event.source_id,
        event.area,
        event.annotation_iri,
    )


def solution_set(result):
    """Comparable form of a query result: row *multiset* (bag semantics).

    The federated gather matches the single-graph oracle row-for-row
    including duplicate multiplicities, so the comparison is a Counter,
    not a set.  ASK compares the boolean only — the witness solution is an
    implementation detail (the federator short-circuits on the first
    matching partition).
    """
    if result.form == "ASK":
        return result.ask
    return Counter(
        frozenset((var.name, str(term)) for var, term in solution.items())
        for solution in result.solutions
    )


QUERIES = [
    # unselective scan + filter
    """SELECT ?obs ?v WHERE {
        ?obs rdf:type ssn:Observation .
        ?obs ssn:hasResult ?r .
        ?r ssn:hasValue ?v .
        FILTER (?v > 24)
    }""",
    # join through the sensor, distinct
    """SELECT DISTINCT ?sensor WHERE {
        ?obs ssn:observedBy ?sensor .
        ?sensor rdf:type ssn:SensingDevice .
    }""",
    # OPTIONAL co-located within one observation
    """SELECT ?obs ?p WHERE {
        ?obs rdf:type ssn:Observation .
        OPTIONAL { ?obs ssn:observedProperty ?p }
    }""",
    # IK sightings with reporter
    """SELECT ?s ?who WHERE {
        ?s rdf:type ik:IndicatorSighting .
        ?s ik:reportedBy ?who .
    }""",
    # replicated-axiom-only query (matches in every shard; must collapse)
    """SELECT ?c WHERE { ?c rdfs:subClassOf ssn:Sensor }""",
    # ASK over instance data
    """ASK WHERE { ?s rdf:type ik:IndicatorSighting }""",
]

ENTAIL_QUERIES = [
    # rdfs9 over the SSN hierarchy: observations via subclass propagation
    """SELECT DISTINCT ?sensor WHERE { ?sensor rdf:type ssn:Sensor }""",
    """ASK WHERE { ?x rdf:type ik:IndigenousIndicator }""",
]


def area_query(district: str) -> str:
    feature = AFRICRID[f"feature/{district}"].value
    return f"""SELECT ?obs ?v WHERE {{
        ?obs ssn:featureOfInterest <{feature}> .
        ?obs ssn:hasResult ?r .
        ?r ssn:hasValue ?v .
    }}"""


# --------------------------------------------------------------------- #
# the randomized equivalence suite
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_sharded_matches_single_graph_randomized(seed):
    rng = random.Random(seed)
    single = build_middleware(shards=1, cep_per_record=True)
    sharded = build_middleware(shards=4, cep_per_record=True)

    derived_single, derived_sharded = [], []
    single.ontology_layer.cep.on_derived_event(derived_single.append)
    sharded.ontology_layer.cep.on_derived_event(derived_sharded.append)

    # several batches so partitions accumulate state between queries
    for _ in range(3):
        batch = make_stream(rng, 120)
        events_single = single.ingest_batch(batch)
        events_sharded = sharded.ingest_batch(batch)
        assert [event_key(e) for e in events_single] == [
            event_key(e) for e in events_sharded
        ]

    assert [event_key(e) for e in derived_single] == [
        event_key(e) for e in derived_sharded
    ]

    for query_text in QUERIES + [area_query(d) for d in DISTRICTS[:3]]:
        result_single = single.query(query_text)
        result_sharded = sharded.query(query_text)
        assert result_single.form == result_sharded.form
        assert solution_set(result_single) == solution_set(result_sharded), query_text

    for query_text in ENTAIL_QUERIES:
        result_single = single.query(query_text, entail=True)
        result_sharded = sharded.query(query_text, entail=True)
        assert solution_set(result_single) == solution_set(result_sharded), query_text


def test_sharded_record_major_matches_batch():
    """ingest_record must equal ingest_batch on the sharded layer."""
    rng = random.Random(7)
    batch = make_stream(rng, 90)
    by_batch = build_middleware(shards=3, cep_per_record=False)
    by_record = build_middleware(shards=3, cep_per_record=False)
    events_batch = by_batch.ingest_batch(batch)
    events_record = by_record.ingest_records(batch)
    assert [event_key(e) for e in events_batch] == [event_key(e) for e in events_record]
    for query_text in QUERIES[:4]:
        assert solution_set(by_batch.query(query_text)) == solution_set(
            by_record.query(query_text)
        )


def test_sharded_reason_per_batch_matches_single():
    """Per-shard incremental closure top-ups equal the single-graph run."""
    rng = random.Random(11)
    single = build_middleware(shards=1, cep_per_record=False, reason_per_batch=True)
    sharded = build_middleware(shards=4, cep_per_record=False, reason_per_batch=True)
    for _ in range(2):
        batch = make_stream(rng, 80)
        single.ingest_batch(batch)
        sharded.ingest_batch(batch)
    for query_text in ENTAIL_QUERIES + QUERIES[:3]:
        assert solution_set(single.query(query_text, entail=True)) == solution_set(
            sharded.query(query_text, entail=True)
        ), query_text


def test_sharded_inline_workers_equivalent():
    """shard_workers=0 (no thread pool) must behave identically."""
    rng = random.Random(13)
    batch = make_stream(rng, 80)
    pooled = build_middleware(shards=4, cep_per_record=False)
    inline = build_middleware(shards=4, cep_per_record=False, shard_workers=0)
    assert inline.ontology_layer._executor is None
    events_pooled = pooled.ingest_batch(batch)
    events_inline = inline.ingest_batch(batch)
    assert [event_key(e) for e in events_pooled] == [event_key(e) for e in events_inline]
    for query_text in QUERIES[:3]:
        assert solution_set(pooled.query(query_text)) == solution_set(
            inline.query(query_text)
        )
    pooled.close()  # facade delegates to the layer's pool shutdown
    pooled.ontology_layer.close()  # idempotent
    inline.close()  # no-op without a pool


# --------------------------------------------------------------------- #
# router and store units
# --------------------------------------------------------------------- #


def test_router_is_stable_and_in_range():
    router = ShardRouter(4)
    for area in DISTRICTS + [None, "", "Bloemfontein", "unknown-17"]:
        shard = router.shard_for(area)
        assert 0 <= shard < 4
        assert shard == router.shard_for(area)
        assert shard == ShardRouter(4).shard_for(area)  # process-stable
    assert router.shard_for(None) == router.shard_for("")
    assert ShardRouter(1).shard_for("anything") == 0
    with pytest.raises(ValueError):
        ShardRouter(0)


def test_router_split_preserves_order():
    router = ShardRouter(3)
    items = [(DISTRICTS[i % len(DISTRICTS)], i) for i in range(30)]
    groups = router.split(items)
    assert sorted(x for bucket in groups.values() for x in bucket) == list(range(30))
    for shard, bucket in groups.items():
        assert bucket == sorted(bucket)  # arrival order within a shard
        for value in bucket:
            assert router.shard_for(DISTRICTS[value % len(DISTRICTS)]) == shard


def test_store_replicates_axioms_into_every_shard():
    base = Graph()
    axioms = [
        Triple(EX.A, EX.subClassOf, EX.B),
        Triple(EX.B, EX.subClassOf, EX.C),
    ]
    base.add_all(axioms)
    store = ShardedGraphStore(3, base_graph=base)
    assert store.replicated_triples == 2
    for shard in store.graphs:
        assert shard.dictionary is not base.dictionary
        for axiom in axioms:
            assert axiom in shard
    # per-shard writes stay local
    store.graph_for("somewhere").add(Triple(EX.x, EX.p, EX.y))
    assert sum(Triple(EX.x, EX.p, EX.y) in g for g in store.graphs) == 1
    assert store.triple_count() == 3 * 2 + 1
    union = store.union_graph()
    assert len(union) == 3  # replicated axioms collapse in the union
    assert Triple(EX.x, EX.p, EX.y) in union


def test_graph_add_from_cross_dictionary():
    source = Graph()
    for i in range(5):
        source.add(Triple(EX[f"s{i}"], EX.p, Literal(float(i))))
    target = Graph()
    target.add(Triple(EX.s0, EX.p, Literal(0.0)))  # overlap dedupes
    added = target.add_from(source)
    assert added == 4
    assert len(target) == 5
    assert set(target) == set(source)
    # shared-dictionary fast path
    sibling = Graph(dictionary=source.dictionary)
    assert sibling.add_from(source) == 5
    assert set(sibling) == set(source)


# --------------------------------------------------------------------- #
# federated query semantics
# --------------------------------------------------------------------- #


def _partitioned_graphs():
    """Two partitions with one replicated triple and disjoint instance data."""
    left, right = Graph(), Graph()
    for graph in (left, right):
        graph.namespaces.bind("ex", EX)
        graph.add(Triple(EX.Shared, EX.kind, EX.Axiom))
    for i in range(4):
        left.add(Triple(EX[f"l{i}"], EX.score, Literal(float(i))))
        right.add(Triple(EX[f"r{i}"], EX.score, Literal(float(i) + 0.5)))
    return left, right


def test_federated_collapses_replicated_solutions():
    left, right = _partitioned_graphs()
    result = federated_query([left, right], "SELECT ?s WHERE { ?s ex:kind ex:Axiom }")
    assert [str(row["s"]) for row in result.rows] == [EX.Shared.value]


def test_federated_order_limit_offset_are_global():
    left, right = _partitioned_graphs()
    text = "SELECT ?s ?v WHERE { ?s ex:score ?v } ORDER BY DESC(?v) LIMIT 3 OFFSET 1"
    result = federated_query([left, right], text)
    values = [row["v"].to_python() for row in result.rows]
    assert values == [3.0, 2.5, 2.0]  # global top-8 minus offset, not per-shard
    # no modifiers: merged set is the union
    full = federated_query([left, right], "SELECT ?v WHERE { ?s ex:score ?v }")
    assert len(full) == 8


def test_federated_ask_short_circuits():
    left, right = _partitioned_graphs()
    right.add(Triple(EX.only_right, EX.flag, Literal(1.0)))
    assert federated_query([left, right], "ASK WHERE { ?s ex:flag ?v }").ask
    assert not federated_query([left, right], "ASK WHERE { ?s ex:missing ?v }").ask


def test_federated_single_graph_passthrough():
    left, _ = _partitioned_graphs()
    text = "SELECT ?s WHERE { ?s ex:kind ex:Axiom }"
    assert solution_set(federated_query([left], text)) == solution_set(
        planner_for(left).query(left, text)
    )
    with pytest.raises(ValueError):
        federated_query([], text)


def test_untouched_partition_served_from_result_cache():
    """A write to one partition must not evict the other's cached results."""
    left, right = _partitioned_graphs()
    text = "SELECT ?s ?v WHERE { ?s ex:score ?v }"
    federated_query([left, right], text)
    hits_before = planner_for(right).statistics.result_hits
    left.add(Triple(EX.l9, EX.score, Literal(9.0)))  # touches left only
    result = federated_query([left, right], text)
    assert planner_for(right).statistics.result_hits == hits_before + 1
    assert len(result) == 9
    # the left partition re-evaluated (its version moved), so the new
    # solution is visible
    assert any(row["s"] == EX.l9 for row in result.rows)


def test_federated_optional_drops_spurious_unbound_rows():
    """A partition whose axioms satisfy the required pattern but whose data
    cannot extend the OPTIONAL must not leak the pass-through row when
    another partition extends it (left-join compensation)."""
    left, right = _partitioned_graphs()
    left.add(Triple(EX.obs1, EX.within, EX.Shared))
    text = """SELECT ?k ?o WHERE {
        ex:Shared ex:kind ?k . OPTIONAL { ?o ex:within ex:Shared }
    }"""
    result = federated_query([left, right], text)
    # the oracle over the union graph binds ?o; the unbound row from the
    # right partition (axioms only) is a federation artifact
    rows = result.rows
    assert len(rows) == 1 and str(rows[0]["o"]) == EX.obs1.value
    # a genuinely unextendable required row keeps its pass-through
    left.add(Triple(EX.Lonely, EX.kind, EX.Axiom))
    lonely = federated_query(
        [left, right],
        """SELECT ?s ?o WHERE { ?s ex:kind ex:Axiom .
            OPTIONAL { ?o ex:within ?s } }""",
    )
    by_subject = {str(row["s"]): row for row in lonely.rows}
    assert str(by_subject[EX.Shared.value]["o"]) == EX.obs1.value
    assert "o" not in by_subject[EX.Lonely.value]
    # projection hiding the distinguishing variable keeps both oracle rows
    projected = federated_query(
        [left, right],
        """SELECT ?o WHERE { ?s ex:kind ex:Axiom . OPTIONAL { ?o ex:within ?s } }""",
    )
    assert solution_set(projected) == Counter(
        [frozenset({("o", EX.obs1.value)}), frozenset()]
    )


def test_federated_optional_with_order_and_limit():
    left, right = _partitioned_graphs()
    text = """SELECT ?s ?v WHERE { ?s ex:score ?v .
        OPTIONAL { ?s ex:kind ?k } } ORDER BY DESC(?v) LIMIT 2"""
    result = federated_query([left, right], text)
    assert [row["v"].to_python() for row in result.rows] == [3.5, 3.0]


def test_federated_limit_query_uses_per_shard_result_caches():
    """The modifier-stripped per-shard sets are result-cached too."""
    left, right = _partitioned_graphs()
    text = "SELECT ?s ?v WHERE { ?s ex:score ?v } ORDER BY DESC(?v) LIMIT 3"
    first = federated_query([left, right], text)
    hits = (
        planner_for(left).statistics.result_hits
        + planner_for(right).statistics.result_hits
    )
    again = federated_query([left, right], text)
    assert (
        planner_for(left).statistics.result_hits
        + planner_for(right).statistics.result_hits
        == hits + 2
    )
    assert [row["v"].to_python() for row in again.rows] == [
        row["v"].to_python() for row in first.rows
    ]
    # a write re-evaluates only the touched partition and refreshes the cut
    left.add(Triple(EX.l9, EX.score, Literal(9.0)))
    refreshed = federated_query([left, right], text)
    assert [row["v"].to_python() for row in refreshed.rows] == [9.0, 3.5, 3.0]


def test_sharded_layer_cache_survives_other_district_ingest():
    middleware = build_middleware(shards=4, cep_per_record=False)
    store = middleware.ontology_layer.store
    rng = random.Random(3)
    middleware.ingest_batch(make_stream(rng, 80))
    query_text = area_query(DISTRICTS[0])
    first = middleware.query(query_text)
    versions = store.versions()
    # a batch confined to a different district leaves district-0's shard
    # version (and therefore its cached results) untouched
    other = [
        r
        for r in make_stream(rng, 120)
        if r.metadata.get("area")
        and store.shard_for(r.metadata["area"]) != store.shard_for(DISTRICTS[0])
    ]
    assert other
    middleware.ingest_batch(other)
    target = store.shard_for(DISTRICTS[0])
    assert store.versions()[target] == versions[target]
    again = middleware.query(query_text)
    assert solution_set(first) == solution_set(again)


# --------------------------------------------------------------------- #
# layer plumbing
# --------------------------------------------------------------------- #


def test_sharded_services_visible_from_every_partition():
    middleware = build_middleware(shards=3, cep_per_record=False)
    layer = middleware.ontology_layer
    assert len(layer.services.graphs) == 3
    result = middleware.query(
        "SELECT ?s WHERE { ?s rdf:type africrid:SemanticService }"
    )
    assert len(result) == 3  # three default services, collapsed across shards
    assert layer.services.unregister("ontology-query")
    result = middleware.query(
        "SELECT ?s WHERE { ?s rdf:type africrid:SemanticService }"
    )
    assert len(result) == 2


def test_dews_runs_end_to_end_with_shards():
    """The DEWS rides the sharded middleware unchanged (per-district
    gateways each touch exactly one partition)."""
    from repro.dews.system import DewsConfig, DroughtEarlyWarningSystem
    from repro.workloads.scenario import build_free_state_scenario

    scenario = build_free_state_scenario(
        districts=["Mangaung", "Xhariep"],
        motes_per_district=3,
        observers_per_district=2,
        stations_per_district=1,
        seed=3,
    )
    config = DewsConfig(
        days=25,
        forecast_every_days=10,
        forecast_start_day=10,
        annotate_observations=True,
        shards=2,
        seed=3,
    )
    dews = DroughtEarlyWarningSystem(scenario, config)
    result = dews.run()
    stats = result.middleware_statistics
    assert stats["sharding"]["shards"] == 2
    assert stats["ontology_layer"].records_in > 0
    assert stats["graph_triples"] == sum(stats["sharding"]["shard_sizes"])
    answer = dews.query(
        "SELECT DISTINCT ?s WHERE { ?s rdf:type ssn:Observation }"
    )
    assert len(answer) > 0


def test_sharded_statistics_surface():
    middleware = build_middleware(shards=4, cep_per_record=False)
    rng = random.Random(5)
    middleware.ingest_batch(make_stream(rng, 60))
    middleware.query(QUERIES[0])
    stats = middleware.statistics()
    sharding = stats["sharding"]
    assert sharding["shards"] == 4
    assert len(sharding["shard_sizes"]) == 4
    assert min(sharding["shard_sizes"]) >= sharding["replicated_triples"]
    assert stats["graph_triples"] == sum(sharding["shard_sizes"])
    assert stats["query_planner"].queries >= 4  # one scatter per partition
    with pytest.raises(RuntimeError):
        middleware.ontology_layer.query_planner
