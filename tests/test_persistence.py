"""Durability tests: WAL framing, snapshots, and kill-restart equivalence.

The randomized kill-restart suites draw their seed from the
``KILL_RESTART_SEED`` environment variable when set (CI exports one per
run); every assertion message echoes the seed so a failure reproduces with
``KILL_RESTART_SEED=<seed> pytest tests/test_persistence.py``.
"""

import os
import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.ontologies.library import build_unified_ontology
from repro.persistence import (
    GraphWal,
    ShardPersistence,
    StorePersistence,
    WriteAheadLog,
    load_snapshot,
    replay_wal,
    restore_graph,
    write_snapshot,
)
from repro.persistence.codec import decode_term, encode_term, read_uvarint, write_uvarint
from repro.persistence.wal import apply_ops
from repro.semantics.rdf.graph import ChangeTracker, Graph
from repro.semantics.rdf.term import BlankNode, IRI, Literal, Variable
from repro.semantics.rdf.triple import Triple
from repro.streams.messages import ObservationRecord

SEED = int(os.environ.get("KILL_RESTART_SEED", random.SystemRandom().randrange(2**32)))

EX = "http://example.org/"


def _iri(name):
    return IRI(EX + name)


def _triple(i):
    return Triple(_iri(f"s{i % 17}"), _iri(f"p{i % 5}"), Literal(str(i)))


# --------------------------------------------------------------------- #
# codec
# --------------------------------------------------------------------- #


class TestCodec:
    def test_uvarint_round_trip(self):
        buffer = bytearray()
        values = [0, 1, 127, 128, 300, 2**20, 2**40]
        for value in values:
            write_uvarint(buffer, value)
        data = bytes(buffer)
        offset = 0
        for value in values:
            decoded, offset = read_uvarint(data, offset)
            assert decoded == value
        assert offset == len(data)

    def test_uvarint_rejects_negative(self):
        with pytest.raises(ValueError):
            write_uvarint(bytearray(), -1)

    def test_uvarint_truncated(self):
        buffer = bytearray()
        write_uvarint(buffer, 300)
        with pytest.raises(ValueError):
            read_uvarint(bytes(buffer[:1]), 0)

    @pytest.mark.parametrize(
        "term",
        [
            IRI("http://example.org/x"),
            Literal("plain"),
            Literal("5", datatype=IRI("http://www.w3.org/2001/XMLSchema#integer")),
            Literal("hallo", lang="af"),
            Literal(""),
            Literal("unicode ♞ ümlaut"),
            BlankNode("b42"),
            Variable("v"),
        ],
    )
    def test_term_round_trip(self, term):
        encoded = encode_term(term)
        decoded, offset = decode_term(encoded)
        assert decoded == term
        assert offset == len(encoded)

    def test_term_truncation_raises(self):
        encoded = encode_term(IRI("http://example.org/long-enough-to-cut"))
        for cut in range(len(encoded)):
            with pytest.raises(ValueError):
                decode_term(encoded[:cut])


# --------------------------------------------------------------------- #
# WAL framing and torn tails
# --------------------------------------------------------------------- #


class TestWriteAheadLog:
    def _scripted(self, path):
        wal = WriteAheadLog(path, fsync="always")
        wal.append_term(0, _iri("s0"))
        wal.append_term(1, _iri("p0"))
        wal.append_term(2, Literal("0"))
        wal.append_add((0, 1, 2))
        wal.append_remove((0, 1, 2))
        wal.append_clear()
        wal.append_add((0, 1, 2))
        wal.close()

    def test_replay_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        self._scripted(path)
        ops, valid = replay_wal(path)
        assert valid == path.stat().st_size
        assert [op[0] for op in ops] == [
            "term", "term", "term", "add", "remove", "clear", "add",
        ]
        assert ops[0] == ("term", 0, _iri("s0"))
        assert ops[3] == ("add", 0, 1, 2)

    def test_torn_tail_at_every_byte_offset(self, tmp_path):
        """Truncating anywhere must yield a clean record-prefix replay."""
        path = tmp_path / "wal.log"
        self._scripted(path)
        full_ops, _ = replay_wal(path)
        data = path.read_bytes()
        probe = tmp_path / "probe.log"
        for cut in range(len(data) + 1):
            probe.write_bytes(data[:cut])
            ops, valid = replay_wal(probe)
            # replay never invents records: always a prefix of the full log
            assert ops == full_ops[: len(ops)], f"cut={cut}"
            assert valid <= cut

    def test_corrupt_payload_stops_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        self._scripted(path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a byte inside the final record's payload
        path.write_bytes(bytes(data))
        ops, valid = replay_wal(path)
        assert [op[0] for op in ops] == ["term", "term", "term", "add", "remove", "clear"]
        assert valid < len(data)

    def test_kill_loses_exactly_the_uncommitted_buffer(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync="batch")
        wal.append_add((1, 2, 3))
        wal.commit()
        wal.append_add((4, 5, 6))  # buffered, never committed
        wal.kill()
        ops, _ = replay_wal(path)
        assert ops == [("add", 1, 2, 3)]

    def test_fsync_policy_validation(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "w.log", fsync="sometimes")


# --------------------------------------------------------------------- #
# snapshots
# --------------------------------------------------------------------- #


class TestSnapshot:
    def _graph(self):
        graph = Graph(identifier=IRI(EX + "g"))
        for i in range(25):
            graph.add(_triple(i))
        graph.add(Triple(_iri("s"), _iri("p"), Literal("tagged", lang="af")))
        graph.add(Triple(BlankNode("b1"), _iri("p"), Literal("3.5", datatype=IRI(
            "http://www.w3.org/2001/XMLSchema#decimal"))))
        return graph

    def test_round_trip(self, tmp_path):
        graph = self._graph()
        path = tmp_path / "snap.bin"
        write_snapshot(graph, path)
        data = load_snapshot(path)
        assert data is not None
        restored = restore_graph(data)
        assert set(restored) == set(graph)
        assert restored.identifier == graph.identifier
        # id-for-id dictionary equality, not just triple equality: WAL
        # records written against the old ids must stay decodable
        assert restored.dictionary.terms == graph.dictionary.terms
        assert dict(restored.namespaces.bindings()) == dict(graph.namespaces.bindings())

    def test_corruption_detected_at_every_byte(self, tmp_path):
        graph = self._graph()
        path = tmp_path / "snap.bin"
        write_snapshot(graph, path)
        data = bytearray(path.read_bytes())
        rng = random.Random(SEED)
        probe = tmp_path / "corrupt.bin"
        for _ in range(40):
            position = rng.randrange(len(data))
            corrupted = bytearray(data)
            corrupted[position] ^= 0xFF
            probe.write_bytes(bytes(corrupted))
            loaded = load_snapshot(probe)
            if loaded is not None:
                # the only undetectable flips would be inside ignored
                # padding, of which the format has none — so a successful
                # load must decode the identical graph
                assert set(restore_graph(loaded)) == set(graph), f"seed={SEED}"

    def test_truncation_returns_none(self, tmp_path):
        graph = self._graph()
        path = tmp_path / "snap.bin"
        write_snapshot(graph, path)
        data = path.read_bytes()
        probe = tmp_path / "cut.bin"
        for cut in (0, 4, 12, len(data) // 2, len(data) - 1):
            probe.write_bytes(data[:cut])
            assert load_snapshot(probe) is None

    def test_missing_file_returns_none(self, tmp_path):
        assert load_snapshot(tmp_path / "absent.bin") is None


# --------------------------------------------------------------------- #
# GraphWal: the journal hook
# --------------------------------------------------------------------- #


class TestGraphWal:
    def test_scripted_sequence_replays_identically(self, tmp_path):
        graph = Graph()
        wal = WriteAheadLog(tmp_path / "wal.log", fsync="always")
        GraphWal(graph, wal)
        graph.add(_triple(1))
        graph.add(_triple(2))
        graph.remove(_triple(1))
        graph.clear()
        graph.add(_triple(3))
        graph.add(_triple(3))  # duplicate: not a mutation, must not log
        wal.close()

        ops, _ = replay_wal(tmp_path / "wal.log")
        replica = Graph()
        apply_ops(replica, ops)
        assert set(replica) == set(graph) == {_triple(3)}
        # ids must match exactly — clear() keeps the dictionary, and so
        # does the replay (the 'C' op never resets term ids)
        assert replica.dictionary.terms == graph.dictionary.terms

    def test_terms_logged_lazily_once(self, tmp_path):
        graph = Graph()
        wal = WriteAheadLog(tmp_path / "wal.log", fsync="always")
        GraphWal(graph, wal)
        graph.add(Triple(_iri("s"), _iri("p"), Literal("a")))
        graph.add(Triple(_iri("s"), _iri("p"), Literal("b")))
        wal.close()
        ops, _ = replay_wal(tmp_path / "wal.log")
        term_ops = [op for op in ops if op[0] == "term"]
        # 4 distinct terms total; s and p appear in both triples but are
        # logged exactly once
        assert len(term_ops) == 4

    def test_detach_stops_logging(self, tmp_path):
        graph = Graph()
        wal = WriteAheadLog(tmp_path / "wal.log", fsync="always")
        journal = GraphWal(graph, wal)
        graph.add(_triple(1))
        journal.detach()
        graph.add(_triple(2))
        wal.close()
        ops, _ = replay_wal(tmp_path / "wal.log")
        assert len([op for op in ops if op[0] == "add"]) == 1


# --------------------------------------------------------------------- #
# randomized kill-restart: graph level, arbitrary byte truncation
# --------------------------------------------------------------------- #


class TestKillRestartEquivalence:
    """Truncate the WAL at arbitrary byte offsets; the recovered graph
    must equal the oracle that applied exactly the surviving op prefix."""

    OPS = 160

    def _run_script(self, rng):
        """A random add/remove/clear script over a small triple universe."""
        script = []
        for _ in range(self.OPS):
            roll = rng.random()
            if roll < 0.70:
                script.append(("add", rng.randrange(60)))
            elif roll < 0.96:
                script.append(("remove", rng.randrange(60)))
            else:
                script.append(("clear",))
        return script

    @staticmethod
    def _apply(graph, op):
        if op[0] == "add":
            graph.add(_triple(op[1]))
        elif op[0] == "remove":
            graph.remove(_triple(op[1]))
        else:
            graph.clear()

    def test_recovery_matches_op_prefix_oracle(self, tmp_path):
        rng = random.Random(SEED)
        script = self._run_script(rng)

        shard_dir = tmp_path / "shard"
        persistence = ShardPersistence(shard_dir, fsync="always")
        graph = Graph()
        persistence.attach(graph)
        wal_path = persistence.wal.path
        # byte offset of the durable WAL after each op (fsync="always"
        # writes through on every append, so st_size is exact)
        offsets = [0]
        states = [frozenset(graph)]
        for op in script:
            self._apply(graph, op)
            offsets.append(wal_path.stat().st_size)
            states.append(frozenset(graph))
        persistence.close()
        full = wal_path.read_bytes()

        for trial in range(25):
            cut = rng.randrange(len(full) + 1)
            # the oracle state: the last op fully on disk at this cut
            surviving = max(k for k in range(len(offsets)) if offsets[k] <= cut)
            wal_path.write_bytes(full[:cut])
            recovery = ShardPersistence(shard_dir, fsync="always")
            recovered = recovery.recover()
            assert frozenset(recovered) == states[surviving], (
                f"seed={SEED} trial={trial} cut={cut} surviving_ops={surviving}"
            )
            recovery.kill()
            wal_path.write_bytes(full)

    def test_recovery_continues_cleanly_after_truncation(self, tmp_path):
        """After a torn-tail recovery, new writes + another recovery work."""
        rng = random.Random(SEED + 1)
        shard_dir = tmp_path / "shard"
        persistence = ShardPersistence(shard_dir, fsync="always")
        graph = Graph()
        persistence.attach(graph)
        for i in range(30):
            graph.add(_triple(i))
        wal_path = persistence.wal.path
        persistence.close()

        data = wal_path.read_bytes()
        wal_path.write_bytes(data[: rng.randrange(1, len(data))])
        recovery = ShardPersistence(shard_dir, fsync="always")
        recovered = recovery.recover()
        before = set(recovered)
        recovered.add(_triple(100))
        recovery.close()

        second = ShardPersistence(shard_dir, fsync="always")
        final = second.recover()
        assert set(final) == before | {_triple(100)}, f"seed={SEED}"
        second.close()


# --------------------------------------------------------------------- #
# checkpoint rotation
# --------------------------------------------------------------------- #


class TestCheckpoint:
    def test_rotation_prunes_old_generation(self, tmp_path):
        persistence = ShardPersistence(tmp_path / "shard", fsync="always")
        graph = Graph()
        persistence.attach(graph)
        for i in range(10):
            graph.add(_triple(i))
        persistence.checkpoint()
        names = sorted(p.name for p in (tmp_path / "shard").iterdir())
        assert names == ["snap-00000001.bin", "wal-00000001.log"]
        # the new WAL is empty: everything lives in the snapshot
        assert persistence.wal.records == 0
        persistence.close()

        recovery = ShardPersistence(tmp_path / "shard")
        recovered = recovery.recover()
        assert set(recovered) == set(graph)
        recovery.close()

    def test_mid_checkpoint_crash_falls_back_to_old_generation(self, tmp_path):
        persistence = ShardPersistence(tmp_path / "shard", fsync="always")
        graph = Graph()
        persistence.attach(graph)
        for i in range(10):
            graph.add(_triple(i))
        persistence.close()
        # simulate a crash after the new snapshot file was created but
        # before it was completely written: a corrupt snap-1 beside an
        # intact generation 0
        bad = tmp_path / "shard" / "snap-00000001.bin"
        bad.write_bytes(b"RPSNAP01 torn half-written snapshot")
        recovery = ShardPersistence(tmp_path / "shard")
        recovered = recovery.recover()
        assert set(recovered) == set(graph)
        assert recovery.generation == 0
        # the dead generation-1 leftovers were pruned
        assert not bad.exists()
        recovery.close()

    def test_checkpoint_after_clear_preserves_id_space(self, tmp_path):
        persistence = ShardPersistence(tmp_path / "shard", fsync="always")
        graph = Graph()
        persistence.attach(graph)
        for i in range(5):
            graph.add(_triple(i))
        graph.clear()
        persistence.checkpoint()
        dict_size = len(graph.dictionary)
        graph.add(_triple(99))
        persistence.close()

        recovery = ShardPersistence(tmp_path / "shard")
        recovered = recovery.recover()
        assert set(recovered) == {_triple(99)}
        assert len(recovered.dictionary) >= dict_size
        recovery.close()


# --------------------------------------------------------------------- #
# the store manager
# --------------------------------------------------------------------- #


class TestStorePersistence:
    def test_resharding_refused(self, tmp_path):
        store = StorePersistence(tmp_path)
        store.attach_all([Graph(), Graph()])
        store.close()
        again = StorePersistence(tmp_path)
        with pytest.raises(ValueError, match="re-sharding"):
            again.recover_all(expected_shards=4)

    def test_attach_over_existing_store_refused(self, tmp_path):
        store = StorePersistence(tmp_path)
        store.attach_all([Graph()])
        store.close()
        again = StorePersistence(tmp_path)
        with pytest.raises(ValueError, match="already holds"):
            again.attach_all([Graph()])

    def test_standing_registrations_preserve_push_flag(self, tmp_path):
        store = StorePersistence(tmp_path)
        store.record_standing("v1", "SELECT ...", push=True)
        # a re-registration without an explicit flag (the recovery path)
        # must not strip the push wiring from the record
        store.record_standing("v1", "SELECT ...")
        [registration] = store.standing_registrations()
        assert registration["push"] is True

    def test_maybe_checkpoint_honours_interval(self, tmp_path):
        # the interval counts WAL records (term defs + triple ops), not
        # graph mutations: 5 adds write at most 20 records
        store = StorePersistence(tmp_path, fsync="always", snapshot_interval=100)
        graph = Graph()
        store.attach_all([graph])
        for i in range(5):
            graph.add(_triple(i))
        assert store.maybe_checkpoint() == 0
        for i in range(5, 40):
            graph.add(_triple(i))
        assert store.maybe_checkpoint() == 1
        # the fresh post-checkpoint WAL is below the interval again
        assert store.maybe_checkpoint() == 0
        store.close()


# --------------------------------------------------------------------- #
# middleware-level kill-restart (sharded, standing views, counter)
# --------------------------------------------------------------------- #

DISTRICTS = ["thabo", "mangaung", "xhariep", "lejwe"]
PROPERTIES = [
    ("soil moisture", "percent", 20.0),
    ("rainfall", "mm", 3.0),
    ("air temperature", "degC", 18.0),
]

OBSERVATION_QUERY = (
    "SELECT ?s WHERE { ?s <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
    "<http://purl.oclc.org/NET/ssnx/ssn#Observation> . }"
)
ALL_QUERY = "SELECT ?s ?p ?o WHERE { ?s ?p ?o . }"


def make_records(rng, count, start_index=0):
    records = []
    for index in range(start_index, start_index + count):
        district = rng.choice(DISTRICTS)
        name, unit, base = rng.choice(PROPERTIES)
        records.append(
            ObservationRecord(
                source_id=f"{district}-mote-{rng.randrange(4):02d}",
                source_kind="wsn_mote",
                property_name=name,
                value=base + rng.randrange(12),
                unit=unit,
                timestamp=600.0 * index,
                location=(-29.0, 26.5),
                metadata={"area": district},
            )
        )
    return records


def _term_key(term):
    # blank-node labels are not stable across independently built
    # middleware instances; collapse them so bags compare structurally
    text = str(term)
    return "_:" if text.startswith("_:") else text


def row_bag(result):
    return Counter(
        tuple(sorted((str(var).lstrip("?"), _term_key(term)) for var, term in row.items()))
        for row in result.rows
    )


def view_row_bag(views):
    bag = Counter()
    for view in views:
        for row in view.rows():
            bag[
                tuple(
                    sorted(
                        (str(var).lstrip("?"), _term_key(term))
                        for var, term in row.items()
                    )
                )
            ] += 1
    return bag


class TestMiddlewareKillRestart:
    SHARDS = 4

    def _build(self, data_dir=None, library=None, **overrides):
        config = MiddlewareConfig(
            shards=self.SHARDS,
            data_dir=str(data_dir) if data_dir is not None else None,
            wal_fsync="batch",
            **overrides,
        )
        return SemanticMiddleware(
            library=library or build_unified_ontology(materialize=True), config=config
        )

    def test_restart_equivalence_with_standing_views(self, tmp_path):
        rng = random.Random(SEED)
        records = make_records(rng, 60)
        batches = [records[:25], records[25:45], records[45:]]

        oracle = self._build()
        oracle.register_standing(OBSERVATION_QUERY, name="obs", push=True)
        durable = self._build(data_dir=tmp_path / "data")
        durable.register_standing(OBSERVATION_QUERY, name="obs", push=True)

        for batch in batches[:2]:
            oracle.ingest_batch(list(batch))
            durable.ingest_batch(list(batch))
        # crash the durable instance without a graceful close: fsync="batch"
        # committed at each ingest_batch, so nothing is lost
        durable.ontology_layer.persistence.kill()

        recovered = self._build(data_dir=tmp_path / "data")
        assert recovered.ontology_layer.recovered, f"seed={SEED}"
        assert row_bag(recovered.query(ALL_QUERY)) == row_bag(
            oracle.query(ALL_QUERY)
        ), f"seed={SEED}"
        # standing views were re-registered and serve bag-equal rows
        assert view_row_bag(recovered.ontology_layer.standing_views()) == view_row_bag(
            oracle.ontology_layer.standing_views()
        ), f"seed={SEED}"

        # both sides keep ingesting: annotation IRIs must not collide, so
        # the bags stay equal after recovery too
        oracle.ingest_batch(list(batches[2]))
        recovered.ingest_batch(list(batches[2]))
        assert row_bag(recovered.query(ALL_QUERY)) == row_bag(
            oracle.query(ALL_QUERY)
        ), f"seed={SEED}"
        assert row_bag(recovered.query(OBSERVATION_QUERY)) == row_bag(
            oracle.query(OBSERVATION_QUERY)
        ), f"seed={SEED}"
        oracle.close()
        recovered.close()

    def test_push_views_rewired_after_recovery(self, tmp_path):
        rng = random.Random(SEED + 2)
        durable = self._build(data_dir=tmp_path / "data")
        durable.register_standing(OBSERVATION_QUERY, name="obs", push=True)
        durable.ingest_batch(make_records(rng, 10))
        durable.ontology_layer.persistence.kill()

        recovered = self._build(data_dir=tmp_path / "data")
        deliveries = []
        recovered.broker.subscribe("views/obs", deliveries.append)
        recovered.ingest_batch(make_records(rng, 6, start_index=100))
        recovered.scheduler.run_until(10_000_000.0)
        assert deliveries, f"seed={SEED}: push-mode view not re-wired after recovery"
        recovered.close()

    def test_annotation_counter_continues_after_recovery(self, tmp_path):
        rng = random.Random(SEED + 3)
        durable = self._build(data_dir=tmp_path / "data")
        durable.ingest_batch(make_records(rng, 12))
        observations = row_bag(durable.query(OBSERVATION_QUERY))
        durable.ontology_layer.persistence.kill()

        recovered = self._build(data_dir=tmp_path / "data")
        recovered.ingest_batch(make_records(rng, 12, start_index=50))
        after = row_bag(recovered.query(OBSERVATION_QUERY))
        # 12 recovered + 12 new observations; a counter collision would
        # alias IRIs and lose rows
        assert sum(after.values()) == sum(observations.values()) + 12, f"seed={SEED}"
        recovered.close()

    def test_reason_per_batch_closure_rebuilt(self, tmp_path):
        rng = random.Random(SEED + 4)
        durable = self._build(data_dir=tmp_path / "data", reason_per_batch=True)
        durable.ingest_batch(make_records(rng, 10))
        entailed = row_bag(durable.query(OBSERVATION_QUERY, entail=True))
        durable.ontology_layer.persistence.kill()

        recovered = self._build(data_dir=tmp_path / "data", reason_per_batch=True)
        assert row_bag(recovered.query(OBSERVATION_QUERY, entail=True)) == entailed, (
            f"seed={SEED}"
        )
        recovered.close()

    def test_graceful_close_then_recover(self, tmp_path):
        rng = random.Random(SEED + 5)
        durable = self._build(data_dir=tmp_path / "data")
        durable.ingest_batch(make_records(rng, 10))
        everything = row_bag(durable.query(ALL_QUERY))
        durable.close()

        recovered = self._build(data_dir=tmp_path / "data")
        assert row_bag(recovered.query(ALL_QUERY)) == everything, f"seed={SEED}"
        recovered.close()

    def test_truncated_shard_wal_recovers_consistently(self, tmp_path):
        """Arbitrary-offset truncation of shard WALs: recovery must come
        back torn-tail clean and standing views must match a fresh query
        over the recovered graphs."""
        rng = random.Random(SEED + 6)
        durable = self._build(data_dir=tmp_path / "data")
        durable.register_standing(OBSERVATION_QUERY, name="obs")
        for start in (0, 30):
            durable.ingest_batch(make_records(rng, 30, start_index=start))
        oracle_triples = [set(g) for g in durable.ontology_layer.graphs]
        durable.ontology_layer.persistence.kill()

        # tear every shard's WAL at an arbitrary byte offset
        for shard_dir in sorted((tmp_path / "data").glob("shard-*")):
            for wal_path in shard_dir.glob("wal-*.log"):
                size = wal_path.stat().st_size
                if size:
                    os.truncate(wal_path, rng.randrange(size + 1))

        recovered = self._build(data_dir=tmp_path / "data")
        assert recovered.ontology_layer.recovered
        for index, graph in enumerate(recovered.ontology_layer.graphs):
            assert set(graph) <= oracle_triples[index], f"seed={SEED} shard={index}"
        # the re-registered standing views serve exactly what a fresh
        # query over the recovered partitions sees
        assert view_row_bag(recovered.ontology_layer.standing_views()) == row_bag(
            recovered.query(OBSERVATION_QUERY)
        ), f"seed={SEED}"
        recovered.close()


# --------------------------------------------------------------------- #
# ChangeTracker.requeue after overflow (property)
# --------------------------------------------------------------------- #


class _SmallTracker(ChangeTracker):
    max_buffered = 8


@settings(max_examples=60, deadline=None)
@given(
    before=st.lists(
        st.tuples(st.sampled_from(["add", "remove"]), st.integers(0, 5)), max_size=20
    ),
    after=st.lists(
        st.tuples(st.sampled_from(["add", "remove"]), st.integers(0, 5)), max_size=20
    ),
)
def test_change_tracker_requeue_after_overflow(before, after):
    """drain → (more ops) → requeue → drain must never resurrect itemised
    state that an overflow already collapsed, and must keep the overflow
    and retraction flags sticky."""
    tracker = _SmallTracker()
    for kind, value in before:
        if kind == "add":
            tracker.record_add((value, value, value))
        else:
            tracker.record_remove((value, value, value))
    first = tracker.drain()

    for kind, value in after:
        if kind == "add":
            tracker.record_add((value, value, value))
        else:
            tracker.record_remove((value, value, value))
    tracker.requeue(first)
    merged = tracker.drain()

    if first.overflowed:
        # an overflowed delta collapses the merge: no itemised backlog may
        # survive requeue, and consumers must see needs_full
        assert merged.overflowed
        assert merged.needs_full
        assert merged.added_ids == []
    if first.retracted or any(kind == "remove" for kind, _ in after):
        assert merged.retracted
    if not merged.overflowed:
        # without overflow nothing is lost: the requeued delta's adds come
        # back in front of the later ones, in order
        expected = [(v, v, v) for k, v in before if k == "add"] + [
            (v, v, v) for k, v in after if k == "add"
        ]
        assert merged.added_ids == expected
