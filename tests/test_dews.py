"""Tests for the DEWS application: cloud, alerts, dissemination, end-to-end."""

import numpy as np
import pytest

from repro.dews.alerts import DroughtAlert, alert_level_name, build_alerts
from repro.dews.cloud import CloudStore
from repro.dews.dissemination import (
    DisseminationHub,
    IpRadioChannel,
    MobileAppChannel,
    SemanticWebChannel,
    SmartBillboardChannel,
)
from repro.dews.system import DewsConfig, DroughtEarlyWarningSystem
from repro.forecasting.fusion import Forecast
from repro.forecasting.vulnerability import compute_vulnerability
from repro.ontologies.drought import ALERT_LEVELS
from repro.ontologies.vocabulary import DROUGHT
from repro.workloads import DroughtEpisode, build_free_state_scenario


class TestCloudStore:
    def test_ingest_and_incremental_fetch(self):
        cloud = CloudStore()
        cloud.ingest("doc1", 0.0)
        cloud.ingest("doc2", 10.0)
        documents, cursor = cloud.fetch_since(0)
        assert documents == ["doc1", "doc2"]
        cloud.ingest("doc3", 20.0)
        documents, cursor = cloud.fetch_since(cursor)
        assert documents == ["doc3"]

    def test_fetch_window(self):
        cloud = CloudStore()
        cloud.ingest("a", 0.0)
        cloud.ingest("b", 100.0)
        assert cloud.fetch_window(50.0, 150.0) == ["b"]

    def test_unavailable_store_rejects(self):
        cloud = CloudStore(availability=0.0001, seed=1)
        accepted = sum(cloud.ingest("x", 0.0) for _ in range(50))
        assert accepted < 5
        assert cloud.statistics.rejected_uploads > 40

    def test_availability_validation(self):
        with pytest.raises(ValueError):
            CloudStore(availability=0.0)


def forecast(probability, district="Mangaung", day=100.0):
    return Forecast(issue_day=day, lead_time_days=20.0, drought_probability=probability,
                    confidence=0.8, method="fusion", area=district)


class TestAlerts:
    def test_alert_level_name(self):
        assert alert_level_name(DROUGHT.LevelWatch) == "Watch"

    def test_build_alerts_levels_follow_probability(self):
        forecasts = {"Mangaung": forecast(0.1), "Xhariep": forecast(0.9)}
        vulnerability = {v.district: v for v in compute_vulnerability(
            {name: f.drought_probability for name, f in forecasts.items()})}
        alerts = {a.district: a for a in build_alerts(forecasts, vulnerability)}
        assert alerts["Mangaung"].level == "Normal"
        assert alerts["Xhariep"].level == "Emergency"
        assert not alerts["Mangaung"].actionable
        assert alerts["Xhariep"].actionable

    def test_high_vulnerability_escalates(self):
        forecasts = {"Xhariep": forecast(0.5), "Mangaung": forecast(0.5)}
        vulnerability = {v.district: v for v in compute_vulnerability(
            {"Xhariep": 0.5, "Mangaung": 0.5})}
        alerts = {a.district: a for a in build_alerts(forecasts, vulnerability)}
        # Xhariep is the more vulnerable district and gets bumped a level
        assert ALERT_LEVELS.index(alerts["Xhariep"].level) >= ALERT_LEVELS.index(alerts["Mangaung"].level)

    def test_headline_and_rank(self):
        alert = DroughtAlert("Xhariep", 100.0, "Warning", 0.7, 0.4, 20.0, "advice")
        assert "XHARIEP" in alert.headline().upper()
        assert alert.rank == 2


class TestDissemination:
    def make_alert(self, level="Warning"):
        return DroughtAlert("Mangaung", 100.0, level, 0.7, 0.35, 20.0, "Reduce stocking rates.")

    def test_hub_fans_out_to_all_channels(self):
        hub = DisseminationHub(seed=1)
        deliveries = hub.disseminate([self.make_alert()])
        assert len(deliveries) == 4
        assert hub.total_recipients_reached() > 0

    def test_normal_alert_skips_billboard_and_radio(self):
        hub = DisseminationHub(seed=1)
        deliveries = hub.disseminate([self.make_alert("Normal")])
        channels = {d.channel for d in deliveries}
        assert "smart_billboard" not in channels and "ip_radio" not in channels
        assert "mobile_app" in channels

    def test_channel_statistics(self):
        channel = MobileAppChannel(subscribers=100, seed=2)
        for _ in range(20):
            channel.deliver(self.make_alert())
        stats = channel.statistics
        assert stats.attempted == 20
        assert 0.5 <= stats.delivery_ratio <= 1.0
        assert stats.mean_latency > 0

    def test_billboard_render_is_short(self):
        text = SmartBillboardChannel(seed=1).render(self.make_alert())
        assert len(text) < 80

    def test_radio_bulletin_contains_advisory(self):
        assert "stocking" in IpRadioChannel(seed=1).render(self.make_alert())

    def test_semantic_web_channel_builds_graph(self):
        channel = SemanticWebChannel(seed=1)
        channel.deliver(self.make_alert())
        channel.deliver(self.make_alert("Emergency"))
        assert len(channel.graph) >= 10
        assert len(list(channel.graph.subjects(None, DROUGHT.DroughtAlert))) == 2


class TestEndToEndDews:
    @pytest.fixture(scope="class")
    def result(self):
        scenario = build_free_state_scenario(
            districts=["Mangaung"], motes_per_district=6, observers_per_district=8,
            stations_per_district=1,
            episodes=[DroughtEpisode(200.0, 300.0, 0.85)], seed=7,
        )
        config = DewsConfig(days=330, forecast_every_days=15, forecast_start_day=45, seed=7)
        return DroughtEarlyWarningSystem(scenario, config).run()

    def test_all_three_forecasters_produce_forecasts(self, result):
        assert set(result.forecasts) == {"statistical", "indigenous", "fusion"}
        for series in result.forecasts.values():
            assert len(series) >= 15

    def test_skills_computed_for_each_method(self, result):
        assert set(result.skills) == {"statistical", "indigenous", "fusion"}
        for skill in result.skills.values():
            assert skill.forecasts_evaluated > 10
            assert 0.0 <= skill.pod <= 1.0

    def test_fusion_detects_the_embedded_drought(self, result):
        fusion = result.skills["fusion"]
        assert fusion.pod >= 0.4

    def test_mediation_resolves_most_heterogeneous_records(self, result):
        mediation = result.middleware_statistics["mediation"]
        assert mediation.records_seen > 3000
        assert mediation.resolution_rate > 0.75

    def test_daily_series_collected(self, result):
        series = result.daily_series["Mangaung"]["soil_moisture"]
        assert np.isfinite(series[60:300]).mean() > 0.8

    def test_wsn_delivered_data(self, result):
        stats = result.wsn_statistics["Mangaung"]
        assert stats.delivery_ratio > 0.3
        assert stats.records_delivered > 1000

    def test_gateway_uploaded_data(self, result):
        stats = result.gateway_statistics["Mangaung"]
        assert stats.upload_success_ratio > 0.8

    def test_alerts_issued_and_disseminated(self, result):
        assert result.alerts
        actionable = [a for a in result.alerts if a.actionable]
        assert actionable
        dissemination = result.dissemination_statistics
        assert dissemination["mobile_app"].attempted >= len(actionable)

    def test_derived_events_flow(self, result):
        assert result.derived_event_count > 5

    def test_skill_table_rows(self, result):
        rows = result.skill_table()
        assert len(rows) == 3
        assert {row["method"] for row in rows} == {"statistical", "indigenous", "fusion"}
