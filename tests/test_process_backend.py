"""Process-based shard workers vs the inline (and single-graph) oracles.

The ``process`` shard backend forks one worker per partition; the inline
backend — itself bag-equal to the single shared graph — is its
equivalence oracle.  For any record stream the two must produce the same
canonical events (including minted annotation IRIs), the same federated
query solution bags, and the same standing-view rows and push deltas.

The crash suite SIGKILLs a worker mid-stream (seed echoed for replay,
override with ``KILL_RESTART_SEED``) and requires the supervisor to
respawn it from its WAL, re-register its views, replay the in-flight
batch, and end bag-equal to the oracle that never crashed.
"""

from __future__ import annotations

import os
import random
import signal
import time
from collections import Counter

import pytest

from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.core.shard_backend import resolve_shard_backend
from repro.dews.system import DewsConfig, DroughtEarlyWarningSystem
from repro.ontologies.library import build_unified_ontology
from repro.semantics.rdf.term import BlankNode
from repro.workloads.scenario import build_free_state_scenario

from test_sharding import QUERIES, event_key, make_stream, solution_set

VIEW_QUERY = """SELECT ?obs ?v WHERE {
    ?obs rdf:type ssn:Observation .
    ?obs ssn:hasResult ?r .
    ?r ssn:hasValue ?v .
}"""

AREA_VIEW_QUERY = """SELECT ?obs WHERE {
    ?obs rdf:type ssn:Observation .
    ?obs africrid:area "thabo" .
}"""


def build(shards: int, backend: str, **config_kwargs) -> SemanticMiddleware:
    return SemanticMiddleware(
        library=build_unified_ontology(materialize=True),
        config=MiddlewareConfig(
            shards=shards, shard_backend=backend, **config_kwargs
        ),
    )


def view_row_bag(views) -> Counter:
    return Counter(
        frozenset((var.name, str(term)) for var, term in row.items())
        for view in views
        for row in view.rows()
    )


def _canonical_triple(triple) -> str:
    # BlankNode labels come from a process-global counter, so two
    # independently built middlewares name the same ontology axiom
    # b0 in one and b3 in the other.  Blank nodes are label-agnostic
    # by RDF semantics; mask the label before bagging.
    parts = []
    for term in (triple.subject, triple.predicate, triple.object):
        parts.append("_:*" if isinstance(term, BlankNode) else str(term))
    return " ".join(parts)


def graph_bags(layer):
    return [Counter(map(_canonical_triple, graph)) for graph in layer.graphs]


# --------------------------------------------------------------------- #
# backend selection
# --------------------------------------------------------------------- #


def test_resolve_backend_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_SHARD_BACKEND", raising=False)
    assert resolve_shard_backend(None) == "inline"
    monkeypatch.setenv("REPRO_SHARD_BACKEND", "process")
    assert resolve_shard_backend(None) == "process"
    # an explicit knob wins over the environment
    assert resolve_shard_backend("inline") == "inline"
    with pytest.raises(ValueError):
        resolve_shard_backend("threads")


def test_single_shard_ignores_backend(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_BACKEND", "process")
    middleware = SemanticMiddleware(config=MiddlewareConfig(shards=1))
    try:
        assert middleware.ontology_layer.shard_backend == "inline"
        assert not middleware.ontology_layer.sharded
    finally:
        middleware.close()


# --------------------------------------------------------------------- #
# randomized process-vs-inline equivalence
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", [3, 17])
def test_process_matches_inline_randomized(seed):
    rng = random.Random(seed)
    records = make_stream(rng, 140)
    inline = build(4, "inline")
    proc = build(4, "process")
    try:
        half = len(records) // 2
        inline_events = inline.ingest_batch(records[:half])
        process_events = proc.ingest_batch(records[:half])
        # record-major tail: the single-record path must match too
        for record in records[half:]:
            event = inline.ingest_record(record)
            if event is not None:
                inline_events.append(event)
            event = proc.ingest_record(record)
            if event is not None:
                process_events.append(event)
        assert [event_key(e) for e in process_events] == [
            event_key(e) for e in inline_events
        ]
        for text in QUERIES:
            assert solution_set(proc.query(text)) == solution_set(
                inline.query(text)
            ), text
        # entailment federates through the workers' reasoners
        entail_query = QUERIES[0]
        assert solution_set(proc.query(entail_query, entail=True)) == solution_set(
            inline.query(entail_query, entail=True)
        )
        assert graph_bags(proc.ontology_layer) == graph_bags(inline.ontology_layer)
    finally:
        proc.close()
        inline.close()


def test_process_reason_per_batch_matches_inline():
    rng = random.Random(5)
    records = make_stream(rng, 80)
    inline = build(3, "inline", reason_per_batch=True)
    proc = build(3, "process", reason_per_batch=True)
    try:
        inline_events = inline.ingest_batch(records)
        process_events = proc.ingest_batch(records)
        assert [event_key(e) for e in process_events] == [
            event_key(e) for e in inline_events
        ]
        for text in QUERIES:
            assert solution_set(proc.query(text)) == solution_set(inline.query(text))
    finally:
        proc.close()
        inline.close()


def test_process_materialize_inferences_matches_inline():
    rng = random.Random(9)
    records = make_stream(rng, 60)
    inline = build(3, "inline")
    proc = build(3, "process")
    try:
        inline.ingest_batch(records)
        proc.ingest_batch(records)
        inline_traces = inline.ontology_layer.materialize_inferences()
        process_traces = proc.ontology_layer.materialize_inferences()
        assert [t.inferred for t in process_traces] == [
            t.inferred for t in inline_traces
        ]
        assert graph_bags(proc.ontology_layer) == graph_bags(inline.ontology_layer)
    finally:
        proc.close()
        inline.close()


# --------------------------------------------------------------------- #
# standing views over the wire
# --------------------------------------------------------------------- #


def test_process_standing_views_match_inline():
    rng = random.Random(21)
    records = make_stream(rng, 110)
    inline = build(3, "inline")
    proc = build(3, "process")
    try:
        inline_views = inline.register_standing(VIEW_QUERY, name="vals", push=True)
        process_views = proc.register_standing(VIEW_QUERY, name="vals", push=True)
        inline_deltas, process_deltas = [], []
        for view in inline_views:
            view.subscribe(
                lambda d: inline_deltas.append((len(d.added), len(d.removed)))
            )
        for view in process_views:
            view.subscribe(
                lambda d: process_deltas.append((len(d.added), len(d.removed)))
            )
        for start in range(0, len(records), 40):
            inline.ingest_batch(records[start : start + 40])
            proc.ingest_batch(records[start : start + 40])
        assert view_row_bag(process_views) == view_row_bag(inline_views)
        # the wire ships itemised deltas, not re-polls: same pushes, and
        # never a full re-materialization
        assert sorted(process_deltas) == sorted(inline_deltas)
        stats = proc.ontology_layer.standing_view_statistics()
        assert stats["full_refreshes"] == 0
        assert stats["delta_updates"] > 0
        # the registered query is served from the workers' views
        assert solution_set(proc.query(VIEW_QUERY)) == solution_set(
            inline.query(VIEW_QUERY)
        )
    finally:
        proc.close()
        inline.close()


def test_process_view_handles_are_per_shard():
    rng = random.Random(2)
    records = make_stream(rng, 60)
    proc = build(3, "process")
    try:
        views = proc.register_standing(AREA_VIEW_QUERY, name="thabo-obs")
        assert len(views) == 3
        assert [view.shard for view in views] == [0, 1, 2]
        proc.ingest_batch(records)
        # "thabo" lives on exactly one shard; the other partitions' views
        # stay empty
        populated = [view for view in views if view.rows()]
        assert len(populated) <= 1
        # re-registration returns the same handles, not duplicates
        again = proc.register_standing(AREA_VIEW_QUERY, name="thabo-obs")
        assert [id(v) for v in again] == [id(v) for v in views]
    finally:
        proc.close()


# --------------------------------------------------------------------- #
# durability: graceful restart, seeding, crash recovery
# --------------------------------------------------------------------- #


def test_process_persistence_recovers_content_and_views(tmp_path):
    rng = random.Random(31)
    records = make_stream(rng, 90)
    first = build(3, "process", data_dir=str(tmp_path))
    first.register_standing(VIEW_QUERY, name="vals", push=True)
    first.ingest_batch(records[:60])
    content = graph_bags(first.ontology_layer)
    first.close()

    second = build(3, "process", data_dir=str(tmp_path))
    try:
        assert second.ontology_layer.recovered
        assert graph_bags(second.ontology_layer) == content
        views = second.ontology_layer.standing_views()
        assert [view.name for view in views] == ["vals"] * 3
        # ingest continues past the recovered IRIs without collisions
        oracle = build(3, "inline")
        oracle.register_standing(VIEW_QUERY, name="vals", push=True)
        oracle.ingest_batch(records[:60])
        second_events = second.ingest_batch(records[60:])
        oracle_events = oracle.ingest_batch(records[60:])
        assert [event_key(e) for e in second_events] == [
            event_key(e) for e in oracle_events
        ]
        assert view_row_bag(views) == view_row_bag(
            oracle.ontology_layer.standing_views()
        )
        oracle.close()
    finally:
        second.close()


def test_snapshot_seeds_views_without_rematerializing(tmp_path):
    rng = random.Random(41)
    records = make_stream(rng, 70)
    first = build(2, "process", data_dir=str(tmp_path))
    first.register_standing(VIEW_QUERY, name="vals")
    first.ingest_batch(records)
    # roll a snapshot carrying the views' rows, leaving an empty WAL tail
    first.ontology_layer.checkpoint()
    first.close()

    second = build(2, "process", data_dir=str(tmp_path))
    try:
        views = second.ontology_layer.standing_views()
        assert all(view.seeded for view in views)
        oracle = build(2, "inline")
        oracle.register_standing(VIEW_QUERY, name="vals")
        oracle.ingest_batch(records)
        assert view_row_bag(views) == view_row_bag(
            oracle.ontology_layer.standing_views()
        )
        oracle.close()
    finally:
        second.close()


def test_snapshot_seed_falls_back_on_query_text_mismatch(tmp_path):
    rng = random.Random(43)
    records = make_stream(rng, 50)
    first = build(2, "process", data_dir=str(tmp_path))
    first.register_standing(VIEW_QUERY, name="vals")
    first.ingest_batch(records)
    first.ontology_layer.checkpoint()
    first.close()
    # swap the registration under the same name: the stored rows answer a
    # different query, so they must NOT seed the new view
    registrations = first.ontology_layer.persistence.standing_registrations()
    assert registrations and registrations[0]["name"] == "vals"
    first.ontology_layer.persistence.record_standing(
        "vals", AREA_VIEW_QUERY
    )

    second = build(2, "process", data_dir=str(tmp_path))
    try:
        views = [
            view
            for view in second.ontology_layer.standing_views()
            if view.text == AREA_VIEW_QUERY
        ]
        assert views and not any(view.seeded for view in views)
        oracle = build(2, "inline")
        oracle.register_standing(AREA_VIEW_QUERY, name="vals")
        oracle.ingest_batch(records)
        assert view_row_bag(views) == view_row_bag(
            oracle.ontology_layer.standing_views()
        )
        oracle.close()
    finally:
        second.close()


def test_meta_rejects_backend_mismatch(tmp_path):
    first = build(2, "process", data_dir=str(tmp_path))
    first.ingest_batch(make_stream(random.Random(1), 20))
    first.close()
    with pytest.raises(ValueError, match="shard backend"):
        build(2, "inline", data_dir=str(tmp_path))


def test_worker_sigkill_mid_stream_recovers_and_replays(tmp_path):
    seed = int(os.environ.get("KILL_RESTART_SEED", random.randrange(2**31)))
    print(f"KILL_RESTART_SEED={seed}")
    rng = random.Random(seed)
    records = make_stream(rng, 120)
    proc = build(3, "process", data_dir=str(tmp_path))
    inline = build(3, "inline")
    try:
        proc.register_standing(VIEW_QUERY, name="vals", push=True)
        inline.register_standing(VIEW_QUERY, name="vals", push=True)
        cut = rng.randrange(30, 90)
        process_events = proc.ingest_batch(records[:cut])
        inline_events = inline.ingest_batch(records[:cut])
        victim = rng.randrange(3)
        os.kill(
            proc.ontology_layer.shard_statistics()[victim]["pid"], signal.SIGKILL
        )
        time.sleep(0.1)
        # the next batch hits the dead pipe mid-scatter; the supervisor
        # must respawn from the WAL and replay the in-flight sub-batch
        process_events += proc.ingest_batch(records[cut:])
        inline_events += inline.ingest_batch(records[cut:])
        assert [event_key(e) for e in process_events] == [
            event_key(e) for e in inline_events
        ]
        stats = proc.ontology_layer.shard_statistics()
        assert sum(entry["restarts"] for entry in stats) >= 1
        for text in QUERIES:
            assert solution_set(proc.query(text)) == solution_set(inline.query(text))
        assert graph_bags(proc.ontology_layer) == graph_bags(inline.ontology_layer)
        assert view_row_bag(proc.ontology_layer.standing_views()) == view_row_bag(
            inline.ontology_layer.standing_views()
        )
    finally:
        proc.close()
        inline.close()


def test_worker_death_without_data_dir_raises():
    proc = build(2, "process")
    try:
        records = make_stream(random.Random(4), 30)
        proc.ingest_batch(records)
        for entry in proc.ontology_layer.shard_statistics():
            os.kill(entry["pid"], signal.SIGKILL)
        time.sleep(0.1)
        with pytest.raises(RuntimeError, match="no data_dir"):
            proc.ingest_batch(records)
    finally:
        proc.ontology_layer._backend._killed = True  # workers are already gone
        proc.close()


# --------------------------------------------------------------------- #
# observability and lifecycle
# --------------------------------------------------------------------- #


def test_shard_statistics_shape():
    proc = build(3, "process")
    inline = build(3, "inline")
    single = SemanticMiddleware(config=MiddlewareConfig(shards=1))
    try:
        records = make_stream(random.Random(6), 60)
        proc.ingest_batch(records)
        inline.ingest_batch(records)
        keys = {"shard", "triples", "queue_depth", "last_batch_latency", "pid", "restarts"}
        for layer in (proc.ontology_layer, inline.ontology_layer, single.ontology_layer):
            stats = layer.shard_statistics()
            assert all(keys <= set(entry) for entry in stats)
        process_stats = proc.ontology_layer.shard_statistics()
        assert len({entry["pid"] for entry in process_stats}) == 3
        assert all(entry["pid"] != os.getpid() for entry in process_stats)
        inline_stats = inline.ontology_layer.shard_statistics()
        assert all(entry["pid"] == os.getpid() for entry in inline_stats)
        assert proc.ontology_layer.sharding_statistics()["backend"] == "process"
        assert inline.ontology_layer.sharding_statistics()["backend"] == "inline"
    finally:
        proc.close()
        inline.close()
        single.close()


def test_context_managers_close_idempotently():
    records = make_stream(random.Random(8), 30)
    with build(2, "process") as middleware:
        middleware.ingest_batch(records)
        pids = [e["pid"] for e in middleware.ontology_layer.shard_statistics()]
    for pid in pids:
        # the workers must be gone after __exit__
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)
    middleware.close()  # second close is a no-op

    with SemanticMiddleware(config=MiddlewareConfig(shards=1)) as single:
        single.ingest_batch(records)
    single.close()

    layer_owner = build(2, "inline")
    with layer_owner.ontology_layer as layer:
        assert layer.sharded
    layer_owner.close()


def test_dews_process_backend_end_to_end():
    scenario = build_free_state_scenario(
        districts=["Mangaung", "Xhariep"],
        motes_per_district=3,
        observers_per_district=2,
        stations_per_district=1,
        seed=3,
    )
    config = DewsConfig(
        days=25,
        forecast_every_days=10,
        forecast_start_day=10,
        annotate_observations=True,
        shards=2,
        shard_backend="process",
        seed=3,
    )
    with DroughtEarlyWarningSystem(scenario, config=config) as dews:
        result = dews.run()
        stats = result.middleware_statistics
        assert stats["sharding"]["shards"] == 2
        assert stats["sharding"]["backend"] == "process"
        assert stats["ontology_layer"].records_in > 0
        assert stats["graph_triples"] == sum(stats["sharding"]["shard_sizes"])


def test_process_services_visible_from_every_partition():
    proc = build(3, "process")
    try:
        layer = proc.ontology_layer
        assert len(layer.services.graphs) == 3
        text = """SELECT ?s WHERE {
            ?s rdf:type africrid:SemanticService .
        }"""
        assert len(proc.query(text).solutions) == len(layer.services.all())
        assert layer.services.unregister("ontology-query")
        assert len(proc.query(text).solutions) == len(layer.services.all())
    finally:
        proc.close()
