"""Tests for the indexed graph, serialisation and parsing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import Namespace, RDF
from repro.semantics.rdf.parser import ParseError, parse_ntriples
from repro.semantics.rdf.term import IRI, Literal, Variable
from repro.semantics.rdf.triple import Triple

EX = Namespace("http://example.org/")


@pytest.fixture
def graph():
    g = Graph()
    g.namespaces.bind("ex", EX)
    g.add(Triple(EX.s1, EX.observes, EX.SoilMoisture))
    g.add(Triple(EX.s1, EX.hasValue, Literal(12.5)))
    g.add(Triple(EX.s2, EX.observes, EX.Rainfall))
    g.add(Triple(EX.s2, RDF.type, EX.Sensor))
    return g


class TestGraphMutation:
    def test_add_and_len(self, graph):
        assert len(graph) == 4

    def test_add_duplicate_is_noop(self, graph):
        assert graph.add(Triple(EX.s1, EX.observes, EX.SoilMoisture)) is False
        assert len(graph) == 4

    def test_add_tuple_coercion(self):
        g = Graph()
        g.add((EX.a, EX.p, 5))
        assert Triple(EX.a, EX.p, Literal(5)) in g

    def test_add_variable_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add(Triple(Variable("x"), EX.p, EX.o))

    def test_remove(self, graph):
        assert graph.remove(Triple(EX.s1, EX.observes, EX.SoilMoisture))
        assert len(graph) == 3
        assert not graph.remove(Triple(EX.s1, EX.observes, EX.SoilMoisture))

    def test_remove_matching_wildcard(self, graph):
        removed = graph.remove_matching(subject=EX.s1)
        assert removed == 2
        assert len(graph) == 2

    def test_clear(self, graph):
        graph.clear()
        assert len(graph) == 0


class TestGraphAccess:
    def test_contains(self, graph):
        assert Triple(EX.s1, EX.observes, EX.SoilMoisture) in graph
        assert (EX.s1, EX.observes, EX.SoilMoisture) in graph
        assert Triple(EX.s1, EX.observes, EX.Rainfall) not in graph

    def test_pattern_by_subject(self, graph):
        assert len(list(graph.triples((EX.s1, None, None)))) == 2

    def test_pattern_by_predicate(self, graph):
        assert len(list(graph.triples((None, EX.observes, None)))) == 2

    def test_pattern_by_object(self, graph):
        assert len(list(graph.triples((None, None, EX.Rainfall)))) == 1

    def test_pattern_fully_ground(self, graph):
        assert len(list(graph.triples((EX.s1, EX.observes, EX.SoilMoisture)))) == 1

    def test_variables_act_as_wildcards(self, graph):
        matches = list(graph.triples((Variable("s"), EX.observes, Variable("o"))))
        assert len(matches) == 2

    def test_subjects_objects_predicates(self, graph):
        assert set(graph.subjects(EX.observes)) == {EX.s1, EX.s2}
        assert set(graph.objects(EX.s1)) == {EX.SoilMoisture, Literal(12.5)}
        assert EX.observes in set(graph.predicates(EX.s2))

    def test_value_requires_single_hole(self, graph):
        assert graph.value(EX.s1, EX.observes, None) == EX.SoilMoisture
        with pytest.raises(ValueError):
            graph.value(EX.s1, None, None)

    def test_value_default(self, graph):
        assert graph.value(EX.s9, EX.observes, None, default=EX.Nothing) == EX.Nothing

    def test_typing_helpers(self, graph):
        assert EX.Sensor in graph.types_of(EX.s2)
        assert EX.s2 in graph.instances_of(EX.Sensor)

    def test_literal_value(self, graph):
        assert graph.literal_value(EX.s1, EX.hasValue) == pytest.approx(12.5)
        assert graph.literal_value(EX.s1, EX.missing, default=0) == 0


class TestGraphSetOperations:
    def test_union(self, graph):
        other = Graph()
        other.add(Triple(EX.s3, EX.observes, EX.WaterLevel))
        combined = graph.union(other)
        assert len(combined) == 5

    def test_intersection(self, graph):
        other = graph.copy()
        other.remove(Triple(EX.s1, EX.hasValue, Literal(12.5)))
        assert len(graph.intersection(other)) == 3

    def test_difference(self, graph):
        other = graph.copy()
        other.remove(Triple(EX.s1, EX.hasValue, Literal(12.5)))
        diff = graph.difference(other)
        assert len(diff) == 1

    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.add(Triple(EX.extra, EX.p, EX.o))
        assert len(clone) == len(graph) + 1


class TestSerialisation:
    def test_ntriples_round_trip(self, graph):
        text = graph.serialize("ntriples")
        restored = Graph()
        restored.parse(text, "ntriples")
        assert len(restored) == len(graph)
        for triple in graph:
            assert triple in restored

    def test_turtle_round_trip(self, graph):
        text = graph.serialize("turtle")
        restored = Graph()
        restored.namespaces.bind("ex", EX)
        restored.parse(text, "turtle")
        assert len(restored) == len(graph)

    def test_turtle_contains_prefix_declarations(self, graph):
        assert "@prefix ex:" in graph.serialize("turtle")

    def test_unknown_format_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.serialize("rdfxml")

    def test_ntriples_is_sorted_deterministic(self, graph):
        assert graph.serialize("ntriples") == graph.serialize("ntriples")

    def test_parse_error_reports_line(self):
        g = Graph()
        with pytest.raises(ParseError):
            parse_ntriples(g, "this is not a triple .")

    def test_parse_skips_comments_and_blanks(self):
        g = Graph()
        added = g.parse("# comment\n\n<http://a.org/s> <http://a.org/p> \"v\" .\n")
        assert added == 1


_literal_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.booleans(),
    st.text(alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=30),
)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 5), _literal_values), max_size=25))
def test_property_ntriples_round_trip(items):
    """Any graph of simple triples survives an N-Triples round trip."""
    graph = Graph()
    for subject_index, predicate_index, value in items:
        graph.add(Triple(EX[f"s{subject_index}"], EX[f"p{predicate_index}"], Literal(value)))
    restored = Graph()
    restored.parse(graph.serialize("ntriples"), "ntriples")
    assert len(restored) == len(graph)
    for triple in graph:
        assert triple in restored


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 3), st.integers(0, 10)), max_size=30))
def test_property_pattern_queries_consistent_with_scan(items):
    """Indexed pattern lookups agree with a full scan."""
    graph = Graph()
    for s, p, o in items:
        graph.add(Triple(EX[f"s{s}"], EX[f"p{p}"], EX[f"o{o}"]))
    for s, p, o in items[:5]:
        subject = EX[f"s{s}"]
        expected = {t for t in graph if t.subject == subject}
        assert set(graph.triples((subject, None, None))) == expected


class TestChangeTracking:
    def test_tracker_records_adds_in_order(self):
        g = Graph()
        tracker = g.track_changes()
        first = Triple(EX.a, EX.p, EX.b)
        second = Triple(EX.b, EX.p, EX.c)
        g.add(first)
        g.add(second)
        delta = tracker.drain()
        assert delta.added == [first, second]
        assert not delta.retracted

    def test_readding_present_triple_is_not_a_mutation(self):
        g = Graph()
        g.add(Triple(EX.a, EX.p, EX.b))
        tracker = g.track_changes()
        version = g.version
        g.add(Triple(EX.a, EX.p, EX.b))
        assert not tracker.dirty
        assert g.version == version

    def test_drain_resets(self):
        g = Graph()
        tracker = g.track_changes()
        g.add(Triple(EX.a, EX.p, EX.b))
        assert tracker.dirty
        tracker.drain()
        assert not tracker.dirty
        assert not tracker.drain()

    def test_remove_and_clear_flag_retraction(self):
        g = Graph()
        g.add(Triple(EX.a, EX.p, EX.b))
        tracker = g.track_changes()
        g.remove(Triple(EX.a, EX.p, EX.b))
        assert tracker.drain().retracted
        g.add(Triple(EX.a, EX.p, EX.b))
        g.clear()
        delta = tracker.drain()
        assert delta.retracted
        # removing an absent triple is not a mutation
        g.remove(Triple(EX.a, EX.p, EX.b))
        assert not tracker.dirty

    def test_trackers_are_independent(self):
        g = Graph()
        first = g.track_changes()
        g.add(Triple(EX.a, EX.p, EX.b))
        second = g.track_changes()
        g.add(Triple(EX.b, EX.p, EX.c))
        assert len(first.drain().added) == 2
        assert len(second.drain().added) == 1

    def test_dropped_tracker_is_forgotten(self):
        g = Graph()
        tracker = g.track_changes()
        assert len(g._live_trackers()) == 1
        del tracker
        g.add(Triple(EX.a, EX.p, EX.b))
        assert g._live_trackers() == []

    def test_overflowing_tracker_collapses_to_full_fallback(self, monkeypatch):
        from repro.semantics.rdf.graph import ChangeTracker

        monkeypatch.setattr(ChangeTracker, "max_buffered", 5)
        g = Graph()
        tracker = g.track_changes()
        for index in range(10):
            g.add(Triple(EX[f"s{index}"], EX.p, EX.o))
        assert tracker.dirty
        delta = tracker.drain()
        # the backlog was dropped, but the consumer is told to recompute
        assert delta.overflowed and delta.needs_full
        assert delta.added == []

    def test_requeue_restores_a_drained_delta(self):
        g = Graph()
        tracker = g.track_changes()
        first = Triple(EX.a, EX.p, EX.b)
        g.add(first)
        delta = tracker.drain()
        second = Triple(EX.b, EX.p, EX.c)
        g.add(second)
        tracker.requeue(delta)
        assert tracker.drain().added == [first, second]


class TestRemovalJournal:
    """Itemised removals: standing views need to know *which* triples left."""

    def test_remove_is_journalled_in_order(self):
        g = Graph()
        first = Triple(EX.a, EX.p, EX.b)
        second = Triple(EX.b, EX.p, EX.c)
        g.add(first)
        g.add(second)
        tracker = g.track_changes()
        g.remove(first)
        g.remove(second)
        delta = tracker.drain()
        assert delta.retracted
        assert delta.removals_itemised
        assert delta.removed == [first, second]
        assert delta.added == []

    def test_interleaved_adds_and_removes_keep_both_journals(self):
        g = Graph()
        stays = Triple(EX.a, EX.p, EX.b)
        goes = Triple(EX.b, EX.p, EX.c)
        g.add(goes)
        tracker = g.track_changes()
        g.add(stays)
        g.remove(goes)
        delta = tracker.drain()
        assert delta.added == [stays]
        assert delta.removed == [goes]

    def test_clear_is_unitemised(self):
        g = Graph()
        g.add(Triple(EX.a, EX.p, EX.b))
        tracker = g.track_changes()
        g.clear()
        delta = tracker.drain()
        assert delta.retracted
        assert not delta.removals_itemised
        assert delta.removed_ids is None
        assert delta.removed == []  # decodes to nothing rather than lying

    def test_remove_after_clear_stays_unitemised(self):
        g = Graph()
        g.add(Triple(EX.a, EX.p, EX.b))
        tracker = g.track_changes()
        g.clear()
        g.add(Triple(EX.b, EX.p, EX.c))
        g.remove(Triple(EX.b, EX.p, EX.c))
        delta = tracker.drain()
        # the clear already made the removal set unknowable; the later
        # itemisable removal cannot resurrect it
        assert delta.retracted and not delta.removals_itemised

    def test_drain_resets_the_removal_journal(self):
        g = Graph()
        g.add(Triple(EX.a, EX.p, EX.b))
        tracker = g.track_changes()
        g.remove(Triple(EX.a, EX.p, EX.b))
        assert tracker.drain().removed_ids
        delta = tracker.drain()
        assert not delta.retracted
        assert delta.removals_itemised and delta.removed_ids == []

    def test_clean_delta_has_empty_itemised_removals(self):
        g = Graph()
        tracker = g.track_changes()
        g.add(Triple(EX.a, EX.p, EX.b))
        delta = tracker.drain()
        assert delta.removals_itemised
        assert delta.removed_ids == [] and delta.removed == []

    def test_overflow_drops_the_removal_journal(self, monkeypatch):
        from repro.semantics.rdf.graph import ChangeTracker

        monkeypatch.setattr(ChangeTracker, "max_buffered", 5)
        g = Graph()
        for index in range(10):
            g.add(Triple(EX[f"s{index}"], EX.p, EX.o))
        tracker = g.track_changes()
        for index in range(10):
            g.remove(Triple(EX[f"s{index}"], EX.p, EX.o))
        delta = tracker.drain()
        assert delta.overflowed
        assert not delta.removals_itemised

    def test_requeue_merges_removals_in_order(self):
        g = Graph()
        first = Triple(EX.a, EX.p, EX.b)
        second = Triple(EX.b, EX.p, EX.c)
        g.add(first)
        g.add(second)
        tracker = g.track_changes()
        g.remove(first)
        delta = tracker.drain()
        g.remove(second)
        tracker.requeue(delta)
        merged = tracker.drain()
        assert merged.removed == [first, second]

    def test_requeue_of_unitemised_delta_poisons_the_merge(self):
        g = Graph()
        g.add(Triple(EX.a, EX.p, EX.b))
        tracker = g.track_changes()
        g.clear()
        delta = tracker.drain()
        g.add(Triple(EX.b, EX.p, EX.c))
        g.remove(Triple(EX.b, EX.p, EX.c))
        tracker.requeue(delta)
        merged = tracker.drain()
        assert merged.retracted and not merged.removals_itemised

    def test_reasoner_contract_unchanged(self):
        # coarse consumers keep keying off needs_full on any retraction
        g = Graph()
        g.add(Triple(EX.a, EX.p, EX.b))
        tracker = g.track_changes()
        g.remove(Triple(EX.a, EX.p, EX.b))
        delta = tracker.drain()
        assert delta.needs_full
        assert delta.removals_itemised
