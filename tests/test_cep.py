"""Tests for the CEP engine: events, patterns, rules, DSL."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cep.dsl import RuleSyntaxError, parse_rule, parse_rules
from repro.cep.engine import CepEngine
from repro.cep.event import DerivedEvent, Event
from repro.cep.patterns import (
    AbsencePattern,
    ConjunctionPattern,
    CountPattern,
    SequencePattern,
    ThresholdPattern,
    TrendPattern,
)
from repro.cep.rules import CepRule
from repro.streams.broker import Broker
from repro.streams.scheduler import DAY


def events(event_type, values, start_day=0.0, step_days=1.0, source="s"):
    return [
        Event(event_type, value, (start_day + index * step_days) * DAY, source_id=source)
        for index, value in enumerate(values)
    ]


class TestEventModel:
    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            Event("x", 1.0, -1.0)

    def test_age(self):
        assert Event("x", 1.0, 10.0).age_at(25.0) == 15.0

    def test_derived_event_provenance_and_explain(self):
        base = Event("soil_moisture", 8.0, DAY, source_id="mote-1")
        derived = DerivedEvent(
            "soil_drying_process", 0.8, 2 * DAY,
            rule_name="soil_drying", contributing_events=[base],
        )
        assert derived.provenance == [base.event_id]
        assert "soil_drying" in derived.explain()
        assert "mote-1" in derived.explain()


class TestPatterns:
    def test_threshold_below_matches(self):
        pattern = ThresholdPattern("soil_moisture", 12.0, "below", min_fraction=0.8, min_count=3)
        match = pattern.evaluate(events("soil_moisture", [10, 9, 8, 11]), 10 * DAY)
        assert match is not None and 0 < match.score <= 1
        assert len(match.events) == 4

    def test_threshold_insufficient_count(self):
        pattern = ThresholdPattern("soil_moisture", 12.0, "below", min_count=5)
        assert pattern.evaluate(events("soil_moisture", [8, 9]), DAY) is None

    def test_threshold_fraction_not_met(self):
        pattern = ThresholdPattern("soil_moisture", 12.0, "below", min_fraction=0.9, min_count=3)
        assert pattern.evaluate(events("soil_moisture", [8, 20, 25, 9]), 5 * DAY) is None

    def test_threshold_above(self):
        pattern = ThresholdPattern("air_temperature", 30.0, "above", min_count=2, min_fraction=0.5)
        assert pattern.evaluate(events("air_temperature", [33, 35]), 3 * DAY) is not None

    def test_threshold_invalid_comparison(self):
        with pytest.raises(ValueError):
            ThresholdPattern("x", 1.0, comparison="near")

    def test_trend_falling(self):
        pattern = TrendPattern("water_level", "falling", min_slope_per_day=5.0, min_count=5)
        match = pattern.evaluate(events("water_level", [2500, 2450, 2400, 2380, 2300]), 10 * DAY)
        assert match is not None

    def test_trend_wrong_direction(self):
        pattern = TrendPattern("water_level", "falling", min_slope_per_day=5.0, min_count=5)
        assert pattern.evaluate(events("water_level", [2300, 2400, 2500, 2550, 2600]), 10 * DAY) is None

    def test_trend_rising(self):
        pattern = TrendPattern("vegetation_index", "rising", min_slope_per_day=0.001, min_count=4)
        assert pattern.evaluate(events("vegetation_index", [0.3, 0.32, 0.35, 0.4]), 10 * DAY) is not None

    def test_trend_flat_series_rejected(self):
        pattern = TrendPattern("x", "falling", min_slope_per_day=0.1, min_count=3)
        flat = [Event("x", 1.0, DAY) for _ in range(5)]
        assert pattern.evaluate(flat, 10 * DAY) is None

    def test_absence_matches_when_empty(self):
        pattern = AbsencePattern("rainfall", qualifier=lambda e: e.value > 1.0)
        match = pattern.evaluate(events("rainfall", [0.5, 0.2, 0.0]), 5 * DAY)
        assert match is not None and match.score == 1.0

    def test_absence_fails_when_qualifying_event_present(self):
        pattern = AbsencePattern("rainfall", qualifier=lambda e: e.value > 1.0)
        assert pattern.evaluate(events("rainfall", [0.5, 5.0]), 5 * DAY) is None

    def test_count_distinct_sources(self):
        pattern = CountPattern("sifennefene_worms", 3, distinct_sources=True)
        same_source = events("sifennefene_worms", [0.9] * 5, source="obs1")
        assert pattern.evaluate(same_source, 10 * DAY) is None
        distinct = [
            Event("sifennefene_worms", 0.9, DAY, source_id=f"obs{i}") for i in range(3)
        ]
        assert pattern.evaluate(distinct, 10 * DAY) is not None

    def test_count_qualifier(self):
        pattern = CountPattern("x", 2, qualifier=lambda e: e.value >= 0.5)
        weak = [Event("x", 0.2, DAY, source_id=f"o{i}") for i in range(4)]
        assert pattern.evaluate(weak, 5 * DAY) is None

    def test_count_minimum_validation(self):
        with pytest.raises(ValueError):
            CountPattern("x", 0)

    def test_conjunction_requires_all(self):
        pattern = ConjunctionPattern([
            ThresholdPattern("soil_moisture", 12.0, "below", min_count=2, min_fraction=0.5),
            AbsencePattern("rainfall", qualifier=lambda e: e.value > 1.0),
        ])
        window = events("soil_moisture", [8, 9]) + events("rainfall", [0.0, 0.1])
        assert pattern.evaluate(window, 5 * DAY) is not None
        window_with_rain = window + [Event("rainfall", 10.0, 2 * DAY)]
        assert pattern.evaluate(window_with_rain, 5 * DAY) is None

    def test_conjunction_weights_validation(self):
        with pytest.raises(ValueError):
            ConjunctionPattern([], weights=[])
        with pytest.raises(ValueError):
            ConjunctionPattern([AbsencePattern("x")], weights=[1.0, 2.0])

    def test_sequence_requires_temporal_order(self):
        first = ThresholdPattern("rainfall", 1.0, "below", min_count=2, min_fraction=0.8)
        second = ThresholdPattern("soil_moisture", 12.0, "below", min_count=2, min_fraction=0.8)
        ordered = events("rainfall", [0.1, 0.2], start_day=0) + events(
            "soil_moisture", [9, 8], start_day=10
        )
        reversed_order = events("soil_moisture", [9, 8], start_day=0) + events(
            "rainfall", [0.1, 0.2], start_day=10
        )
        sequence = SequencePattern([first, second])
        assert sequence.evaluate(ordered, 20 * DAY) is not None
        assert sequence.evaluate(reversed_order, 20 * DAY) is None

    def test_sequence_needs_two_patterns(self):
        with pytest.raises(ValueError):
            SequencePattern([AbsencePattern("x")])

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=50, allow_nan=False), min_size=3, max_size=40))
    def test_property_scores_bounded(self, values):
        pattern = ThresholdPattern("soil_moisture", 12.0, "below", min_count=1, min_fraction=0.0)
        match = pattern.evaluate(events("soil_moisture", values), 100 * DAY)
        if match is not None:
            assert 0.0 <= match.score <= 1.0


class TestCepRule:
    def make_rule(self, **kwargs):
        defaults = dict(
            name="soil_drying",
            pattern=ThresholdPattern("soil_moisture", 12.0, "below", min_count=3, min_fraction=0.8),
            window_seconds=14 * DAY,
            derived_event_type="soil_drying_process",
            cooldown_seconds=7 * DAY,
        )
        defaults.update(kwargs)
        return CepRule(**defaults)

    def test_rule_fires_and_emits_derived_event(self):
        rule = self.make_rule()
        derived = None
        for event in events("soil_moisture", [10, 9, 8, 9]):
            derived = rule.offer(event) or derived
        assert derived is not None
        assert derived.event_type == "soil_drying_process"
        assert derived.rule_name == "soil_drying"
        assert derived.contributing_events

    def test_cooldown_suppresses_refiring(self):
        rule = self.make_rule()
        fired = [rule.offer(e) for e in events("soil_moisture", [10, 9, 8, 9, 8, 9, 8])]
        assert sum(1 for f in fired if f is not None) == 1
        assert rule.statistics.suppressed_by_cooldown > 0

    def test_min_score_suppression(self):
        rule = self.make_rule(min_score=0.99)
        fired = [rule.offer(e) for e in events("soil_moisture", [11.9, 11.8, 11.9, 11.8])]
        assert all(f is None for f in fired)
        assert rule.statistics.suppressed_by_score > 0

    def test_area_scoping(self):
        rule = self.make_rule(area="Mangaung")
        foreign = Event("soil_moisture", 8.0, DAY, area="Xhariep")
        assert not rule.accepts(foreign)
        local = Event("soil_moisture", 8.0, DAY, area="Mangaung")
        assert rule.accepts(local)

    def test_window_eviction(self):
        rule = self.make_rule()
        rule.offer(Event("soil_moisture", 8.0, 0.0))
        rule.offer(Event("soil_moisture", 8.0, 30 * DAY))
        assert rule.window_size == 1

    def test_reset(self):
        rule = self.make_rule()
        for event in events("soil_moisture", [10, 9, 8, 9]):
            rule.offer(event)
        rule.reset()
        assert rule.window_size == 0
        assert rule.statistics.fired == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            self.make_rule(window_seconds=0)


class TestCepEngine:
    def test_routing_by_event_type(self):
        engine = CepEngine()
        engine.add_rule(CepRule(
            "r1", ThresholdPattern("soil_moisture", 12, "below", min_count=2, min_fraction=0.5),
            14 * DAY, "soil_drying_process",
        ))
        engine.process_many(events("air_temperature", [30, 31, 32]))
        assert engine.statistics.rule_evaluations == 0
        engine.process_many(events("soil_moisture", [8, 9]))
        assert engine.statistics.rule_evaluations > 0

    def test_duplicate_rule_name_rejected(self):
        engine = CepEngine()
        rule = CepRule("r", AbsencePattern("x"), DAY, "y")
        engine.add_rule(rule)
        with pytest.raises(ValueError):
            engine.add_rule(CepRule("r", AbsencePattern("x"), DAY, "y"))

    def test_remove_rule(self):
        engine = CepEngine()
        engine.add_rule(CepRule("r", AbsencePattern("x"), DAY, "y"))
        engine.remove_rule("r")
        assert engine.rules == {}

    def test_listener_and_broker_publication(self):
        broker = Broker()
        received = []
        broker.subscribe("derived/#", lambda m: received.append(m.payload))
        engine = CepEngine(broker=broker)
        captured = []
        engine.on_derived_event(captured.append)
        engine.add_rule(CepRule(
            "r1", ThresholdPattern("soil_moisture", 12, "below", min_count=2, min_fraction=0.5),
            14 * DAY, "soil_drying_process",
        ))
        engine.process_many(events("soil_moisture", [8, 9]))
        assert len(captured) == 1
        assert len(received) == 1

    def test_feedback_chains_rules(self):
        engine = CepEngine(feedback=True)
        engine.add_rule(CepRule(
            "detect", ThresholdPattern("soil_moisture", 12, "below", min_count=2, min_fraction=0.5),
            14 * DAY, "soil_drying_process",
        ))
        engine.add_rule(CepRule(
            "escalate", CountPattern("soil_drying_process", 1),
            30 * DAY, "drought_precursor",
        ))
        derived = engine.process_many(events("soil_moisture", [8, 9]))
        types = {d.event_type for d in derived}
        assert "drought_precursor" in types

    def test_reset(self):
        engine = CepEngine()
        engine.add_rule(CepRule(
            "r1", ThresholdPattern("soil_moisture", 12, "below", min_count=2, min_fraction=0.5),
            14 * DAY, "soil_drying_process",
        ))
        engine.process_many(events("soil_moisture", [8, 9]))
        engine.reset()
        assert engine.statistics.events_processed == 0


class TestFeedbackEmission:
    """Each derived event must be emitted and counted exactly once,
    regardless of the feedback depth it was derived at (regression: the
    engine used to iterate its derived list while extending it with
    feedback results, double-emitting and over-counting second-level
    events)."""

    @staticmethod
    def _chained_engine(levels, broker=None):
        engine = CepEngine(broker=broker, feedback=True)
        for level in range(1, levels + 1):
            source = "lvl0" if level == 1 else f"lvl{level - 1}"
            engine.add_rule(CepRule(
                f"rule{level}", CountPattern(source, 1), 30 * DAY, f"lvl{level}",
            ))
        return engine

    def test_two_chained_threshold_rules_emit_each_event_once(self):
        # the confirmed repro: two chained rules with feedback on used to
        # hand `very_hot` to listeners twice and report 3 derived events
        engine = CepEngine(feedback=True)
        engine.add_rule(CepRule(
            "hot", ThresholdPattern("air_temperature", 30, "above", min_count=1, min_fraction=0.5),
            14 * DAY, "hot",
        ))
        engine.add_rule(CepRule(
            "very_hot", CountPattern("hot", 1), 14 * DAY, "very_hot",
        ))
        received = []
        engine.on_derived_event(received.append)
        derived = engine.process(Event("air_temperature", 35.0, DAY))
        assert sorted(d.event_type for d in derived) == ["hot", "very_hot"]
        assert sorted(d.event_type for d in received) == ["hot", "very_hot"]
        assert engine.statistics.derived_events == 2

    @pytest.mark.parametrize("levels", [1, 2, 3, 4])
    def test_every_feedback_depth_emits_exactly_once(self, levels):
        broker = Broker()
        on_broker = []
        broker.subscribe("derived/#", lambda m: on_broker.append(m.payload))
        engine = self._chained_engine(levels, broker=broker)
        on_listener = []
        engine.on_derived_event(on_listener.append)

        derived = engine.process(Event("lvl0", 1.0, DAY))

        expected_types = [f"lvl{level}" for level in range(1, levels + 1)]
        for collection in (derived, on_listener, on_broker):
            assert sorted(d.event_type for d in collection) == expected_types
            # exactly once: no object delivered twice either
            assert len({id(d) for d in collection}) == len(collection)
        assert engine.statistics.derived_events == levels

    def test_feedback_depth_limit_still_enforced(self):
        engine = self._chained_engine(4)
        engine.max_feedback_depth = 2
        derived = engine.process(Event("lvl0", 1.0, DAY))
        # depth 0 processes lvl0 -> lvl1; depths 1 and 2 derive lvl2, lvl3;
        # the lvl3 event is emitted but not re-injected past the limit
        assert sorted(d.event_type for d in derived) == ["lvl1", "lvl2", "lvl3"]
        assert engine.statistics.derived_events == 3


class TestRemoveRuleIndex:
    def test_remove_rule_drops_emptied_buckets(self):
        engine = CepEngine()
        engine.add_rule(CepRule("r1", AbsencePattern("rainfall"), DAY, "d1"))
        engine.add_rule(CepRule("r2", AbsencePattern("rainfall"), DAY, "d2"))
        engine.add_rule(CepRule(
            "r3",
            ConjunctionPattern([
                AbsencePattern("rainfall"),
                ThresholdPattern("air_temperature", 30, "above", min_count=1),
            ]),
            DAY, "d3",
        ))
        assert set(engine._index) == {"rainfall", "air_temperature"}
        engine.remove_rule("r1")
        # the bucket still serves r2 / r3
        assert set(engine._index) == {"rainfall", "air_temperature"}
        engine.remove_rule("r3")
        assert set(engine._index) == {"rainfall"}
        engine.remove_rule("r2")
        # no empty lists left behind after churn
        assert engine._index == {}

    def test_remove_catch_all_rule(self):
        class AnyPattern:
            def evaluate(self, events, now):
                return None

        engine = CepEngine()
        engine.add_rule(CepRule("wild", AnyPattern(), DAY, "d"))
        assert engine._catch_all and engine._index == {}
        engine.remove_rule("wild")
        assert engine._catch_all == [] and engine.rules == {}

    def test_remove_missing_rule_is_noop(self):
        engine = CepEngine()
        engine.remove_rule("ghost")
        assert engine.rules == {}


class TestRuleDsl:
    def test_threshold_rule(self):
        rule = parse_rule("""
            RULE soil_drying
            WHEN soil_moisture BELOW 12 FRACTION 0.8 WITHIN 14 DAYS
            EMIT soil_drying_process WEIGHT 1.0 SOURCE sensor
        """)
        assert rule.name == "soil_drying"
        assert rule.window_seconds == 14 * DAY
        assert rule.derived_event_type == "soil_drying_process"
        assert rule.source == "sensor"

    def test_count_rule_with_intensity(self):
        rule = parse_rule("""
            RULE sifennefene
            WHEN COUNT sifennefene_worms AT LEAST 3 DISTINCT INTENSITY 0.5 WITHIN 21 DAYS
            EMIT ik_dry_indication WEIGHT 0.8 SOURCE indigenous
        """)
        assert isinstance(rule.pattern, CountPattern)
        assert rule.pattern.distinct_sources
        assert rule.weight == pytest.approx(0.8)

    def test_absent_and_trend_rules(self):
        rules = parse_rules("""
            RULE no_rain
            WHEN ABSENT rainfall ABOVE 1.0 WITHIN 21 DAYS
            EMIT rainfall_deficit_process

            RULE water_drop
            WHEN TREND water_level FALLING 5 PER DAY WITHIN 30 DAYS
            EMIT water_depletion_process AREA Mangaung
        """)
        assert len(rules) == 2
        assert isinstance(rules[0].pattern, AbsencePattern)
        assert isinstance(rules[1].pattern, TrendPattern)
        assert rules[1].area == "Mangaung"

    def test_conjunction_of_conditions(self):
        rule = parse_rule("""
            RULE compound
            WHEN soil_moisture BELOW 12 WITHIN 14 DAYS
            AND ABSENT rainfall ABOVE 1.0 WITHIN 21 DAYS
            EMIT drought_precursor MINSCORE 0.4
        """)
        assert isinstance(rule.pattern, ConjunctionPattern)
        assert rule.window_seconds == 21 * DAY
        assert rule.min_score == pytest.approx(0.4)

    def test_hours_window(self):
        rule = parse_rule("""
            RULE heat_spike
            WHEN air_temperature ABOVE 38 WITHIN 48 HOURS
            EMIT heat_spike_event
        """)
        assert rule.window_seconds == 48 * 3600.0

    @pytest.mark.parametrize("text", [
        "WHEN x BELOW 1 WITHIN 1 DAYS\nEMIT y",                # missing RULE
        "RULE r\nEMIT y",                                       # missing WHEN
        "RULE r\nWHEN x BELOW 1 WITHIN 1 DAYS",                 # missing EMIT
        "RULE r\nWHEN x WOBBLES 1 WITHIN 1 DAYS\nEMIT y",       # bad condition
        "RULE r\nWHEN x BELOW 1\nEMIT y",                       # missing WITHIN
    ])
    def test_syntax_errors(self, text):
        with pytest.raises(RuleSyntaxError):
            parse_rule(text)

    def test_parsed_rule_behaves_like_programmatic(self):
        rule = parse_rule("""
            RULE soil_drying
            WHEN soil_moisture BELOW 12 FRACTION 0.8 WITHIN 14 DAYS
            EMIT soil_drying_process
        """)
        engine = CepEngine()
        engine.add_rule(rule)
        derived = engine.process_many(events("soil_moisture", [10, 9, 8]))
        assert derived and derived[0].event_type == "soil_drying_process"
