"""Tests for the SPARQL-like query engine."""

import pytest

from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import Namespace, RDF, RDFS
from repro.semantics.rdf.term import IRI, Literal, Variable
from repro.semantics.rdf.triple import Triple
from repro.semantics.sparql.algebra import BGP, Filter, Join, LeftJoin, Projection, Union, numeric_filter
from repro.semantics.sparql.bindings import Bindings
from repro.semantics.sparql.evaluator import _resolve_term, query, select
from repro.semantics.sparql.parser import QueryParseError, parse_query

EX = Namespace("http://example.org/")


@pytest.fixture
def graph():
    g = Graph()
    g.namespaces.bind("ex", EX)
    for index, (prop, value) in enumerate(
        [(EX.SoilMoisture, 11.0), (EX.SoilMoisture, 31.0), (EX.Rainfall, 2.0)]
    ):
        sensor = EX[f"sensor{index}"]
        obs = EX[f"obs{index}"]
        g.add(Triple(sensor, RDF.type, EX.Sensor))
        g.add(Triple(obs, RDF.type, EX.Observation))
        g.add(Triple(obs, EX.observedBy, sensor))
        g.add(Triple(obs, EX.observedProperty, prop))
        g.add(Triple(obs, EX.hasValue, Literal(value)))
    g.add(Triple(EX.sensor0, EX.locatedIn, EX.Mangaung))
    return g


class TestBindings:
    def test_merge_compatible(self):
        a = Bindings({Variable("x"): EX.a})
        b = Bindings({Variable("y"): EX.b})
        merged = a.merge(b)
        assert merged[Variable("x")] == EX.a and merged[Variable("y")] == EX.b

    def test_merge_conflict_returns_none(self):
        a = Bindings({Variable("x"): EX.a})
        b = Bindings({Variable("x"): EX.b})
        assert a.merge(b) is None

    def test_extended_conflict(self):
        a = Bindings({Variable("x"): EX.a})
        assert a.extended(Variable("x"), EX.b) is None
        assert a.extended(Variable("x"), EX.a) is a

    def test_project(self):
        a = Bindings({Variable("x"): EX.a, Variable("y"): EX.b})
        projected = a.project([Variable("x")])
        assert Variable("y") not in projected

    def test_hashable(self):
        assert hash(Bindings({Variable("x"): EX.a})) == hash(Bindings({Variable("x"): EX.a}))


class TestAlgebra:
    def test_bgp_single_pattern(self, graph):
        bgp = BGP([Triple(Variable("s"), RDF.type, EX.Sensor)])
        assert len(list(bgp.solutions(graph))) == 3

    def test_bgp_join_across_patterns(self, graph):
        bgp = BGP([
            Triple(Variable("o"), EX.observedBy, Variable("s")),
            Triple(Variable("o"), EX.observedProperty, EX.SoilMoisture),
        ])
        solutions = list(bgp.solutions(graph))
        assert len(solutions) == 2

    def test_empty_bgp_yields_empty_binding(self, graph):
        assert len(list(BGP([]).solutions(graph))) == 1

    def test_filter_numeric(self, graph):
        bgp = BGP([Triple(Variable("o"), EX.hasValue, Variable("v"))])
        filtered = Filter(bgp, numeric_filter(Variable("v"), ">", 10))
        assert len(list(filtered.solutions(graph))) == 2

    def test_numeric_filter_invalid_operator(self):
        with pytest.raises(ValueError):
            numeric_filter(Variable("v"), "~", 1)

    def test_left_join_keeps_unmatched(self, graph):
        left = BGP([Triple(Variable("s"), RDF.type, EX.Sensor)])
        right = BGP([Triple(Variable("s"), EX.locatedIn, Variable("place"))])
        solutions = list(LeftJoin(left, right).solutions(graph))
        assert len(solutions) == 3
        with_place = [s for s in solutions if Variable("place") in s]
        assert len(with_place) == 1

    def test_union_concatenates(self, graph):
        a = BGP([Triple(Variable("x"), EX.observedProperty, EX.SoilMoisture)])
        b = BGP([Triple(Variable("x"), EX.observedProperty, EX.Rainfall)])
        assert len(list(Union(a, b).solutions(graph))) == 3

    def test_join_shares_variables(self, graph):
        a = BGP([Triple(Variable("o"), EX.observedBy, Variable("s"))])
        b = BGP([Triple(Variable("o"), EX.hasValue, Variable("v"))])
        assert len(list(Join(a, b).solutions(graph))) == 3

    def test_projection_distinct_order_limit(self, graph):
        bgp = BGP([Triple(Variable("o"), EX.hasValue, Variable("v"))])
        projection = Projection(
            bgp, variables=[Variable("v")], distinct=True,
            order_by=Variable("v"), descending=True, limit=2,
        )
        values = [s[Variable("v")].to_python() for s in projection.solutions(graph)]
        assert values == [31.0, 11.0]

    def test_projection_offset(self, graph):
        bgp = BGP([Triple(Variable("o"), EX.hasValue, Variable("v"))])
        projection = Projection(bgp, order_by=Variable("v"), offset=1)
        assert len(list(projection.solutions(graph))) == 2


class TestQueryParser:
    def test_basic_select(self):
        parsed = parse_query("SELECT ?s WHERE { ?s a ex:Sensor . }")
        assert parsed.form == "SELECT"
        assert parsed.variables == ["s"]
        assert len(parsed.patterns) == 1

    def test_distinct_and_star(self):
        parsed = parse_query("SELECT DISTINCT * WHERE { ?s ?p ?o . }")
        assert parsed.distinct and parsed.variables == []

    def test_ask_form(self):
        assert parse_query("ASK WHERE { ?s a ex:Sensor . }").form == "ASK"

    def test_filter_clause(self):
        parsed = parse_query("SELECT ?v WHERE { ?o ex:hasValue ?v . FILTER (?v > 5) }")
        assert parsed.filters[0].op == ">"
        assert parsed.filters[0].value == "5"

    def test_optional_clause(self):
        parsed = parse_query(
            "SELECT ?s WHERE { ?s a ex:Sensor . OPTIONAL { ?s ex:locatedIn ?p . } }"
        )
        assert len(parsed.optional_patterns) == 1

    def test_modifiers(self):
        parsed = parse_query(
            "SELECT ?v WHERE { ?o ex:hasValue ?v . } ORDER BY DESC(?v) LIMIT 5 OFFSET 2"
        )
        assert parsed.order_by == "v" and parsed.descending
        assert parsed.limit == 5 and parsed.offset == 2

    def test_empty_query_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("   ")

    def test_missing_where_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT ?s { ?s ?p ?o }")


class TestEndToEndQueries:
    def test_select_rows(self, graph):
        result = query(graph, """
            SELECT ?sensor ?value WHERE {
                ?obs ex:observedBy ?sensor .
                ?obs ex:hasValue ?value .
            } ORDER BY DESC(?value)
        """)
        assert len(result) == 3
        assert result.rows[0]["value"].to_python() == 31.0

    def test_select_with_filter(self, graph):
        result = query(graph, """
            SELECT ?obs WHERE {
                ?obs ex:hasValue ?v .
                FILTER (?v > 10)
            }
        """)
        assert len(result) == 2

    def test_ask_true_false(self, graph):
        assert query(graph, "ASK WHERE { ?s a ex:Sensor . }").ask
        assert not query(graph, "ASK WHERE { ?s a ex:Nonexistent . }").ask

    def test_scalars_helper(self, graph):
        result = query(graph, "SELECT ?v WHERE { ?o ex:hasValue ?v . FILTER (?v < 5) }")
        assert result.scalars == [2.0]

    def test_programmatic_select(self, graph):
        result = select(graph, [Triple(Variable("s"), RDF.type, EX.Sensor)])
        assert len(result) == 3

    def test_query_with_explicit_iri(self, graph):
        result = query(
            graph,
            "SELECT ?o WHERE { ?o ex:observedProperty <http://example.org/Rainfall> . }",
        )
        assert len(result) == 1


class TestNumericTermResolution:
    """Only proper numeric-literal syntax may become a number (regression:
    int()/float() ran before namespace expansion, so bare tokens such as
    ``nan``, ``inf`` or ``1e3`` silently became numeric literals instead of
    resolving — or loudly failing to resolve — as prefixed names)."""

    @pytest.mark.parametrize("text,value", [
        ("30", 30), ("+3", 3), ("-7", -7), ("30.5", 30.5), ("-2.25", -2.25),
    ])
    def test_proper_numeric_literals(self, graph, text, value):
        term = _resolve_term(text, graph)
        assert isinstance(term, Literal)
        assert term.to_python() == value

    @pytest.mark.parametrize("text", [
        "nan", "NaN", "inf", "Infinity", "-inf", "1e3", "1E3", "1_000", "2.",
    ])
    def test_ambiguous_tokens_are_not_numbers(self, graph, text):
        # none of these is a prefixed name either, so resolution fails
        # loudly instead of silently inventing a float
        with pytest.raises(KeyError):
            _resolve_term(text, graph)

    def test_ambiguous_token_with_bound_prefix_expands(self, graph):
        # a CURIE whose local part parses numerically must still expand
        term = _resolve_term("ex:123", graph)
        assert term == EX["123"]

    def test_filter_value_numeric_syntax_only(self, graph):
        # FILTER values get the same treatment: 1e3 is not numeric-literal
        # syntax, and it is not a resolvable prefixed name either
        with pytest.raises(KeyError):
            query(graph, "SELECT ?v WHERE { ?o ex:hasValue ?v . FILTER (?v < 1e3) }")
        with pytest.raises(KeyError):
            query(graph, "SELECT ?v WHERE { ?o ex:hasValue ?v . FILTER (?v < nan) }")

    def test_filter_decimal_and_signed_values_still_work(self, graph):
        result = query(graph, "SELECT ?v WHERE { ?o ex:hasValue ?v . FILTER (?v > 10.5) }")
        assert sorted(result.scalars) == [11.0, 31.0]
        result = query(graph, "SELECT ?v WHERE { ?o ex:hasValue ?v . FILTER (?v > +10) }")
        assert sorted(result.scalars) == [11.0, 31.0]

    def test_filter_equality_against_resolved_term(self, graph):
        result = query(graph, """
            SELECT ?s WHERE { ?o ex:observedBy ?s . FILTER (?s = ex:sensor1) }
        """)
        assert result.scalars == [EX.sensor1.value]


class TestEvaluatorEdgeCases:
    """Edge cases exercised by reasoner-backed queries."""

    def test_repeated_variable_in_pattern_requires_same_binding(self, graph):
        graph.add(Triple(EX.nodeA, EX.relatedTo, EX.nodeA))
        graph.add(Triple(EX.nodeA, EX.relatedTo, EX.nodeB))
        bgp = BGP([Triple(Variable("x"), EX.relatedTo, Variable("x"))])
        solutions = list(bgp.solutions(graph))
        assert len(solutions) == 1
        assert solutions[0][Variable("x")] == EX.nodeA

    def test_repeated_variable_across_subject_and_object_query_text(self, graph):
        graph.add(Triple(EX.loop, EX.relatedTo, EX.loop))
        result = query(graph, "SELECT ?x WHERE { ?x ex:relatedTo ?x }")
        assert result.scalars == [EX.loop.value]

    def test_variable_in_predicate_position(self, graph):
        result = query(graph, "SELECT DISTINCT ?p WHERE { ex:obs0 ?p ?o }")
        predicates = set(result.scalars)
        assert EX.observedBy.value in predicates
        assert EX.hasValue.value in predicates

    def test_all_positions_unbound(self, graph):
        result = query(graph, "SELECT ?s ?p ?o WHERE { ?s ?p ?o }")
        assert len(result) == len(graph)

    def test_empty_bgp_join_identity(self, graph):
        # joining with the empty BGP (one empty solution) is the identity
        bgp = BGP([Triple(Variable("s"), RDF.type, EX.Sensor)])
        joined = Join(BGP([]), bgp)
        assert len(list(joined.solutions(graph))) == 3

    def test_unmatched_bgp_yields_no_solutions(self, graph):
        bgp = BGP([Triple(Variable("s"), RDF.type, EX.Nonexistent)])
        assert list(bgp.solutions(graph)) == []
        # and it annihilates a join
        joined = Join(bgp, BGP([Triple(Variable("s"), RDF.type, EX.Sensor)]))
        assert list(joined.solutions(graph)) == []

    def test_optional_leaves_variable_unbound(self, graph):
        result = query(graph, """
            SELECT ?s ?place WHERE {
                ?s a ex:Sensor .
                OPTIONAL { ?s ex:locatedIn ?place }
            }
        """)
        rows = result.rows
        assert len(rows) == 3
        bound = [row for row in rows if "place" in row]
        assert len(bound) == 1
        assert bound[0]["place"] == EX.Mangaung

    def test_solutions_from_seeds_join(self, graph):
        # the semi-naive rule engine's entry point: a pre-bound variable
        # restricts the BGP join
        bgp = BGP([
            Triple(Variable("o"), EX.observedBy, Variable("s")),
            Triple(Variable("o"), EX.observedProperty, EX.SoilMoisture),
        ])
        seeded = list(bgp.solutions_from(graph, Bindings({Variable("s"): EX.sensor0})))
        assert len(seeded) == 1
        assert seeded[0][Variable("o")] == EX.obs0
        # seeding with the empty binding is plain evaluation
        assert len(list(bgp.solutions_from(graph, Bindings()))) == 2

    def test_query_over_incrementally_reasoned_graph(self, graph):
        from repro.semantics.reasoner import Reasoner

        graph.add(Triple(EX.Sensor, RDFS.subClassOf, EX.Device))
        reasoner = Reasoner(graph)
        reasoner.materialize()
        devices = query(graph, "SELECT ?s WHERE { ?s a ex:Device }")
        assert len(devices) == 3
        # grow the graph after materialisation; the reasoner's incremental
        # top-up must make the new entailment queryable
        graph.add(Triple(EX.sensor9, RDF.type, EX.Sensor))
        reasoner.ensure_materialized()
        devices = query(graph, "SELECT ?s WHERE { ?s a ex:Device }")
        assert len(devices) == 4
