"""Tests for drought indices, forecasters, evaluation and vulnerability."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cep.event import DerivedEvent
from repro.forecasting.evaluation import ForecastSkill, evaluate_forecasts, skill_comparison_table
from repro.forecasting.fusion import Forecast, FusionForecaster, IndigenousForecaster
from repro.forecasting.indices import (
    deciles_index,
    effective_drought_index,
    percent_of_normal,
    soil_moisture_anomaly,
    standardized_precipitation_index,
    vegetation_condition_index,
)
from repro.forecasting.statistical import StatisticalForecaster
from repro.forecasting.vulnerability import (
    DEFAULT_DISTRICT_PROFILES,
    VulnerabilityIndex,
    compute_vulnerability,
)
from repro.ik.knowledge_base import IndigenousKnowledgeBase
from repro.streams.scheduler import DAY
from repro.workloads.climate import ClimateGenerator, DroughtEpisode


@pytest.fixture(scope="module")
def drought_climate():
    return ClimateGenerator(seed=1, episodes=[DroughtEpisode(525, 665, 0.85)])


@pytest.fixture(scope="module")
def reference_climate():
    return ClimateGenerator(seed=1)


class TestIndices:
    def test_spi_is_negative_during_drought(self, drought_climate, reference_climate):
        rain = drought_climate.daily_series("rainfall", 730)
        reference = reference_climate.daily_series("rainfall", 365 * 5)
        spi = standardized_precipitation_index(rain, 30, reference=reference)
        assert np.nanmean(spi[555:660]) < -1.0
        assert abs(np.nanmean(spi[100:500])) < 0.8

    def test_spi_prefix_is_nan(self):
        rain = np.ones(100)
        spi = standardized_precipitation_index(rain, 30)
        assert np.isnan(spi[:29]).all()
        assert not np.isnan(spi[30:]).any()

    def test_spi_requires_enough_data(self):
        with pytest.raises(ValueError):
            standardized_precipitation_index(np.ones(5), 30)

    def test_spi_all_dry_climatology_degenerates_gracefully(self):
        spi = standardized_precipitation_index(np.zeros(400), 30)
        assert np.nanmax(np.abs(spi[30:])) < 1e-6 or not np.isnan(spi[30:]).all()

    def test_percent_of_normal(self):
        rain = np.concatenate([np.full(200, 2.0), np.full(200, 1.0)])
        index = percent_of_normal(rain, 30)
        assert np.nanmean(index[50:190]) > np.nanmean(index[250:390])

    def test_deciles_in_range(self):
        rain = np.abs(np.sin(np.arange(400))) * 5
        deciles = deciles_index(rain, 30)
        valid = deciles[~np.isnan(deciles)]
        assert valid.min() >= 1 and valid.max() <= 10

    def test_effective_drought_index_standardised(self):
        rain = np.concatenate([np.full(200, 3.0), np.zeros(200)])
        edi = effective_drought_index(rain, memory_days=100)
        assert np.nanmean(edi[-50:]) < np.nanmean(edi[100:200])

    def test_soil_moisture_anomaly_detects_deficit(self, drought_climate, reference_climate):
        soil = drought_climate.daily_series("soil_moisture", 730)
        reference = reference_climate.daily_series("soil_moisture", 365 * 5)
        anomaly = soil_moisture_anomaly(soil, reference=reference)
        assert np.nanmean(anomaly[560:660]) < np.nanmean(anomaly[100:500])

    def test_soil_moisture_anomaly_last_value_not_edge_biased(self):
        flat = np.full(100, 25.0)
        anomaly = soil_moisture_anomaly(flat)
        assert abs(anomaly[-1]) < 1e-6

    def test_vegetation_condition_index_bounds(self):
        vci = vegetation_condition_index(np.linspace(0.2, 0.8, 50))
        assert vci.min() == pytest.approx(0.0)
        assert vci.max() == pytest.approx(100.0)

    def test_empty_soil_series(self):
        assert soil_moisture_anomaly(np.array([])).size == 0


class TestStatisticalForecaster:
    def test_detects_embedded_drought(self, drought_climate, reference_climate):
        rain = drought_climate.daily_series("rainfall", 730)
        soil = drought_climate.daily_series("soil_moisture", 730)
        forecaster = StatisticalForecaster()
        forecasts = forecaster.forecast_series(
            rain, soil, area="Mangaung",
            reference_rainfall=reference_climate.daily_series("rainfall", 365 * 5),
            reference_soil_moisture=reference_climate.daily_series("soil_moisture", 365 * 5),
        )
        skill = evaluate_forecasts(forecasts, drought_climate.drought_truth(730),
                                   drought_climate.episodes)
        assert skill.pod >= 0.5
        assert skill.far <= 0.5
        assert skill.brier_score < 0.25

    def test_probability_monotone_in_spi(self):
        forecaster = StatisticalForecaster()
        assert forecaster.drought_probability(-2.0, 0.0) > forecaster.drought_probability(0.0, 0.0)
        assert forecaster.drought_probability(0.0, -2.0) > forecaster.drought_probability(0.0, 0.0)

    def test_nan_indices_fall_back_to_bias(self):
        forecaster = StatisticalForecaster()
        probability = forecaster.drought_probability(float("nan"), float("nan"))
        assert 0.0 < probability < 0.6

    def test_missing_data_lowers_confidence(self, drought_climate):
        rain = drought_climate.daily_series("rainfall", 200)
        rain[150:] = np.nan
        forecasts = StatisticalForecaster().forecast_series(rain, None)
        assert forecasts[-1].confidence < forecasts[0].confidence


def derived(event_type, day, score=0.8, rule=None, area="Mangaung", weight=1.0):
    return DerivedEvent(
        event_type=event_type, value=score, timestamp=day * DAY,
        rule_name=rule or event_type, area=area,
        attributes={"rule_weight": weight},
    )


class TestFusionForecaster:
    def test_probability_rises_with_corroborated_evidence(self):
        forecaster = FusionForecaster(IndigenousKnowledgeBase())
        baseline = forecaster.drought_probability_at(100.0)
        for day in (80, 85, 90, 95):
            forecaster.observe(derived("rainfall_deficit_process", day, rule="rain"))
            forecaster.observe(derived("soil_drying_process", day, rule="soil"))
            forecaster.observe(derived("ik_dry_indication", day, rule=f"ik_{day}"))
        loaded = forecaster.drought_probability_at(100.0)
        assert loaded > baseline
        assert loaded > 0.5

    def test_uncorroborated_ik_is_discounted(self):
        forecaster = FusionForecaster(IndigenousKnowledgeBase())
        for day in (80, 90):
            forecaster.observe(derived("ik_dry_indication", day, rule="ik_single"))
        ik_only = forecaster.drought_probability_at(100.0)
        forecaster.observe(derived("rainfall_deficit_process", 95, rule="rain"))
        forecaster.observe(derived("soil_drying_process", 96, rule="soil"))
        corroborated = forecaster.drought_probability_at(100.0)
        assert corroborated > ik_only

    def test_wet_indications_argue_against(self):
        forecaster = FusionForecaster(IndigenousKnowledgeBase())
        for day in (80, 85):
            forecaster.observe(derived("rainfall_deficit_process", day, rule="rain"))
            forecaster.observe(derived("soil_drying_process", day, rule="soil"))
        dry_only = forecaster.drought_probability_at(100.0)
        forecaster.observe(derived("ik_wet_indication", 95, rule="ik_frogs"))
        with_wet = forecaster.drought_probability_at(100.0)
        assert with_wet < dry_only

    def test_evidence_decays_with_age(self):
        forecaster = FusionForecaster(IndigenousKnowledgeBase())
        forecaster.observe(derived("rainfall_deficit_process", 10, rule="rain"))
        near = forecaster.drought_probability_at(12.0)
        far = forecaster.drought_probability_at(60.0)
        assert near > far

    def test_area_scoping(self):
        forecaster = FusionForecaster(IndigenousKnowledgeBase())
        forecaster.observe(derived("rainfall_deficit_process", 10, area="Xhariep", rule="rain"))
        assert forecaster.drought_probability_at(12.0, "Mangaung") < \
            forecaster.drought_probability_at(12.0, "Xhariep")

    def test_repeated_firings_of_same_rule_capped(self):
        forecaster = FusionForecaster(IndigenousKnowledgeBase())
        for day in range(60, 100, 5):
            forecaster.observe(derived("ik_dry_indication", day, rule="ik_same"))
        evidence = forecaster._evidence_at(100.0, None)
        assert evidence["ik_support"] <= 1.5

    def test_forecast_series_and_clear(self):
        forecaster = FusionForecaster(IndigenousKnowledgeBase())
        forecaster.observe(derived("rainfall_deficit_process", 40, rule="rain"))
        series = forecaster.forecast_series(100, area="Mangaung", issue_every_days=20)
        assert len(series) == 4
        assert all(f.method == "fusion" for f in series)
        forecaster.clear()
        assert forecaster._evidence_at(100.0, None)["supporting"] == 0.0


class TestIndigenousForecaster:
    def test_probability_rises_with_dry_sightings(self):
        kb = IndigenousKnowledgeBase()
        forecaster = IndigenousForecaster(kb)
        quiet = forecaster.drought_probability_at(50.0)["probability"]
        for observer in ("a", "b", "c"):
            for indicator in ("sifennefene_worms", "springs_receding", "mutiga_tree_flowering"):
                kb.register_sighting(
                    __import__("repro.streams.messages", fromlist=["ObservationRecord"]).ObservationRecord(
                        source_id=observer, source_kind="ik_sighting",
                        property_name=indicator, value=0.9, unit=None, timestamp=45 * DAY,
                    )
                )
        loaded = forecaster.drought_probability_at(50.0)["probability"]
        assert loaded > quiet
        assert loaded > 0.5

    def test_forecast_series_lead_time_from_catalogue(self):
        forecaster = IndigenousForecaster(IndigenousKnowledgeBase())
        series = forecaster.forecast_series(100, issue_every_days=50)
        assert all(f.lead_time_days > 20 for f in series)


class TestEvaluation:
    def make_forecasts(self, probabilities, lead=10.0, every=10):
        return [
            Forecast(issue_day=float(i * every), lead_time_days=lead,
                     drought_probability=p, confidence=1.0, method="test")
            for i, p in enumerate(probabilities)
        ]

    def test_perfect_forecaster(self):
        mask = np.zeros(200, dtype=bool)
        mask[100:150] = True
        probabilities = [1.0 if 90 <= day * 10 <= 140 else 0.0 for day in range(20)]
        skill = evaluate_forecasts(self.make_forecasts(probabilities), mask,
                                   [DroughtEpisode(100, 150)])
        assert skill.pod == 1.0
        assert skill.far == 0.0
        assert skill.csi == 1.0
        assert skill.brier_score == pytest.approx(0.0)

    def test_always_no_forecaster(self):
        mask = np.zeros(200, dtype=bool)
        mask[100:150] = True
        skill = evaluate_forecasts(self.make_forecasts([0.0] * 20), mask, [DroughtEpisode(100, 150)])
        assert skill.pod == 0.0
        assert skill.mean_lead_time_days == 0.0

    def test_always_yes_forecaster_has_false_alarms(self):
        mask = np.zeros(200, dtype=bool)
        mask[100:150] = True
        skill = evaluate_forecasts(self.make_forecasts([1.0] * 20), mask, [DroughtEpisode(100, 150)])
        assert skill.pod == 1.0
        assert skill.far > 0.5
        assert skill.bias > 1.5

    def test_lead_time_measures_first_preceding_alarm(self):
        mask = np.zeros(300, dtype=bool)
        mask[200:260] = True
        probabilities = [0.0] * 15 + [1.0] * 15
        skill = evaluate_forecasts(self.make_forecasts(probabilities), mask,
                                   [DroughtEpisode(200, 260)])
        assert skill.mean_lead_time_days == pytest.approx(50.0)

    def test_out_of_range_targets_skipped(self):
        mask = np.zeros(50, dtype=bool)
        skill = evaluate_forecasts(self.make_forecasts([0.6] * 30), mask)
        assert skill.forecasts_evaluated < 30

    def test_comparison_table(self):
        skill = ForecastSkill("x", 1, 1, 1, 1, 0.2, 5.0, 4)
        rows = skill_comparison_table([skill])
        assert rows[0]["method"] == "x"
        assert rows[0]["POD"] == 0.5


class TestVulnerability:
    def test_compute_for_districts(self):
        indices = compute_vulnerability({"Xhariep": 0.8, "Mangaung": 0.8})
        by_name = {index.district: index for index in indices}
        # Xhariep is more sensitive and has less adaptive capacity
        assert by_name["Xhariep"].score > by_name["Mangaung"].score

    def test_score_monotone_in_exposure(self):
        low = VulnerabilityIndex("d", 0.2, 0.6, 0.3)
        high = VulnerabilityIndex("d", 0.9, 0.6, 0.3)
        assert high.score > low.score

    def test_categories_ordered(self):
        assert VulnerabilityIndex("d", 0.95, 0.8, 0.1).category in ("extreme", "high")
        assert VulnerabilityIndex("d", 0.05, 0.4, 0.8).category == "low"

    def test_unknown_district_uses_generic_profile(self):
        indices = compute_vulnerability({"Nowhere": 0.5})
        assert indices[0].district == "Nowhere"
        assert 0.0 <= indices[0].score <= 1.0

    def test_profiles_have_bounded_factors(self):
        for profile in DEFAULT_DISTRICT_PROFILES.values():
            assert 0.0 <= profile.sensitivity <= 1.0
            assert 0.0 <= profile.adaptive_capacity <= 1.0

    def test_as_row(self):
        row = VulnerabilityIndex("d", 0.5, 0.5, 0.5).as_row()
        assert set(row) == {"district", "exposure", "sensitivity", "adaptive_capacity", "dvi", "category"}


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=-3, max_value=3, allow_nan=False),
       st.floats(min_value=-3, max_value=3, allow_nan=False))
def test_property_statistical_probability_bounded(spi, soil):
    probability = StatisticalForecaster().drought_probability(spi, soil)
    assert 0.0 <= probability <= 1.0
