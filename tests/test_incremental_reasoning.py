"""Randomized equivalence: incremental vs. from-scratch materialisation.

The incremental (semi-naive, delta-seeded) reasoner must produce exactly
the same closure as the naive from-scratch fixpoint over any sequence of
add-batches.  Each case generates a random mix of ontology axioms
(subclass / subproperty / equivalence / domain / range / property
characteristics / sameAs), instance data and literal-valued indicator
sightings, feeds it to one reasoner batch by batch (incremental top-up
after every batch) and to a fresh oracle reasoner from scratch, and
compares the resulting graphs triple for triple.  IK-style rules with
numeric guards are registered on both sides.
"""

import random

import pytest

from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import Namespace, OWL, RDF, RDFS
from repro.semantics.rdf.term import Literal, Variable
from repro.semantics.rdf.triple import Triple
from repro.semantics.reasoner import Reasoner
from repro.semantics.rules import Rule

EX = Namespace("http://example.org/inc/")

CLASSES = [EX[f"Class{i}"] for i in range(6)]
PROPERTIES = [EX[f"prop{i}"] for i in range(4)]
INDIVIDUALS = [EX[f"ind{i}"] for i in range(8)]


def ik_rules():
    """IK-indicator style rules, including a numeric guard."""
    s, v, o = Variable("s"), Variable("v"), Variable("o")
    return [
        Rule(
            "ik-strong-sighting",
            body=[Triple(s, EX.sightingIntensity, v)],
            head=[Triple(s, RDF.type, EX.DryConditionIndication)],
            guard=lambda b: b[Variable("v")].to_python() >= 0.5,
        ),
        Rule(
            "ik-corroborated",
            body=[
                Triple(s, RDF.type, EX.DryConditionIndication),
                Triple(s, EX.reportedBy, o),
                Triple(o, RDF.type, EX.TrustedObserver),
            ],
            head=[Triple(s, RDF.type, EX.CorroboratedIndication)],
        ),
    ]


def random_triple(rng: random.Random) -> Triple:
    roll = rng.random()
    if roll < 0.12:
        return Triple(rng.choice(CLASSES), RDFS.subClassOf, rng.choice(CLASSES))
    if roll < 0.18:
        return Triple(rng.choice(CLASSES), OWL.equivalentClass, rng.choice(CLASSES))
    if roll < 0.24:
        return Triple(rng.choice(PROPERTIES), RDFS.subPropertyOf, rng.choice(PROPERTIES))
    if roll < 0.30:
        return Triple(rng.choice(PROPERTIES), RDFS.domain, rng.choice(CLASSES))
    if roll < 0.36:
        return Triple(rng.choice(PROPERTIES), RDFS.range, rng.choice(CLASSES))
    if roll < 0.40:
        return Triple(rng.choice(PROPERTIES), OWL.inverseOf, rng.choice(PROPERTIES))
    if roll < 0.44:
        return Triple(
            rng.choice(PROPERTIES),
            RDF.type,
            rng.choice([OWL.SymmetricProperty, OWL.TransitiveProperty]),
        )
    if roll < 0.50:
        return Triple(rng.choice(INDIVIDUALS), OWL.sameAs, rng.choice(INDIVIDUALS))
    if roll < 0.62:
        return Triple(rng.choice(INDIVIDUALS), RDF.type, rng.choice(CLASSES))
    if roll < 0.80:
        return Triple(rng.choice(INDIVIDUALS), rng.choice(PROPERTIES), rng.choice(INDIVIDUALS))
    if roll < 0.90:
        return Triple(
            rng.choice(INDIVIDUALS),
            EX.sightingIntensity,
            Literal(round(rng.random(), 2)),
        )
    if roll < 0.96:
        return Triple(rng.choice(INDIVIDUALS), EX.reportedBy, rng.choice(INDIVIDUALS))
    return Triple(rng.choice(INDIVIDUALS), RDF.type, EX.TrustedObserver)


def random_batches(rng: random.Random):
    return [
        [random_triple(rng) for _ in range(rng.randint(1, 8))]
        for _ in range(rng.randint(2, 5))
    ]


@pytest.mark.parametrize("seed", range(20))
def test_incremental_matches_from_scratch(seed):
    rng = random.Random(seed)
    batches = random_batches(rng)

    incremental_graph = Graph()
    incremental = Reasoner(incremental_graph, extra_rules=ik_rules())
    asserted = []
    for batch in batches:
        asserted.extend(batch)
        incremental_graph.add_all(batch)
        incremental.ensure_materialized()

        oracle_graph = Graph()
        oracle_graph.add_all(asserted)
        Reasoner(oracle_graph, extra_rules=ik_rules()).materialize(full=True)
        assert set(incremental_graph) == set(oracle_graph)


@pytest.mark.parametrize("seed", range(5))
def test_incremental_matches_explicit_materialize_calls(seed):
    """materialize() (not just ensure_materialized) also tops up correctly."""
    rng = random.Random(1000 + seed)
    batches = random_batches(rng)

    incremental_graph = Graph()
    incremental = Reasoner(incremental_graph, extra_rules=ik_rules())
    asserted = []
    for batch in batches:
        asserted.extend(batch)
        incremental_graph.add_all(batch)
        incremental.materialize()

    oracle_graph = Graph()
    oracle_graph.add_all(asserted)
    Reasoner(oracle_graph, extra_rules=ik_rules()).materialize(full=True)
    assert set(incremental_graph) == set(oracle_graph)


def test_single_batch_closure_matches_unified_ontology_growth():
    """Annotation-shaped triples over the real unified ontology converge."""
    from repro.core.annotation import SemanticAnnotator
    from repro.core.mediator import Mediator
    from repro.ontologies import build_unified_ontology
    from repro.streams.messages import ObservationRecord

    library = build_unified_ontology(materialize=False)
    graph = library.graph
    baseline = graph.copy()
    reasoner = Reasoner(graph)
    reasoner.materialize()

    annotator = SemanticAnnotator(graph)
    mediator = Mediator()
    observations = []
    for index in range(40):
        outcome = mediator.mediate(ObservationRecord(
            source_id=f"mote-{index % 4}", source_kind="wsn_mote",
            property_name="Bodenfeuchte", value=5.0 + index, unit="percent",
            timestamp=float(index * 3600), location=(-29.1, 26.2),
        ))
        observations.append(outcome.observation)
    annotator.annotate_batch(observations)
    reasoner.ensure_materialized()

    oracle = baseline
    oracle_annotator = SemanticAnnotator(oracle)
    oracle_annotator.annotate_batch(observations)
    Reasoner(oracle).materialize(full=True)
    assert set(graph) == set(oracle)
