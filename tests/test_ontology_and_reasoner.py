"""Tests for ontology construction, restrictions, rules and the reasoner."""

import pytest

from repro.semantics.owl.ontology import Ontology
from repro.semantics.owl.restrictions import AllValuesFrom, Cardinality, HasValue, SomeValuesFrom
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import Namespace, OWL, RDF, RDFS
from repro.semantics.rdf.term import IRI, Literal, Variable
from repro.semantics.rdf.triple import Triple
from repro.semantics.reasoner import Reasoner
from repro.semantics.rules import Rule, RuleEngine

EX = Namespace("http://example.org/")


@pytest.fixture
def ontology():
    onto = Ontology(IRI("http://example.org/ontology"))
    device = onto.declare_class(EX.Device, label="device")
    sensor = onto.declare_class(EX.Sensor, parents=[device])
    onto.declare_class(EX.SoilSensor, parents=[sensor])
    onto.declare_object_property(EX.observes, domain=sensor, range=EX.Property)
    onto.declare_datatype_property(EX.hasAccuracy, domain=sensor)
    onto.declare_individual(EX.s1, types=[EX.SoilSensor], label="mote 1")
    return onto


class TestOntology:
    def test_class_hierarchy(self, ontology):
        assert EX.Device in ontology.superclasses(EX.SoilSensor)
        assert EX.SoilSensor in ontology.subclasses(EX.Device)
        assert ontology.is_subclass(EX.SoilSensor, EX.Device)
        assert not ontology.is_subclass(EX.Device, EX.SoilSensor)

    def test_classify_individual(self, ontology):
        classes = ontology.classify_individual(EX.s1)
        assert {EX.SoilSensor, EX.Sensor, EX.Device} <= classes

    def test_declare_is_idempotent(self, ontology):
        first = ontology.declare_class(EX.Sensor)
        second = ontology.declare_class(EX.Sensor)
        assert first is second

    def test_labels_materialised(self, ontology):
        assert ontology.classes[EX.Device].label == "device"

    def test_assert_fact_scalar_coercion(self, ontology):
        ontology.assert_fact(EX.s1, EX.hasAccuracy, 0.9)
        assert ontology.graph.literal_value(EX.s1, EX.hasAccuracy) == pytest.approx(0.9)

    def test_property_characteristics(self, ontology):
        prop = ontology.declare_object_property(EX.partOf)
        prop.make_transitive()
        assert Triple(EX.partOf, RDF.type, OWL.TransitiveProperty) in ontology.graph

    def test_equivalences(self, ontology):
        ontology.declare_class(EX.Hoehe)
        ontology.equivalent_classes(EX.Hoehe, EX.WaterLevel)
        assert Triple(EX.Hoehe, OWL.equivalentClass, EX.WaterLevel) in ontology.graph

    def test_imports_merges_registries(self, ontology):
        other = Ontology(IRI("http://example.org/other"))
        other.declare_class(EX.Gauge)
        ontology.imports(other)
        assert EX.Gauge in ontology.classes
        assert Triple(ontology.iri, OWL.imports, other.iri) in ontology.graph

    def test_instances(self, ontology):
        assert EX.s1 in ontology.classes[EX.SoilSensor].instances()


class TestRestrictions:
    def make_graph(self):
        g = Graph()
        g.add(Triple(EX.obs1, EX.observedBy, EX.s1))
        g.add(Triple(EX.s1, RDF.type, EX.Sensor))
        g.add(Triple(EX.obs2, EX.observedBy, EX.notASensor))
        return g

    def test_some_values_from(self):
        g = self.make_graph()
        restriction = SomeValuesFrom(EX.observedBy, EX.Sensor)
        assert restriction.satisfied_by(g, EX.obs1)
        assert not restriction.satisfied_by(g, EX.obs2)

    def test_all_values_from(self):
        g = self.make_graph()
        restriction = AllValuesFrom(EX.observedBy, EX.Sensor)
        assert restriction.satisfied_by(g, EX.obs1)
        assert not restriction.satisfied_by(g, EX.obs2)
        # vacuously satisfied with no values
        assert restriction.satisfied_by(g, EX.obs3)

    def test_has_value(self):
        g = self.make_graph()
        assert HasValue(EX.observedBy, EX.s1).satisfied_by(g, EX.obs1)
        assert not HasValue(EX.observedBy, EX.s1).satisfied_by(g, EX.obs2)

    def test_cardinality(self):
        g = self.make_graph()
        assert Cardinality(EX.observedBy, minimum=1).satisfied_by(g, EX.obs1)
        assert not Cardinality(EX.observedBy, minimum=2).satisfied_by(g, EX.obs1)
        assert Cardinality(EX.observedBy, maximum=1).satisfied_by(g, EX.obs1)

    def test_cardinality_requires_bounds(self):
        with pytest.raises(ValueError):
            Cardinality(EX.observedBy)

    def test_materialize_writes_owl_restriction(self):
        g = Graph()
        node = SomeValuesFrom(EX.observedBy, EX.Sensor).materialize(g)
        assert Triple(node, RDF.type, OWL.Restriction) in g
        assert Triple(node, OWL.onProperty, EX.observedBy) in g


class TestRuleEngine:
    def test_simple_rule_derivation(self):
        g = Graph()
        g.add(Triple(EX.a, EX.parentOf, EX.b))
        g.add(Triple(EX.b, EX.parentOf, EX.c))
        rule = Rule(
            "grandparent",
            body=[
                Triple(Variable("x"), EX.parentOf, Variable("y")),
                Triple(Variable("y"), EX.parentOf, Variable("z")),
            ],
            head=[Triple(Variable("x"), EX.grandparentOf, Variable("z"))],
        )
        trace = RuleEngine([rule]).run(g)
        assert Triple(EX.a, EX.grandparentOf, EX.c) in g
        assert trace.inferred == 1
        assert trace.by_rule["grandparent"] == 1

    def test_head_variable_must_be_bound(self):
        with pytest.raises(ValueError):
            Rule(
                "bad",
                body=[Triple(Variable("x"), EX.p, EX.o)],
                head=[Triple(Variable("x"), EX.p, Variable("unbound"))],
            )

    def test_guard_blocks_firing(self):
        g = Graph()
        g.add(Triple(EX.obs, EX.hasValue, Literal(5.0)))
        rule = Rule(
            "low-value",
            body=[Triple(Variable("o"), EX.hasValue, Variable("v"))],
            head=[Triple(Variable("o"), RDF.type, EX.LowReading)],
            guard=lambda b: b[Variable("v")].to_python() < 3,
        )
        RuleEngine([rule]).run(g)
        assert Triple(EX.obs, RDF.type, EX.LowReading) not in g

    def test_fixpoint_terminates(self):
        g = Graph()
        for i in range(5):
            g.add(Triple(EX[f"n{i}"], EX.next, EX[f"n{i+1}"]))
        rule = Rule(
            "reach",
            body=[
                Triple(Variable("x"), EX.next, Variable("y")),
                Triple(Variable("y"), EX.next, Variable("z")),
            ],
            head=[Triple(Variable("x"), EX.next, Variable("z"))],
        )
        trace = RuleEngine([rule]).run(g)
        assert trace.iterations < 10
        assert Triple(EX.n0, EX.next, EX.n5) in g

    def test_infer_only_does_not_mutate(self):
        g = Graph()
        g.add(Triple(EX.a, RDFS.subClassOf, EX.b))
        g.add(Triple(EX.b, RDFS.subClassOf, EX.c))
        engine = RuleEngine([Rule(
            "trans",
            body=[Triple(Variable("x"), RDFS.subClassOf, Variable("y")),
                  Triple(Variable("y"), RDFS.subClassOf, Variable("z"))],
            head=[Triple(Variable("x"), RDFS.subClassOf, Variable("z"))],
        )])
        inferred = engine.infer_only(g)
        assert len(g) == 2
        assert Triple(EX.a, RDFS.subClassOf, EX.c) in inferred


class TestReasoner:
    def test_subclass_type_propagation(self, ontology):
        reasoner = Reasoner.for_ontology(ontology)
        reasoner.materialize()
        assert reasoner.is_instance_of(EX.s1, EX.Device)
        assert reasoner.is_subclass_of(EX.SoilSensor, EX.Device)

    def test_domain_range_typing(self):
        g = Graph()
        g.add(Triple(EX.observes, RDFS.domain, EX.Sensor))
        g.add(Triple(EX.observes, RDFS.range, EX.Property))
        g.add(Triple(EX.s1, EX.observes, EX.SoilMoisture))
        reasoner = Reasoner(g)
        assert reasoner.is_instance_of(EX.s1, EX.Sensor)
        assert reasoner.is_instance_of(EX.SoilMoisture, EX.Property)

    def test_equivalent_class_bridges_instances(self):
        g = Graph()
        g.add(Triple(EX.Hoehe, OWL.equivalentClass, EX.WaterLevel))
        g.add(Triple(EX.reading, RDF.type, EX.Hoehe))
        reasoner = Reasoner(g)
        assert reasoner.is_instance_of(EX.reading, EX.WaterLevel)

    def test_same_as_copies_statements(self):
        g = Graph()
        g.add(Triple(EX.station1, OWL.sameAs, EX.stationA))
        g.add(Triple(EX.station1, EX.locatedIn, EX.Mangaung))
        reasoner = Reasoner(g)
        reasoner.materialize()
        assert Triple(EX.stationA, EX.locatedIn, EX.Mangaung) in g
        assert EX.stationA in reasoner.same_as(EX.station1)

    def test_inverse_and_symmetric(self):
        g = Graph()
        g.add(Triple(EX.hosts, OWL.inverseOf, EX.hostedBy))
        g.add(Triple(EX.platform, EX.hosts, EX.sensor))
        g.add(Triple(EX.adjacentTo, RDF.type, OWL.SymmetricProperty))
        g.add(Triple(EX.fieldA, EX.adjacentTo, EX.fieldB))
        reasoner = Reasoner(g)
        reasoner.materialize()
        assert Triple(EX.sensor, EX.hostedBy, EX.platform) in g
        assert Triple(EX.fieldB, EX.adjacentTo, EX.fieldA) in g

    def test_transitive_property(self):
        g = Graph()
        g.add(Triple(EX.partOf, RDF.type, OWL.TransitiveProperty))
        g.add(Triple(EX.a, EX.partOf, EX.b))
        g.add(Triple(EX.b, EX.partOf, EX.c))
        reasoner = Reasoner(g)
        reasoner.materialize()
        assert Triple(EX.a, EX.partOf, EX.c) in g

    def test_classification_with_restrictions(self, ontology):
        observation = ontology.declare_class(EX.WellFormedObservation)
        observation.add_restriction(SomeValuesFrom(EX.observedBy, EX.Sensor))
        ontology.declare_individual(EX.obs1)
        ontology.assert_fact(EX.obs1, EX.observedBy, EX.s1)
        ontology.graph.add(Triple(EX.s1, RDF.type, EX.Sensor))
        reasoner = Reasoner.for_ontology(ontology)
        reasoner.materialize()
        added = reasoner.classify_with_restrictions(ontology)
        assert added >= 1
        assert reasoner.is_instance_of(EX.obs1, EX.WellFormedObservation)

    def test_materialize_trace_reports_rules(self, ontology):
        trace = Reasoner.for_ontology(ontology).materialize()
        assert trace.inferred > 0
        assert any("rdfs9" in name for name in trace.by_rule)


class TestReasonerInvalidation:
    """Graph mutations must invalidate a previous materialisation."""

    def make_reasoner(self):
        g = Graph()
        g.add(Triple(EX.Sensor, RDFS.subClassOf, EX.Device))
        reasoner = Reasoner(g)
        reasoner.materialize()
        return g, reasoner

    def test_is_instance_of_reflects_post_materialization_adds(self):
        # regression: adding triples after materialize() used to leave the
        # reasoner serving stale answers from the old closure
        g, reasoner = self.make_reasoner()
        assert not reasoner.is_instance_of(EX.mote9, EX.Device)
        g.add(Triple(EX.mote9, RDF.type, EX.Sensor))
        assert reasoner.is_instance_of(EX.mote9, EX.Device)

    def test_instances_of_reflects_post_materialization_adds(self):
        g, reasoner = self.make_reasoner()
        assert reasoner.instances_of(EX.Device) == set()
        g.add(Triple(EX.mote1, RDF.type, EX.Sensor))
        g.add(Triple(EX.mote2, RDF.type, EX.Sensor))
        assert reasoner.instances_of(EX.Device) == {EX.mote1, EX.mote2}

    def test_post_materialization_axiom_add(self):
        g, reasoner = self.make_reasoner()
        g.add(Triple(EX.mote1, RDF.type, EX.Sensor))
        assert reasoner.is_instance_of(EX.mote1, EX.Device)
        # a new alignment axiom must propagate through existing instances
        g.add(Triple(EX.Device, RDFS.subClassOf, EX.PhysicalEndurant))
        assert reasoner.is_instance_of(EX.mote1, EX.PhysicalEndurant)

    def test_top_up_is_incremental(self):
        g, reasoner = self.make_reasoner()
        g.add(Triple(EX.mote1, RDF.type, EX.Sensor))
        reasoner.ensure_materialized()
        trace = reasoner.last_trace
        # the top-up refired only the delta-touched rules, and only over
        # the delta: one new rdf:type triple via rdfs9
        assert trace.inferred == 1
        assert trace.by_rule == {"rdfs9-type-propagation": 1}

    def test_materialize_full_is_oracle(self):
        g, reasoner = self.make_reasoner()
        g.add(Triple(EX.mote1, RDF.type, EX.Sensor))
        reasoner.ensure_materialized()
        oracle = Graph()
        oracle.add(Triple(EX.Sensor, RDFS.subClassOf, EX.Device))
        oracle.add(Triple(EX.mote1, RDF.type, EX.Sensor))
        Reasoner(oracle).materialize(full=True)
        assert set(g) == set(oracle)

    def test_removal_falls_back_to_full_run(self):
        g, reasoner = self.make_reasoner()
        g.add(Triple(EX.mote1, RDF.type, EX.Sensor))
        reasoner.ensure_materialized()
        g.remove(Triple(EX.mote1, RDF.type, EX.Sensor))
        g.add(Triple(EX.mote2, RDF.type, EX.Sensor))
        # the retraction forces a full (naive) re-run; new adds still land
        assert reasoner.is_instance_of(EX.mote2, EX.Device)

    def test_add_rules_invalidates(self):
        g, reasoner = self.make_reasoner()
        g.add(Triple(EX.mote1, RDF.type, EX.Sensor))
        reasoner.ensure_materialized()
        reasoner.add_rules([
            Rule(
                "device-is-asset",
                body=[Triple(Variable("x"), RDF.type, EX.Device)],
                head=[Triple(Variable("x"), RDF.type, EX.Asset)],
            )
        ])
        # the new rule must apply to triples that predate its registration
        assert reasoner.is_instance_of(EX.mote1, EX.Asset)

    def test_ensure_materialized_noop_when_clean(self):
        g, reasoner = self.make_reasoner()
        version = g.version
        reasoner.ensure_materialized()
        reasoner.is_instance_of(EX.mote9, EX.Device)
        assert g.version == version


class TestReasonerFailureRecovery:
    def test_failed_run_requeues_the_delta(self):
        """An exception mid-run must not leave the closure silently stale."""
        g = Graph()
        g.add(Triple(EX.Sensor, RDFS.subClassOf, EX.Device))
        calls = {"n": 0}

        def flaky_guard(bindings):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient failure")
            return True

        reasoner = Reasoner(g, extra_rules=[
            Rule(
                "flaky",
                body=[Triple(Variable("x"), RDF.type, EX.Sensor)],
                head=[Triple(Variable("x"), RDF.type, EX.Checked)],
                guard=flaky_guard,
            )
        ])
        reasoner.materialize()
        g.add(Triple(EX.mote1, RDF.type, EX.Sensor))
        with pytest.raises(RuntimeError):
            reasoner.ensure_materialized()
        # the delta was requeued, so a retry completes the closure
        assert reasoner.is_instance_of(EX.mote1, EX.Checked)
        assert reasoner.is_instance_of(EX.mote1, EX.Device)
