"""Tests for the cost-based SPARQL query planner and its caches.

The correctness oracle is the naive written-order evaluator
(``query(..., use_planner=False)``): for random graphs and random
BGP/OPTIONAL/FILTER queries, planning must never change the solution
multiset — only the evaluation order.  Cache tests prove that the
version-keyed plan / result caches are hit on repeats and invalidated by
any graph mutation.
"""

import random
from collections import Counter

import pytest

from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import Namespace, RDF
from repro.semantics.rdf.term import Literal, Variable
from repro.semantics.rdf.triple import Triple
from repro.semantics.sparql.algebra import BGP
from repro.semantics.sparql.evaluator import query, select
from repro.semantics.sparql.planner import (
    PlannedBGP,
    QueryPlanner,
    build_plan,
    estimate_pattern,
    order_patterns,
    plan_patterns,
    planner_for,
)
from repro.semantics.sparql.parser import parse_query

EX = Namespace("http://example.org/")


def _solution_multiset(result):
    return Counter(result.solutions)


# --------------------------------------------------------------------- #
# graph statistics
# --------------------------------------------------------------------- #

class TestCardinalityStatistics:
    @pytest.fixture
    def graph(self):
        g = Graph()
        g.namespaces.bind("ex", EX)
        g.add(Triple(EX.s1, EX.p1, EX.o1))
        g.add(Triple(EX.s1, EX.p1, EX.o2))
        g.add(Triple(EX.s2, EX.p1, EX.o1))
        g.add(Triple(EX.s2, EX.p2, Literal(4)))
        return g

    def test_predicate_counters(self, graph):
        assert graph.predicate_cardinality(EX.p1) == 3
        assert graph.predicate_cardinality(EX.p2) == 1
        assert graph.predicate_cardinality(EX.p9) == 0
        assert graph.distinct_subjects_count(EX.p1) == 2
        assert graph.distinct_objects_count(EX.p1) == 2
        assert graph.distinct_subjects_count() == 2
        assert graph.distinct_predicates_count() == 2

    def test_pattern_cardinality_all_shapes(self, graph):
        v = Variable("x")
        assert graph.pattern_cardinality((EX.s1, EX.p1, EX.o1)) == 1
        assert graph.pattern_cardinality((EX.s1, EX.p1, EX.o9)) == 0
        assert graph.pattern_cardinality((EX.s1, EX.p1, v)) == 2
        assert graph.pattern_cardinality((EX.s1, v, EX.o1)) == 1
        assert graph.pattern_cardinality((v, EX.p1, EX.o1)) == 2
        assert graph.pattern_cardinality((EX.s1, None, None)) == 2
        assert graph.pattern_cardinality((None, EX.p1, None)) == 3
        assert graph.pattern_cardinality((None, None, EX.o1)) == 2
        assert graph.pattern_cardinality((None, None, None)) == 4

    def test_counters_track_removal_and_prune(self, graph):
        graph.remove(Triple(EX.s1, EX.p1, EX.o2))
        assert graph.predicate_cardinality(EX.p1) == 2
        assert graph.distinct_objects_count(EX.p1) == 1
        graph.remove(Triple(EX.s1, EX.p1, EX.o1))
        # s1 no longer a subject of p1; the counters and len()-based
        # statistics agree because emptied buckets are pruned
        assert graph.distinct_subjects_count(EX.p1) == 1
        graph.remove(Triple(EX.s2, EX.p1, EX.o1))
        assert graph.predicate_cardinality(EX.p1) == 0
        assert graph.distinct_predicates_count() == 1
        assert graph.pattern_cardinality((None, EX.p1, None)) == 0
        # the remaining triple is still fully indexed
        assert len(list(graph.triples((EX.s2, None, None)))) == 1

    def test_counters_after_clear(self, graph):
        graph.clear()
        assert graph.predicate_cardinality(EX.p1) == 0
        assert graph.distinct_subjects_count() == 0
        assert graph.pattern_cardinality((None, None, None)) == 0

    def test_pattern_cardinality_matches_enumeration(self):
        rng = random.Random(7)
        g = Graph()
        terms = [EX[f"t{i}"] for i in range(6)]
        for _ in range(60):
            g.add(Triple(rng.choice(terms), rng.choice(terms[:3]), rng.choice(terms)))
        for _ in range(20):
            g.remove(Triple(rng.choice(terms), rng.choice(terms[:3]), rng.choice(terms)))
        choices = terms + [None]
        for _ in range(100):
            pattern = (rng.choice(choices), rng.choice(choices), rng.choice(choices))
            assert g.pattern_cardinality(pattern) == len(list(g.triples(pattern)))


# --------------------------------------------------------------------- #
# join ordering
# --------------------------------------------------------------------- #

class TestJoinOrdering:
    @pytest.fixture
    def graph(self):
        g = Graph()
        g.namespaces.bind("ex", EX)
        for i in range(50):
            g.add(Triple(EX[f"obs{i}"], EX.hasValue, Literal(i)))
            g.add(Triple(EX[f"obs{i}"], EX.observedBy, EX[f"sensor{i % 10}"]))
        g.add(Triple(EX.sensor3, RDF.type, EX.RareSensor))
        return g

    def test_most_selective_pattern_first(self, graph):
        big = Triple(Variable("o"), EX.hasValue, Variable("v"))
        mid = Triple(Variable("o"), EX.observedBy, Variable("s"))
        rare = Triple(Variable("s"), RDF.type, EX.RareSensor)
        ordered = order_patterns(graph, [big, mid, rare])
        assert ordered[0] == rare
        # bound-variable propagation: the pattern sharing ?s comes before
        # the disconnected value pattern
        assert ordered[1] == mid

    def test_bound_variables_shrink_estimates(self, graph):
        pattern = Triple(Variable("o"), EX.observedBy, Variable("s"))
        free = estimate_pattern(graph, pattern, set())
        seeded = estimate_pattern(graph, pattern, {Variable("s")})
        assert free == 50
        assert seeded == pytest.approx(5.0)  # 50 triples / 10 sensors

    def test_empty_pattern_estimates_zero(self, graph):
        pattern = Triple(Variable("x"), EX.nonexistent, Variable("y"))
        assert estimate_pattern(graph, pattern, set()) == 0.0

    def test_initial_bound_set_respected(self, graph):
        mid = Triple(Variable("o"), EX.observedBy, Variable("s"))
        big = Triple(Variable("o"), EX.hasValue, Variable("v"))
        ordered = order_patterns(graph, [big, mid], bound=[Variable("s")])
        assert ordered[0] == mid

    def test_planned_bgp_preserves_written_variable_order(self, graph):
        big = Triple(Variable("o"), EX.hasValue, Variable("v"))
        rare = Triple(Variable("s"), RDF.type, EX.RareSensor)
        mid = Triple(Variable("o"), EX.observedBy, Variable("s"))
        planned = plan_patterns(graph, [big, mid, rare])
        assert planned.patterns != [big, mid, rare]  # actually reordered
        assert planned.variables() == [Variable("o"), Variable("v"), Variable("s")]


# --------------------------------------------------------------------- #
# randomized planned-vs-unplanned equivalence
# --------------------------------------------------------------------- #

PREDICATES = [EX.p0, EX.p1, EX.p2, EX.p3]


def _random_graph(rng):
    g = Graph()
    g.namespaces.bind("ex", EX)
    subjects = [EX[f"s{i}"] for i in range(rng.randint(6, 14))]
    iri_objects = [EX[f"o{i}"] for i in range(6)] + subjects[:4]
    for _ in range(rng.randint(30, 140)):
        # skewed predicate usage so estimates actually differ
        predicate = PREDICATES[min(rng.randrange(len(PREDICATES)), rng.randrange(len(PREDICATES)))]
        subject = rng.choice(subjects)
        if predicate == EX.p3:
            obj = Literal(rng.randint(0, 15))
        else:
            obj = rng.choice(iri_objects)
        g.add(Triple(subject, predicate, obj))
    return g


def _random_query(rng):
    # ?v / ?w may bind literals (objects of ex:p3 or of a variable
    # predicate) and occasionally appear in subject position too: a join
    # step binding a literal into a subject must yield no solutions on
    # both evaluation paths, never an error
    node_vars = ["?a", "?b", "?c"]
    value_vars = ["?v", "?w"]
    ground_subjects = ["ex:s0", "ex:s1", "ex:s2"]
    iri_objects = ["ex:o0", "ex:o1", "ex:s3"]

    def pattern():
        subject_pool = node_vars + ground_subjects
        if rng.random() < 0.15:
            subject_pool = subject_pool + value_vars
        s = rng.choice(subject_pool)
        p = rng.choice(["ex:p0", "ex:p1", "ex:p2", "ex:p3", "?p"])
        if p in ("ex:p3", "?p"):
            o = rng.choice(value_vars + [str(rng.randint(0, 15))])
        else:
            o = rng.choice(node_vars + value_vars + iri_objects)
        return f"{s} {p} {o}"

    body = " . ".join(pattern() for _ in range(rng.randint(2, 4)))
    optional = ""
    if rng.random() < 0.5:
        optional = " OPTIONAL { " + pattern() + " . }"
    filter_clause = ""
    if rng.random() < 0.5:
        var = rng.choice(node_vars + value_vars)
        op = rng.choice(["<", "<=", ">", ">=", "=", "!="])
        filter_clause = f" FILTER ({var} {op} {rng.randint(0, 15)})"
    distinct = "DISTINCT " if rng.random() < 0.3 else ""
    return f"SELECT {distinct}* WHERE {{ {body} .{optional}{filter_clause} }}"


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(60))
    def test_planned_matches_written_order_oracle(self, seed):
        rng = random.Random(seed)
        graph = _random_graph(rng)
        text = _random_query(rng)
        oracle = query(graph, text, use_planner=False)
        planned = QueryPlanner().query(graph, text)
        assert _solution_multiset(planned) == _solution_multiset(oracle), text

    @pytest.mark.parametrize("seed", range(20))
    def test_pattern_order_is_irrelevant(self, seed):
        """Identical solution multisets regardless of written pattern order."""
        rng = random.Random(1000 + seed)
        graph = _random_graph(rng)
        parts = [
            "?a ex:p0 ?b", "?b ex:p1 ?c", "?a ex:p2 ?c", "?a ex:p3 ?v",
        ]
        reference = None
        for _ in range(6):
            rng.shuffle(parts)
            text = "SELECT * WHERE { " + " . ".join(parts) + " . }"
            for result in (
                QueryPlanner().query(graph, text),
                query(graph, text, use_planner=False),
            ):
                multiset = _solution_multiset(result)
                if reference is None:
                    reference = multiset
                else:
                    assert multiset == reference

    @pytest.mark.parametrize("seed", range(10))
    def test_planned_bgp_equivalence_all_permutations(self, seed):
        import itertools

        rng = random.Random(2000 + seed)
        graph = _random_graph(rng)
        patterns = [
            Triple(Variable("a"), EX.p0, Variable("b")),
            Triple(Variable("b"), EX.p1, Variable("c")),
            Triple(Variable("a"), EX.p2, Variable("c")),
        ]
        reference = Counter(BGP(patterns).solutions(graph))
        for permutation in itertools.permutations(patterns):
            planned = plan_patterns(graph, list(permutation))
            assert Counter(planned.solutions(graph)) == reference

    def test_literal_bound_into_subject_position_yields_no_solutions(self):
        # regression: the planner's data-dependent reordering can evaluate
        # '?s ex:val ?x' first, bind ?x to a literal, and then meet ?x in
        # subject position of '?x ex:p0 ?y'; that join step must produce
        # zero solutions (no stored triple has a literal subject), not a
        # TypeError out of every query path
        graph = Graph()
        graph.namespaces.bind("ex", EX)
        graph.add(Triple(EX.s1, EX.val, Literal(14)))
        for i in range(50):
            graph.add(Triple(EX[f"n{i}"], EX.p0, EX[f"m{i}"]))
        text = "SELECT * WHERE { ?x ex:p0 ?y . ?s ex:val ?x . }"
        planned = QueryPlanner().query(graph, text)
        oracle = query(graph, text, use_planner=False)
        assert len(planned) == len(oracle) == 0

    def test_ask_form_equivalence(self):
        rng = random.Random(42)
        graph = _random_graph(rng)
        positive = "ASK WHERE { ?a ex:p0 ?b . ?b ex:p1 ?c . }"
        negative = "ASK WHERE { ?a ex:nonexistent ?b . }"
        graph.namespaces.bind("ex", EX)
        for text in (positive, negative):
            assert (
                QueryPlanner().query(graph, text).ask
                == query(graph, text, use_planner=False).ask
            )


# --------------------------------------------------------------------- #
# filter pushdown
# --------------------------------------------------------------------- #

class TestFilterPushdown:
    @pytest.fixture
    def graph(self):
        g = Graph()
        g.namespaces.bind("ex", EX)
        for i in range(20):
            g.add(Triple(EX[f"obs{i}"], EX.hasValue, Literal(i)))
            g.add(Triple(EX[f"obs{i}"], EX.observedBy, EX[f"sensor{i % 4}"]))
        g.add(Triple(EX.sensor1, EX.locatedIn, EX.Mangaung))
        return g

    def test_core_filter_is_pushed_into_the_bgp(self, graph):
        plan = build_plan(graph, parse_query(
            "SELECT ?o ?v WHERE { ?o ex:observedBy ?s . ?o ex:hasValue ?v . FILTER (?v < 5) }"
        ))
        planned_bgps = [
            op for op in _walk(plan.root) if isinstance(op, PlannedBGP)
        ]
        assert any(fns for bgp in planned_bgps for fns in bgp.step_filters)

    def test_pushed_filter_same_answers_as_oracle(self, graph):
        text = """
            SELECT ?o ?v ?s WHERE {
                ?o ex:observedBy ?s .
                ?o ex:hasValue ?v .
                FILTER (?v >= 17)
            }
        """
        planned = QueryPlanner().query(graph, text)
        oracle = query(graph, text, use_planner=False)
        assert _solution_multiset(planned) == _solution_multiset(oracle)
        assert len(planned) == 3

    def test_filter_on_optional_variable_stays_outside(self, graph):
        # ?place is bound only by the OPTIONAL block: SPARQL semantics drop
        # rows where the filter variable is unbound, so the filter must NOT
        # be pushed into the required BGP (where it would see no binding)
        text = """
            SELECT ?s ?place WHERE {
                ?o ex:observedBy ?s .
                OPTIONAL { ?s ex:locatedIn ?place . }
                FILTER (?place = ex:Mangaung)
            }
        """
        planned = QueryPlanner().query(graph, text)
        oracle = query(graph, text, use_planner=False)
        assert _solution_multiset(planned) == _solution_multiset(oracle)
        assert all(row["place"] == EX.Mangaung for row in planned.rows)
        assert len(planned) == 5  # sensor1 observes obs1,5,9,13,17

    def test_filter_on_never_bound_variable_drops_everything(self, graph):
        text = "SELECT ?o WHERE { ?o ex:hasValue ?v . FILTER (?ghost > 1) }"
        planned = QueryPlanner().query(graph, text)
        oracle = query(graph, text, use_planner=False)
        assert len(planned) == len(oracle) == 0


def _walk(operator):
    yield operator
    for attr in ("child", "left", "right"):
        nested = getattr(operator, attr, None)
        if nested is not None:
            yield from _walk(nested)


# --------------------------------------------------------------------- #
# plan / result caches and invalidation
# --------------------------------------------------------------------- #

class TestPlanAndResultCaches:
    @pytest.fixture
    def graph(self):
        g = Graph()
        g.namespaces.bind("ex", EX)
        for i in range(10):
            g.add(Triple(EX[f"obs{i}"], EX.hasValue, Literal(i)))
        return g

    TEXT = "SELECT ?o ?v WHERE { ?o ex:hasValue ?v . FILTER (?v >= 5) }"

    def test_repeat_query_hits_both_caches(self, graph):
        planner = QueryPlanner()
        first = planner.query(graph, self.TEXT)
        second = planner.query(graph, self.TEXT)
        assert planner.statistics.plans_built == 1
        assert planner.statistics.result_hits == 1
        assert _solution_multiset(first) == _solution_multiset(second)
        # cached results are independent copies
        second.solutions.clear()
        assert len(planner.query(graph, self.TEXT)) == 5

    def test_mutation_invalidates_result_cache(self, graph):
        planner = QueryPlanner()
        assert len(planner.query(graph, self.TEXT)) == 5
        graph.add(Triple(EX.obs99, EX.hasValue, Literal(99)))
        fresh = planner.query(graph, self.TEXT)
        assert len(fresh) == 6  # not served stale
        assert planner.statistics.result_invalidations == 1
        graph.remove(Triple(EX.obs99, EX.hasValue, Literal(99)))
        assert len(planner.query(graph, self.TEXT)) == 5

    def test_prefix_rebinding_invalidates_caches(self):
        # rebinding a namespace prefix changes how the cached query text
        # resolves without bumping the graph version (regression: the
        # caches used to key on the version alone and served the IRIs of
        # the old binding)
        a = Namespace("http://a.example/")
        b = Namespace("http://b.example/")
        graph = Graph()
        graph.namespaces.bind("ex", a)
        graph.add(Triple(a.s1, RDF.type, a.Sensor))
        graph.add(Triple(b.s2, RDF.type, b.Sensor))
        planner = QueryPlanner()
        text = "SELECT ?s WHERE { ?s a ex:Sensor . }"
        assert planner.query(graph, text).scalars == [a.s1.value]
        graph.namespaces.bind("ex", b)
        assert planner.query(graph, text).scalars == [b.s2.value]
        assert planner.statistics.result_invalidations == 1
        # re-binding the same namespace is not a change: caches stay warm
        graph.namespaces.bind("ex", b)
        assert planner.query(graph, text).scalars == [b.s2.value]
        assert planner.statistics.result_hits == 1

    def test_unrelated_mutation_still_invalidates_conservatively(self, graph):
        planner = QueryPlanner()
        planner.query(graph, self.TEXT)
        graph.add(Triple(EX.x, EX.unrelated, EX.y))
        planner.query(graph, self.TEXT)
        assert planner.statistics.result_hits == 0
        assert planner.statistics.plan_invalidations == 1

    def test_plan_reused_after_replan_when_version_stable(self, graph):
        # result caching disabled so every query exercises the plan cache
        planner = QueryPlanner(result_cache_size=0)
        planner.query(graph, self.TEXT)
        graph.add(Triple(EX.x, EX.unrelated, EX.y))
        planner.query(graph, self.TEXT)   # version moved: replans
        planner.query(graph, self.TEXT)   # version stable again: plan hit
        assert planner.statistics.plans_built == 2
        assert planner.statistics.plan_invalidations == 1
        assert planner.statistics.plan_hits == 1

    def test_result_cache_lru_bound(self, graph):
        planner = QueryPlanner(result_cache_size=2)
        texts = [
            f"SELECT ?o WHERE {{ ?o ex:hasValue {value} . }}" for value in range(4)
        ]
        for text in texts:
            planner.query(graph, text)
        assert len(planner._results) == 2

    def test_result_cache_disabled(self, graph):
        planner = QueryPlanner(result_cache_size=0)
        planner.query(graph, self.TEXT)
        planner.query(graph, self.TEXT)
        assert planner.statistics.result_hits == 0
        assert planner.statistics.plan_hits == 1  # plans still cached

    def test_invalidation_replans_but_never_reparses(self, graph):
        planner = QueryPlanner()
        planner.query(graph, self.TEXT)
        graph.add(Triple(EX.x, EX.unrelated, EX.y))
        planner.query(graph, self.TEXT)
        assert planner.statistics.plans_built == 2
        assert planner.statistics.parses == 1  # parsing is graph-independent

    def test_clear_caches(self, graph):
        planner = QueryPlanner()
        planner.query(graph, self.TEXT)
        planner.clear_caches()
        planner.query(graph, self.TEXT)
        assert planner.statistics.plans_built == 2

    def test_planner_for_is_shared_and_weak(self):
        import gc
        import weakref

        # a locally created graph (the fixture instance would stay alive
        # in pytest's cache and pin its planner)
        local = Graph()
        assert planner_for(local) is planner_for(local)
        ref = weakref.ref(planner_for(local))
        del local
        gc.collect()
        assert ref() is None

    def test_ask_results_are_cached(self, graph):
        planner = QueryPlanner()
        text = "ASK WHERE { ?o ex:hasValue ?v . }"
        assert planner.query(graph, text).ask
        assert planner.query(graph, text).ask
        assert planner.statistics.result_hits == 1

    def test_ask_short_circuits_at_first_solution(self, graph):
        from repro.semantics.sparql.algebra import Operator

        class CountingOperator(Operator):
            def __init__(self, inner):
                self.inner = inner
                self.yielded = 0

            def solutions(self, g):
                for solution in self.inner.solutions(g):
                    self.yielded += 1
                    yield solution

        plan = build_plan(graph, parse_query("ASK WHERE { ?o ex:hasValue ?v . }"))
        counter = CountingOperator(plan.root)
        plan.root = counter
        assert plan.execute(graph)
        assert counter.yielded == 1  # 10 matches exist; only one is drawn

    def test_rebinding_same_namespace_updates_compact_preference(self):
        # most recent bind wins the base -> prefix reverse map used by
        # compact()/serialisation, without invalidating query caches
        ns = Namespace("http://shared.example/")
        graph = Graph()
        graph.namespaces.bind("a", ns)
        graph.namespaces.bind("b", ns)
        assert graph.namespaces.compact(ns.thing) == "b:thing"
        generation = graph.namespaces.generation
        graph.namespaces.bind("a", ns)
        assert graph.namespaces.compact(ns.thing) == "a:thing"
        assert graph.namespaces.generation == generation


# --------------------------------------------------------------------- #
# routed query paths
# --------------------------------------------------------------------- #

class TestRoutedQueryPaths:
    def test_select_planned_matches_unplanned(self):
        rng = random.Random(5)
        graph = _random_graph(rng)
        patterns = [
            Triple(Variable("a"), EX.p0, Variable("b")),
            Triple(Variable("b"), EX.p1, Variable("c")),
        ]
        planned = select(graph, patterns)
        oracle = select(graph, patterns, use_planner=False)
        assert _solution_multiset(planned) == _solution_multiset(oracle)

    def test_reasoner_query_sees_entailments(self):
        from repro.semantics.rdf.namespace import RDFS
        from repro.semantics.reasoner import Reasoner

        graph = Graph()
        graph.namespaces.bind("ex", EX)
        graph.add(Triple(EX.Sensor, RDFS.subClassOf, EX.Device))
        graph.add(Triple(EX.s1, RDF.type, EX.Sensor))
        reasoner = Reasoner(graph)
        result = reasoner.query("SELECT ?d WHERE { ?d a ex:Device . }")
        assert result.scalars == [EX.s1.value]
        # incremental top-up keeps later queries fresh (and uncached stale
        # results are impossible: materialisation bumps the version)
        graph.add(Triple(EX.s2, RDF.type, EX.Sensor))
        result = reasoner.query("SELECT ?d WHERE { ?d a ex:Device . }")
        assert sorted(result.scalars) == [EX.s1.value, EX.s2.value]

    def test_ontology_layer_query_routes_through_shared_planner(self):
        from repro.core.ontology_layer import OntologySegmentLayer

        layer = OntologySegmentLayer(annotate=False)
        text = "SELECT ?c WHERE { ?c rdfs:subClassOf owl:Thing . }"
        before = layer.query_planner.statistics.queries
        layer.query(text)
        layer.query(text)
        stats = layer.query_planner.statistics
        assert stats.queries == before + 2
        assert stats.result_hits >= 1
