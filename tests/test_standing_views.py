"""Standing views vs the from-scratch oracle.

A materialized standing view must be indistinguishable from re-running its
query with the naive written-order evaluator (``use_planner=False``) — the
only permitted difference is *cost*.  The randomized suite drives views
through mixed mutation streams (adds, removals, prefix rebinds, and
shard-routed record batches through the full middleware) and compares the
served result bag to the oracle after **every** step; the unit tests pin
down which mutations are folded in as O(|delta|) updates and which fall
back to a full re-materialization, the planner serving path
(``view_hits`` replacing result-cache misses), and the push pipeline
(broker-delivered :class:`ViewDelta` payloads reconstructing the result in
a :class:`ViewDeltaWindow` and feeding CEP).
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.cep import AggregatePattern, CepEngine, CepRule, ViewEventSource
from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.ontologies.library import build_unified_ontology
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import Namespace
from repro.semantics.rdf.term import Literal, Variable
from repro.semantics.rdf.triple import Triple
from repro.semantics.sparql.evaluator import query, register_standing
from repro.semantics.sparql.planner import planner_for
from repro.streams.messages import ObservationRecord
from repro.streams.window import ViewDeltaWindow

EX = Namespace("http://example.org/")
ALT = Namespace("http://alternate.example.org/")


def _bag(result):
    """Comparable form of a result: ASK boolean or row multiset."""
    if result.form == "ASK":
        return result.ask
    return Counter(
        frozenset((var.name, str(term)) for var, term in solution.items())
        for solution in result.solutions
    )


def assert_matches_oracle(view, graph, text):
    assert _bag(view.result()) == _bag(query(graph, text, use_planner=False))


# --------------------------------------------------------------------- #
# single-graph maintenance unit tests
# --------------------------------------------------------------------- #


class TestSingleGraphMaintenance:
    @pytest.fixture
    def graph(self):
        g = Graph()
        g.namespaces.bind("ex", EX)
        g.add(Triple(EX.s1, EX.kind, EX.Station))
        g.add(Triple(EX.s1, EX.level, Literal(7)))
        g.add(Triple(EX.s2, EX.kind, EX.Station))
        g.add(Triple(EX.s2, EX.level, Literal(3)))
        return g

    TEXT = """SELECT ?s ?v WHERE {
        ?s ex:kind ex:Station . ?s ex:level ?v . FILTER (?v > 2)
    }"""

    def test_adds_fold_in_as_deltas(self, graph):
        view = register_standing(graph, self.TEXT)
        assert_matches_oracle(view, graph, self.TEXT)
        graph.add(Triple(EX.s3, EX.kind, EX.Station))
        graph.add(Triple(EX.s3, EX.level, Literal(9)))
        assert_matches_oracle(view, graph, self.TEXT)
        # a triple matching no view pattern must not disturb the rows
        graph.add(Triple(EX.s3, EX.note, Literal("calibrated")))
        assert_matches_oracle(view, graph, self.TEXT)
        assert view.delta_updates >= 2
        assert view.full_refreshes == 0

    def test_filter_rejects_delta_rows(self, graph):
        view = register_standing(graph, self.TEXT)
        graph.add(Triple(EX.s4, EX.kind, EX.Station))
        graph.add(Triple(EX.s4, EX.level, Literal(1)))  # fails ?v > 2
        assert_matches_oracle(view, graph, self.TEXT)
        assert view.full_refreshes == 0

    def test_irrelevant_removal_is_ignored(self, graph):
        graph.add(Triple(EX.s1, EX.note, Literal("x")))
        view = register_standing(graph, self.TEXT)
        graph.remove(Triple(EX.s1, EX.note, Literal("x")))
        graph.add(Triple(EX.s5, EX.kind, EX.Station))
        graph.add(Triple(EX.s5, EX.level, Literal(5)))
        assert_matches_oracle(view, graph, self.TEXT)
        # the removal never touched a view pattern: no fallback
        assert view.full_refreshes == 0
        assert view.delta_updates >= 1

    def test_relevant_removal_falls_back_but_stays_correct(self, graph):
        view = register_standing(graph, self.TEXT)
        graph.remove(Triple(EX.s1, EX.level, Literal(7)))
        assert_matches_oracle(view, graph, self.TEXT)
        assert view.full_refreshes == 1

    def test_clear_falls_back_but_stays_correct(self, graph):
        view = register_standing(graph, self.TEXT)
        graph.clear()
        assert_matches_oracle(view, graph, self.TEXT)
        assert view.full_refreshes == 1
        assert view.result().solutions == []

    def test_optional_extension_is_incremental(self, graph):
        text = """SELECT ?s ?v ?n WHERE {
            ?s ex:kind ex:Station . ?s ex:level ?v .
            OPTIONAL { ?s ex:note ?n . }
        }"""
        view = register_standing(graph, text)
        # a delta triple matching only the OPTIONAL block re-extends just
        # the affected base — no full refresh
        graph.add(Triple(EX.s1, EX.note, Literal("drifting")))
        assert_matches_oracle(view, graph, text)
        graph.add(Triple(EX.s1, EX.note, Literal("recalibrated")))
        assert_matches_oracle(view, graph, text)
        assert view.full_refreshes == 0
        assert view.delta_updates == 2

    def test_unsupported_optional_falls_back(self, graph):
        # the block shares no variable with the required part: the delta
        # rules do not apply, so a block-matching add must trigger the
        # full-refresh fallback — and still serve the oracle's bag
        text = """SELECT ?s ?w WHERE {
            ?s ex:kind ex:Station .
            OPTIONAL { ?x ex:warning ?w . }
        }"""
        view = register_standing(graph, text)
        graph.add(Triple(EX.alerts, EX.warning, Literal("dry spell")))
        assert_matches_oracle(view, graph, text)
        assert view.full_refreshes == 1

    def test_prefix_rebind_forces_rebind_and_refresh(self, graph):
        graph.add(Triple(ALT.s9, ALT.kind, ALT.Station))
        graph.add(Triple(ALT.s9, ALT.level, Literal(11)))
        view = register_standing(graph, self.TEXT)
        before = _bag(view.result())
        graph.namespaces.bind("ex", ALT)
        assert_matches_oracle(view, graph, self.TEXT)
        assert view.full_refreshes == 1
        assert _bag(view.result()) != before

    def test_ask_view(self, graph):
        text = "ASK WHERE { ?s ex:level ?v . FILTER (?v > 6) }"
        view = register_standing(graph, text)
        assert view.result().ask is True
        graph.remove(Triple(EX.s1, EX.level, Literal(7)))
        assert view.result().ask is False
        graph.add(Triple(EX.s8, EX.level, Literal(8)))
        assert view.result().ask is True

    def test_modifiers_run_on_every_serve(self, graph):
        text = """SELECT DISTINCT ?v WHERE {
            ?s ex:level ?v .
        } ORDER BY ?v LIMIT 2"""
        view = register_standing(graph, text)
        v = Variable("v")
        assert [s[v] for s in view.result().solutions] == [Literal(3), Literal(7)]
        graph.add(Triple(EX.s0, EX.level, Literal(1)))
        assert [s[v] for s in view.result().solutions] == [Literal(1), Literal(3)]

    def test_subscriber_deltas_reconstruct_the_rows(self, graph):
        view = register_standing(graph, self.TEXT)
        window = ViewDeltaWindow()
        window.apply(_InitialDelta(view.rows()))
        view.subscribe(window.apply)
        graph.add(Triple(EX.s6, EX.kind, EX.Station))
        graph.add(Triple(EX.s6, EX.level, Literal(4)))
        view.refresh()
        graph.remove(Triple(EX.s2, EX.level, Literal(3)))
        view.refresh()
        assert Counter(window.items) == Counter(view.rows())

    def test_refresh_reports_changes_only(self, graph):
        view = register_standing(graph, self.TEXT)
        assert view.refresh() is None  # clean tracker: nothing to do
        graph.add(Triple(EX.s1, EX.unrelated, EX.o))
        delta = view.refresh()
        assert delta is not None and not delta  # moved, but view untouched

    def test_stats_counters(self, graph):
        view = register_standing(graph, self.TEXT, name="levels")
        graph.add(Triple(EX.s7, EX.kind, EX.Station))
        view.refresh()
        stats = view.stats()
        assert stats["name"] == "levels"
        assert stats["form"] == "SELECT"
        assert stats["delta_updates"] == view.delta_updates
        assert stats["full_refreshes"] == view.full_refreshes
        assert stats["rows"] == len(view.rows())


class _InitialDelta:
    """Seed payload for a window attached after materialization."""

    def __init__(self, rows):
        self.added = list(rows)
        self.removed = []


# --------------------------------------------------------------------- #
# planner serving path
# --------------------------------------------------------------------- #


class TestPlannerServing:
    def test_registered_query_is_served_from_the_view(self):
        g = Graph()
        g.namespaces.bind("ex", EX)
        g.add(Triple(EX.a, EX.p, Literal(1)))
        text = "SELECT ?s ?v WHERE { ?s ex:p ?v . }"
        planner = planner_for(g)
        register_standing(g, text)
        baseline_misses = planner.statistics.result_misses
        for value in range(2, 6):
            g.add(Triple(EX.a, EX.p, Literal(value)))
            served = query(g, text)
            assert _bag(served) == _bag(query(g, text, use_planner=False))
        # under continuous writes the result cache would miss every time;
        # the view absorbs all of it
        assert planner.statistics.view_hits >= 4
        assert planner.statistics.result_misses == baseline_misses

    def test_register_is_idempotent(self):
        g = Graph()
        g.namespaces.bind("ex", EX)
        text = "ASK WHERE { ?s ex:p ?v . }"
        first = register_standing(g, text)
        second = register_standing(g, text)
        assert first is second
        assert len(planner_for(g).standing_views()) == 1

    def test_clear_caches_keeps_views(self):
        g = Graph()
        g.namespaces.bind("ex", EX)
        text = "ASK WHERE { ?s ex:p ?v . }"
        view = register_standing(g, text)
        planner = planner_for(g)
        planner.clear_caches()
        assert view in planner.standing_views()
        assert "views" in planner.stats()


# --------------------------------------------------------------------- #
# randomized equivalence: single graph under mixed mutation streams
# --------------------------------------------------------------------- #

PREDICATES = [EX.p0, EX.p1, EX.p2, EX.p3]


def _random_graph(rng):
    g = Graph()
    g.namespaces.bind("ex", EX)
    for _ in range(rng.randint(20, 60)):
        g.add(_random_triple(rng))
    return g


def _random_triple(rng):
    subject = EX[f"s{rng.randrange(10)}"]
    predicate = rng.choice(PREDICATES)
    if predicate == EX.p3:
        obj = Literal(rng.randint(0, 15))
    else:
        obj = rng.choice([EX[f"o{i}"] for i in range(5)] + [EX[f"s{i}"] for i in range(4)])
    return Triple(subject, predicate, obj)


def _random_query(rng):
    node_vars = ["?a", "?b", "?c"]
    value_vars = ["?v", "?w"]

    def pattern():
        s = rng.choice(node_vars + ["ex:s0", "ex:s1", "ex:s2"])
        p = rng.choice(["ex:p0", "ex:p1", "ex:p2", "ex:p3", "?p"])
        if p in ("ex:p3", "?p"):
            o = rng.choice(value_vars + [str(rng.randint(0, 15))])
        else:
            o = rng.choice(node_vars + value_vars + ["ex:o0", "ex:o1", "ex:s3"])
        return f"{s} {p} {o}"

    body = " . ".join(pattern() for _ in range(rng.randint(2, 4)))
    optional = ""
    if rng.random() < 0.5:
        optional = " OPTIONAL { " + pattern() + " . }"
    filter_clause = ""
    if rng.random() < 0.5:
        var = rng.choice(node_vars + value_vars)
        op = rng.choice(["<", "<=", ">", ">=", "=", "!="])
        filter_clause = f" FILTER ({var} {op} {rng.randint(0, 15)})"
    distinct = "DISTINCT " if rng.random() < 0.3 else ""
    form = f"SELECT {distinct}*" if rng.random() < 0.85 else "ASK"
    return f"{form} WHERE {{ {body} .{optional}{filter_clause} }}"


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_mutation_stream(self, seed):
        rng = random.Random(seed)
        graph = _random_graph(rng)
        texts = [_random_query(rng) for _ in range(3)]
        views = [register_standing(graph, text) for text in texts]
        for _ in range(40):
            roll = rng.random()
            if roll < 0.62:
                graph.add(_random_triple(rng))
            elif roll < 0.9:
                triples = list(graph)
                if triples:
                    graph.remove(rng.choice(triples))
            elif roll < 0.97:
                # batch of adds between refreshes
                for _ in range(rng.randint(2, 6)):
                    graph.add(_random_triple(rng))
            else:
                # rebind ex to a different namespace and back: every CURIE
                # in every view resolves differently for one step
                target = ALT if rng.random() < 0.5 else EX
                graph.namespaces.bind("ex", target)
            for view, text in zip(views, texts):
                assert_matches_oracle(view, graph, text)
        graph.namespaces.bind("ex", EX)
        for view, text in zip(views, texts):
            assert_matches_oracle(view, graph, text)
            # the maintenance machinery actually ran
            assert view.delta_updates + view.full_refreshes > 0


# --------------------------------------------------------------------- #
# shard-routed batches through the middleware
# --------------------------------------------------------------------- #

DISTRICTS = ["thabo", "mangaung", "xhariep", "lejwe"]
PROPERTIES = [
    ("soil moisture", "percent", 20.0),
    ("rainfall", "mm", 3.0),
    ("air temperature", "degC", 18.0),
]

STANDING_QUERIES = [
    """SELECT ?obs ?v WHERE {
        ?obs rdf:type ssn:Observation .
        ?obs ssn:hasResult ?r .
        ?r ssn:hasValue ?v .
        FILTER (?v > 24)
    }""",
    """SELECT DISTINCT ?sensor WHERE {
        ?obs ssn:observedBy ?sensor .
        ?sensor rdf:type ssn:SensingDevice .
    }""",
    """SELECT ?obs ?p WHERE {
        ?obs rdf:type ssn:Observation .
        OPTIONAL { ?obs ssn:observedProperty ?p }
    }""",
    """ASK WHERE { ?s rdf:type ssn:Observation }""",
]


def _build_middleware(shards, **config_kwargs):
    return SemanticMiddleware(
        library=build_unified_ontology(materialize=True),
        config=MiddlewareConfig(shards=shards, cep_per_record=False, **config_kwargs),
    )


def _record(rng, index):
    district = rng.choice(DISTRICTS)
    name, unit, base = rng.choice(PROPERTIES)
    return ObservationRecord(
        source_id=f"{district}-sensor-{rng.randrange(3):02d}",
        source_kind="wsn_node",
        property_name=name,
        value=base + rng.randrange(12),
        unit=unit,
        timestamp=600.0 * index,
        metadata={"area": district},
    )


class TestShardedStanding:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_sharded_views_match_unregistered_twin(self, seed):
        rng = random.Random(seed)
        standing = _build_middleware(shards=4)
        plain = _build_middleware(shards=4)
        views = []
        for text in STANDING_QUERIES:
            views.extend(standing.register_standing(text))
        index = 0
        for _ in range(4):
            batch = [_record(rng, index + i) for i in range(30)]
            index += len(batch)
            standing.ingest_batch(batch)
            plain.ingest_batch(batch)
            for text in STANDING_QUERIES:
                assert _bag(standing.query(text)) == _bag(plain.query(text))
        # an add-only record stream must never force a re-materialization
        assert sum(v.full_refreshes for v in views) == 0
        assert sum(v.delta_updates for v in views) > 0
        standing.close()
        plain.close()

    def test_only_dirty_shards_fold_deltas(self):
        rng = random.Random(7)
        middleware = _build_middleware(shards=4)
        (view_per_shard) = middleware.register_standing(STANDING_QUERIES[0])
        assert len(view_per_shard) == 4
        # route every record to one district -> exactly one dirty shard
        records = []
        for i in range(10):
            record = _record(rng, i)
            record.metadata["area"] = "thabo"
            record.source_id = "thabo-sensor-00"
            records.append(record)
        middleware.ingest_batch(records)
        middleware.query(STANDING_QUERIES[0])
        touched = [v for v in view_per_shard if len(v.rows()) > 0]
        assert len(touched) == 1
        middleware.close()

    def test_single_shard_registration_uses_plain_view(self):
        middleware = _build_middleware(shards=1)
        views = middleware.register_standing(STANDING_QUERIES[3])
        assert len(views) == 1
        rng = random.Random(3)
        middleware.ingest_batch([_record(rng, i) for i in range(5)])
        assert middleware.query(STANDING_QUERIES[3]).ask is True
        middleware.close()


# --------------------------------------------------------------------- #
# the push pipeline: broker deltas -> ViewDeltaWindow -> CEP
# --------------------------------------------------------------------- #


class TestPushPipeline:
    def test_view_deltas_reach_cep_over_the_broker(self):
        middleware = _build_middleware(shards=2)
        middleware.register_standing(
            STANDING_QUERIES[0], name="hot-obs", push=True
        )
        engine = CepEngine(feedback=False)
        engine.add_rule(
            CepRule(
                name="many-hot-observations",
                pattern=AggregatePattern(
                    "hot_obs.count", aggregate="last", op=">=", threshold=8.0
                ),
                window_seconds=86400.0 * 30,
                derived_event_type="hot_spell",
                cooldown_seconds=0.0,
            )
        )
        source = ViewEventSource(engine, "hot_obs", value_var="?v")
        source.attach(middleware.broker, "views/hot-obs")

        rng = random.Random(11)
        derived = []
        index = 0
        for _ in range(3):
            batch = []
            for _ in range(6):
                record = _record(rng, index)
                record.value = 30.0  # guaranteed > 24
                batch.append(record)
                index += 1
            assert middleware.ingest_batch(batch)
        # broker delivery rides the simulation scheduler: advance it
        middleware.scheduler.run_until(600.0 * index + 10.0)
        assert len(source.window) >= 8
        # the window mirrors the federated standing result without any
        # re-polling: compare against the served rows
        total_rows = sum(
            len(v.rows()) for v in middleware.ontology_layer.standing_views()
        )
        assert len(source.window) == total_rows
        assert source.deltas_seen > 0
        # drive one more delta through and catch the derived event
        engine.on_derived_event(derived.append)
        record = _record(rng, index)
        record.value = 31.0
        middleware.ingest_record(record)
        middleware.scheduler.run_until(600.0 * (index + 2))
        assert any(d.event_type == "hot_spell" for d in derived)
        middleware.close()

    def test_mid_stream_attach_seeds_from_view(self):
        """Regression: a source attached after the view was populated
        started with an empty window — its gauge undercounted and every
        removal of a pre-attach row raised KeyError in the window."""
        middleware = _build_middleware(shards=1)
        [view] = middleware.register_standing(
            STANDING_QUERIES[0], name="hot-obs", push=True
        )
        rng = random.Random(5)
        index = 0
        batch = []
        for _ in range(6):
            record = _record(rng, index)
            record.value = 30.0
            batch.append(record)
            index += 1
        middleware.ingest_batch(batch)
        middleware.scheduler.run_until(600.0 * index + 10.0)
        assert len(view.rows()) == 6

        engine = CepEngine(feedback=False)
        late = ViewEventSource(engine, "hot_obs", value_var="?v")
        late.attach(middleware.broker, "views/hot-obs", view=view)
        # seeded: correct from the first gauge, before any delta arrives
        assert len(late.window) == 6
        # and later deltas keep it in lock-step with the served rows
        record = _record(rng, index)
        record.value = 30.0
        middleware.ingest_record(record)
        middleware.scheduler.run_until(600.0 * (index + 2))
        assert len(late.window) == len(view.rows()) == 7
        assert late.window.unseen_removals == 0
        middleware.close()

    def test_aggregate_pattern_semantics(self):
        from repro.cep.event import Event

        pattern = AggregatePattern("gauge", aggregate="mean", op=">=", threshold=5.0,
                                   min_count=2)
        events = [Event("gauge", value=v, timestamp=float(i)) for i, v in
                  enumerate([2.0, 4.0])]
        assert pattern.evaluate(events, 2.0) is None  # mean 3 < 5
        events.append(Event("gauge", value=12.0, timestamp=2.0))
        match = pattern.evaluate(events, 3.0)
        assert match is not None and 0.5 <= match.score <= 1.0
        assert pattern.evaluate(events[:1], 1.0) is None  # below min_count
        count = AggregatePattern("gauge", aggregate="count", op=">", threshold=2.0)
        assert count.evaluate(events, 3.0) is not None
        with pytest.raises(ValueError):
            AggregatePattern("gauge", aggregate="median")
        with pytest.raises(ValueError):
            AggregatePattern("gauge", op="!=")
        assert "mean(gauge) >= 5.0" == pattern.describe()

    def test_view_delta_window_is_a_multiset(self):
        window = ViewDeltaWindow()
        window.apply(_Delta(added=["r1", "r1", "r2"], removed=[]))
        assert len(window) == 3
        window.apply(_Delta(added=[], removed=["r1"]))
        assert Counter(window.items) == Counter({"r1": 1, "r2": 1})
        window.apply(_Delta(added=[], removed=["r1", "r2"]))
        assert len(window) == 0
        assert window.deltas_applied == 3


class _Delta:
    def __init__(self, added, removed):
        self.added = added
        self.removed = removed
