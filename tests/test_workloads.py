"""Tests for the climate generator and deployment scenarios."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.climate import ClimateGenerator, DroughtEpisode
from repro.workloads.scenario import FREE_STATE_DISTRICTS, build_free_state_scenario
from repro.streams.scheduler import DAY


class TestDroughtEpisode:
    def test_validation(self):
        with pytest.raises(ValueError):
            DroughtEpisode(100, 50)
        with pytest.raises(ValueError):
            DroughtEpisode(0, 10, severity=0.0)

    def test_intensity_ramps(self):
        episode = DroughtEpisode(100, 200, severity=0.8, ramp_days=20)
        assert episode.intensity(50) == 0.0
        assert episode.intensity(105) < episode.intensity(150)
        assert episode.intensity(150) == pytest.approx(0.8)
        assert episode.intensity(250) == 0.0

    def test_contains(self):
        episode = DroughtEpisode(100, 200)
        assert episode.contains(150) and not episode.contains(99)


class TestClimateGenerator:
    def test_deterministic_for_seed(self):
        a = ClimateGenerator(seed=4).daily_series("rainfall", 200)
        b = ClimateGenerator(seed=4).daily_series("rainfall", 200)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ClimateGenerator(seed=4).daily_series("rainfall", 200)
        b = ClimateGenerator(seed=5).daily_series("rainfall", 200)
        assert not np.array_equal(a, b)

    def test_summer_wetter_than_winter(self):
        climate = ClimateGenerator(seed=1)
        rain = climate.daily_series("rainfall", 365)
        winter = rain[0:150].mean()       # starts in July (dry season)
        summer = rain[170:280].mean()     # December - March
        assert summer > winter

    def test_drought_suppresses_rainfall(self):
        normal = ClimateGenerator(seed=2)
        drought = ClimateGenerator(seed=2, episodes=[DroughtEpisode(170, 290, 0.9)])
        assert drought.daily_series("rainfall", 300)[180:280].sum() < \
            normal.daily_series("rainfall", 300)[180:280].sum()

    def test_drought_depletes_soil_moisture(self):
        normal = ClimateGenerator(seed=2)
        drought = ClimateGenerator(seed=2, episodes=[DroughtEpisode(170, 290, 0.9)])
        assert drought.daily_series("soil_moisture", 300)[250:290].mean() < \
            normal.daily_series("soil_moisture", 300)[250:290].mean()

    def test_identical_outside_episodes(self):
        normal = ClimateGenerator(seed=2)
        drought = ClimateGenerator(seed=2, episodes=[DroughtEpisode(500, 600, 0.9)])
        assert np.allclose(
            normal.daily_series("rainfall", 300), drought.daily_series("rainfall", 300)
        )

    def test_temperature_diurnal_cycle(self):
        climate = ClimateGenerator(seed=3)
        noon = climate.true_value("air_temperature", (-29.1, 26.2), 200 * DAY + 13 * 3600)
        night = climate.true_value("air_temperature", (-29.1, 26.2), 200 * DAY + 2 * 3600)
        assert noon > night

    def test_solar_radiation_zero_at_night(self):
        climate = ClimateGenerator(seed=3)
        assert climate.true_value("solar_radiation", (-29.1, 26.2), 100 * DAY + 1 * 3600) == 0.0
        assert climate.true_value("solar_radiation", (-29.1, 26.2), 200 * DAY + 12 * 3600) > 0.0

    def test_all_properties_finite_and_in_range(self):
        climate = ClimateGenerator(seed=5, episodes=[DroughtEpisode(50, 120)])
        for prop, low, high in [
            ("air_temperature", -20, 55), ("soil_moisture", 0, 60),
            ("relative_humidity", 0, 100), ("rainfall", 0, 200),
            ("wind_speed", 0, 50), ("barometric_pressure", 900, 1100),
            ("water_level", 0, 7000), ("vegetation_index", 0, 1),
            ("solar_radiation", 0, 1400), ("evapotranspiration", 0, 30),
            ("soil_temperature", -10, 50), ("wind_direction", 0, 360),
        ]:
            for day in (10, 80, 200, 300):
                value = climate.true_value(prop, (-29.1, 26.2), day * DAY + 12 * 3600)
                assert low <= value <= high, (prop, day, value)

    def test_unknown_property_rejected(self):
        with pytest.raises(KeyError):
            ClimateGenerator().true_value("ozone", (-29.1, 26.2), 0.0)

    def test_drought_truth_mask(self):
        climate = ClimateGenerator(seed=1, episodes=[DroughtEpisode(100, 150)])
        truth = climate.drought_truth(200)
        assert truth[120] and not truth[50]
        assert truth.sum() == 51

    def test_spatial_variation(self):
        climate = ClimateGenerator(seed=1)
        here = climate.daily_series("rainfall", 120, (-29.1, 26.2))
        there = climate.daily_series("rainfall", 120, (-28.0, 27.5))
        assert not np.array_equal(here, there)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=360))
    def test_property_rainfall_non_negative(self, seed, day):
        climate = ClimateGenerator(seed=seed % 50)
        assert climate.daily_rainfall(float(day)) >= 0.0


class TestScenario:
    def test_default_scenario_structure(self):
        scenario = build_free_state_scenario(motes_per_district=4, observers_per_district=3,
                                             stations_per_district=1, seed=1)
        assert len(scenario.districts) == 3
        assert scenario.total_motes == 12
        assert scenario.total_observers == 9
        for district in scenario.districts:
            assert district.name in FREE_STATE_DISTRICTS
            assert district.network.alive_count == 4
            assert len(district.stations) == 1

    def test_district_lookup(self):
        scenario = build_free_state_scenario(districts=["Mangaung"], motes_per_district=2,
                                             observers_per_district=1, seed=1)
        assert scenario.district("Mangaung").name == "Mangaung"
        with pytest.raises(KeyError):
            scenario.district("Atlantis")

    def test_every_fourth_mote_has_extended_modalities(self):
        scenario = build_free_state_scenario(districts=["Mangaung"], motes_per_district=8,
                                             observers_per_district=1, seed=1)
        network = scenario.district("Mangaung").network
        extended = [node for node in network.nodes.values() if "water_level" in node.sensors]
        assert len(extended) == 2

    def test_mote_profiles_are_heterogeneous(self):
        scenario = build_free_state_scenario(districts=["Mangaung"], motes_per_district=8,
                                             observers_per_district=1, seed=1)
        profiles = {node.profile.name for node in scenario.district("Mangaung").network.nodes.values()}
        assert len(profiles) >= 3

    def test_scenario_wiring_produces_heterogeneous_records(self):
        scenario = build_free_state_scenario(districts=["Mangaung"], motes_per_district=6,
                                             observers_per_district=2, seed=1)
        outcomes = scenario.district("Mangaung").network.sample_and_deliver(12 * 3600.0)
        records = [record for outcome in outcomes for record in outcome.records]
        names = {record.property_name for record in records}
        assert len(names) > 6  # several spellings for a handful of properties
