"""Tests for the semantic middleware: mediator, annotator, layers, facade."""

import pytest

from repro.core.annotation import SemanticAnnotator
from repro.core.mediator import Mediator, passthrough_mediator
from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.core.services import SemanticService, ServiceRegistry
from repro.ik.knowledge_base import IndigenousKnowledgeBase
from repro.ontologies import build_unified_ontology
from repro.ontologies.vocabulary import DROUGHT, ENVO, IK, SSN
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import RDF
from repro.streams.messages import ObservationRecord
from repro.streams.scheduler import DAY


@pytest.fixture(scope="module")
def library():
    return build_unified_ontology(materialize=True)


def record(property_name="Bodenfeuchte", value=15.0, unit="percent",
           source_kind="wsn_mote", source_id="Mangaung-mote-01", timestamp=3600.0):
    return ObservationRecord(
        source_id=source_id, source_kind=source_kind, property_name=property_name,
        value=value, unit=unit, timestamp=timestamp, location=(-29.1, 26.2),
    )


class TestMediator:
    def test_resolves_german_term(self):
        outcome = Mediator().mediate(record("Bodenfeuchte", 15.0, "percent"))
        assert outcome.resolved
        assert outcome.observation.property_key == "soil_moisture"
        assert outcome.observation.area == "Mangaung"

    def test_unit_conversion_to_canonical(self):
        outcome = Mediator().mediate(record("Hoehe", 250.0, "cm"))
        assert outcome.observation.property_key == "water_level"
        assert outcome.observation.value == pytest.approx(2500.0)
        assert outcome.observation.unit == "mm"

    def test_fahrenheit_station_report(self):
        outcome = Mediator().mediate(record("Dry Bulb Temperature", 77.0, "degF"))
        assert outcome.observation.property_key == "air_temperature"
        assert outcome.observation.value == pytest.approx(25.0)

    def test_unresolved_term_reported(self):
        mediator = Mediator()
        outcome = mediator.mediate(record("quantum_flux", 1.0, "percent"))
        assert not outcome.resolved
        assert "unresolved term" in outcome.failure_reason
        assert mediator.statistics.unresolved_term == 1

    def test_wrong_dimension_unit_rejected_when_strict(self):
        outcome = Mediator(strict_units=True).mediate(record("Bodenfeuchte", 15.0, "degF"))
        assert not outcome.resolved

    def test_lenient_units_pass_value_through(self):
        outcome = Mediator(strict_units=False).mediate(record("Bodenfeuchte", 15.0, "degF"))
        assert outcome.resolved
        assert outcome.observation.value == pytest.approx(15.0)

    def test_out_of_range_value_rejected(self):
        outcome = Mediator().mediate(record("Bodenfeuchte", 1e9, "percent"))
        assert not outcome.resolved

    def test_ik_sighting_mediation(self):
        outcome = Mediator().mediate(record(
            "sifennefene_worms", 0.9, None, source_kind="ik_sighting",
            source_id="Mangaung-farmer-001",
        ))
        assert outcome.resolved
        assert outcome.observation.is_indicator_sighting

    def test_unknown_indicator_rejected(self):
        outcome = Mediator().mediate(record(
            "unknown_sign", 0.9, None, source_kind="ik_sighting"))
        assert not outcome.resolved

    def test_statistics_resolution_rate(self):
        mediator = Mediator()
        mediator.mediate_many([
            record("Bodenfeuchte"), record("Stav", 1.2, "m"), record("nonsense-xyz"),
        ])
        assert mediator.statistics.records_seen == 3
        assert mediator.statistics.resolution_rate == pytest.approx(2 / 3)
        assert mediator.statistics.by_method.get("synonym", 0) >= 2

    def test_passthrough_mediator_fails_on_synonyms(self):
        mediator = passthrough_mediator()
        assert not mediator.mediate(record("Bodenfeuchte")).resolved
        assert mediator.mediate(record("soil_moisture")).resolved


class TestAnnotator:
    def test_observation_annotation_follows_ssn(self, library):
        graph = library.graph.copy()
        annotator = SemanticAnnotator(graph)
        outcome = Mediator().mediate(record("Bodenfeuchte", 15.0, "percent"))
        result = annotator.annotate(outcome.observation)
        assert result.triples_added >= 10
        assert (result.observation_iri, RDF.type, SSN.Observation) in graph
        assert (result.observation_iri, SSN.observedProperty, ENVO.SoilMoisture) in graph
        assert (result.observation_iri, SSN.observedBy, result.sensor_iri) in graph

    def test_sighting_annotation(self, library):
        graph = library.graph.copy()
        annotator = SemanticAnnotator(graph, knowledge_base=IndigenousKnowledgeBase())
        outcome = Mediator().mediate(record(
            "mutiga_tree_flowering", 0.8, None, source_kind="ik_sighting",
            source_id="Mangaung-farmer-002",
        ))
        result = annotator.annotate(outcome.observation)
        assert (result.observation_iri, RDF.type, IK.IndicatorSighting) in graph
        assert annotator.annotated_sightings == 1

    def test_annotated_observations_are_queryable(self, library):
        graph = library.graph.copy()
        annotator = SemanticAnnotator(graph)
        for value in (10.0, 30.0):
            outcome = Mediator().mediate(record("Bodenfeuchte", value, "percent"))
            annotator.annotate(outcome.observation)
        from repro.semantics.sparql.evaluator import query

        result = query(graph, """
            SELECT ?obs ?v WHERE {
                ?obs ssn:observedProperty envo:SoilMoisture .
                ?obs ssn:hasResult ?r .
                ?r ssn:hasValue ?v .
                FILTER (?v > 20)
            }
        """)
        assert len(result) == 1


class TestServiceRegistry:
    def test_register_and_find(self):
        registry = ServiceRegistry(Graph())
        registry.register(SemanticService(
            name="forecasts", topic="forecast/#", description="drought forecasts",
            provides=[DROUGHT.DroughtForecast],
        ))
        assert registry.get("forecasts") is not None
        assert len(registry.find_providing(DROUGHT.DroughtForecast)) == 1
        assert registry.find_providing(DROUGHT.DroughtAlert) == []

    def test_unregister(self):
        registry = ServiceRegistry(Graph())
        registry.register(SemanticService("x", "x/#", "test"))
        assert registry.unregister("x")
        assert not registry.unregister("x")
        assert len(registry) == 0

    def test_find_by_layer(self):
        registry = ServiceRegistry()
        registry.register(SemanticService("a", "a/#", "", layer="application"))
        registry.register(SemanticService("b", "b/#", "", layer="ontology-segment"))
        assert [s.name for s in registry.find_by_layer("application")] == ["a"]


class TestSemanticMiddleware:
    @pytest.fixture
    def middleware(self, library):
        return SemanticMiddleware(
            library=library,
            config=MiddlewareConfig(annotate_observations=True, broker_latency=0.0),
        )

    def test_ingest_publishes_canonical_event(self, middleware):
        received = []
        middleware.subscribe_property("soil_moisture", received.append)
        event = middleware.ingest_record(record("Bodenfeuchte", 14.0, "percent"))
        assert event is not None
        assert received and received[0].event_type == "soil_moisture"
        assert received[0].area == "Mangaung"

    def test_unresolved_record_produces_no_event(self, middleware):
        assert middleware.ingest_record(record("nonsense-term")) is None

    def test_heterogeneous_sources_converge_on_topic(self, middleware):
        received = []
        middleware.subscribe_property("water_level", received.append)
        middleware.ingest_records([
            record("Hoehe", 120.0, "cm", source_id="Mangaung-gauge-1"),
            record("Stav", 1.2, "m", source_id="Mangaung-gauge-2"),
            record("water level", 1200.0, "mm", source_id="Mangaung-gauge-3"),
        ])
        assert len(received) == 3
        values = sorted(event.value for event in received)
        assert values == pytest.approx([1200.0, 1200.0, 1200.0])

    def test_ik_sighting_reaches_knowledge_base_and_cep(self, middleware):
        derived = []
        middleware.subscribe_derived("ik_dry_indication", derived.append)
        for index in range(4):
            middleware.ingest_record(record(
                "sifennefene_worms", 0.9, None, source_kind="ik_sighting",
                source_id=f"Mangaung-farmer-{index:03d}", timestamp=(index + 1) * DAY,
            ))
        assert middleware.knowledge_base.sightings
        assert derived and derived[0].rule_name == "ik_sifennefene_worms"

    def test_inject_aggregate_event_triggers_sensor_rules(self, middleware):
        from repro.cep.event import Event

        derived = []
        middleware.subscribe_derived("soil_drying_process", derived.append)
        for day in range(1, 9):
            middleware.inject_event(Event(
                "soil_moisture_anomaly", -1.8, day * DAY,
                source_id="aggregate:Mangaung", area="Mangaung",
            ))
        assert derived

    def test_query_over_annotations(self, middleware):
        middleware.ingest_record(record("PLUVIO", 5.0, "mm", source_id="Mangaung-mote-07"))
        result = middleware.query(
            "SELECT ?obs WHERE { ?obs ssn:observedProperty envo:Rainfall . }"
        )
        assert len(result) >= 1

    def test_services_exposed(self, middleware):
        names = {service.name for service in middleware.services()}
        assert {"canonical-observations", "derived-events", "ontology-query"} <= names

    def test_statistics_snapshot(self, middleware):
        middleware.ingest_record(record("Bodenfeuchte"))
        stats = middleware.statistics()
        assert stats["mediation"].records_seen >= 1
        assert stats["graph_triples"] > 1000

    def test_register_custom_rule(self, middleware):
        from repro.cep.dsl import parse_rule

        middleware.register_rule(parse_rule("""
            RULE frost_watch
            WHEN air_temperature BELOW 0 WITHIN 2 DAYS
            EMIT frost_event
        """))
        assert "frost_watch" in middleware.ontology_layer.cep.rules

    def test_annotation_can_be_disabled(self, library):
        middleware = SemanticMiddleware(
            library=library,
            config=MiddlewareConfig(annotate_observations=False, broker_latency=0.0),
        )
        before = len(middleware.graph)
        middleware.ingest_record(record("Bodenfeuchte"))
        assert len(middleware.graph) == before


class TestInterfaceLayer:
    def test_cloud_polling_path(self, library):
        from repro.dews.cloud import CloudStore
        from repro.streams.messages import SenMLCodec
        from repro.streams.scheduler import SimulationScheduler

        scheduler = SimulationScheduler()
        middleware = SemanticMiddleware(
            scheduler=scheduler, library=library,
            config=MiddlewareConfig(annotate_observations=False, cloud_poll_interval=600.0,
                                    broker_latency=0.0),
        )
        cloud = CloudStore()
        middleware.attach_cloud_store(cloud)
        received = []
        middleware.subscribe_property("rainfall", received.append)
        cloud.ingest(SenMLCodec.encode([record("Niederschlag", 7.0, "mm",
                                               source_id="Mangaung-mote-02")]), 0.0)
        scheduler.run_until(1200.0)
        assert middleware.interface_layer.statistics.records_decoded == 1
        assert received and received[0].value == pytest.approx(7.0)

    def test_decode_failure_counted(self, library):
        from repro.core.interface_layer import InterfaceProtocolLayer
        from repro.dews.cloud import CloudStore

        cloud = CloudStore()
        cloud.ingest("this is not json", 0.0)
        layer = InterfaceProtocolLayer(cloud, sink=lambda r: None)
        layer.poll()
        assert layer.statistics.decode_failures == 1
