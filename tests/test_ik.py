"""Tests for the indigenous-knowledge layer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cep.engine import CepEngine
from repro.cep.event import Event
from repro.ik.elicitation import ElicitationCampaign
from repro.ik.fuzzy import (
    SIGHTING_INTENSITY,
    FuzzyVariable,
    TrapezoidalMembership,
    TriangularMembership,
    aggregate_evidence,
    noisy_or,
)
from repro.ik.indicators import (
    INDICATOR_CATALOGUE,
    IndicatorActivityModel,
    IndicatorDefinition,
    indicators_implying,
)
from repro.ik.knowledge_base import IndigenousKnowledgeBase
from repro.ik.rules import derive_cep_rules, sensor_process_rules
from repro.sensors.modality import ConstantEnvironment
from repro.semantics.rdf.graph import Graph
from repro.streams.messages import ObservationRecord
from repro.streams.scheduler import DAY
from repro.workloads.climate import ClimateGenerator, DroughtEpisode


def sighting(indicator, observer="obs-1", intensity=0.8, day=10.0):
    return ObservationRecord(
        source_id=observer, source_kind="ik_sighting", property_name=indicator,
        value=intensity, unit=None, timestamp=day * DAY,
    )


class TestCatalogue:
    def test_catalogue_has_both_conditions(self):
        assert len(indicators_implying("drier")) >= 5
        assert len(indicators_implying("wetter")) >= 2

    def test_reliabilities_in_range(self):
        for definition in INDICATOR_CATALOGUE.values():
            assert 0.0 <= definition.reliability <= 1.0
            assert definition.lead_time_days > 0

    def test_invalid_definition_rejected(self):
        with pytest.raises(ValueError):
            IndicatorDefinition(
                key="x", label="x", category="plant", implies="sideways",
                reliability=0.5, lead_time_days=10, driver="rainfall", driver_direction=-1,
            )
        with pytest.raises(ValueError):
            IndicatorDefinition(
                key="x", label="x", category="plant", implies="drier",
                reliability=1.5, lead_time_days=10, driver="rainfall", driver_direction=-1,
            )


class TestActivityModel:
    def test_unknown_indicator_inactive(self):
        model = IndicatorActivityModel(ConstantEnvironment())
        assert model.activity("martian_dust", (-29, 26), 0.0) == 0.0

    def test_dry_conditions_raise_dry_indicator_activity(self):
        dry = ConstantEnvironment({"soil_moisture": 4.0, "rainfall": 0.0, "water_level": 900.0,
                                   "air_temperature": 32.0, "relative_humidity": 20.0})
        normal = ConstantEnvironment({"soil_moisture": 24.0, "rainfall": 2.0, "water_level": 2600.0,
                                      "air_temperature": 24.0, "relative_humidity": 55.0})
        model_dry = IndicatorActivityModel(dry)
        model_normal = IndicatorActivityModel(normal)
        assert model_dry.activity("sifennefene_worms", (-29, 26), 0.0) > \
            model_normal.activity("sifennefene_worms", (-29, 26), 0.0)

    def test_activity_is_probability(self):
        climate = ClimateGenerator(seed=1, episodes=[DroughtEpisode(100, 200)])
        model = IndicatorActivityModel(climate, reference=ClimateGenerator(seed=1))
        for key in INDICATOR_CATALOGUE:
            for day in (10, 150, 300):
                value = model.activity(key, (-29.1, 26.2), day * DAY)
                assert 0.0 <= value <= 1.0

    def test_drought_raises_dry_indicator_activity_vs_normal_year(self):
        climate = ClimateGenerator(seed=2, episodes=[DroughtEpisode(160, 300, 0.9)])
        model = IndicatorActivityModel(climate, reference=ClimateGenerator(seed=2))
        location = (-29.1, 26.2)
        # compare mid-episode against the same calendar window one year later
        in_drought = model.activity("sifennefene_worms", location, 220 * DAY)
        next_year = model.activity("sifennefene_worms", location, (220 + 365) * DAY)
        assert in_drought >= next_year


class TestFuzzy:
    def test_triangular_membership(self):
        membership = TriangularMembership(0.0, 0.5, 1.0)
        assert membership.membership(0.5) == 1.0
        assert membership.membership(0.25) == pytest.approx(0.5)
        assert membership.membership(2.0) == 0.0

    def test_triangular_validation(self):
        with pytest.raises(ValueError):
            TriangularMembership(1.0, 0.5, 0.0)

    def test_trapezoidal_membership(self):
        membership = TrapezoidalMembership(0.0, 0.2, 0.8, 1.0)
        assert membership.membership(0.5) == 1.0
        assert membership.membership(0.1) == pytest.approx(0.5)
        assert membership.membership(1.5) == 0.0

    def test_fuzzy_variable_best_term(self):
        assert SIGHTING_INTENSITY.best_term(0.9) == "many"
        assert SIGHTING_INTENSITY.best_term(0.5) == "some"
        assert SIGHTING_INTENSITY.best_term(0.05) == "few"

    def test_fuzzy_variable_requires_terms(self):
        with pytest.raises(ValueError):
            FuzzyVariable("empty", {})

    def test_noisy_or(self):
        assert noisy_or([]) == 0.0
        assert noisy_or([0.5, 0.5]) == pytest.approx(0.75)
        assert noisy_or([1.0, 0.2]) == 1.0

    def test_aggregate_evidence_net(self):
        combined = aggregate_evidence([("drier", 0.6), ("drier", 0.4), ("wetter", 0.3)])
        assert combined["drier"] == pytest.approx(0.76)
        assert combined["net_drier"] == pytest.approx(0.76 - 0.3)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["drier", "wetter"]),
                              st.floats(min_value=0, max_value=1, allow_nan=False)), max_size=20))
    def test_property_aggregate_bounds(self, pairs):
        combined = aggregate_evidence(pairs)
        assert -1.0 <= combined["net_drier"] <= 1.0
        for condition in ("drier", "wetter"):
            if condition in combined:
                assert 0.0 <= combined[condition] <= 1.0


class TestKnowledgeBase:
    def test_register_known_sighting(self):
        kb = IndigenousKnowledgeBase()
        evidence = kb.register_sighting(sighting("sifennefene_worms"))
        assert evidence is not None
        assert evidence.condition == "drier"
        assert 0.0 < evidence.strength <= 1.0

    def test_unknown_indicator_ignored(self):
        kb = IndigenousKnowledgeBase()
        assert kb.register_sighting(sighting("unknown_sign")) is None
        assert kb.sightings == []

    def test_aggregate_corroboration_discount(self):
        kb = IndigenousKnowledgeBase()
        kb.register_sighting(sighting("sifennefene_worms", observer="a"))
        single = kb.aggregate(0.0, 30 * DAY)["drier"]
        kb.register_sighting(sighting("sifennefene_worms", observer="b"))
        kb.register_sighting(sighting("sifennefene_worms", observer="c"))
        corroborated = kb.aggregate(0.0, 30 * DAY)["drier"]
        assert corroborated > single

    def test_aggregate_window_filtering(self):
        kb = IndigenousKnowledgeBase()
        kb.register_sighting(sighting("sifennefene_worms", day=5))
        assert kb.aggregate(10 * DAY, 20 * DAY)["net_drier"] == 0.0

    def test_wetter_evidence_offsets_drier(self):
        kb = IndigenousKnowledgeBase()
        for observer in "abc":
            kb.register_sighting(sighting("sifennefene_worms", observer=observer))
        net_before = kb.aggregate(0.0, 30 * DAY)["net_drier"]
        for observer in "abc":
            kb.register_sighting(sighting("frogs_calling", observer=observer))
        net_after = kb.aggregate(0.0, 30 * DAY)["net_drier"]
        assert net_after < net_before

    def test_mean_lead_time(self):
        kb = IndigenousKnowledgeBase()
        assert kb.mean_lead_time("drier") > 20

    def test_materialize_writes_indicator_individuals(self):
        kb = IndigenousKnowledgeBase()
        graph = Graph()
        added = kb.materialize(graph)
        assert added >= len(kb) * 5

    def test_materialize_sighting(self):
        kb = IndigenousKnowledgeBase()
        graph = Graph()
        iri = kb.materialize_sighting(graph, sighting("mutiga_tree_flowering"))
        assert iri is not None
        assert len(graph) >= 5
        assert kb.materialize_sighting(graph, sighting("bogus")) is None

    def test_clear_sightings(self):
        kb = IndigenousKnowledgeBase()
        kb.register_sighting(sighting("sifennefene_worms"))
        kb.clear_sightings()
        assert kb.sightings == []


class TestElicitation:
    def test_campaign_produces_knowledge_base(self):
        campaign = ElicitationCampaign(respondents=40, seed=1)
        kb = campaign.run()
        assert 5 <= len(kb) <= len(INDICATOR_CATALOGUE)
        report = campaign.last_report
        assert report.indicators_elicited == len(kb)
        assert report.respondents == 40

    def test_low_recognition_shrinks_knowledge_base(self):
        rich = ElicitationCampaign(respondents=30, recognition_rate=0.9, seed=2).run()
        poor = ElicitationCampaign(respondents=30, recognition_rate=0.1,
                                   inclusion_threshold=0.5, seed=2).run()
        assert len(poor) < len(rich)

    def test_implication_noise_recorded_as_disagreement(self):
        campaign = ElicitationCampaign(respondents=30, implication_noise=0.4, seed=3)
        campaign.run()
        assert campaign.last_report.disagreement_rate > 0.1

    def test_deterministic_for_seed(self):
        first = ElicitationCampaign(respondents=20, seed=5).run()
        second = ElicitationCampaign(respondents=20, seed=5).run()
        assert first.known_keys() == second.known_keys()

    def test_requires_respondents(self):
        with pytest.raises(ValueError):
            ElicitationCampaign(respondents=0)


class TestRuleDerivation:
    def test_one_rule_per_indicator(self):
        kb = IndigenousKnowledgeBase()
        rules = derive_cep_rules(kb)
        assert len(rules) == len(kb)
        assert all(rule.source == "indigenous" for rule in rules)

    def test_rule_types_follow_implication(self):
        kb = IndigenousKnowledgeBase()
        rules = {rule.name: rule for rule in derive_cep_rules(kb)}
        assert rules["ik_sifennefene_worms"].derived_event_type == "ik_dry_indication"
        assert rules["ik_frogs_calling"].derived_event_type == "ik_wet_indication"

    def test_rule_weight_matches_reliability(self):
        kb = IndigenousKnowledgeBase()
        rules = {rule.name: rule for rule in derive_cep_rules(kb)}
        assert rules["ik_springs_receding"].weight == pytest.approx(
            INDICATOR_CATALOGUE["springs_receding"].reliability
        )

    def test_derived_rules_fire_on_corroborated_sightings(self):
        kb = IndigenousKnowledgeBase()
        engine = CepEngine()
        engine.add_rules(derive_cep_rules(kb, min_observers=2, min_intensity=0.3))
        sightings = [
            Event("sifennefene_worms", 0.9, day * DAY, source_id=f"obs{i}")
            for i, day in enumerate([1, 2, 3])
        ]
        derived = engine.process_many(sightings)
        assert any(d.event_type == "ik_dry_indication" for d in derived)

    def test_sensor_process_rules_cover_all_processes(self):
        names = {rule.name for rule in sensor_process_rules()}
        assert names == {
            "soil_drying_process", "rainfall_deficit_process", "heat_accumulation_process",
            "water_depletion_process", "vegetation_decline_process",
        }
        assert all(rule.source == "sensor" for rule in sensor_process_rules())
