"""Tests for the domain ontology library, units and term alignment."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ontologies import build_unified_ontology
from repro.ontologies.alignment import (
    SYNONYMS,
    AlignmentStatistics,
    TermAligner,
    build_alignment_ontology,
    normalise_term,
)
from repro.ontologies.drought import alert_level_for_probability, severity_class_for_spi
from repro.ontologies.environment import CANONICAL_PROPERTIES, canonical_property
from repro.ontologies.units import (
    CANONICAL_UNITS,
    UNIT_DEFINITIONS,
    UnitConversionError,
    canonical_symbol,
    convert,
    get_unit,
    to_canonical,
)
from repro.ontologies.vocabulary import DOLCE, DROUGHT, ENVO, IK, SSN


@pytest.fixture(scope="module")
def library():
    return build_unified_ontology(materialize=True)


class TestOntologyLibrary:
    def test_components_present(self, library):
        assert set(library.components) == {
            "dolce", "ssn", "units", "environment", "drought", "indigenous", "alignment",
        }

    def test_statistics_counts(self, library):
        stats = library.statistics()
        assert stats["classes"] > 80
        assert stats["properties"] > 40
        assert stats["triples"] > 1000

    def test_sensor_is_physical_endurant(self, library):
        reasoner = library.reasoner()
        assert reasoner.is_subclass_of(SSN.Sensor, DOLCE.PhysicalEndurant)

    def test_drought_event_is_environmental_event_and_perdurant(self, library):
        reasoner = library.reasoner()
        assert reasoner.is_subclass_of(DROUGHT.DroughtEvent, ENVO.EnvironmentalEvent)
        assert reasoner.is_subclass_of(DROUGHT.DroughtEvent, DOLCE.Perdurant)

    def test_indicator_sighting_is_observation(self, library):
        reasoner = library.reasoner()
        assert reasoner.is_subclass_of(IK.IndicatorSighting, SSN.Observation)

    def test_canonical_properties_are_observable(self, library):
        reasoner = library.reasoner()
        for iri in CANONICAL_PROPERTIES.values():
            assert reasoner.is_subclass_of(iri, SSN.ObservableProperty)

    def test_processes_culminate_in_drought_onset(self, library):
        objs = set(library.graph.objects(ENVO.RainfallDeficitProcess, ENVO.culminatesIn))
        assert ENVO.DroughtOnsetEvent in objs

    def test_canonical_property_lookup(self):
        assert canonical_property("soil_moisture") == ENVO.SoilMoisture
        with pytest.raises(KeyError):
            canonical_property("not_a_property")


class TestSeverityAndAlerts:
    @pytest.mark.parametrize("spi,expected_local", [
        (-2.5, "ExtremeDrought"),
        (-1.7, "SevereDrought"),
        (-1.2, "ModerateDrought"),
        (-0.7, "MildDrought"),
        (0.3, "NoDrought"),
    ])
    def test_severity_bands(self, spi, expected_local):
        assert severity_class_for_spi(spi).local_name == expected_local

    @pytest.mark.parametrize("probability,expected_local", [
        (0.9, "LevelEmergency"),
        (0.65, "LevelWarning"),
        (0.4, "LevelWatch"),
        (0.1, "LevelNormal"),
    ])
    def test_alert_levels(self, probability, expected_local):
        assert alert_level_for_probability(probability).local_name == expected_local


class TestUnits:
    def test_fahrenheit_to_celsius(self):
        assert convert(32.0, "degF", "degC") == pytest.approx(0.0)
        assert convert(212.0, "degF", "degC") == pytest.approx(100.0)

    def test_kelvin_round_trip(self):
        assert convert(convert(25.0, "degC", "K"), "K", "degC") == pytest.approx(25.0)

    def test_length_conversions(self):
        assert convert(1.0, "in", "mm") == pytest.approx(25.4)
        assert convert(1.0, "m", "cm") == pytest.approx(100.0)

    def test_speed_conversion(self):
        assert convert(36.0, "km/h", "m/s") == pytest.approx(10.0)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(UnitConversionError):
            convert(1.0, "degC", "mm")

    def test_unknown_unit_raises(self):
        with pytest.raises(UnitConversionError):
            get_unit("furlongs")

    def test_to_canonical_and_symbol(self):
        assert to_canonical(1.0, "ft") == pytest.approx(304.8)
        assert canonical_symbol("degF") == "degC"

    def test_every_dimension_has_canonical_unit(self):
        dimensions = {definition.dimension for definition in UNIT_DEFINITIONS.values()}
        assert dimensions == set(CANONICAL_UNITS)

    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from(sorted(UNIT_DEFINITIONS)),
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    )
    def test_property_round_trip_is_identity(self, symbol, value):
        canonical = canonical_symbol(symbol)
        there = convert(value, symbol, canonical)
        back = convert(there, canonical, symbol)
        assert back == pytest.approx(value, rel=1e-9, abs=1e-6)


class TestTermAlignment:
    def test_normalise_strips_accents_case_punctuation(self):
        assert normalise_term("Höhe") == "hohe"
        assert normalise_term("Soil_Moisture(%)") == "soil moisture"

    @pytest.mark.parametrize("term,expected", [
        ("Hoehe", "water_level"),
        ("Stav", "water_level"),
        ("Niederschlag", "rainfall"),
        ("NDVI", "vegetation_index"),
        ("Dry Bulb Temperature", "air_temperature"),
        ("soil_moisture", "soil_moisture"),
        ("PRCP", "rainfall"),
    ])
    def test_known_spellings_resolve(self, term, expected):
        assert TermAligner().align(term).canonical_key == expected

    def test_fuzzy_match_catches_typo(self):
        result = TermAligner().align("soil moistur")
        assert result.canonical_key == "soil_moisture"
        assert result.method == "fuzzy"

    def test_unknown_term_unresolved(self):
        result = TermAligner().align("flux capacitor level")
        assert not result.resolved
        assert result.method == "unresolved"

    def test_fuzzy_disabled(self):
        aligner = TermAligner(fuzzy_threshold=1.0)
        assert not aligner.align("soil moistur").resolved

    def test_statistics_accumulate(self):
        aligner = TermAligner()
        for term in ["Hoehe", "rain", "garbage-term-xyz"]:
            aligner.align(term)
        stats = aligner.statistics
        assert stats.total == 3
        assert stats.unresolved == 1
        assert stats.resolution_rate == pytest.approx(2 / 3)

    def test_add_synonym(self):
        aligner = TermAligner()
        aligner.add_synonym("rainfall", "izulu")
        assert aligner.align("izulu").canonical_key == "rainfall"

    def test_add_synonym_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            TermAligner().add_synonym("not_a_property", "x")

    def test_extra_synonyms_constructor(self):
        aligner = TermAligner(extra_synonyms={"rainfall": ["pula"]})
        assert aligner.align("pula").canonical_key == "rainfall"

    def test_every_synonym_resolves(self):
        aligner = TermAligner()
        for key, spellings in SYNONYMS.items():
            for spelling in spellings:
                assert aligner.align(spelling).canonical_key == key

    def test_materialize_alignment_writes_equivalences(self):
        from repro.semantics.rdf.graph import Graph

        graph = Graph()
        resolved = TermAligner().materialize_alignment(graph, ["Hoehe", "garbage-xyz"])
        assert resolved == 1
        assert len(graph) >= 2

    def test_alignment_ontology_builds(self):
        ontology = build_alignment_ontology()
        assert len(ontology.graph) > 50
