"""Tests for the WSN substrate: nodes, radio, network, gateway, sources."""

import pytest

from repro.sensors.gateway import SmsGateway
from repro.sensors.heterogeneity import (
    VENDOR_PROFILES,
    assign_profiles,
    measure_heterogeneity,
)
from repro.sensors.mobile import MobileObserver
from repro.sensors.modality import MODALITIES, ConstantEnvironment, get_modality
from repro.sensors.network import WirelessSensorNetwork
from repro.sensors.node import EnergyModel, SensorNode
from repro.sensors.radio import RadioModel, SIXLOWPAN_MTU, distance_metres
from repro.sensors.weather_station import WeatherStation
from repro.streams.messages import SenMLCodec
from repro.streams.scheduler import DAY, SimulationScheduler

ENVIRONMENT = ConstantEnvironment(
    {"air_temperature": 25.0, "soil_moisture": 20.0, "rainfall": 2.0,
     "relative_humidity": 50.0, "water_level": 2500.0}
)


class TestModalities:
    def test_catalogue_covers_core_properties(self):
        assert {"air_temperature", "soil_moisture", "rainfall", "water_level"} <= set(MODALITIES)

    def test_clip(self):
        modality = get_modality("relative_humidity")
        assert modality.clip(150.0) == 100.0
        assert modality.clip(-5.0) == 0.0

    def test_unknown_modality(self):
        with pytest.raises(KeyError):
            get_modality("cosmic_rays")

    def test_constant_environment(self):
        assert ENVIRONMENT.true_value("air_temperature", (0, 0), 0.0) == 25.0
        assert ENVIRONMENT.true_value("unknown", (0, 0), 0.0) == 0.0


class TestSensorNode:
    def make_node(self, **kwargs):
        defaults = dict(
            node_id="mote-1", location=(-29.1, 26.2),
            modalities=["air_temperature", "soil_moisture"],
            environment=ENVIRONMENT, seed=1,
        )
        defaults.update(kwargs)
        return SensorNode(**defaults)

    def test_sample_produces_profile_spellings(self):
        node = self.make_node(profile=VENDOR_PROFILES["german_gauge"])
        records = node.sample(0.0)
        names = {record.property_name for record in records}
        assert names == {"Lufttemperatur", "Bodenfeuchte"}

    def test_sample_reports_in_profile_units(self):
        node = self.make_node(
            profile=VENDOR_PROFILES["saws_station"], modalities=["air_temperature"]
        )
        record = node.sample(0.0)[0]
        assert record.unit == "degF"
        assert record.value == pytest.approx(77.0, abs=5.0)

    def test_values_near_truth_in_canonical_units(self):
        node = self.make_node(modalities=["soil_moisture"])
        record = node.sample(0.0)[0]
        assert record.value == pytest.approx(20.0, abs=4.0)

    def test_dead_node_produces_nothing(self):
        node = self.make_node(energy_model=EnergyModel(battery_mj=1.0))
        node.sample(0.0)
        assert not node.alive or node.battery_fraction < 1.0
        node.remaining_energy_mj = 0.0
        node.alive = False
        assert node.sample(DAY) == []

    def test_battery_drains_with_idle_time(self):
        node = self.make_node()
        node.sample(0.0)
        node.sample(30 * DAY)
        assert node.battery_fraction < 1.0

    def test_permanent_failure(self):
        node = self.make_node(failure_rate_per_day=1.0)
        node.sample(0.0)
        node.sample(5 * DAY)
        assert not node.alive

    def test_transmission_energy_accounting(self):
        node = self.make_node()
        before = node.remaining_energy_mj
        node.spend_transmission(1000)
        assert node.remaining_energy_mj < before


class TestRadio:
    def test_loss_grows_with_distance(self):
        radio = RadioModel(seed=1)
        assert radio.loss_probability(50.0) < radio.loss_probability(400.0)
        assert radio.loss_probability(10_000.0) == 1.0

    def test_fragmentation(self):
        radio = RadioModel()
        assert radio.fragment_count(0) == 0
        assert radio.fragment_count(SIXLOWPAN_MTU) == 1
        assert radio.fragment_count(SIXLOWPAN_MTU * 3) >= 3

    def test_short_link_usually_delivers(self):
        radio = RadioModel(seed=2)
        outcomes = [radio.transmit(200, 50.0).delivered for _ in range(50)]
        assert sum(outcomes) >= 45

    def test_out_of_range_never_delivers(self):
        radio = RadioModel(seed=3)
        assert not radio.transmit(200, 2000.0).delivered

    def test_transmission_accounting(self):
        result = RadioModel(seed=4).transmit(500, 100.0)
        assert result.fragments_sent >= 5
        assert result.bytes_on_air > 500
        assert result.latency_seconds > 0

    def test_invalid_loss(self):
        with pytest.raises(ValueError):
            RadioModel(reference_loss=1.5)

    def test_distance_metres(self):
        assert distance_metres((-29.0, 26.0), (-29.0, 26.0)) == 0.0
        assert 900 < distance_metres((-29.0, 26.0), (-29.01, 26.0)) < 1300


class TestNetwork:
    def build_network(self, motes=6):
        network = WirelessSensorNetwork(sink_location=(-29.100, 26.200), max_link_range_m=600.0)
        for index in range(motes):
            network.add_node(SensorNode(
                node_id=f"mote-{index}",
                location=(-29.100 + 0.002 * (index + 1), 26.200),
                modalities=["air_temperature"],
                environment=ENVIRONMENT,
                seed=index,
            ))
        return network

    def test_duplicate_node_rejected(self):
        network = self.build_network(1)
        with pytest.raises(ValueError):
            network.add_node(SensorNode("mote-0", (-29.1, 26.2), ["rainfall"], ENVIRONMENT))

    def test_multi_hop_route_found(self):
        network = self.build_network()
        route = network.route_to_sink("mote-5")
        assert route is not None
        assert route[0] == "mote-5" and route[-1] == "sink"
        assert len(route) > 2  # too far for one hop

    def test_connectivity_full_when_alive(self):
        network = self.build_network()
        assert network.connectivity() == 1.0

    def test_dead_relay_breaks_route(self):
        network = self.build_network()
        for node_id, node in network.nodes.items():
            if node_id != "mote-5":
                node.alive = False
        assert network.route_to_sink("mote-5") is None

    def test_sample_and_deliver_updates_statistics(self):
        network = self.build_network()
        outcomes = network.sample_and_deliver(0.0)
        assert len(outcomes) == 6
        assert network.statistics.batches_sent == 6
        assert 0.0 <= network.statistics.delivery_ratio <= 1.0
        assert network.statistics.total_bytes_on_air > 0

    def test_energy_accounting(self):
        network = self.build_network()
        network.sample_and_deliver(0.0)
        assert network.statistics.total_energy_mj > 0


class TestGateway:
    def test_batches_upload_to_cloud(self):
        scheduler = SimulationScheduler()
        uploads = []
        gateway = SmsGateway(scheduler, lambda doc, t: uploads.append(doc),
                             upload_interval=600.0, outage_probability=0.0, seed=1)
        node = SensorNode("m", (-29.1, 26.2), ["air_temperature"], ENVIRONMENT)
        gateway.receive(node.sample(0.0))
        scheduler.run_until(2000.0)
        assert len(uploads) == 1
        assert gateway.statistics.records_uploaded == 1
        assert SenMLCodec.decode(uploads[0])[0].source_id == "m"

    def test_outage_defers_upload(self):
        scheduler = SimulationScheduler()
        uploads = []
        gateway = SmsGateway(scheduler, lambda doc, t: uploads.append(doc),
                             upload_interval=600.0, outage_probability=1.0, seed=1)
        node = SensorNode("m", (-29.1, 26.2), ["air_temperature"], ENVIRONMENT)
        gateway.receive(node.sample(0.0))
        scheduler.run_until(5000.0)
        assert uploads == []
        assert gateway.statistics.failed_upload_attempts > 0
        assert gateway.queued == 1

    def test_queue_overflow_drops_oldest(self):
        scheduler = SimulationScheduler()
        gateway = SmsGateway(scheduler, lambda doc, t: None, queue_capacity=5)
        node = SensorNode("m", (-29.1, 26.2), ["air_temperature"], ENVIRONMENT)
        for i in range(10):
            gateway.receive(node.sample(i * 3600.0))
        assert gateway.queued == 5
        assert gateway.statistics.records_dropped == 5


class TestOtherSources:
    def test_weather_station_schema_and_units(self):
        station = WeatherStation("saws-1", (-29.0, 26.0), ENVIRONMENT, seed=1, availability=1.0)
        records = station.report(0.0)
        names = {record.property_name for record in records}
        assert "Dry Bulb Temperature" in names and "PRCP" in names
        units = {record.unit for record in records}
        assert "degF" in units and "in" in units

    def test_weather_station_availability(self):
        station = WeatherStation("saws-2", (-29.0, 26.0), ENVIRONMENT, seed=1, availability=0.0)
        assert station.report(0.0) == []
        assert station.reports_missed == 1

    def test_mobile_observer_conditions_report(self):
        observer = MobileObserver("farmer-1", (-29.0, 26.0), ENVIRONMENT,
                                  report_probability=1.0, seed=1)
        records = observer.report_conditions(0.0)
        assert len(records) == 2
        assert all(record.source_kind == "mobile_report" for record in records)

    def test_mobile_observer_sightings(self):
        observer = MobileObserver(
            "farmer-2", (-29.0, 26.0), ENVIRONMENT,
            indicator_activity=lambda key, loc, t: 1.0,
            indicators=["sifennefene_worms"], seed=1,
        )
        records = observer.report_sightings(0.0)
        assert len(records) == 1
        assert records[0].source_kind == "ik_sighting"
        assert 0.0 <= records[0].value <= 1.0

    def test_mobile_observer_without_activity_model(self):
        observer = MobileObserver("farmer-3", (-29.0, 26.0), ENVIRONMENT, seed=1)
        assert observer.report_sightings(0.0) == []


class TestHeterogeneityMeasurement:
    def test_profiles_assigned_deterministically(self):
        assert [p.name for p in assign_profiles(4, seed=1)] == [
            p.name for p in assign_profiles(4, seed=1)
        ]

    def test_measure_heterogeneity_groups_by_canonical(self):
        from repro.ontologies.alignment import TermAligner

        records = []
        for profile_name in ("german_gauge", "czech_gauge", "libelium_en"):
            node = SensorNode(
                f"m-{profile_name}", (-29.1, 26.2), ["water_level"],
                ENVIRONMENT, profile=VENDOR_PROFILES[profile_name], seed=1,
            )
            records.extend(node.sample(0.0))
        report = measure_heterogeneity(records, aligner=TermAligner())
        assert report.total_records == 3
        assert report.distinct_terms == 3
        assert report.terms_per_property.get("water_level") == 3
        assert report.naming_heterogeneity >= 3.0
