"""Tests for the serving front door and the unified typed API.

Covers the typed results and error hierarchy, the sans-IO WebSocket codec,
the backpressure bridge, the middleware stack pieces, and the gateway
end-to-end over real sockets: ingest / query round-trips bag-equal with
direct library calls, error-code → status mapping, rate limiting, response
caching, degraded reads, and slow-consumer lag markers.
"""

import json
import math
import threading
import time

import pytest

from repro.core.api import HealthReport, IngestReceipt, StandingViewHandle
from repro.core.faults import ShardUnavailableError
from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.errors import (
    BadRequestError,
    QueryError,
    RateLimitedError,
    ReproError,
)
from repro.ontologies import build_unified_ontology
from repro.persistence.store import StoreMetadataError
from repro.cep.event import DerivedEvent, Event
from repro.semantics.sparql.evaluator import QueryResult
from repro.serving import STATUS_BY_CODE, GatewayServer, ServingConfig
from repro.serving import websocket as ws
from repro.serving.bridge import SubscriptionBridge, lag_marker
from repro.serving.client import HttpClient, WebSocketClient
from repro.serving.middleware import TokenBucket
from repro.serving.serialize import query_result_to_json
from repro.streams.messages import ObservationRecord

OBSERVATION_QUERY = (
    "SELECT ?s WHERE { ?s a <http://purl.oclc.org/NET/ssnx/ssn#Observation> }"
)


@pytest.fixture(scope="module")
def library():
    return build_unified_ontology(materialize=True)


def record(property_name="Bodenfeuchte", value=15.0, unit="percent",
           source_kind="wsn_mote", source_id="Mangaung-mote-01", timestamp=3600.0):
    return ObservationRecord(
        source_id=source_id, source_kind=source_kind, property_name=property_name,
        value=value, unit=unit, timestamp=timestamp, location=(-29.1, 26.2),
    )


def wire_record(property_name="Bodenfeuchte", value=15.0, unit="percent",
                source_id="Mangaung-mote-01", timestamp=3600.0):
    return {
        "source_id": source_id, "source_kind": "wsn_mote",
        "property_name": property_name, "value": value, "unit": unit,
        "timestamp": timestamp, "location": [-29.1, 26.2],
    }


def row_bag(payload):
    """A query payload's rows as a comparable multiset."""
    return sorted(json.dumps(row, sort_keys=True) for row in payload["rows"])


# --------------------------------------------------------------------- #
# the typed API surface
# --------------------------------------------------------------------- #


class TestTypedApi:
    @pytest.fixture
    def middleware(self, library):
        with SemanticMiddleware(
            library=library,
            config=MiddlewareConfig(annotate_observations=True, broker_latency=0.0),
        ) as mw:
            yield mw

    def test_ingest_receipt_is_event_list(self, middleware):
        receipt = middleware.ingest_batch([record(value=14.0)])
        assert isinstance(receipt, IngestReceipt)
        assert len(receipt) == 1
        assert receipt[0].event_type == "soil_moisture"
        assert receipt.accepted == 1
        assert receipt.rejected == 0
        assert receipt.events == list(receipt)
        assert receipt.to_payload() == {
            "accepted": 1, "rejected": 0, "quarantined": 0,
        }

    def test_ingest_receipt_counts_rejects(self, middleware):
        receipt = middleware.ingest_batch([
            record(value=14.0),
            record("quantum_flux", 1.0),             # unresolvable term
            record(value=math.nan, timestamp=3800.0),  # non-finite reading
        ])
        assert receipt.accepted == 1
        assert receipt.rejected == 2
        assert receipt.quarantined == 0

    def test_empty_batch_still_equals_empty_list(self, middleware):
        assert middleware.ingest_batch([]) == []

    def test_rejected_counts_are_per_call_deltas(self, middleware):
        first = middleware.ingest_batch([record("quantum_flux", 1.0)])
        second = middleware.ingest_batch([record(value=12.5, timestamp=4000.0)])
        assert first.rejected == 1
        assert second.rejected == 0

    def test_health_report_is_typed_dict(self, middleware):
        report = middleware.health()
        assert isinstance(report, HealthReport)
        assert report["healthy"] is True          # old subscript contract
        assert report.healthy is True             # new typed contract
        assert report.shards[0]["state"] == "up"
        assert report.persistence is None

    def test_health_report_carries_persistence(self, library, tmp_path):
        with SemanticMiddleware(
            library=library,
            config=MiddlewareConfig(
                broker_latency=0.0, data_dir=str(tmp_path / "store")
            ),
        ) as mw:
            mw.ingest_batch([record(value=11.0)])
            report = mw.health()
            assert report.persistence is not None
            assert report.persistence["shards"][0]["generation"] >= 0

    def test_standing_view_handle(self, middleware):
        handle = middleware.register_standing(
            OBSERVATION_QUERY, name="obs", push=True
        )
        assert isinstance(handle, StandingViewHandle)
        assert handle.name == "obs"
        assert handle.push is True
        assert handle.topic == "views/obs"
        assert handle[0] is handle.views[0]       # old indexing contract
        payload = handle.to_payload()
        assert payload["name"] == "obs"
        assert payload["partitions"] == len(handle)

    def test_middleware_subscribe_receives_envelopes(self, middleware):
        seen = []
        middleware.subscribe("canonical/#", seen.append)
        middleware.ingest_batch([record(value=13.0)])
        assert seen and seen[0].topic == "canonical/soil_moisture/Mangaung"
        assert seen[0].payload.event_type == "soil_moisture"

    def test_layer_statistics_is_callable_and_attribute(self, middleware):
        layer = middleware.ontology_layer
        layer.process_batch([record(value=10.0, timestamp=5000.0)])
        assert layer.statistics.records_in >= 1     # attribute contract
        snapshot = layer.statistics()               # unified callable form
        assert snapshot["records_in"] == layer.statistics.records_in

    def test_layer_subscribe_filters_by_pattern(self, library):
        from repro.core.ontology_layer import OntologySegmentLayer

        layer = OntologySegmentLayer(library=library)
        hits, misses = [], []
        layer.subscribe("derived/drought_watch/#", hits.append)
        layer.subscribe("derived/never_matches/#", misses.append)
        listener_count = len(layer.cep._listeners)
        assert listener_count >= 2
        # fabricate a derived event through the CEP listener path
        event = DerivedEvent(
            event_type="drought_watch", value=0.8, timestamp=10.0,
            area="Mangaung", rule_name="test",
        )
        for listener in layer.cep._listeners[-2:]:
            listener(event)
        assert [e.event_type for e in hits] == ["drought_watch"]
        assert misses == []


class TestErrorHierarchy:
    def test_shard_unavailable_is_typed_and_runtime(self):
        exc = ShardUnavailableError("shard 2 down", shard=2)
        assert isinstance(exc, ReproError)
        assert isinstance(exc, RuntimeError)      # pre-hierarchy contract
        assert exc.code == "shard_unavailable"
        assert exc.to_payload()["detail"] == {"shard": 2}

    def test_store_metadata_error_is_typed(self):
        exc = StoreMetadataError("bad meta")
        assert isinstance(exc, ReproError)
        assert isinstance(exc, RuntimeError)
        assert exc.code == "store_metadata"

    def test_rate_limited_carries_retry_after(self):
        exc = RateLimitedError(retry_after=2.5)
        assert exc.code == "rate_limited"
        assert exc.detail["retry_after"] == 2.5

    def test_query_error_wraps_value_error(self):
        exc = QueryError.wrap(ValueError("no parse"))
        assert exc.code == "query_error"
        assert "no parse" in str(exc)

    def test_every_code_in_status_table_is_sane(self):
        for code, status in STATUS_BY_CODE.items():
            assert 400 <= status <= 599, code
        assert STATUS_BY_CODE["rate_limited"] == 429
        assert STATUS_BY_CODE["shard_unavailable"] == 503


# --------------------------------------------------------------------- #
# the sans-IO WebSocket codec
# --------------------------------------------------------------------- #


class TestWebSocketCodec:
    def test_masked_roundtrip(self):
        parser = ws.FrameParser(require_mask=True)
        frames = parser.feed(ws.encode_text("hello", mask=True))
        assert [f.text for f in frames] == ["hello"]

    def test_unmasked_client_frame_rejected_by_server(self):
        parser = ws.FrameParser(require_mask=True)
        with pytest.raises(ws.ProtocolError):
            parser.feed(ws.encode_text("hello", mask=False))

    def test_partial_feeds_reassemble(self):
        frame = ws.encode_text("x" * 300, mask=True)  # 16-bit length form
        parser = ws.FrameParser(require_mask=True)
        out = []
        for i in range(0, len(frame), 7):
            out.extend(parser.feed(frame[i : i + 7]))
        assert len(out) == 1 and out[0].text == "x" * 300

    def test_fragmented_message_reassembles(self):
        parser = ws.FrameParser()
        data = (
            ws.encode_frame(ws.OP_TEXT, b"he", fin=False)
            + ws.encode_frame(ws.OP_PING, b"k")
            + ws.encode_frame(ws.OP_CONT, b"llo", fin=True)
        )
        frames = parser.feed(data)
        assert [f.opcode for f in frames] == [ws.OP_PING, ws.OP_TEXT]
        assert frames[1].text == "hello"

    def test_close_frame_carries_code(self):
        parser = ws.FrameParser()
        frames = parser.feed(ws.encode_close(1001, "bye"))
        assert frames[0].close_code == 1001

    def test_accept_key_matches_rfc_example(self):
        # the worked example from RFC 6455 §1.3
        assert (
            ws.accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )


# --------------------------------------------------------------------- #
# the backpressure bridge and the token bucket
# --------------------------------------------------------------------- #


class TestBridge:
    def test_drop_oldest_and_lag_accounting(self):
        import asyncio

        async def scenario():
            loop = asyncio.get_running_loop()
            bridge = SubscriptionBridge(loop, limit=3)
            for i in range(7):
                bridge.push(i)
            dropped, items = await bridge.drain(timeout=0.5)
            assert dropped == 4
            assert items == [4, 5, 6]             # newest survive
            assert bridge.stats()["dropped"] == 4
            bridge.push(7)
            dropped, items = await bridge.drain(timeout=0.5)
            assert (dropped, items) == (0, [7])

        asyncio.run(scenario())

    def test_push_from_foreign_thread_wakes_consumer(self):
        import asyncio

        async def scenario():
            loop = asyncio.get_running_loop()
            bridge = SubscriptionBridge(loop, limit=8)
            threading.Timer(0.05, lambda: bridge.push("x")).start()
            dropped, items = await bridge.drain(timeout=5.0)
            assert (dropped, items) == (0, ["x"])

        asyncio.run(scenario())

    def test_lag_marker_shape(self):
        assert lag_marker(3) == {"type": "lag", "dropped": 3}


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=1000.0, burst=2)
        assert bucket.take()[0]
        assert bucket.take()[0]
        ok, retry = bucket.take()
        assert not ok and retry > 0
        time.sleep(0.005)
        assert bucket.take()[0]


# --------------------------------------------------------------------- #
# the gateway end-to-end
# --------------------------------------------------------------------- #


@pytest.fixture(scope="class")
def served(request):
    """One gateway-fronted middleware plus a direct twin for equivalence."""
    served_mw = SemanticMiddleware(
        library=build_unified_ontology(materialize=True),
        config=MiddlewareConfig(annotate_observations=True, broker_latency=0.0),
    )
    twin = SemanticMiddleware(
        library=build_unified_ontology(materialize=True),
        config=MiddlewareConfig(annotate_observations=True, broker_latency=0.0),
    )
    server = GatewayServer(served_mw, ServingConfig()).start()
    request.cls.server = server
    request.cls.engine = served_mw
    request.cls.twin = twin
    yield server
    server.stop()
    served_mw.close()
    twin.close()


@pytest.mark.usefixtures("served")
class TestGatewayHttp:
    def client(self, client_id="tests"):
        return HttpClient("127.0.0.1", self.server.port, client_id=client_id)

    def test_served_results_bag_equal_direct_calls(self):
        records = [
            wire_record(value=14.0),
            wire_record("Hoehe", 250.0, "cm", source_id="Mangaung-mote-02",
                        timestamp=3700.0),
            wire_record("quantum_flux", 1.0, timestamp=3800.0),
        ]
        with self.client() as c:
            status, body, _ = c.post("/v1/ingest", {"records": records})
            assert status == 200
            assert body["accepted"] == 2
            assert body["rejected"] == 1
        twin_receipt = self.twin.ingest_batch(
            [ObservationRecord.from_dict(r) for r in records]
        )
        assert twin_receipt.accepted == 2

        with self.client() as c:
            status, served_payload, _ = c.post(
                "/v1/query", {"query": OBSERVATION_QUERY}
            )
            assert status == 200
        direct_payload = query_result_to_json(self.twin.query(OBSERVATION_QUERY))
        assert row_bag(served_payload) == row_bag(direct_payload)
        assert len(served_payload["rows"]) == 2

    def test_entailment_query_served(self):
        # rdfs9 over the SSN hierarchy: sensing devices surface as sensors
        entail_query = (
            "SELECT DISTINCT ?sensor WHERE "
            "{ ?sensor a <http://purl.oclc.org/NET/ssnx/ssn#Sensor> }"
        )
        with self.client() as c:
            status, plain, _ = c.post("/v1/query", {"query": entail_query})
            assert status == 200
            status, body, _ = c.post(
                "/v1/query", {"query": entail_query, "entail": True}
            )
            assert status == 200
        direct = query_result_to_json(self.twin.query(entail_query, entail=True))
        assert row_bag(body) == row_bag(direct)
        # the entailed result is strictly larger: subclass members appear
        assert len(body["rows"]) > len(plain["rows"])

    def test_malformed_json_maps_to_400(self):
        with self.client() as c:
            status, body, _ = c.request(
                "POST", "/v1/query", headers={"Content-Type": "application/json"}
            )
            assert status == 400
        import http.client as hc

        conn = hc.HTTPConnection("127.0.0.1", self.server.port)
        conn.request("POST", "/v1/ingest", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 400
        assert payload["error"] == "bad_request"
        conn.close()

    def test_bad_query_maps_to_query_error(self):
        with self.client() as c:
            status, body, _ = c.post("/v1/query", {"query": "NOT SPARQL"})
            assert status == 400
            assert body["error"] == "query_error"

    def test_malformed_record_maps_to_400_with_detail(self):
        with self.client() as c:
            status, body, _ = c.post(
                "/v1/ingest", {"records": [{"source_id": "x"}]}
            )
            assert status == 400
            assert body["error"] == "bad_request"
            assert "missing" in body["detail"]

    def test_unknown_route_404_and_wrong_method_405(self):
        with self.client() as c:
            status, body, _ = c.get("/v1/nothing-here")
            assert status == 404
            assert body["error"] == "not_found"
            status, body, headers = c.get("/v1/ingest")
            assert status == 405
            assert "POST" in headers.get("Allow", "")

    def test_view_lifecycle(self):
        with self.client() as c:
            status, body, _ = c.post(
                "/v1/views", {"query": OBSERVATION_QUERY, "name": "obs-http"}
            )
            assert status == 201
            assert body["name"] == "obs-http"
            status, body, _ = c.post(
                "/v1/views", {"query": OBSERVATION_QUERY, "name": "obs-http"}
            )
            assert status == 400                   # duplicate name
            status, listing, _ = c.get("/v1/views")
            assert "obs-http" in [v["name"] for v in listing["views"]]
            status, result, _ = c.get("/v1/views/obs-http")
            assert status == 200
            direct = query_result_to_json(self.engine.query(OBSERVATION_QUERY))
            assert row_bag(result) == row_bag(direct)
            status, body, _ = c.get("/v1/views/no-such-view")
            assert status == 404

    def test_query_cache_hits_and_ingest_invalidates(self):
        probe = {"query": OBSERVATION_QUERY.replace("?s", "?cacheprobe")}
        with self.client() as c:
            _, _, h1 = c.post("/v1/query", probe)
            _, _, h2 = c.post("/v1/query", probe)
            assert h2.get("X-Cache") == "hit"
            status, _, _ = c.post(
                "/v1/ingest",
                {"records": [wire_record(value=9.0, timestamp=9000.0)]},
            )
            assert status == 200
            _, _, h3 = c.post("/v1/query", probe)
            assert h3.get("X-Cache") == "miss"
        self.twin.ingest_batch([record(value=9.0, timestamp=9000.0)])

    def test_health_and_statistics_serve_json(self):
        with self.client() as c:
            status, health, _ = c.get("/v1/health")
            assert status == 200
            assert health["healthy"] is True
            assert health["shards"][0]["state"] == "up"
            status, stats, _ = c.get("/v1/statistics")
            assert status == 200
            assert stats["ontology_layer"]["records_in"] >= 1
            status, metrics, _ = c.get("/v1/metrics")
            assert status == 200
            assert "POST /v1/query" in metrics["middleware"]["routes"]
            assert metrics["event_loop"]["samples"] > 0

    def test_payload_too_large_maps_to_413(self):
        with self.client() as c:
            big = [wire_record(timestamp=float(i)) for i in range(8000)]
            status, body, _ = c.post("/v1/ingest", {"records": big})
            assert status == 413
            assert body["error"] == "payload_too_large"

    def test_concurrent_mixed_clients(self):
        errors = []

        def worker(index):
            try:
                with self.client(client_id=f"worker-{index}") as c:
                    for i in range(5):
                        ts = 20_000.0 + index * 100 + i
                        status, body, _ = c.post(
                            "/v1/ingest",
                            {"records": [wire_record(value=10.0 + i, timestamp=ts)]},
                        )
                        assert status == 200, body
                        status, body, _ = c.post(
                            "/v1/query", {"query": OBSERVATION_QUERY}
                        )
                        assert status == 200, body
                        status, _, _ = c.get("/v1/health")
                        assert status == 200
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        with WebSocketClient(
            "127.0.0.1", self.server.port, topics=["canonical/#"]
        ) as subscriber:
            assert subscriber.recv_json(timeout=5)["type"] == "ready"
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            message = subscriber.recv_json(timeout=5)
            assert message["type"] == "message"
            assert message["topic"].startswith("canonical/")
        # keep the twin in sync for later bag-equality tests
        for index in range(8):
            self.twin.ingest_batch([
                record(value=10.0 + i, timestamp=20_000.0 + index * 100 + i)
                for i in range(5)
            ])


class TestGatewayRateLimit:
    def test_429_per_client_with_retry_after(self, library):
        with SemanticMiddleware(
            library=library, config=MiddlewareConfig(broker_latency=0.0)
        ) as mw:
            config = ServingConfig(rate_limit_rate=2.0, rate_limit_burst=3)
            with GatewayServer(mw, config) as server:
                with HttpClient(
                    "127.0.0.1", server.port, client_id="greedy"
                ) as c:
                    statuses = [
                        c.post("/v1/query", {"query": OBSERVATION_QUERY})[0]
                        for _ in range(6)
                    ]
                    assert statuses.count(429) >= 1
                    status, body, headers = c.post(
                        "/v1/query", {"query": OBSERVATION_QUERY}
                    )
                    if status == 429:
                        assert int(headers["Retry-After"]) >= 1
                        assert body["error"] == "rate_limited"
                # a different client id has its own untouched bucket
                with HttpClient(
                    "127.0.0.1", server.port, client_id="patient"
                ) as c2:
                    status, _, _ = c2.post(
                        "/v1/query", {"query": OBSERVATION_QUERY}
                    )
                    assert status == 200
                    # health stays exempt even for the throttled client
                with HttpClient(
                    "127.0.0.1", server.port, client_id="greedy"
                ) as c3:
                    assert c3.get("/v1/health")[0] == 200


class TestGatewayWebSocket:
    def test_subscription_delivers_and_backpressure_sheds(self, library):
        with SemanticMiddleware(
            library=library, config=MiddlewareConfig(broker_latency=0.0)
        ) as mw:
            config = ServingConfig(ws_queue_limit=8, ws_write_buffer=4096)
            with GatewayServer(mw, config) as server:
                with WebSocketClient(
                    "127.0.0.1", server.port, topics=["derived/#"]
                ) as slow:
                    assert slow.recv_json(timeout=5)["type"] == "ready"
                    # flood without reading: the transport buffer fills,
                    # the sender stalls, and the bounded bridge sheds
                    for i in range(4000):
                        mw.broker.publish(
                            "derived/flood/areaX",
                            Event(
                                event_type="flood", value=float(i),
                                timestamp=float(i), area="areaX",
                            ),
                        )
                    time.sleep(0.5)
                    saw_lag = False
                    values = []
                    for _ in range(5000):
                        message = slow.recv_json(timeout=2)
                        if message is None:
                            break
                        if message.get("type") == "lag":
                            saw_lag = True
                            assert message["dropped"] > 0
                        elif message.get("type") == "message":
                            values.append(message["payload"]["value"])
                    assert saw_lag, "slow consumer never saw a lag marker"
                    # drop-oldest: whatever survived is in order
                    assert values == sorted(values)
                    assert values, "no messages delivered at all"

    def test_plain_get_is_rejected_with_426(self, library):
        with SemanticMiddleware(
            library=library, config=MiddlewareConfig(broker_latency=0.0)
        ) as mw:
            with GatewayServer(mw, ServingConfig()) as server:
                with HttpClient("127.0.0.1", server.port) as c:
                    status, body, _ = c.get("/v1/subscribe")
                    assert status == 426


class _DegradedEngine:
    """A stub engine whose shard 1 is gone: degraded queries, sick health."""

    def ingest_batch(self, records):
        raise ShardUnavailableError("shard 1 circuit breaker open", shard=1)

    def query(self, text, entail=False):
        from repro.semantics.rdf.term import Variable
        from repro.semantics.sparql.bindings import Bindings

        result = QueryResult("SELECT", [Bindings({})], [Variable("s")])
        result.degraded = True
        result.missing_shards = (1,)
        return result

    def register_standing(self, text, name=None):
        return StandingViewHandle([], name=name, text=text)

    def subscribe(self, pattern, handler):
        return None

    def health(self):
        return HealthReport({
            "healthy": False, "backend": "process",
            "shards": [
                {"shard": 0, "state": "up"},
                {"shard": 1, "state": "tripped"},
            ],
            "degraded_reads": True, "quarantined_batches": 1,
            "validation_rejects": 0, "dead_letter_depth": 1,
        })

    def statistics(self):
        return {"stub": True}


class TestDegradedServing:
    def test_degraded_payloads_and_shard_unavailable_status(self):
        engine = _DegradedEngine()
        with GatewayServer(engine, ServingConfig()) as server:
            with HttpClient("127.0.0.1", server.port) as c:
                status, body, _ = c.post("/v1/query", {"query": "SELECT ..."})
                assert status == 200
                assert body["degraded"] is True
                assert body["missing_shards"] == [1]

                status, body, _ = c.post(
                    "/v1/ingest", {"records": [wire_record()]}
                )
                assert status == 503
                assert body["error"] == "shard_unavailable"
                assert body["detail"]["shard"] == 1

                status, body, _ = c.get("/v1/health")
                assert status == 503
                assert body["healthy"] is False
                assert body["shards"][1]["state"] == "tripped"
