"""Tests for the scheduler, broker, windows, operators and codecs."""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.streams.broker import Broker, SubscriptionTrie, topic_matches
from repro.streams.messages import Message, ObservationRecord, SenMLCodec
from repro.streams.operators import StreamPipeline
from repro.streams.scheduler import DAY, HOUR, SimulationClock, SimulationScheduler
from repro.streams.window import (
    CountWindow,
    SlidingWindow,
    TumblingWindow,
    ViewDeltaWindow,
)


class TestClockAndScheduler:
    def test_clock_monotonic(self):
        clock = SimulationClock()
        clock.advance_to(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_advance_by_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulationClock().advance_by(-1)

    def test_events_run_in_time_order(self):
        scheduler = SimulationScheduler()
        order = []
        scheduler.schedule(5.0, lambda: order.append("b"))
        scheduler.schedule(1.0, lambda: order.append("a"))
        scheduler.schedule(9.0, lambda: order.append("c"))
        scheduler.run_until(10.0)
        assert order == ["a", "b", "c"]

    def test_same_time_insertion_order(self):
        scheduler = SimulationScheduler()
        order = []
        scheduler.schedule(1.0, lambda: order.append(1))
        scheduler.schedule(1.0, lambda: order.append(2))
        scheduler.run_all()
        assert order == [1, 2]

    def test_run_until_advances_clock_even_when_idle(self):
        scheduler = SimulationScheduler()
        scheduler.run_until(100.0)
        assert scheduler.clock.now == 100.0

    def test_cancelled_events_do_not_fire(self):
        scheduler = SimulationScheduler()
        fired = []
        handle = scheduler.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        scheduler.run_all()
        assert not fired

    def test_cannot_schedule_in_past(self):
        scheduler = SimulationScheduler()
        scheduler.run_until(10.0)
        with pytest.raises(ValueError):
            scheduler.schedule_at(5.0, lambda: None)

    def test_repeating_with_count(self):
        scheduler = SimulationScheduler()
        fired = []
        scheduler.schedule_repeating(2.0, lambda: fired.append(scheduler.clock.now), count=3)
        scheduler.run_until(20.0)
        assert fired == [2.0, 4.0, 6.0]

    def test_repeating_cancellation(self):
        scheduler = SimulationScheduler()
        fired = []
        handle = scheduler.schedule_repeating(1.0, lambda: fired.append(1))
        scheduler.run_until(3.5)
        handle.cancel()
        scheduler.run_until(10.0)
        assert len(fired) <= 4

    def test_invalid_intervals(self):
        scheduler = SimulationScheduler()
        with pytest.raises(ValueError):
            scheduler.schedule_repeating(0.0, lambda: None)
        with pytest.raises(ValueError):
            scheduler.schedule(-1.0, lambda: None)

    def test_time_constants(self):
        assert DAY == 24 * HOUR


class TestTopicMatching:
    @pytest.mark.parametrize("pattern,topic,expected", [
        ("raw/wsn/+", "raw/wsn/mote-1", True),
        ("raw/wsn/+", "raw/wsn/mote-1/extra", False),
        ("raw/#", "raw/wsn/mote-1/extra", True),
        ("raw/#", "raw", True),
        ("canonical/rainfall/+", "canonical/rainfall/Mangaung", True),
        ("canonical/rainfall/+", "canonical/soil_moisture/Mangaung", False),
        ("a/b", "a/b", True),
        ("a/b", "a/b/c", False),
    ])
    def test_patterns(self, pattern, topic, expected):
        assert topic_matches(pattern, topic) is expected

    def test_hash_must_be_last(self):
        with pytest.raises(ValueError):
            topic_matches("a/#/b", "a/x/b")


class TestBroker:
    def test_publish_delivers_to_matching_subscribers(self):
        broker = Broker()
        received = []
        broker.subscribe("raw/+/+", lambda m: received.append(m.topic))
        broker.publish("raw/wsn/mote-1", {"v": 1})
        broker.publish("derived/x/y", {"v": 2})
        assert received == ["raw/wsn/mote-1"]
        assert broker.statistics.published == 2
        assert broker.statistics.dropped_no_subscriber == 1

    def test_unsubscribe_stops_delivery(self):
        broker = Broker()
        received = []
        subscription = broker.subscribe("a/#", lambda m: received.append(1))
        broker.publish("a/b", None)
        broker.unsubscribe(subscription)
        broker.publish("a/b", None)
        assert len(received) == 1

    def test_retained_messages_replay_to_new_subscribers(self):
        broker = Broker()
        broker.publish("status/gateway", "up", retain=True)
        received = []
        broker.subscribe("status/#", lambda m: received.append(m.payload))
        assert received == ["up"]

    def test_latency_with_scheduler(self):
        scheduler = SimulationScheduler()
        broker = Broker(scheduler=scheduler, delivery_latency=5.0)
        received_at = []
        broker.subscribe("a", lambda m: received_at.append(scheduler.clock.now))
        broker.publish("a", None, timestamp=0.0)
        scheduler.run_until(10.0)
        assert received_at == [5.0]

    def test_fanout_statistics(self):
        broker = Broker()
        broker.subscribe("a", lambda m: None)
        broker.subscribe("a", lambda m: None)
        broker.publish("a", None)
        assert broker.statistics.fanout == 2.0

    def test_invalid_pattern_rejected_at_subscribe_time(self):
        broker = Broker()
        with pytest.raises(ValueError):
            broker.subscribe("a/#/b", lambda m: None)
        # nothing was registered by the failed subscribe
        assert broker.subscriptions == []
        assert len(broker._trie) == 0

    def test_cancel_prunes_subscription_from_broker(self):
        broker = Broker()
        baseline_nodes = broker._trie.node_count()
        subscription = broker.subscribe("deep/a/b/c/+/#", lambda m: None)
        assert len(broker._trie) == 1
        subscription.cancel()
        assert len(broker._trie) == 0
        assert broker.subscriptions == []
        # the trie branches created for the pattern were pruned away
        assert broker._trie.node_count() == baseline_nodes

    def test_subscription_churn_does_not_leak(self):
        broker = Broker()
        baseline_nodes = broker._trie.node_count()
        for index in range(500):
            subscription = broker.subscribe(f"churn/{index}/+", lambda m: None)
            subscription.cancel()
        assert len(broker._trie) == 0
        assert broker._trie.node_count() == baseline_nodes
        assert broker.subscriptions == []

    def test_cancel_is_idempotent(self):
        broker = Broker()
        subscription = broker.subscribe("a/b", lambda m: None)
        subscription.cancel()
        subscription.cancel()
        broker.unsubscribe(subscription)
        assert len(broker._trie) == 0

    def test_retained_delivered_to_late_wildcard_subscribers(self):
        broker = Broker()
        broker.publish("status/gateway/1", "g1", retain=True)
        broker.publish("status/gateway/2", "g2", retain=True)
        broker.publish("status/cloud", "c", retain=True)
        plus_received, hash_received, exact_received = [], [], []
        broker.subscribe("status/gateway/+", lambda m: plus_received.append(m.payload))
        broker.subscribe("status/#", lambda m: hash_received.append(m.payload))
        broker.subscribe("status/cloud", lambda m: exact_received.append(m.payload))
        assert sorted(plus_received) == ["g1", "g2"]
        assert sorted(hash_received) == ["c", "g1", "g2"]
        assert exact_received == ["c"]

    def test_retained_replaced_by_newer_message(self):
        broker = Broker()
        broker.publish("status/x", "old", retain=True)
        broker.publish("status/x", "new", retain=True)
        received = []
        broker.subscribe("status/+", lambda m: received.append(m.payload))
        assert received == ["new"]

    def test_retained_can_be_skipped(self):
        broker = Broker()
        broker.publish("status/x", "old", retain=True)
        received = []
        broker.subscribe("status/+", lambda m: received.append(m.payload), receive_retained=False)
        assert received == []

    def test_hash_matches_parent_and_deep_topics(self):
        broker = Broker()
        received = []
        broker.subscribe("raw/#", lambda m: received.append(m.topic))
        broker.publish("raw", 1)
        broker.publish("raw/a", 2)
        broker.publish("raw/a/b/c/d/e", 3)
        broker.publish("cooked/a", 4)
        assert received == ["raw", "raw/a", "raw/a/b/c/d/e"]

    def test_wildcards_against_empty_segments(self):
        broker = Broker()
        plus_received, hash_received = [], []
        broker.subscribe("a/+/b", lambda m: plus_received.append(m.topic))
        broker.subscribe("#", lambda m: hash_received.append(m.topic))
        broker.publish("a//b", 1)
        broker.publish("", 2)
        assert plus_received == ["a//b"]
        assert hash_received == ["a//b", ""]

    def test_plus_does_not_match_missing_or_extra_segments(self):
        broker = Broker()
        received = []
        broker.subscribe("a/+", lambda m: received.append(m.topic))
        broker.publish("a", 1)
        broker.publish("a/b/c", 2)
        broker.publish("a/b", 3)
        assert received == ["a/b"]

    def test_unsubscribe_during_delivery(self):
        broker = Broker()
        received = []
        subscriptions = {}

        def first_handler(message):
            received.append("first")
            subscriptions["second"].cancel()

        broker.subscribe("a/b", first_handler)
        subscriptions["second"] = broker.subscribe(
            "a/b", lambda m: received.append("second")
        )
        broker.publish("a/b", None)
        assert received == ["first"]
        # the cancelled subscription is gone for subsequent publishes too
        broker.publish("a/b", None)
        assert received == ["first", "first"]

    def test_trie_equivalent_to_linear_matching(self):
        patterns = [
            "a/b/c", "a/+/c", "a/#", "+/b/c", "#", "a/b/+", "+/+/+",
            "a/b", "x/y/z", "a/+/#",
        ]
        topics = ["a/b/c", "a/b", "a", "x/y/z", "a/z/c", "a/b/c/d", "q", ""]
        broker = Broker()
        by_pattern = {}
        for pattern in patterns:
            by_pattern[pattern] = broker.subscribe(pattern, lambda m: None)
        for topic in topics:
            expected = {p for p in patterns if topic_matches(p, topic)}
            matched = {s.pattern for s in broker._trie.match(topic)}
            assert matched == expected, topic


class TestSubscriptionTrie:
    def test_len_and_walk(self):
        from repro.streams.broker import Subscription

        trie = SubscriptionTrie()
        subs = [
            Subscription(i, pattern, lambda m: None)
            for i, pattern in enumerate(["a/+", "a/#", "a/b"])
        ]
        for sub in subs:
            trie.insert(sub)
        assert len(trie) == 3
        assert {s.pattern for s in trie.walk()} == {"a/+", "a/#", "a/b"}
        assert trie.remove(subs[0])
        assert not trie.remove(subs[0])
        assert len(trie) == 2


class TestWindows:
    def test_sliding_window_eviction(self):
        class Item:
            def __init__(self, t): self.timestamp = t
        window = SlidingWindow(10.0)
        window.add(Item(0.0))
        window.add(Item(5.0))
        evicted = window.add(Item(12.0))
        assert len(evicted) == 1
        assert len(window) == 2

    def test_sliding_window_snapshot(self):
        class Item:
            def __init__(self, t): self.timestamp = t
        window = SlidingWindow(10.0)
        window.add(Item(1.0)); window.add(Item(2.0))
        snapshot = window.snapshot()
        assert snapshot.start == 1.0 and snapshot.end == 2.0 and len(snapshot) == 2

    def test_sliding_window_requires_timestamp(self):
        window = SlidingWindow(10.0)
        with pytest.raises(TypeError):
            window.add(object())

    def test_tumbling_window_closes_on_boundary(self):
        class Item:
            def __init__(self, t): self.timestamp = t
        window = TumblingWindow(10.0)
        window.add(Item(1.0))
        window.add(Item(9.0))
        closed = window.add(Item(11.0))
        assert len(closed) == 1
        assert len(closed[0].items) == 2
        assert closed[0].start == 0.0 and closed[0].end == 10.0

    def test_tumbling_window_skips_empty_windows(self):
        class Item:
            def __init__(self, t): self.timestamp = t
        window = TumblingWindow(10.0)
        window.add(Item(1.0))
        closed = window.add(Item(35.0))
        # only the non-empty window is emitted; the empty [10, 30) run is
        # skipped silently (and arithmetically)
        assert len(closed) == 1
        assert closed[0].start == 0.0 and closed[0].end == 10.0
        assert len(closed[0].items) == 1
        assert window.window_start == 30.0

    def test_count_window(self):
        window = CountWindow(3)
        for i in range(5):
            window.add(i)
        assert window.items == [2, 3, 4]
        assert window.full

    def test_invalid_window_sizes(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)
        with pytest.raises(ValueError):
            TumblingWindow(-1)
        with pytest.raises(ValueError):
            CountWindow(0)

    def test_tumbling_far_future_timestamp_is_constant_time(self):
        """Regression: one malformed far-future reading used to spin the
        advance loop once per empty window (~1e14 iterations here)."""
        class Item:
            def __init__(self, t): self.timestamp = t
        window = TumblingWindow(0.001)
        window.add(Item(0.0))
        start = time.perf_counter()
        closed = window.add(Item(1e12))
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0
        assert len(closed) == 1 and len(closed[0].items) == 1
        # the new window contains the far-future item's timestamp
        assert window.window_start <= 1e12 < window.window_start + window.duration

    def test_tumbling_advance_handles_float_rounding(self):
        class Item:
            def __init__(self, t): self.timestamp = t
        window = TumblingWindow(0.1, start=0.0)
        for i in range(1, 50):
            window.add(Item(i * 0.1))
            start = window.window_start
            assert start <= i * 0.1 < start + window.duration

    def test_sliding_out_of_order_expired_item_not_stranded(self):
        """Regression: a late-arriving already-expired item used to sit
        behind the newer deque head forever, inflating aggregates."""
        class Item:
            def __init__(self, t): self.timestamp = t
        window = SlidingWindow(10.0)
        window.add(Item(100.0))
        stale = Item(5.0)
        evicted = window.add(stale)
        assert evicted == [stale]
        assert window.items == [window.items[0]]
        assert len(window) == 1

    def test_sliding_out_of_order_in_window_keeps_sorted(self):
        class Item:
            def __init__(self, t): self.timestamp = t
        window = SlidingWindow(10.0)
        window.add(Item(8.0))
        window.add(Item(3.0))
        window.add(Item(6.0))
        assert [item.timestamp for item in window.items] == [3.0, 6.0, 8.0]
        # eviction horizon is the newest timestamp seen, not the last added:
        # advancing with an *older* timestamp must not resurrect anything
        assert window.advance_to(1.0) == []
        evicted = window.add(Item(14.0))
        assert [item.timestamp for item in evicted] == [3.0]

    def test_sliding_clear_resets_eviction_horizon(self):
        class Item:
            def __init__(self, t): self.timestamp = t
        window = SlidingWindow(10.0)
        window.add(Item(1000.0))
        window.clear()
        # items far older than the pre-clear horizon are accepted again
        assert window.add(Item(1.0)) == []
        assert len(window) == 1


class _Delta:
    def __init__(self, added=(), removed=()):
        self.added = list(added)
        self.removed = list(removed)


class TestViewDeltaWindow:
    def test_unseen_removal_tolerated(self):
        """Regression: removing a row the window never saw raised KeyError
        and wedged the broker delivery chain."""
        window = ViewDeltaWindow()
        window.apply(_Delta(removed=["ghost"]))
        assert len(window) == 0
        assert window.unseen_removals == 1

    def test_multiset_semantics(self):
        window = ViewDeltaWindow()
        window.apply(_Delta(added=["row", "row"]))
        window.apply(_Delta(removed=["row"]))
        assert window.items == ["row"]
        window.apply(_Delta(removed=["row"]))
        assert len(window) == 0
        assert window.unseen_removals == 0

    def test_seed_prevents_undercount(self):
        window = ViewDeltaWindow()
        window.seed(["a", "b", "b"])
        assert len(window) == 3
        window.apply(_Delta(removed=["b"]))
        assert sorted(window.items) == ["a", "b"]
        assert window.unseen_removals == 0


class TestPipeline:
    def test_map_filter_sink(self):
        outputs = []
        pipeline = (
            StreamPipeline()
            .filter(lambda x: x % 2 == 0)
            .map(lambda x: x * 10)
            .sink(outputs.append)
        )
        pipeline.push_many(range(6))
        assert outputs == [0, 20, 40]
        assert pipeline.statistics.consumed == 6
        assert pipeline.statistics.emitted == 3

    def test_flat_map(self):
        pipeline = StreamPipeline().flat_map(lambda x: [x, x])
        assert pipeline.push(3) == [3, 3]

    def test_deduplicate(self):
        pipeline = StreamPipeline().deduplicate(lambda x: x)
        outputs = pipeline.push_many([1, 1, 2, 2, 1])
        assert outputs == [1, 2]

    def test_moving_aggregate(self):
        pipeline = StreamPipeline().moving_aggregate(lambda x: float(x), size=2, aggregate="mean")
        outputs = pipeline.push_many([2, 4, 6])
        assert [aggregate for _, aggregate in outputs] == [2.0, 3.0, 5.0]

    def test_moving_aggregate_invalid_name(self):
        with pytest.raises(ValueError):
            StreamPipeline().moving_aggregate(lambda x: x, aggregate="p99")

    def test_attach_to_broker(self):
        broker = Broker()
        outputs = []
        pipeline = StreamPipeline().map(lambda r: r).sink(outputs.append)
        pipeline.attach(broker, "raw/#")
        broker.publish("raw/x", 42)
        assert outputs == [42]


class TestCodecs:
    def make_record(self, **overrides):
        defaults = dict(
            source_id="mote-1",
            source_kind="wsn_mote",
            property_name="Bodenfeuchte",
            value=17.5,
            unit="percent",
            timestamp=3600.0,
            location=(-29.1, 26.2),
            feature_of_interest="field-7",
            metadata={"battery_mj": 100.0},
        )
        defaults.update(overrides)
        return ObservationRecord(**defaults)

    def test_record_dict_round_trip(self):
        record = self.make_record()
        assert ObservationRecord.from_dict(record.to_dict()) == record

    def test_senml_round_trip(self):
        records = [self.make_record(), self.make_record(property_name="Hoehe", unit="cm", value=120.0)]
        decoded = SenMLCodec.decode(SenMLCodec.encode(records))
        assert len(decoded) == 2
        assert decoded[0].property_name == "Bodenfeuchte"
        assert decoded[1].unit == "cm"
        assert decoded[0].location == (-29.1, 26.2)

    def test_senml_empty_batch(self):
        assert SenMLCodec.decode(SenMLCodec.encode([])) == []

    def test_encoded_size_positive(self):
        assert SenMLCodec.encoded_size([self.make_record()]) > 50

    def test_message_with_header(self):
        message = Message(topic="a", payload=1, timestamp=0.0)
        augmented = message.with_header("layer", "ontology")
        assert augmented.headers["layer"] == "ontology"
        assert message.headers == {}


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
    st.floats(min_value=-50, max_value=5000, allow_nan=False)), min_size=1, max_size=30))
def test_property_senml_round_trip(pairs):
    """Arbitrary numeric batches survive the SenML encode/decode cycle."""
    records = [
        ObservationRecord(
            source_id="mote", source_kind="wsn_mote", property_name="temp",
            value=value, unit="degC", timestamp=timestamp,
        )
        for timestamp, value in pairs
    ]
    decoded = SenMLCodec.decode(SenMLCodec.encode(records))
    assert len(decoded) == len(records)
    for original, restored in zip(records, decoded):
        assert restored.value == pytest.approx(original.value)
        assert restored.timestamp == pytest.approx(original.timestamp)


class TestBrokerThreadSafety:
    """Concurrent publish / subscribe / cancel hammer.

    Per-shard ingest workers publish concurrently while applications churn
    subscriptions; the broker's lock must keep the trie, the retained
    store and the statistics consistent, with handlers running outside the
    lock (so a handler may re-enter the broker).
    """

    def test_concurrent_publish_subscribe_cancel_hammer(self):
        import threading

        broker = Broker()
        received = [0] * 4
        counters_lock = threading.Lock()
        errors = []
        publishes_per_worker = 300
        stop = threading.Event()

        def make_handler(slot):
            def handler(message):
                with counters_lock:
                    received[slot] += 1
            return handler

        # one stable subscription per worker topic, kept for accounting
        for slot in range(4):
            broker.subscribe(f"shard/{slot}/#", make_handler(slot))

        def publisher(slot):
            try:
                for index in range(publishes_per_worker):
                    broker.publish(
                        f"shard/{slot}/reading/{index % 7}",
                        index,
                        timestamp=float(index),
                        retain=(index % 11 == 0),
                    )
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        def churner():
            # constant subscribe/cancel churn across every worker's topics
            try:
                while not stop.is_set():
                    subs = [
                        broker.subscribe(f"shard/{slot}/+/{index}", lambda m: None)
                        for slot in range(4)
                        for index in range(3)
                    ]
                    for sub in subs:
                        sub.cancel()
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=publisher, args=(slot,)) for slot in range(4)]
        churn = threading.Thread(target=churner)
        churn.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        churn.join()

        assert not errors
        # every stable subscription saw every publish on its worker's topics
        assert received == [publishes_per_worker] * 4
        assert broker.statistics.published == 4 * publishes_per_worker
        # churned subscriptions are fully pruned: only the 4 stable ones remain
        assert len(broker.subscriptions) == 4
        assert len(broker._trie) == 4
        # retained messages survive and replay to a late subscriber
        late = []
        broker.subscribe("shard/+/reading/#", late.append)
        assert late  # at least one retained message per worker topic replayed


class TestBrokerRetainedReplayOrdering:
    """Retained replay racing concurrent publishers.

    The serving gateway subscribes from an asyncio event-loop thread while
    per-shard ingest threads keep publishing.  The broker's contract: the
    retained snapshot is delivered first and *complete*, publications that
    land mid-replay are parked and drained afterwards in publish order, no
    handler ever runs under the broker lock, and nothing deadlocks.
    """

    SEEDS = 40

    def test_loop_thread_subscribe_during_publish_storm(self):
        import asyncio
        import threading

        broker = Broker()
        for index in range(self.SEEDS):
            broker.publish(
                f"canonical/seed/{index}", index, timestamp=float(index), retain=True
            )

        stop = threading.Event()
        errors = []

        def publisher(worker):
            try:
                seq = 0
                while not stop.is_set():
                    broker.publish(
                        f"canonical/live/{worker}",
                        ("live", worker, seq),
                        timestamp=float(seq),
                    )
                    seq += 1
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        publishers = [
            threading.Thread(target=publisher, args=(worker,)) for worker in range(3)
        ]
        for thread in publishers:
            thread.start()

        async def loop_side():
            # subscribe from the loop thread, exactly as the gateway does,
            # twenty times in a row against the running publish storm
            for _ in range(20):
                seen = []
                lock = threading.Lock()

                def handler(message, seen=seen, lock=lock):
                    with lock:
                        seen.append(message.payload)

                subscription = broker.subscribe("canonical/#", handler)
                await asyncio.sleep(0.005)
                broker.unsubscribe(subscription)
                with lock:
                    snapshot = list(seen)

                retained = [p for p in snapshot if isinstance(p, int)]
                live_positions = [
                    position
                    for position, payload in enumerate(snapshot)
                    if isinstance(payload, tuple)
                ]
                # the retained snapshot replays completely, before any live
                # publication (mid-replay publishes were parked)
                assert sorted(retained) == list(range(self.SEEDS))
                if live_positions:
                    assert live_positions[0] >= self.SEEDS
                # per publisher, the observed live sequence is gap-free:
                # once subscribed, no publication is lost until unsubscribe
                for worker in range(3):
                    seqs = [
                        payload[2]
                        for payload in snapshot
                        if isinstance(payload, tuple) and payload[1] == worker
                    ]
                    assert seqs == list(
                        range(seqs[0], seqs[0] + len(seqs))
                    ) if seqs else True

        runner = threading.Thread(target=lambda: asyncio.run(loop_side()))
        runner.start()
        runner.join(timeout=60)
        deadlocked = runner.is_alive()
        stop.set()
        for thread in publishers:
            thread.join(timeout=10)
        assert not deadlocked, "subscribe/replay deadlocked against publishers"
        assert not any(thread.is_alive() for thread in publishers)
        assert not errors
