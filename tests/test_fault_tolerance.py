"""Fault-tolerant shard serving: deadlines, supervision, degraded reads.

The process backend must survive hostile workers: every RPC carries a
deadline, a worker that misses it is declared hung, SIGKILLed and
restarted from its snapshot + WAL with the in-flight batch replayed; a
batch that kills its worker on every replay is quarantined to the
dead-letter journal; a shard whose restarts keep failing trips a
circuit breaker and is either refused loudly or, under
``degraded_reads``, skipped with an explicit marker on partial results.

Faults are injected deterministically through
:mod:`repro.core.faults` — the randomized schedule suite echoes its
seed (override with ``FAULT_SCHEDULE_SEED``) and requires the faulted
process backend to end bag-equal to an inline oracle that never saw a
fault.
"""

from __future__ import annotations

import json
import os
import random
import time

import pytest

from repro.core.faults import (
    OP_NAMES,
    FaultPlan,
    FaultSpec,
    FaultTolerancePolicy,
    ShardUnavailableError,
    resolve_rpc_timeout,
)
from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.ontologies.library import build_unified_ontology
from repro.persistence import StoreMetadataError, StorePersistence

from test_process_backend import VIEW_QUERY, build, graph_bags, view_row_bag
from test_sharding import QUERIES, event_key, make_stream, solution_set

pytestmark = pytest.mark.usefixtures("_no_ambient_faults")


@pytest.fixture
def _no_ambient_faults(monkeypatch):
    # these tests arm their own plans; a CI fault-matrix leg must not
    # stack its ambient profile on top
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    monkeypatch.delenv("REPRO_FAULT_SEED", raising=False)
    monkeypatch.delenv("REPRO_SHARD_RPC_TIMEOUT", raising=False)


def build_faulted(tmp_path, plan: str, **kwargs) -> SemanticMiddleware:
    defaults = dict(
        shards=2,
        shard_backend="process",
        annotate_observations=True,
        data_dir=str(tmp_path / "state"),
        shard_rpc_timeout=5.0,
        shard_restart_backoff=0.01,
        fault_plan=FaultPlan.parse(plan) if isinstance(plan, str) else plan,
    )
    defaults.update(kwargs)
    return SemanticMiddleware(
        library=build_unified_ontology(materialize=True),
        config=MiddlewareConfig(**defaults),
    )


def assert_matches_oracle(faulted: SemanticMiddleware, records) -> None:
    """The faulted middleware's end state equals an un-faulted inline run."""
    oracle = build(2, "inline", annotate_observations=True)
    try:
        oracle.ingest_batch(records)
        assert graph_bags(faulted.ontology_layer) == graph_bags(oracle.ontology_layer)
        for text in QUERIES:
            assert solution_set(faulted.query(text)) == solution_set(
                oracle.query(text)
            ), text
    finally:
        oracle.close()


# --------------------------------------------------------------------- #
# the fault plan itself
# --------------------------------------------------------------------- #


def test_fault_plan_parse():
    plan = FaultPlan.parse(
        "hang:op=ingest:at=2:delay=60, crash:shard=1:op=query_full:count=3"
    )
    hang, crash = plan.specs
    assert (hang.kind, hang.op, hang.at, hang.delay) == ("hang", 0x02, 2, 60.0)
    assert (crash.kind, crash.shard, crash.op, crash.count) == ("crash", 1, 0x05, 3)
    assert crash.matches(1, 0x05) and not crash.matches(0, 0x05)
    with pytest.raises(ValueError):
        FaultPlan.parse("meteor_strike:at=1")
    with pytest.raises(ValueError):
        FaultPlan.parse("crash:at=0")
    with pytest.raises(ValueError):
        FaultPlan.parse("crash:op=warp_core")


def test_fault_plan_env_precedence():
    explicit = FaultPlan.parse("slow:delay=0.01")
    assert (
        FaultPlan.from_env({"REPRO_FAULT_PLAN": "hang:delay=9", "REPRO_FAULT_SEED": "7"})
        .specs[0]
        .kind
        == "hang"
    )
    assert FaultPlan.from_env({"REPRO_FAULT_SEED": "7"}) == FaultPlan.random(7)
    assert FaultPlan.random(7) == FaultPlan.random(7)  # seeded = reproducible
    assert FaultPlan.from_env({}) is None
    from repro.core.faults import resolve_fault_plan

    assert resolve_fault_plan(explicit) is explicit


def test_session_drops_unrecoverable_faults_without_persistence():
    plan = FaultPlan.parse("crash:op=ingest,slow:delay=0.01,wal_torn:op=ingest")
    assert [s.kind for s in plan.session(recoverable=False).specs] == ["slow"]
    assert [s.kind for s in plan.session(recoverable=True).specs] == [
        "crash",
        "slow",
        "wal_torn",
    ]


def test_backoff_schedule_and_timeout_resolution(monkeypatch):
    policy = FaultTolerancePolicy(restart_backoff=0.1, backoff_cap=0.5)
    assert [policy.backoff(n) for n in (0, 1, 2, 3, 4, 10)] == [
        0.0,
        0.1,
        0.2,
        0.4,
        0.5,
        0.5,
    ]
    monkeypatch.delenv("REPRO_SHARD_RPC_TIMEOUT", raising=False)
    assert resolve_rpc_timeout(None) == 30.0
    monkeypatch.setenv("REPRO_SHARD_RPC_TIMEOUT", "2.5")
    assert resolve_rpc_timeout(None) == 2.5
    assert resolve_rpc_timeout(1.0) == 1.0  # explicit config wins


def test_boot_crash_is_a_pure_function_of_incarnation():
    session = FaultPlan.parse("boot_crash:shard=0:at=2:count=2").session(True)
    assert [session.boot_crash_fires(0, n) for n in (1, 2, 3, 4)] == [
        False,
        True,
        True,
        False,
    ]
    assert not session.boot_crash_fires(1, 2)


# --------------------------------------------------------------------- #
# heartbeats and health
# --------------------------------------------------------------------- #


def test_ping_and_health_shapes():
    middleware = build(2, "process")
    try:
        backend = middleware.ontology_layer._backend
        pongs = backend.ping()
        assert set(pongs) == {0, 1}
        assert all(pong["pid"] for pong in pongs.values())
        health = middleware.health()
        assert health["backend"] == "process"
        assert [s["state"] for s in health["shards"]] == ["up", "up"]
        assert health["healthy"] and health["quarantined_batches"] == 0
        assert health["dead_letter_depth"] == 0
    finally:
        middleware.close()


def test_health_inline_and_single_graph():
    inline = build(2, "inline")
    single = SemanticMiddleware(config=MiddlewareConfig(shards=1))
    try:
        assert inline.health()["backend"] == "inline"
        assert inline.health()["healthy"]
        report = single.health()
        assert report["backend"] == "single"
        assert report["healthy"] and len(report["shards"]) == 1
        # health keys are folded into shard statistics everywhere
        for stats in (
            inline.ontology_layer.shard_statistics(),
            single.ontology_layer.shard_statistics(),
        ):
            for entry in stats:
                assert entry["state"] == "up" and entry["breaker"] == "closed"
    finally:
        inline.close()
        single.close()


# --------------------------------------------------------------------- #
# hung workers: deadline -> SIGKILL -> restart -> replay
# --------------------------------------------------------------------- #


def test_hung_worker_detected_killed_and_replayed(tmp_path):
    rng = random.Random(11)
    records = make_stream(rng, 80)
    middleware = build_faulted(
        tmp_path, "hang:op=ingest:shard=0:at=2:delay=120", shard_rpc_timeout=1.0
    )
    try:
        events = middleware.ingest_batch(records[:40])
        started = time.monotonic()
        events += middleware.ingest_batch(records[40:])  # one shard hangs here
        elapsed = time.monotonic() - started
        # detected within the RPC deadline (plus restart work), not the
        # 120 s the worker intended to sleep
        assert 1.0 <= elapsed < 30.0
        health = middleware.health()
        assert health["healthy"]
        assert sum(s["restarts"] for s in health["shards"]) == 1
        oracle = build(2, "inline", annotate_observations=True)
        try:
            oracle_events = oracle.ingest_batch(records[:40])
            oracle_events += oracle.ingest_batch(records[40:])
            assert [event_key(e) for e in events] == [
                event_key(e) for e in oracle_events
            ]
        finally:
            oracle.close()
        assert_matches_oracle(middleware, records)
    finally:
        middleware.close()


@pytest.mark.parametrize(
    "fault",
    ["crash:op=ingest:at=2", "crash_after:op=ingest:at=2"],
    ids=["crash-before", "crash-after"],
)
def test_crash_at_op_n_recovers_and_converges(tmp_path, fault):
    rng = random.Random(23)
    records = make_stream(rng, 80)
    middleware = build_faulted(tmp_path, fault)
    try:
        middleware.ingest_batch(records[:40])
        middleware.ingest_batch(records[40:])  # crashes once, replays clean
        health = middleware.health()
        assert health["healthy"]
        assert sum(s["restarts"] for s in health["shards"]) == 1
        assert_matches_oracle(middleware, records)
    finally:
        middleware.close()


@pytest.mark.parametrize(
    "fault", ["wal_error", "wal_fsync_error", "wal_torn"]
)
def test_wal_faults_failstop_and_recover(tmp_path, fault):
    # a disk fault mid-op leaves worker memory ahead of its log, so the
    # worker fail-stops; recovery replays from the last consistent state
    # (for wal_torn, past a genuinely torn tail frame)
    rng = random.Random(31)
    records = make_stream(rng, 80)
    middleware = build_faulted(tmp_path, f"{fault}:op=ingest:at=2")
    try:
        middleware.ingest_batch(records[:40])
        middleware.ingest_batch(records[40:])
        assert middleware.health()["healthy"]
        assert_matches_oracle(middleware, records)
    finally:
        middleware.close()


# --------------------------------------------------------------------- #
# poison batches -> dead-letter quarantine
# --------------------------------------------------------------------- #


def test_poison_batch_quarantined_after_replay_budget(tmp_path):
    rng = random.Random(47)
    records = make_stream(rng, 60)
    middleware = build_faulted(
        tmp_path, "crash:op=ingest:shard=0:at=2:count=99", replay_budget=2
    )
    try:
        middleware.ingest_batch(records[:30])
        middleware.ingest_batch(records[30:])  # shard 0 crashes on every replay
        health = middleware.health()
        assert health["quarantined_batches"] == 1
        assert health["dead_letter_depth"] == 1
        assert health["healthy"]  # quarantine clears the fault: shard serves on
        (entry,) = middleware.ontology_layer.dead_letter.entries()
        assert entry["kind"] == "poison_batch" and entry["shard"] == 0
        assert "2 replays" in entry["reason"]
        assert entry["records"], "quarantined records must be recoverable"
        # the journal holds the decoded canonical observations
        assert all("property_key" in record for record in entry["records"])
        # the journal survives on disk, one fsynced JSON line per entry
        journal = tmp_path / "state" / "dead-letter.jsonl"
        assert health["dead_letter_path"] == str(journal)
        lines = journal.read_text().splitlines()
        assert len(lines) == 1 and json.loads(lines[0])["kind"] == "poison_batch"
        # the shard is healthy again: later batches land normally
        more = make_stream(random.Random(48), 30)
        middleware.ingest_batch(more)
        assert middleware.health()["healthy"]
        assert middleware.query(VIEW_QUERY).rows
    finally:
        middleware.close()


# --------------------------------------------------------------------- #
# circuit breaker: refuse loudly or serve degraded
# --------------------------------------------------------------------- #

TRIP_PLAN = "crash:op=ingest:shard=0:at=2:count=99,boot_crash:shard=0:at=2:count=99"


def test_restart_budget_exhaustion_trips_breaker(tmp_path):
    rng = random.Random(59)
    records = make_stream(rng, 60)
    middleware = build_faulted(
        tmp_path, TRIP_PLAN, shard_restart_budget=2, pending_queue_limit=1
    )
    try:
        middleware.ingest_batch(records[:30])
        middleware.ingest_batch(records[30:])  # shard 0 dies and cannot restart
        health = middleware.health()
        assert not health["healthy"]
        shard0 = health["shards"][0]
        assert shard0["state"] == "tripped" and shard0["breaker"] == "open"
        assert shard0["trips"] >= 1 and shard0["last_error"]
        # reads refuse loudly by default, naming the shard
        with pytest.raises(ShardUnavailableError) as excinfo:
            middleware.query(VIEW_QUERY)
        assert excinfo.value.shard == 0
        # statistics still answer (synthetic zeroed entry for the shard)
        per_shard = middleware.ontology_layer.shard_statistics()
        assert per_shard[0]["state"] == "tripped"
        # the in-flight batch parked; the queue is bounded
        assert middleware.health()["shards"][0]["pending_batches"] == 1
        with pytest.raises(ShardUnavailableError, match="queue is full"):
            middleware.ingest_batch(records[:30])
    finally:
        middleware.close()


def test_degraded_reads_serve_partial_results_then_recover(tmp_path):
    rng = random.Random(61)
    records = make_stream(rng, 60)
    middleware = build_faulted(
        tmp_path,
        # one op crash, then the next two boots fail -> budget (2)
        # exhausted -> trip; the half-open probe's boot succeeds
        "crash:op=ingest:shard=0:at=2,boot_crash:shard=0:at=2:count=2",
        shard_restart_budget=2,
        degraded_reads=True,
    )
    try:
        middleware.ingest_batch(records[:30])
        middleware.ingest_batch(records[30:])  # trips shard 0, batch parks
        assert middleware.health()["shards"][0]["state"] == "tripped"
        partial = middleware.query(VIEW_QUERY)
        assert partial.degraded and partial.missing_shards == (0,)
        # the surviving shard keeps answering and keeps ingesting
        assert partial.rows
        middleware.ingest_batch(make_stream(random.Random(62), 30))
        assert middleware.health()["shards"][0]["pending_batches"] >= 1
        # past the retry delay the next request probes, recovers the
        # worker from snapshot + WAL and flushes the parked batches
        time.sleep(0.3)
        recovered = middleware.query(VIEW_QUERY)
        assert not recovered.degraded and recovered.missing_shards == ()
        health = middleware.health()
        assert health["healthy"]
        assert health["shards"][0]["pending_batches"] == 0
        assert len(recovered) > len(partial)
    finally:
        middleware.close()


def test_degraded_ask_and_full_equivalence_after_recovery(tmp_path):
    rng = random.Random(67)
    records = make_stream(rng, 60)
    middleware = build_faulted(
        tmp_path,
        "crash:op=ingest:shard=0:at=2,boot_crash:shard=0:at=2:count=2",
        shard_restart_budget=2,
        degraded_reads=True,
    )
    try:
        middleware.ingest_batch(records[:30])
        middleware.ingest_batch(records[30:])
        ask = middleware.query("ASK WHERE { ?obs rdf:type ssn:Observation }")
        assert ask.degraded  # a partial ASK is still marked
        time.sleep(0.3)
        middleware.query(VIEW_QUERY)  # probe + flush
        assert_matches_oracle(middleware, records)
    finally:
        middleware.close()


# --------------------------------------------------------------------- #
# standing views across supervised restarts
# --------------------------------------------------------------------- #


def test_standing_views_survive_hang_kill_restart(tmp_path):
    rng = random.Random(71)
    records = make_stream(rng, 80)
    middleware = build_faulted(
        tmp_path, "hang:op=ingest:at=2:delay=120", shard_rpc_timeout=1.0
    )
    oracle = build(2, "inline", annotate_observations=True)
    try:
        views = middleware.register_standing(VIEW_QUERY, name="obs")
        oracle_views = oracle.register_standing(VIEW_QUERY, name="obs")
        middleware.ingest_batch(records[:40])
        oracle.ingest_batch(records[:40])
        middleware.ingest_batch(records[40:])  # hang -> kill -> restart
        oracle.ingest_batch(records[40:])
        assert view_row_bag(views) == view_row_bag(oracle_views)
    finally:
        middleware.close()
        oracle.close()


# --------------------------------------------------------------------- #
# randomized seeded fault schedules vs the un-faulted oracle
# --------------------------------------------------------------------- #


def _random_schedule(seed: int, faults: int = 3) -> FaultPlan:
    """A convergent random schedule: every fault fires exactly once
    (``count=1``) on an ingest/query/refresh RPC, so replay always
    makes progress and the run must end bag-equal to the oracle."""
    rng = random.Random(seed)
    kinds = ["hang", "crash", "crash_after", "wal_error", "wal_fsync_error", "wal_torn"]
    specs = []
    for _ in range(faults):
        kind = rng.choice(kinds)
        op = "ingest" if kind.startswith("wal") else rng.choice(
            ["ingest", "query_full", "refresh_views"]
        )
        specs.append(
            FaultSpec(
                kind=kind,
                shard=rng.choice([None, 0, 1]),
                op=OP_NAMES[op],
                at=rng.randint(2, 4),
                count=1,
                delay=120.0 if kind == "hang" else 0.0,
            )
        )
    return FaultPlan(tuple(specs))


def test_randomized_fault_schedule_matches_oracle(tmp_path):
    seed = int(os.environ.get("FAULT_SCHEDULE_SEED", random.randrange(2**32)))
    print(f"FAULT_SCHEDULE_SEED={seed}")
    plan = _random_schedule(seed)
    rng = random.Random(seed)
    records = make_stream(rng, 120)
    middleware = build_faulted(tmp_path, plan, shard_rpc_timeout=1.0)
    try:
        for start in range(0, 120, 30):
            middleware.ingest_batch(records[start : start + 30])
            middleware.query(VIEW_QUERY)
        middleware.ontology_layer._backend.refresh_views()
        assert_matches_oracle(middleware, records)
        assert middleware.health()["healthy"]
    finally:
        middleware.close()


# --------------------------------------------------------------------- #
# validation rejects -> dead-letter journal
# --------------------------------------------------------------------- #


class _GullibleMediator:
    """A mediator that resolves everything verbatim, including the
    non-finite readings the real mediators refuse upstream — validation
    is the net that has to catch them."""

    def __init__(self):
        from repro.core.mediator import Mediator

        self._real = Mediator()
        self.statistics = self._real.statistics

    def mediate(self, record):
        from repro.core.mediator import CanonicalObservation, MediationOutcome

        observation = CanonicalObservation(
            property_key="rainfall",
            value=record.value,
            unit="mm",
            timestamp=record.timestamp,
            source_id=record.source_id,
            source_kind=record.source_kind,
            area=record.metadata.get("area"),
            original_term=record.property_name,
        )
        return MediationOutcome(record, observation)

    def mediate_many(self, records):
        return [self.mediate(record) for record in records]


def _unvalidatable_stream():
    """Records a trusting mediator resolves happily but whose values or
    timestamps the validate stage must refuse to annotate."""
    from repro.streams.messages import ObservationRecord

    def record(value, timestamp):
        return ObservationRecord(
            source_id="mote-00",
            source_kind="wsn_mote",
            property_name="rainfall",
            value=value,
            timestamp=timestamp,
            unit="mm",
            metadata={"area": "thabo"},
        )

    good = [record(3.0, 600.0 * n) for n in range(4)]
    bad = [
        record(float("nan"), 3000.0),
        record(float("inf"), 3600.0),
        record(2.0, float("nan")),
    ]
    return good, bad


def _gullible_middleware(data_dir=None) -> SemanticMiddleware:
    return SemanticMiddleware(
        library=build_unified_ontology(materialize=True),
        mediator=_GullibleMediator(),
        config=MiddlewareConfig(
            shards=2,
            shard_backend="inline",
            annotate_observations=True,
            data_dir=data_dir,
        ),
    )


def test_validation_rejects_reach_dead_letter(tmp_path):
    good, bad = _unvalidatable_stream()
    middleware = _gullible_middleware(data_dir=str(tmp_path / "state"))
    try:
        events = middleware.ingest_batch(good + bad)
        assert len(events) == len(good)
        rejects = middleware.ontology_layer.statistics.validation_rejects
        assert rejects == len(bad)
        entries = [
            entry
            for entry in middleware.ontology_layer.dead_letter.entries()
            if entry["kind"] == "validation_reject"
        ]
        assert len(entries) == rejects
        assert sum("non-finite value" in e["reason"] for e in entries) == 2
        assert sum("non-finite timestamp" in e["reason"] for e in entries) == 1
        # the raw record rides along, so a fixed feed can be replayed
        assert all(
            entry["records"][0]["property_name"] == "rainfall" for entry in entries
        )
        health = middleware.health()
        assert health["validation_rejects"] == rejects
        assert health["dead_letter_depth"] == rejects
        # journalled to disk alongside the WAL state
        journal = tmp_path / "state" / "dead-letter.jsonl"
        assert len(journal.read_text().splitlines()) == rejects
    finally:
        middleware.close()


def test_validation_rejects_counted_without_data_dir():
    good, bad = _unvalidatable_stream()
    middleware = _gullible_middleware()
    try:
        # the record-major path rejects identically to the batch path
        for record in good + bad:
            middleware.ingest_record(record)
        assert middleware.ontology_layer.statistics.validation_rejects == len(bad)
        assert middleware.health()["dead_letter_path"] is None
        assert middleware.health()["dead_letter_depth"] == len(bad)  # in-memory
    finally:
        middleware.close()


# --------------------------------------------------------------------- #
# corrupt store metadata
# --------------------------------------------------------------------- #


def test_corrupt_meta_json_raises_typed_error(tmp_path):
    store = tmp_path / "state"
    middleware = build(
        2, "inline", annotate_observations=True, data_dir=str(store)
    )
    middleware.ingest_batch(make_stream(random.Random(89), 30))
    middleware.close()
    meta = store / "meta.json"
    meta.write_text("{not json")
    with pytest.raises(StoreMetadataError, match="corrupt"):
        StorePersistence(str(store)).validate_meta()
    # recovery through the middleware surfaces the same typed error
    with pytest.raises(StoreMetadataError, match="corrupt"):
        build(2, "inline", annotate_observations=True, data_dir=str(store))
    meta.write_text(json.dumps({"shards": "two"}))
    with pytest.raises(StoreMetadataError, match="does not describe"):
        StorePersistence(str(store)).validate_meta()
    meta.write_text(json.dumps([1, 2]))
    with pytest.raises(StoreMetadataError, match="does not describe"):
        StorePersistence(str(store)).validate_meta()
