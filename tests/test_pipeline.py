"""Tests for the staged ingestion pipeline and the batch ingestion APIs."""

import math

import pytest

from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.core.pipeline import (
    IngestionContext,
    MediateStage,
    Pipeline,
    Stage,
    ValidateStage,
)
from repro.core.mediator import Mediator
from repro.ontologies import build_unified_ontology
from repro.streams.messages import ObservationRecord
from repro.streams.scheduler import DAY


def record(property_name="Bodenfeuchte", value=15.0, unit="percent",
           source_kind="wsn_mote", source_id="Mangaung-mote-01", timestamp=3600.0):
    return ObservationRecord(
        source_id=source_id, source_kind=source_kind, property_name=property_name,
        value=value, unit=unit, timestamp=timestamp, location=(-29.1, 26.2),
    )


def mixed_workload():
    """Valid observations, a sighting burst, an unresolvable term and unit mixes."""
    records = [
        record("Bodenfeuchte", 14.0, "percent"),
        record("Hoehe", 120.0, "cm", source_id="Mangaung-gauge-1"),
        record("nonsense-term"),
        record("Stav", 1.2, "m", source_id="Mangaung-gauge-2"),
        record("Dry Bulb Temperature", 77.0, "degF", source_id="Mangaung-stn-1"),
    ]
    for index in range(4):
        records.append(record(
            "sifennefene_worms", 0.9, None, source_kind="ik_sighting",
            source_id=f"Mangaung-farmer-{index:03d}", timestamp=(index + 1) * DAY,
        ))
    records.append(record("PLUVIO", 5.0, "mm", source_id="Mangaung-mote-07"))
    return records


class TestPipelineAbstraction:
    def test_stage_drop_accounting(self):
        class DropOdd(Stage):
            name = "drop-odd"

            def process(self, context):
                return context.record % 2 == 0

        class Double(Stage):
            name = "double"

            def process(self, context):
                context.event = context.record * 2
                return True

        pipeline = Pipeline([DropOdd(), Double()])
        contexts = [IngestionContext(record=i) for i in range(6)]
        survivors = pipeline.run_batch(contexts)
        assert [c.event for c in survivors] == [0, 4, 8, 12, 16, 20][:3]
        stats = pipeline.statistics
        assert stats.records == 6
        assert stats.batches == 1
        assert stats.stages["drop-odd"].entered == 6
        assert stats.stages["drop-odd"].dropped == 3
        assert stats.stages["double"].entered == 3
        assert stats.stages["double"].dropped == 0
        dropped = [c for c in contexts if c.dropped_by is not None]
        assert all(c.dropped_by == "drop-odd" for c in dropped)

    def test_run_marks_dropping_stage(self):
        class Reject(Stage):
            name = "reject"

            def process(self, context):
                return False

        pipeline = Pipeline([Reject()])
        context = pipeline.run(IngestionContext(record=object()))
        assert context.dropped_by == "reject"

    def test_mediate_stage_batch_matches_single(self):
        records = mixed_workload()
        single = Pipeline([MediateStage(Mediator())])
        batch = Pipeline([MediateStage(Mediator())])
        single_out = [single.run(IngestionContext(r)) for r in records]
        single_survivors = [c for c in single_out if c.dropped_by is None]
        batch_survivors = batch.run_batch([IngestionContext(r) for r in records])
        assert len(single_survivors) == len(batch_survivors)
        for a, b in zip(single_survivors, batch_survivors):
            assert a.observation.property_key == b.observation.property_key
            assert a.observation.value == pytest.approx(b.observation.value)

    def test_validate_stage_drops_non_finite(self):
        mediator = Mediator(strict_units=False)
        stage = ValidateStage()
        good = IngestionContext(record("Bodenfeuchte", 15.0))
        good.observation = mediator.mediate(good.record).observation
        assert stage.process(good)
        bad = IngestionContext(record("Bodenfeuchte", 15.0))
        bad.observation = mediator.mediate(bad.record).observation
        bad.observation.value = math.nan
        assert not stage.process(bad)


@pytest.fixture(scope="module")
def libraries():
    # two independent libraries so the two middleware instances do not
    # share (and cross-deduplicate within) one annotation graph
    return build_unified_ontology(materialize=True), build_unified_ontology(materialize=True)


class TestBatchIngestionEquivalence:
    def build(self, library):
        return SemanticMiddleware(
            library=library,
            config=MiddlewareConfig(annotate_observations=True, broker_latency=0.0),
        )

    def test_ingest_batch_equivalent_to_ingest_records(self, libraries):
        records = mixed_workload()
        single = self.build(libraries[0])
        batch = self.build(libraries[1])

        single_events = single.ingest_records(records)
        batch_events = batch.ingest_batch(records)

        assert len(single_events) == len(batch_events)
        for a, b in zip(single_events, batch_events):
            assert a.event_type == b.event_type
            assert a.value == pytest.approx(b.value)
            assert a.timestamp == pytest.approx(b.timestamp)
            assert a.area == b.area
            assert a.source_id == b.source_id
            assert a.annotation_iri == b.annotation_iri

        single_stats = single.ontology_layer.statistics
        batch_stats = batch.ontology_layer.statistics
        assert single_stats.records_in == batch_stats.records_in
        assert single_stats.observations_out == batch_stats.observations_out
        assert single_stats.sightings_out == batch_stats.sightings_out
        assert single_stats.derived_events == batch_stats.derived_events
        assert single_stats.annotation_triples == batch_stats.annotation_triples
        assert len(single.graph) == len(batch.graph)

    def test_batch_publishes_canonical_and_derived_events(self, libraries):
        middleware = self.build(libraries[0])
        canonical, derived = [], []
        middleware.subscribe_property("soil_moisture", canonical.append)
        middleware.subscribe_derived("ik_dry_indication", derived.append)
        middleware.ingest_batch(mixed_workload())
        assert canonical and canonical[0].event_type == "soil_moisture"
        assert derived and derived[0].rule_name == "ik_sifennefene_worms"
        assert middleware.knowledge_base.sightings

    def test_empty_batch(self, libraries):
        middleware = self.build(libraries[0])
        assert middleware.ingest_batch([]) == []

    def test_interface_layer_forwards_poll_as_batch(self, libraries):
        from repro.dews.cloud import CloudStore
        from repro.streams.messages import SenMLCodec
        from repro.streams.scheduler import SimulationScheduler

        scheduler = SimulationScheduler()
        middleware = SemanticMiddleware(
            scheduler=scheduler, library=libraries[1],
            config=MiddlewareConfig(annotate_observations=False,
                                    cloud_poll_interval=600.0, broker_latency=0.0),
        )
        cloud = CloudStore()
        middleware.attach_cloud_store(cloud)
        received = []
        middleware.subscribe_property("rainfall", received.append)
        cloud.ingest(SenMLCodec.encode(
            [record("Niederschlag", 7.0, "mm", source_id="Mangaung-mote-02"),
             record("PLUVIO", 3.0, "mm", source_id="Mangaung-mote-03")]), 0.0)
        scheduler.run_until(1200.0)
        stats = middleware.interface_layer.statistics
        assert stats.records_decoded == 2
        assert stats.batches_forwarded == 1
        assert len(received) == 2
        assert middleware.statistics()["pipeline"].batches == 1
