"""End-to-end Drought Early Warning System for a Free State district.

Runs the full pipeline of the paper's case study for one simulated year with
a drought episode embedded in the second half of the rainy season: WSN motes,
weather stations and mobile observers feed the SMS gateway and cloud store;
the middleware mediates and annotates; the CEP engine detects deficit
processes and IK indications; the three forecasters issue probabilities; and
alerts are disseminated over the IoT output channels.

Run with::

    python examples/free_state_dews.py
"""

from repro.dews import DewsConfig, DroughtEarlyWarningSystem
from repro.workloads import DroughtEpisode, build_free_state_scenario


def main() -> None:
    scenario = build_free_state_scenario(
        districts=["Mangaung"],
        motes_per_district=8,
        observers_per_district=10,
        stations_per_district=1,
        episodes=[DroughtEpisode(start_day=200.0, end_day=310.0, severity=0.85)],
        seed=3,
    )
    config = DewsConfig(days=365, forecast_every_days=10, forecast_start_day=60, seed=3)
    print(f"Scenario: {scenario.total_motes} motes, {scenario.total_observers} observers, "
          f"drought ground truth days 200-310")

    dews = DroughtEarlyWarningSystem(scenario, config)
    result = dews.run()

    print("\nForecast skill against the embedded drought episode:")
    for row in result.skill_table():
        print("  " + ", ".join(f"{key}={value}" for key, value in row.items()))

    print("\nAlerts issued around the onset (days 180-260):")
    for alert in result.alerts:
        if 180 <= alert.issue_day <= 260 and alert.actionable:
            print(f"  day {alert.issue_day:5.0f}  {alert.headline()}")

    print("\nDissemination channel statistics:")
    for channel, stats in result.dissemination_statistics.items():
        print(f"  {channel:>16}: {stats.delivered}/{stats.attempted} delivered, "
              f"mean latency {stats.mean_latency:.0f}s, reach {stats.recipients_reached}")

    wsn = result.wsn_statistics["Mangaung"]
    gateway = result.gateway_statistics["Mangaung"]
    mediation = result.middleware_statistics["mediation"]
    print(f"\nPipeline health: WSN delivery {wsn.delivery_ratio:.0%}, "
          f"gateway upload {gateway.upload_success_ratio:.0%}, "
          f"mediation resolution {mediation.resolution_rate:.0%}, "
          f"{result.derived_event_count} derived events.")


if __name__ == "__main__":
    main()
