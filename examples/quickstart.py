"""Quickstart: feed heterogeneous observations through the semantic middleware.

Demonstrates the core loop of the paper in ~60 lines: raw records from
sources that spell the same property three different ways (and in three
different units) are mediated against the unified ontology, annotated as SSN
observations, published as canonical events, and an IK-derived CEP rule
fires on corroborated indicator sightings.

Run with::

    python examples/quickstart.py
"""

from repro.core import MiddlewareConfig, SemanticMiddleware
from repro.streams.messages import ObservationRecord
from repro.streams.scheduler import DAY


def main() -> None:
    middleware = SemanticMiddleware(config=MiddlewareConfig(broker_latency=0.0))

    # Applications subscribe to *canonical* streams; they never see the raw
    # vendor spellings.
    canonical_events = []
    middleware.subscribe_property("water_level", canonical_events.append)
    derived_events = []
    middleware.subscribe_derived("#", derived_events.append)

    # Three gauges reporting the same property: 'Hoehe' (German, cm),
    # 'Stav' (Czech, m) and 'water level' (English, mm) -- the paper's
    # naming-heterogeneity example.
    raw_records = [
        ObservationRecord("Mangaung-gauge-de", "wsn_mote", "Hoehe", 118.0, "cm",
                          timestamp=1 * DAY, location=(-29.1, 26.2)),
        ObservationRecord("Mangaung-gauge-cz", "wsn_mote", "Stav", 1.21, "m",
                          timestamp=1 * DAY, location=(-29.1, 26.3)),
        ObservationRecord("Mangaung-gauge-en", "weather_station", "water level", 1190.0, "mm",
                          timestamp=1 * DAY, location=(-29.2, 26.2)),
    ]
    # Community observers reporting sifennefene worm sightings (an
    # indigenous drought indicator) over a couple of weeks.
    for day in (2, 4, 6, 9):
        raw_records.append(ObservationRecord(
            f"Mangaung-farmer-{day:03d}", "ik_sighting", "sifennefene_worms",
            0.85, None, timestamp=day * DAY, location=(-29.1, 26.2),
        ))

    # one stage-major batch: mediation, annotation and the CEP flush are
    # amortised across the whole batch
    middleware.ingest_batch(raw_records)

    print("Canonical water-level events (all in mm, all on one topic):")
    for event in canonical_events:
        print(f"  {event.source_id:>22}  {event.value:8.1f} mm  (area {event.area})")

    print("\nCEP-derived events from IK rules:")
    for event in derived_events:
        print(f"  {event.explain()}")

    print("\nSPARQL-like query over the annotation graph:")
    result = middleware.query("""
        SELECT ?obs ?v WHERE {
            ?obs ssn:observedProperty envo:WaterLevel .
            ?obs ssn:hasResult ?r .
            ?r ssn:hasValue ?v .
        } ORDER BY DESC(?v)
    """)
    for row in result.rows:
        print(f"  {row['obs']}  value={row['v']}")

    stats = middleware.statistics()
    print(f"\nMediation: {stats['mediation'].resolved}/{stats['mediation'].records_seen} "
          f"records resolved ({stats['mediation'].resolution_rate:.0%}); "
          f"graph now holds {stats['graph_triples']} triples.")


if __name__ == "__main__":
    main()
