"""Standing dashboard: SPARQL queries maintained as materialized views.

A drought dashboard polls the same handful of queries after every sensor
upload.  Re-running them from scratch each cycle costs O(graph) per poll;
registering them as *standing views* keeps each result materialized and
folds every upload's triples in as an O(|delta|) update instead.  With
``push=True`` the itemised view deltas also ride the broker, so a CEP
rule can watch "how many exceedance rows does this standing query have"
without ever re-polling it.

The simulated deployment: four districts upload observation polls; the
dashboard serves an exceedance panel, a sensor inventory and a per-district
drill-down after every upload; a CEP aggregate rule fires once the
exceedance panel grows past a threshold.

Run with::

    python examples/standing_dashboard.py
"""

from repro.cep import AggregatePattern, CepEngine, CepRule, ViewEventSource
from repro.core import MiddlewareConfig, SemanticMiddleware
from repro.streams.messages import ObservationRecord

DISTRICTS = ["thabo", "mangaung", "xhariep", "lejwe"]

EXCEEDANCE_PANEL = """SELECT ?obs ?v WHERE {
    ?obs rdf:type ssn:Observation .
    ?obs ssn:hasResult ?r .
    ?r ssn:hasValue ?v .
    FILTER (?v > 24)
}"""
SENSOR_INVENTORY = """SELECT DISTINCT ?sensor WHERE {
    ?obs ssn:observedBy ?sensor .
    ?sensor rdf:type ssn:SensingDevice .
}"""


def district_drilldown(district: str) -> str:
    feature = f"http://africrid.example.org/resource/feature/{district}"
    return f"""SELECT ?obs ?v WHERE {{
        ?obs ssn:featureOfInterest <{feature}> .
        ?obs ssn:hasResult ?r .
        ?r ssn:hasValue ?v .
    }}"""


def poll(district: str, cycle: int) -> list:
    """One district upload: five soil-moisture readings, slowly drying."""
    records = []
    for index in range(5):
        sequence = cycle * 5 + index
        records.append(ObservationRecord(
            source_id=f"{district}-mote-{index:02d}",
            source_kind="wsn_mote",
            property_name="soil moisture",
            value=20.0 + (sequence * 3 + hash(district) % 7) % 13,
            unit="percent",
            timestamp=600.0 * sequence,
            metadata={"area": district},
        ))
    return records


def main() -> None:
    middleware = SemanticMiddleware(
        config=MiddlewareConfig(shards=4, cep_per_record=False, broker_latency=0.0)
    )

    # Register the dashboard suite as standing views.  The sharded layer
    # registers one view per partition, so a district's upload folds its
    # delta into that partition's views only.
    dashboard = {
        "exceedance": EXCEEDANCE_PANEL,
        "inventory": SENSOR_INVENTORY,
    }
    for district in DISTRICTS:
        dashboard[f"drilldown/{district}"] = district_drilldown(district)
    for name, text in dashboard.items():
        push = name == "exceedance"
        middleware.register_standing(text, name=name, push=push)

    # A CEP rule watching the standing exceedance panel over the broker:
    # the ViewEventSource mirrors the view's rows in a delta-fed window and
    # emits a row-count gauge the AggregatePattern thresholds on.
    engine = CepEngine(feedback=False)
    engine.add_rule(CepRule(
        name="widespread-exceedance",
        pattern=AggregatePattern("exceedance.count", aggregate="last",
                                 op=">=", threshold=25.0),
        window_seconds=30 * 86400.0,
        derived_event_type="widespread_exceedance",
        cooldown_seconds=7 * 86400.0,
    ))
    alerts = []
    engine.on_derived_event(alerts.append)
    source = ViewEventSource(engine, "exceedance", value_var="?v",
                             emit_rows=False)
    source.attach(middleware.broker, "views/exceedance")

    print(f"{'cycle':>5} {'exceedance':>11} {'inventory':>10} "
          f"{'drilldown(thabo)':>17} {'alerts':>7}")
    for cycle in range(8):
        for district in DISTRICTS:
            middleware.ingest_batch(poll(district, cycle))
        exceedance = len(middleware.query(EXCEEDANCE_PANEL).solutions)
        inventory = len(middleware.query(SENSOR_INVENTORY).solutions)
        drill = len(middleware.query(dashboard["drilldown/thabo"]).solutions)
        print(f"{cycle:>5} {exceedance:>11} {inventory:>10} "
              f"{drill:>17} {len(alerts):>7}")

    print("\nHow the suite was served (no re-evaluation after registration):")
    planner = middleware.ontology_layer.planner_statistics()
    print(f"  view hits: {planner.view_hits}, "
          f"result-cache misses: {planner.result_misses}")
    stats = middleware.ontology_layer.standing_view_statistics()
    print(f"  delta updates: {stats['delta_updates']}, "
          f"full refreshes: {stats['full_refreshes']}")
    print(f"  CEP window rows (no re-polling): {len(source.window)}, "
          f"deltas consumed: {source.deltas_seen}")
    for alert in alerts[:1]:
        print(f"  alert: {alert.explain()}")
    middleware.close()


if __name__ == "__main__":
    main()
