"""Heterogeneity mediation in isolation: what the ontology layer resolves.

Generates one day of raw traffic from every vendor profile in the scenario
(German and Czech gauges, a SAWS-style synoptic station, Libelium motes,
farmer phone reports), shows the naming and unit chaos of the raw stream,
and then shows the same stream after semantic mediation -- every record
mapped to a canonical property in canonical units, or explicitly rejected
with a reason.

Run with::

    python examples/heterogeneity_mediation.py
"""

from collections import Counter

from repro.core.mediator import Mediator, passthrough_mediator
from repro.sensors.heterogeneity import VENDOR_PROFILES
from repro.sensors.modality import ConstantEnvironment
from repro.sensors.node import SensorNode
from repro.sensors.weather_station import WeatherStation

ENVIRONMENT = ConstantEnvironment({
    "air_temperature": 27.0, "soil_moisture": 14.0, "rainfall": 0.0,
    "relative_humidity": 38.0, "water_level": 1900.0, "soil_temperature": 24.0,
    "wind_speed": 4.0, "barometric_pressure": 1012.0, "solar_radiation": 700.0,
    "vegetation_index": 0.34,
})


def build_sources():
    sources = []
    for index, profile in enumerate(VENDOR_PROFILES.values()):
        sources.append(SensorNode(
            node_id=f"Mangaung-{profile.name}-{index}",
            location=(-29.1, 26.2),
            modalities=["air_temperature", "soil_moisture", "rainfall", "water_level"],
            environment=ENVIRONMENT, profile=profile, seed=index,
        ))
    sources.append(WeatherStation("Mangaung-station-0", (-29.1, 26.2), ENVIRONMENT, seed=9))
    return sources


def main() -> None:
    records = []
    for source in build_sources():
        if isinstance(source, WeatherStation):
            records.extend(source.report(12 * 3600.0))
        else:
            records.extend(source.sample(12 * 3600.0))

    print(f"Raw stream: {len(records)} records")
    spellings = Counter(record.property_name for record in records)
    units = Counter(record.unit for record in records)
    print(f"  {len(spellings)} distinct property spellings: {sorted(spellings)}")
    print(f"  {len(units)} distinct units: {sorted(str(u) for u in units)}\n")

    mediator = Mediator()
    outcomes = mediator.mediate_many(records)
    print("After semantic mediation (unified ontology + unit conversion):")
    by_property = Counter(o.observation.property_key for o in outcomes if o.resolved)
    for key, count in sorted(by_property.items()):
        examples = sorted({o.record.property_name for o in outcomes
                           if o.resolved and o.observation.property_key == key})
        print(f"  {key:>22}: {count} records  <- {', '.join(examples)}")
    unresolved = [o for o in outcomes if not o.resolved]
    print(f"  unresolved: {len(unresolved)}"
          + (f" ({unresolved[0].failure_reason})" if unresolved else ""))
    print(f"  resolution rate: {mediator.statistics.resolution_rate:.0%} "
          f"(methods: {dict(mediator.statistics.by_method)})")

    baseline = passthrough_mediator()
    baseline.mediate_many(records)
    print(f"\nStandards-only baseline (no alignment, no unit conversion): "
          f"resolution rate {baseline.statistics.resolution_rate:.0%} -- "
          "everything not already spelled canonically is lost.")


if __name__ == "__main__":
    main()
