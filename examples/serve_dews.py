"""Serve a semantic middleware instance over HTTP and WebSocket.

Boots the asyncio gateway on a loopback port, then plays both sides of
the wire: a WebSocket subscriber listening for canonical observations
and derived CEP events, and an HTTP client ingesting mote records,
querying over SPARQL (with and without RDFS entailment), registering a
standing view and reading the gateway's own metrics.

Run with::

    python examples/serve_dews.py
"""

import json

from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.serving import GatewayServer, ServingConfig
from repro.serving.client import HttpClient, WebSocketClient

OBSERVATIONS = (
    "SELECT ?obs WHERE { ?obs a <http://purl.oclc.org/NET/ssnx/ssn#Observation> }"
)


def main() -> None:
    middleware = SemanticMiddleware(
        config=MiddlewareConfig(annotate_observations=True, broker_latency=0.0)
    )
    config = ServingConfig(rate_limit_rate=50.0, rate_limit_burst=100)
    with GatewayServer(middleware, config) as server:
        print(f"gateway listening on 127.0.0.1:{server.port}")

        with WebSocketClient(
            "127.0.0.1", server.port, topics=["canonical/#", "derived/#"],
            client_id="example-subscriber",
        ) as subscriber, HttpClient(
            "127.0.0.1", server.port, client_id="example"
        ) as client:
            ready = subscriber.recv_json(timeout=5)
            print(f"subscribed to {ready['topics']}")

            # --- ingest: one resolvable mote record, one vendor term the
            # mediator cannot resolve (counted as rejected, dead-lettered)
            records = [
                {
                    "source_id": "Mangaung-mote-01", "source_kind": "wsn_mote",
                    "property_name": "Bodenfeuchte", "value": 12.5,
                    "unit": "percent", "timestamp": 3600.0,
                    "location": [-29.12, 26.21],
                },
                {
                    "source_id": "Mangaung-mote-02", "source_kind": "wsn_mote",
                    "property_name": "quantum_flux", "value": 7.0,
                    "unit": "?", "timestamp": 3660.0,
                },
            ]
            status, receipt, _ = client.post("/v1/ingest", {"records": records})
            print(f"\ningest -> {status}: {receipt}")

            message = subscriber.recv_json(timeout=5)
            if message:
                print(f"pushed over WebSocket: {message['topic']} "
                      f"value={message['payload']['value']}")

            # --- query, then again to show the version-keyed cache
            status, result, headers = client.post(
                "/v1/query", {"query": OBSERVATIONS}
            )
            print(f"\nquery -> {status} ({headers.get('X-Cache')}): "
                  f"{len(result['rows'])} observations")
            _, _, headers = client.post("/v1/query", {"query": OBSERVATIONS})
            print(f"query again -> X-Cache: {headers.get('X-Cache')}")

            # --- entailed query: sensing devices surface as ssn:Sensor
            # through rdfs9 subclass propagation
            status, result, _ = client.post("/v1/query", {
                "query": "SELECT DISTINCT ?sensor WHERE "
                         "{ ?sensor a <http://purl.oclc.org/NET/ssnx/ssn#Sensor> }",
                "entail": True,
            })
            print(f"entailed query -> {len(result['rows'])} sensors")

            # --- a standing view, registered then read back
            status, view, _ = client.post(
                "/v1/views", {"query": OBSERVATIONS, "name": "observations"}
            )
            print(f"\nview registration -> {status}: {view['name']} "
                  f"({view['partitions']} partitions)")
            status, body, _ = client.get("/v1/views/observations")
            print(f"view read -> {len(body['rows'])} rows")

            # --- health and gateway metrics
            _, health, _ = client.get("/v1/health")
            print(f"\nhealthy={health['healthy']} "
                  f"shards={[s['state'] for s in health['shards']]}")
            _, metrics, _ = client.get("/v1/metrics")
            print("metrics: " + json.dumps({
                "routes": list(metrics["middleware"]["routes"]),
                "cache": metrics["cache"],
                "max_loop_lag_ms": metrics["event_loop"]["max_lag_ms"],
            }, indent=2))

    middleware.close()
    print("\ngateway stopped")


if __name__ == "__main__":
    main()
