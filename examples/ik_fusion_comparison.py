"""Comparing forecasting strategies: sensors-only, IK-only and fusion.

Reproduces the paper's central argument at example scale: a sensors-only
statistical forecaster, an indigenous-knowledge-only forecaster and the
integrated (fusion) forecaster are run over the same two-year scenario with
one severe drought, and their probability traces and skill scores are
printed side by side.

Run with::

    python examples/ik_fusion_comparison.py
"""

from repro.dews import DewsConfig, DroughtEarlyWarningSystem
from repro.workloads import DroughtEpisode, build_free_state_scenario

EPISODE = DroughtEpisode(start_day=400.0, end_day=540.0, severity=0.85)


def sparkline(probabilities):
    """Render a probability series as a coarse text sparkline."""
    blocks = " .:-=+*#%@"
    return "".join(blocks[min(9, int(p * 10))] for p in probabilities)


def main() -> None:
    scenario = build_free_state_scenario(
        districts=["Mangaung"], motes_per_district=8, observers_per_district=10,
        episodes=[EPISODE], seed=11,
    )
    config = DewsConfig(days=600, forecast_every_days=10, forecast_start_day=60, seed=11)
    result = DroughtEarlyWarningSystem(scenario, config).run()

    print(f"Drought ground truth: days {EPISODE.start_day:.0f}-{EPISODE.end_day:.0f}\n")
    print("Forecast probability traces (one character per forecast, issued every 10 days):")
    for method in ("statistical", "indigenous", "fusion"):
        forecasts = sorted(result.forecasts[method], key=lambda f: f.issue_day)
        trace = sparkline([f.drought_probability for f in forecasts])
        print(f"  {method:>12}: {trace}")
    onset_index = int((EPISODE.start_day - config.forecast_start_day) / config.forecast_every_days)
    print(f"  {'onset':>12}: " + " " * onset_index + "^")

    print("\nSkill scores:")
    for row in result.skill_table():
        print("  " + ", ".join(f"{key}={value}" for key, value in row.items()))

    print("\nReading the shapes (see EXPERIMENTS.md for the full discussion):")
    skills = result.skills
    print(f"  - IK-only issues warnings earliest (lead {skills['indigenous'].mean_lead_time_days:.0f} d) "
          f"but with the most false alarms (FAR {skills['indigenous'].far:.2f}).")
    print(f"  - The statistical baseline is conservative: FAR {skills['statistical'].far:.2f}, "
          f"POD {skills['statistical'].pod:.2f}, little or no lead time.")
    print(f"  - The fusion forecaster detects {skills['fusion'].pod:.0%} of drought periods "
          f"with Brier {skills['fusion'].brier_score:.2f} "
          f"(vs {skills['indigenous'].brier_score:.2f} for IK alone).")


if __name__ == "__main__":
    main()
