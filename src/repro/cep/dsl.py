"""A textual rule DSL for the CEP engine.

The paper describes the CEP rules as "a set of syntactic derivation rules
from indigenous knowledge".  Domain experts (or the elicitation tooling)
can write rules as text rather than Python; the grammar is deliberately
small and line-oriented:

.. code-block:: text

    RULE soil_drying
    WHEN soil_moisture BELOW 12 FRACTION 0.8 WITHIN 14 DAYS
    EMIT soil_drying_process WEIGHT 1.0 SOURCE sensor

    RULE sifennefene_cluster
    WHEN COUNT sifennefene_worms AT LEAST 3 DISTINCT WITHIN 21 DAYS
    EMIT ik_dry_indication WEIGHT 0.8 SOURCE indigenous

    RULE no_rain
    WHEN ABSENT rainfall ABOVE 1.0 WITHIN 21 DAYS
    EMIT rainfall_deficit_process SOURCE sensor

    RULE water_dropping
    WHEN TREND water_level FALLING 5 PER DAY WITHIN 30 DAYS
    EMIT water_depletion_process

Supported condition forms (one per ``WHEN`` line):

* ``<type> BELOW|ABOVE <threshold> [FRACTION <f>] WITHIN <n> DAYS|HOURS``
* ``TREND <type> FALLING|RISING <slope> PER DAY WITHIN <n> DAYS``
* ``COUNT <type> AT LEAST <n> [DISTINCT] [INTENSITY <v>] WITHIN <n> DAYS``
* ``ABSENT <type> [ABOVE <v>] WITHIN <n> DAYS``

Multiple ``WHEN`` lines in one rule are combined as a conjunction.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.cep.patterns import (
    AbsencePattern,
    ConjunctionPattern,
    CountPattern,
    Pattern,
    ThresholdPattern,
    TrendPattern,
)
from repro.cep.rules import CepRule
from repro.streams.scheduler import DAY, HOUR


class RuleSyntaxError(ValueError):
    """Raised when rule text cannot be parsed."""


_WITHIN = re.compile(r"WITHIN\s+(\d+(?:\.\d+)?)\s+(DAYS?|HOURS?)", re.IGNORECASE)


def _extract_window(text: str) -> float:
    match = _WITHIN.search(text)
    if match is None:
        raise RuleSyntaxError(f"missing WITHIN clause in condition: {text!r}")
    amount = float(match.group(1))
    unit = match.group(2).upper()
    return amount * (DAY if unit.startswith("DAY") else HOUR)


def _parse_condition(text: str) -> (Pattern, float):
    """Parse one WHEN condition into (pattern, window_seconds)."""
    window = _extract_window(text)
    body = _WITHIN.sub("", text).strip()

    trend = re.match(
        r"TREND\s+(\S+)\s+(FALLING|RISING)\s+(\d+(?:\.\d+)?)\s+PER\s+DAY\s*$",
        body,
        re.IGNORECASE,
    )
    if trend:
        return (
            TrendPattern(
                trend.group(1).lower(),
                direction=trend.group(2).lower(),
                min_slope_per_day=float(trend.group(3)),
            ),
            window,
        )

    count = re.match(
        r"COUNT\s+(\S+)\s+AT\s+LEAST\s+(\d+)(\s+DISTINCT)?(?:\s+INTENSITY\s+(\d+(?:\.\d+)?))?\s*$",
        body,
        re.IGNORECASE,
    )
    if count:
        minimum_intensity = float(count.group(4)) if count.group(4) else None
        qualifier = None
        if minimum_intensity is not None:
            qualifier = lambda event, m=minimum_intensity: event.value >= m
        return (
            CountPattern(
                count.group(1).lower(),
                minimum=int(count.group(2)),
                distinct_sources=count.group(3) is not None,
                qualifier=qualifier,
            ),
            window,
        )

    absent = re.match(
        r"ABSENT\s+(\S+)(?:\s+ABOVE\s+(\d+(?:\.\d+)?))?\s*$", body, re.IGNORECASE
    )
    if absent:
        threshold = float(absent.group(2)) if absent.group(2) else None
        qualifier = None
        if threshold is not None:
            qualifier = lambda event, t=threshold: event.value > t
        return (AbsencePattern(absent.group(1).lower(), qualifier=qualifier), window)

    threshold_match = re.match(
        r"(\S+)\s+(BELOW|ABOVE)\s+(-?\d+(?:\.\d+)?)(?:\s+FRACTION\s+(\d+(?:\.\d+)?))?\s*$",
        body,
        re.IGNORECASE,
    )
    if threshold_match:
        fraction = float(threshold_match.group(4)) if threshold_match.group(4) else 0.8
        return (
            ThresholdPattern(
                threshold_match.group(1).lower(),
                threshold=float(threshold_match.group(3)),
                comparison=threshold_match.group(2).lower(),
                min_fraction=fraction,
            ),
            window,
        )

    raise RuleSyntaxError(f"cannot parse condition: {text!r}")


def parse_rule(text: str) -> CepRule:
    """Parse one rule definition block into a :class:`CepRule`."""
    name: Optional[str] = None
    conditions: List[str] = []
    emit_type: Optional[str] = None
    weight = 1.0
    source = "sensor"
    min_score = 0.0
    area: Optional[str] = None

    for raw_line in text.strip().splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        upper = line.upper()
        if upper.startswith("RULE "):
            name = line[5:].strip()
        elif upper.startswith("WHEN "):
            conditions.append(line[5:].strip())
        elif upper.startswith("AND "):
            conditions.append(line[4:].strip())
        elif upper.startswith("EMIT "):
            emit_parts = line[5:].strip()
            emit_match = re.match(
                r"(\S+)(?:\s+WEIGHT\s+(\d+(?:\.\d+)?))?(?:\s+SOURCE\s+(\S+))?"
                r"(?:\s+MINSCORE\s+(\d+(?:\.\d+)?))?(?:\s+AREA\s+(\S+))?\s*$",
                emit_parts,
                re.IGNORECASE,
            )
            if emit_match is None:
                raise RuleSyntaxError(f"cannot parse EMIT clause: {emit_parts!r}")
            emit_type = emit_match.group(1).lower()
            if emit_match.group(2):
                weight = float(emit_match.group(2))
            if emit_match.group(3):
                source = emit_match.group(3).lower()
            if emit_match.group(4):
                min_score = float(emit_match.group(4))
            if emit_match.group(5):
                area = emit_match.group(5)
        else:
            raise RuleSyntaxError(f"unrecognised rule line: {line!r}")

    if name is None:
        raise RuleSyntaxError("rule is missing a RULE <name> line")
    if not conditions:
        raise RuleSyntaxError(f"rule {name!r} has no WHEN condition")
    if emit_type is None:
        raise RuleSyntaxError(f"rule {name!r} has no EMIT clause")

    parsed = [_parse_condition(condition) for condition in conditions]
    window = max(window for _, window in parsed)
    if len(parsed) == 1:
        pattern = parsed[0][0]
    else:
        pattern = ConjunctionPattern([p for p, _ in parsed])

    return CepRule(
        name=name,
        pattern=pattern,
        window_seconds=window,
        derived_event_type=emit_type,
        min_score=min_score,
        weight=weight,
        source=source,
        area=area,
    )


def parse_rules(text: str) -> List[CepRule]:
    """Parse a document containing several blank-line separated rules."""
    blocks = re.split(r"\n\s*\n", text.strip())
    return [parse_rule(block) for block in blocks if block.strip()]
