"""Declarative event patterns.

A pattern is evaluated against the events currently inside its rule's
sliding window.  Evaluation returns a :class:`PatternMatch` carrying a score
in ``[0, 1]`` (how strongly the pattern holds) and the contributing events,
or ``None`` when the pattern does not hold.  Scores let the drought
forecaster weight partial evidence instead of treating every rule as a hard
boolean, which is how the fuzzy reliability of IK indicators is carried
through to the forecast.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.cep.event import Event


@dataclass
class PatternMatch:
    """The result of a successful pattern evaluation."""

    score: float
    events: List[Event]

    def __post_init__(self) -> None:
        self.score = max(0.0, min(1.0, self.score))


class Pattern:
    """Base class for patterns."""

    def evaluate(self, events: Sequence[Event], now: float) -> Optional[PatternMatch]:
        """Evaluate against the window content; ``None`` when not matched."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable description used in alerts and documentation."""
        return self.__class__.__name__


class ThresholdPattern(Pattern):
    """Values of one event type persistently above / below a threshold.

    Parameters
    ----------
    event_type:
        Canonical property key to inspect.
    threshold:
        The comparison threshold in canonical units.
    comparison:
        ``"below"`` or ``"above"``.
    min_fraction:
        Minimum fraction of the window's readings that must satisfy the
        comparison for the pattern to match.
    min_count:
        Minimum number of readings required in the window.
    """

    def __init__(
        self,
        event_type: str,
        threshold: float,
        comparison: str = "below",
        min_fraction: float = 0.8,
        min_count: int = 3,
    ):
        if comparison not in ("below", "above"):
            raise ValueError("comparison must be 'below' or 'above'")
        self.event_type = event_type
        self.threshold = threshold
        self.comparison = comparison
        self.min_fraction = min_fraction
        self.min_count = min_count

    def evaluate(self, events: Sequence[Event], now: float) -> Optional[PatternMatch]:
        relevant = [e for e in events if e.event_type == self.event_type]
        if len(relevant) < self.min_count:
            return None
        if self.comparison == "below":
            satisfying = [e for e in relevant if e.value < self.threshold]
        else:
            satisfying = [e for e in relevant if e.value > self.threshold]
        if not satisfying:
            return None
        fraction = len(satisfying) / len(relevant)
        if fraction < self.min_fraction:
            return None
        # score grows with how far past the threshold the typical reading is
        values = [e.value for e in satisfying]
        typical = statistics.median(values)
        margin = abs(typical - self.threshold)
        scale = abs(self.threshold) if self.threshold != 0 else 1.0
        score = min(1.0, fraction * (0.5 + min(0.5, margin / (scale + 1e-9))))
        return PatternMatch(score=score, events=list(satisfying))

    def describe(self) -> str:
        return (
            f"{self.event_type} {self.comparison} {self.threshold} in >= "
            f"{self.min_fraction:.0%} of readings"
        )


class AggregatePattern(Pattern):
    """An aggregate of one event type's values crossing a threshold.

    Built for standing-view event streams (see
    :mod:`repro.cep.view_stream`): the subscriber turns each view delta
    into events — per-row events or a row-count gauge — and this pattern
    fires when the windowed aggregate satisfies ``op threshold``.

    Parameters
    ----------
    event_type:
        Event type to aggregate over.
    aggregate:
        One of ``"count"``, ``"sum"``, ``"mean"``, ``"min"``, ``"max"``,
        ``"last"`` (most recent value).
    op:
        Comparison operator: ``"<"``, ``"<="``, ``">"``, ``">="``.
    threshold:
        The comparison constant.
    min_count:
        Minimum matching events required in the window.
    """

    _AGGREGATES = ("count", "sum", "mean", "min", "max", "last")
    _OPS = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def __init__(
        self,
        event_type: str,
        aggregate: str = "mean",
        op: str = ">=",
        threshold: float = 0.0,
        min_count: int = 1,
    ):
        if aggregate not in self._AGGREGATES:
            raise ValueError(f"aggregate must be one of {self._AGGREGATES}")
        if op not in self._OPS:
            raise ValueError(f"op must be one of {tuple(self._OPS)}")
        self.event_type = event_type
        self.aggregate = aggregate
        self.op = op
        self.threshold = threshold
        self.min_count = max(1, min_count)

    def _value(self, relevant: Sequence[Event]) -> float:
        values = [e.value for e in relevant]
        if self.aggregate == "count":
            return float(len(values))
        if self.aggregate == "sum":
            return float(sum(values))
        if self.aggregate == "mean":
            return float(sum(values) / len(values))
        if self.aggregate == "min":
            return float(min(values))
        if self.aggregate == "max":
            return float(max(values))
        return float(relevant[-1].value)  # "last"

    def evaluate(self, events: Sequence[Event], now: float) -> Optional[PatternMatch]:
        relevant = [e for e in events if e.event_type == self.event_type]
        if len(relevant) < self.min_count:
            return None
        value = self._value(relevant)
        if not self._OPS[self.op](value, self.threshold):
            return None
        # score grows with how far past the threshold the aggregate sits
        margin = abs(value - self.threshold)
        scale = abs(self.threshold) if self.threshold != 0 else 1.0
        score = min(1.0, 0.5 + min(0.5, margin / (scale + 1e-9)))
        return PatternMatch(score=score, events=list(relevant))

    def describe(self) -> str:
        return (
            f"{self.aggregate}({self.event_type}) {self.op} {self.threshold}"
        )


class TrendPattern(Pattern):
    """A monotone-ish trend (slope) in one event type over the window.

    The slope is estimated by least squares over (timestamp, value) pairs;
    the pattern matches when the slope has the requested sign and magnitude.
    """

    def __init__(
        self,
        event_type: str,
        direction: str = "falling",
        min_slope_per_day: float = 0.0,
        min_count: int = 5,
    ):
        if direction not in ("falling", "rising"):
            raise ValueError("direction must be 'falling' or 'rising'")
        self.event_type = event_type
        self.direction = direction
        self.min_slope_per_day = abs(min_slope_per_day)
        self.min_count = min_count

    def evaluate(self, events: Sequence[Event], now: float) -> Optional[PatternMatch]:
        relevant = sorted(
            (e for e in events if e.event_type == self.event_type),
            key=lambda e: e.timestamp,
        )
        if len(relevant) < self.min_count:
            return None
        day = 86400.0
        xs = [e.timestamp / day for e in relevant]
        ys = [e.value for e in relevant]
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        sxx = sum((x - mean_x) ** 2 for x in xs)
        if sxx == 0:
            return None
        slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / sxx
        if self.direction == "falling" and slope > -self.min_slope_per_day:
            return None
        if self.direction == "rising" and slope < self.min_slope_per_day:
            return None
        magnitude = abs(slope)
        reference = self.min_slope_per_day if self.min_slope_per_day > 0 else magnitude or 1.0
        score = min(1.0, 0.5 + 0.5 * min(1.0, magnitude / (2.0 * reference)))
        return PatternMatch(score=score, events=relevant)

    def describe(self) -> str:
        return (
            f"{self.event_type} {self.direction} by >= "
            f"{self.min_slope_per_day}/day over the window"
        )


class AbsencePattern(Pattern):
    """No qualifying event of a type within the window.

    Used for "no significant rainfall for N days".  ``qualifier`` filters
    which events count (default: any event of the type).
    """

    def __init__(
        self,
        event_type: str,
        qualifier: Optional[Callable[[Event], bool]] = None,
        min_window_coverage: float = 0.0,
    ):
        self.event_type = event_type
        self.qualifier = qualifier or (lambda event: True)
        self.min_window_coverage = min_window_coverage

    def evaluate(self, events: Sequence[Event], now: float) -> Optional[PatternMatch]:
        qualifying = [
            e for e in events if e.event_type == self.event_type and self.qualifier(e)
        ]
        if qualifying:
            return None
        return PatternMatch(score=1.0, events=[])

    def describe(self) -> str:
        return f"absence of qualifying {self.event_type} events in the window"


class CountPattern(Pattern):
    """At least N qualifying events, optionally from distinct sources.

    This is the workhorse for IK rules: "sifennefene sightings from at least
    three distinct observers with intensity >= 0.5".
    """

    def __init__(
        self,
        event_type: str,
        minimum: int,
        qualifier: Optional[Callable[[Event], bool]] = None,
        distinct_sources: bool = False,
    ):
        if minimum < 1:
            raise ValueError("minimum must be at least 1")
        self.event_type = event_type
        self.minimum = minimum
        self.qualifier = qualifier or (lambda event: True)
        self.distinct_sources = distinct_sources

    def evaluate(self, events: Sequence[Event], now: float) -> Optional[PatternMatch]:
        qualifying = [
            e for e in events if e.event_type == self.event_type and self.qualifier(e)
        ]
        if self.distinct_sources:
            by_source = {}
            for event in qualifying:
                existing = by_source.get(event.source_id)
                if existing is None or event.value > existing.value:
                    by_source[event.source_id] = event
            qualifying = list(by_source.values())
        if len(qualifying) < self.minimum:
            return None
        score = min(1.0, len(qualifying) / (2.0 * self.minimum) + 0.5)
        return PatternMatch(score=score, events=qualifying)

    def describe(self) -> str:
        distinct = " from distinct sources" if self.distinct_sources else ""
        return f">= {self.minimum} {self.event_type} events{distinct}"


class ConjunctionPattern(Pattern):
    """All sub-patterns hold; the score is their weighted mean."""

    def __init__(self, patterns: Sequence[Pattern], weights: Optional[Sequence[float]] = None):
        if not patterns:
            raise ValueError("conjunction needs at least one sub-pattern")
        self.patterns = list(patterns)
        if weights is None:
            weights = [1.0] * len(self.patterns)
        if len(weights) != len(self.patterns):
            raise ValueError("weights must match the number of patterns")
        self.weights = list(weights)

    def evaluate(self, events: Sequence[Event], now: float) -> Optional[PatternMatch]:
        total_weight = sum(self.weights)
        score = 0.0
        contributing: List[Event] = []
        for pattern, weight in zip(self.patterns, self.weights):
            match = pattern.evaluate(events, now)
            if match is None:
                return None
            score += weight * match.score
            contributing.extend(match.events)
        return PatternMatch(score=score / total_weight, events=contributing)

    def describe(self) -> str:
        return " AND ".join(p.describe() for p in self.patterns)


class SequencePattern(Pattern):
    """Sub-patterns hold in temporal order.

    Each sub-pattern must match, and the median timestamp of each match must
    not precede the previous one's.  Captures "rainfall deficit, then soil
    drying, then vegetation stress" style process chains.
    """

    def __init__(self, patterns: Sequence[Pattern]):
        if len(patterns) < 2:
            raise ValueError("a sequence needs at least two sub-patterns")
        self.patterns = list(patterns)

    @staticmethod
    def _median_time(events: Sequence[Event]) -> float:
        if not events:
            return float("-inf")
        return statistics.median(e.timestamp for e in events)

    def evaluate(self, events: Sequence[Event], now: float) -> Optional[PatternMatch]:
        previous_time = float("-inf")
        scores: List[float] = []
        contributing: List[Event] = []
        for pattern in self.patterns:
            match = pattern.evaluate(events, now)
            if match is None:
                return None
            match_time = self._median_time(match.events)
            if match.events and match_time < previous_time:
                return None
            if match.events:
                previous_time = match_time
            scores.append(match.score)
            contributing.extend(match.events)
        return PatternMatch(score=sum(scores) / len(scores), events=contributing)

    def describe(self) -> str:
        return " THEN ".join(p.describe() for p in self.patterns)
