"""Event model for the CEP engine.

Events are the normalised, semantically annotated facts flowing out of the
ontology segment layer: every event carries the canonical property key (or
indicator key), the value in canonical units, the source, location and
simulated timestamp, plus the IRI of its semantic annotation when one
exists.  Derived events add the name of the rule that produced them and the
events they were derived from, giving the provenance chain the DEWS exposes
to decision makers.
"""

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class Event:
    """A primitive event: one annotated observation in canonical form."""

    event_type: str                 # canonical property key or indicator key
    value: float
    timestamp: float
    source_id: str = "unknown"
    source_kind: str = "unknown"
    location: Optional[Tuple[float, float]] = None
    area: Optional[str] = None      # district / ward identifier
    annotation_iri: Optional[str] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    event_id: int = field(default_factory=lambda: next(Event._ids))

    _ids = itertools.count(1)

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError("event timestamp must be non-negative")
        # event types come from a small canonical vocabulary repeated
        # across millions of events: interning makes every routing-index
        # probe in the CEP engine a pointer comparison on the fast path
        self.event_type = sys.intern(self.event_type)

    def age_at(self, now: float) -> float:
        """Seconds elapsed between this event and ``now``."""
        return now - self.timestamp


@dataclass
class DerivedEvent(Event):
    """An event produced by a CEP rule match.

    ``value`` carries the rule's confidence/severity score in ``[0, 1]``
    unless the rule specifies otherwise.
    """

    rule_name: str = ""
    contributing_events: List[Event] = field(default_factory=list)

    @property
    def provenance(self) -> List[int]:
        """Event ids of the contributing primitive events."""
        return [event.event_id for event in self.contributing_events]

    def explain(self) -> str:
        """One-line human-readable explanation of the derivation."""
        sources = sorted({event.source_id for event in self.contributing_events})
        return (
            f"{self.event_type} (score {self.value:.2f}) derived by rule "
            f"'{self.rule_name}' from {len(self.contributing_events)} events "
            f"reported by {', '.join(sources) if sources else 'no sources'}"
        )
