"""The CEP engine.

Routes incoming events to the rules interested in their event type (an
index avoids evaluating every rule on every event), collects derived events,
optionally feeds them back in (so higher-level rules can match on derived
events such as ``soil_drying_process``) and publishes them to a broker topic
for the DEWS and dissemination layers.
"""

from __future__ import annotations

import sys
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set

from repro.cep.event import DerivedEvent, Event
from repro.cep.patterns import (
    AbsencePattern,
    AggregatePattern,
    ConjunctionPattern,
    CountPattern,
    Pattern,
    SequencePattern,
    ThresholdPattern,
    TrendPattern,
)
from repro.cep.rules import CepRule
from repro.streams.broker import Broker

DerivedEventListener = Callable[[DerivedEvent], None]


def _pattern_event_types(pattern: Pattern) -> Set[str]:
    """The event types a pattern inspects (for the routing index)."""
    if isinstance(
        pattern,
        (ThresholdPattern, TrendPattern, AbsencePattern, CountPattern, AggregatePattern),
    ):
        return {pattern.event_type}
    if isinstance(pattern, (ConjunctionPattern, SequencePattern)):
        types: Set[str] = set()
        for sub_pattern in pattern.patterns:
            types |= _pattern_event_types(sub_pattern)
        return types
    # unknown pattern type: be conservative and route every event to it
    return set()


@dataclass
class EngineStatistics:
    """Engine-level counters for the CEP benchmark (E3)."""

    events_processed: int = 0
    rule_evaluations: int = 0
    derived_events: int = 0


class CepEngine:
    """A rule-indexed complex event processing engine.

    Parameters
    ----------
    broker:
        Optional broker on which derived events are published (topic
        ``derived/<event_type>``).
    feedback:
        When true (default) derived events are re-injected into the engine
        so multi-level rules can build on them.
    max_feedback_depth:
        Maximum re-injection depth per input event, guarding against rule
        sets that would loop.
    """

    def __init__(
        self,
        broker: Optional[Broker] = None,
        feedback: bool = True,
        max_feedback_depth: int = 4,
    ):
        self.broker = broker
        self.feedback = feedback
        self.max_feedback_depth = max_feedback_depth
        self.rules: Dict[str, CepRule] = {}
        self.statistics = EngineStatistics()
        self._listeners: List[DerivedEventListener] = []
        self._index: Dict[str, List[CepRule]] = defaultdict(list)
        self._catch_all: List[CepRule] = []
        # per-rule pattern fingerprint, computed once at add_rule: the
        # event types the rule's pattern inspects (walking the pattern
        # tree per removal — or worse, per event — is avoidable work)
        self._fingerprints: Dict[str, FrozenSet[str]] = {}
        # event type -> ready-made "indexed rules + catch-alls" list, so
        # the per-event hot path is one dict probe with no list
        # concatenation; invalidated wholesale on rule churn and bounded
        # so a stream of pathological one-off event types (dynamic or
        # attacker-chosen strings) cannot grow it forever
        self._interest: Dict[str, List[CepRule]] = {}
        self._interest_cache_max = 1024

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #

    def add_rule(self, rule: CepRule) -> None:
        """Register a rule; its pattern's event types are indexed.

        The pattern's event-type fingerprint is computed (and its strings
        interned) here, once: :meth:`process` and :meth:`remove_rule`
        never re-walk the pattern tree.
        """
        if rule.name in self.rules:
            raise ValueError(f"duplicate rule name: {rule.name!r}")
        self.rules[rule.name] = rule
        fingerprint = frozenset(
            sys.intern(event_type) for event_type in _pattern_event_types(rule.pattern)
        )
        self._fingerprints[rule.name] = fingerprint
        if not fingerprint:
            self._catch_all.append(rule)
        else:
            for event_type in fingerprint:
                self._index[event_type].append(rule)
        self._interest.clear()

    def add_rules(self, rules: Iterable[CepRule]) -> None:
        """Register several rules."""
        for rule in rules:
            self.add_rule(rule)

    def remove_rule(self, name: str) -> None:
        """Unregister a rule by name.

        Only the index buckets the rule's pattern was routed to are
        touched (no full index scan), and buckets emptied by the removal
        are dropped so rule churn does not leak index entries.
        """
        rule = self.rules.pop(name, None)
        if rule is None:
            return
        event_types = self._fingerprints.pop(name, frozenset())
        self._interest.clear()
        if not event_types:
            if rule in self._catch_all:
                self._catch_all.remove(rule)
            return
        for event_type in event_types:
            bucket = self._index.get(event_type)
            if bucket is None:
                continue
            if rule in bucket:
                bucket.remove(rule)
            if not bucket:
                del self._index[event_type]

    def on_derived_event(self, listener: DerivedEventListener) -> None:
        """Register a callback invoked for every derived event."""
        self._listeners.append(listener)

    def reset(self) -> None:
        """Reset every rule's window and the engine counters."""
        for rule in self.rules.values():
            rule.reset()
        self.statistics = EngineStatistics()

    # ------------------------------------------------------------------ #
    # event processing
    # ------------------------------------------------------------------ #

    def process(self, event: Event) -> List[DerivedEvent]:
        """Feed one event through the engine, returning the derived events."""
        return self._process(event, depth=0)

    def process_many(self, events: Iterable[Event]) -> List[DerivedEvent]:
        """Feed many events in timestamp order, collecting derived events."""
        derived: List[DerivedEvent] = []
        for event in events:
            derived.extend(self.process(event))
        return derived

    def _process(self, event: Event, depth: int) -> List[DerivedEvent]:
        self.statistics.events_processed += 1
        interested = self._interest.get(event.event_type)
        if interested is None:
            if len(self._interest) >= self._interest_cache_max:
                self._interest.clear()
            interested = self._interest[event.event_type] = (
                self._index.get(event.event_type, []) + self._catch_all
            )
        matched: List[DerivedEvent] = []
        for rule in interested:
            self.statistics.rule_evaluations += 1
            result = rule.offer(event)
            if result is not None:
                matched.append(result)
        # feedback results are collected separately from the events matched
        # at this level: appending them to the list being iterated would
        # revisit them here — emitting, counting and re-feeding each
        # deeper-level derived event a second time
        collected: List[DerivedEvent] = []
        for derived_event in matched:
            self.statistics.derived_events += 1
            self._emit(derived_event)
            collected.append(derived_event)
            if self.feedback and depth < self.max_feedback_depth:
                collected.extend(self._process(derived_event, depth + 1))
        return collected

    def _emit(self, derived_event: DerivedEvent) -> None:
        for listener in self._listeners:
            listener(derived_event)
        if self.broker is not None:
            self.broker.publish(
                f"derived/{derived_event.event_type}",
                derived_event,
                timestamp=derived_event.timestamp,
                headers={"rule": derived_event.rule_name},
            )

    def __repr__(self) -> str:
        return (
            f"<CepEngine rules={len(self.rules)} processed={self.statistics.events_processed} "
            f"derived={self.statistics.derived_events}>"
        )
