"""CEP rules.

A :class:`CepRule` binds a pattern to a sliding window, the derived event it
emits on a match, and firing policy (cooldown so the same sustained
condition does not spam derived events, minimum score, area scoping).  Rules
are either written programmatically, parsed from the textual DSL in
:mod:`repro.cep.dsl`, or derived from indigenous knowledge by
:mod:`repro.ik.rules`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cep.event import DerivedEvent, Event
from repro.cep.patterns import Pattern, PatternMatch
from repro.streams.scheduler import DAY
from repro.streams.window import SlidingWindow


@dataclass
class RuleStatistics:
    """Per-rule evaluation counters."""

    evaluations: int = 0
    matches: int = 0
    fired: int = 0
    suppressed_by_cooldown: int = 0
    suppressed_by_score: int = 0


class CepRule:
    """One detection rule evaluated by the engine.

    Parameters
    ----------
    name:
        Unique rule identifier.
    pattern:
        The pattern evaluated over this rule's window.
    window_seconds:
        Length of the sliding window of events the rule keeps.
    derived_event_type:
        The ``event_type`` of the derived event emitted on a match (e.g.
        ``"soil_drying_process"`` or ``"drought_precursor"``).
    min_score:
        Matches scoring below this are suppressed.
    cooldown_seconds:
        Minimum simulated time between consecutive firings.
    area:
        When set, only events whose ``area`` equals this value enter the
        window (per-district rules).
    weight:
        Relative weight of this rule's evidence in the fusion forecaster.
    source:
        Provenance tag: ``"sensor"``, ``"indigenous"`` or ``"hybrid"``.
    """

    def __init__(
        self,
        name: str,
        pattern: Pattern,
        window_seconds: float,
        derived_event_type: str,
        min_score: float = 0.0,
        cooldown_seconds: float = DAY,
        area: Optional[str] = None,
        weight: float = 1.0,
        source: str = "sensor",
    ):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.name = name
        self.pattern = pattern
        self.window_seconds = window_seconds
        self.derived_event_type = derived_event_type
        self.min_score = min_score
        self.cooldown_seconds = cooldown_seconds
        self.area = area
        self.weight = weight
        self.source = source
        self.statistics = RuleStatistics()
        self._window: SlidingWindow[Event] = SlidingWindow(window_seconds)
        self._last_fired: Optional[float] = None

    # ------------------------------------------------------------------ #
    # event intake and evaluation
    # ------------------------------------------------------------------ #

    def accepts(self, event: Event) -> bool:
        """Whether the event belongs in this rule's window (area scoping)."""
        if self.area is not None and event.area is not None and event.area != self.area:
            return False
        return True

    def offer(self, event: Event) -> Optional[DerivedEvent]:
        """Insert an event and evaluate the rule at the event's timestamp."""
        if not self.accepts(event):
            return None
        self._window.add(event)
        return self.evaluate(event.timestamp)

    def evaluate(self, now: float) -> Optional[DerivedEvent]:
        """Evaluate the pattern over the current window content."""
        self._window.advance_to(now)
        self.statistics.evaluations += 1
        match = self.pattern.evaluate(self._window.items, now)
        if match is None:
            return None
        self.statistics.matches += 1
        if match.score < self.min_score:
            self.statistics.suppressed_by_score += 1
            return None
        if (
            self._last_fired is not None
            and now - self._last_fired < self.cooldown_seconds
        ):
            self.statistics.suppressed_by_cooldown += 1
            return None
        self._last_fired = now
        self.statistics.fired += 1
        return self._make_derived_event(match, now)

    def _make_derived_event(self, match: PatternMatch, now: float) -> DerivedEvent:
        areas = {e.area for e in match.events if e.area is not None}
        area = areas.pop() if len(areas) == 1 else self.area
        return DerivedEvent(
            event_type=self.derived_event_type,
            value=match.score,
            timestamp=now,
            source_id=f"cep:{self.name}",
            source_kind="derived",
            area=area,
            rule_name=self.name,
            contributing_events=list(match.events),
            attributes={"rule_source": self.source, "rule_weight": self.weight},
        )

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Clear the window and firing history (used between scenario runs)."""
        self._window.clear()
        self._last_fired = None
        self.statistics = RuleStatistics()

    @property
    def window_size(self) -> int:
        """Number of events currently inside the rule's window."""
        return len(self._window)

    def __repr__(self) -> str:
        return (
            f"<CepRule {self.name!r} source={self.source} window={self.window_seconds / DAY:.1f}d "
            f"fired={self.statistics.fired}>"
        )
