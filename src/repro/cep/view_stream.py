"""Bridge from standing-view deltas to the CEP engine.

A registered standing view pushes an itemised
:class:`~repro.semantics.sparql.views.ViewDelta` over the broker on every
refresh that changed its result (``views/<name>`` topics, see
:meth:`~repro.core.middleware.SemanticMiddleware.register_standing` with
``push=True``).  A :class:`ViewEventSource` subscribes to that topic and
turns the delta stream into CEP events, unifying continuous SPARQL and
event processing on one delta stream:

* every **added row** becomes a primitive event of the configured type,
  with the row's bindings carried in ``attributes`` (and optionally one
  variable extracted as the numeric ``value`` and another as the
  ``area``), and
* after each delta a **gauge event** (``<type>.count``) carries the
  view's current row count, maintained by a
  :class:`~repro.streams.window.ViewDeltaWindow` — so absence/threshold
  logic over "how many rows does this standing query have" needs no
  re-polling either.

Both event families feed the engine's ordinary rules;
:class:`~repro.cep.patterns.AggregatePattern` is the natural companion
for the gauge stream.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.cep.engine import CepEngine
from repro.cep.event import DerivedEvent, Event
from repro.streams.window import ViewDeltaWindow


class ViewEventSource:
    """Feeds a standing view's delta stream into a CEP engine.

    Parameters
    ----------
    engine:
        The engine receiving the generated events.
    event_type:
        Type of the per-row events; the row-count gauge uses
        ``f"{event_type}.count"``.
    value_var:
        Variable name (``"?v"`` or ``"v"``) whose numeric binding becomes
        the event value; rows without a numeric binding for it emit value
        ``1.0``.
    area_var:
        Variable name whose binding becomes the event's ``area``.
    emit_rows / emit_count:
        Which of the two event families to generate.
    """

    def __init__(
        self,
        engine: CepEngine,
        event_type: str,
        value_var: Optional[str] = None,
        area_var: Optional[str] = None,
        emit_rows: bool = True,
        emit_count: bool = True,
    ):
        self.engine = engine
        self.event_type = event_type
        self.value_var = value_var.lstrip("?$") if value_var else None
        self.area_var = area_var.lstrip("?$") if area_var else None
        self.emit_rows = emit_rows
        self.emit_count = emit_count
        #: Live row multiset mirroring the standing view's result.
        self.window: ViewDeltaWindow = ViewDeltaWindow()
        #: Counters for observability.
        self.deltas_seen = 0
        self.events_emitted = 0

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def attach(self, broker, topic: str, view: Any = None):
        """Subscribe to ``topic`` (e.g. ``views/dashboard``) on ``broker``.

        Pass the standing ``view`` when it may already be populated: its
        current rows seed :attr:`window`, so the ``.count`` gauge starts
        correct instead of undercounting (and removals of pre-attach rows
        resolving against an empty multiset) until the first full refresh.
        """
        if view is not None:
            self.window.seed(view.rows())
        return broker.subscribe(
            topic, self._on_message, subscriber_name=f"view-source:{self.event_type}"
        )

    def _on_message(self, message) -> None:
        self.apply(message.payload, timestamp=message.timestamp)

    # ------------------------------------------------------------------ #
    # the delta-to-event conversion
    # ------------------------------------------------------------------ #

    def apply(self, delta: Any, timestamp: float = 0.0) -> List[DerivedEvent]:
        """Fold one view delta in and run the generated events through CEP."""
        self.deltas_seen += 1
        self.window.apply(delta)
        derived: List[DerivedEvent] = []
        if self.emit_rows:
            for row in delta.added:
                event = self._row_event(row, timestamp)
                self.events_emitted += 1
                derived.extend(self.engine.process(event))
        if self.emit_count:
            gauge = Event(
                event_type=f"{self.event_type}.count",
                value=float(len(self.window)),
                timestamp=max(0.0, timestamp),
                source_id=self.event_type,
                source_kind="standing_view",
            )
            self.events_emitted += 1
            derived.extend(self.engine.process(gauge))
        return derived

    def _row_event(self, row: Any, timestamp: float) -> Event:
        value = 1.0
        area: Optional[str] = None
        attributes: Dict[str, Any] = {}
        for var, term in row.items():
            name = getattr(var, "name", str(var))
            attributes[name] = term
            if name == self.value_var:
                candidate = getattr(term, "to_python", lambda: None)()
                if isinstance(candidate, (int, float)) and not isinstance(
                    candidate, bool
                ):
                    value = float(candidate)
            if name == self.area_var:
                area = str(getattr(term, "value", term))
        return Event(
            event_type=self.event_type,
            value=value,
            timestamp=max(0.0, timestamp),
            source_id=self.event_type,
            source_kind="standing_view",
            area=area,
            attributes=attributes,
        )

    def __repr__(self) -> str:
        return (
            f"<ViewEventSource {self.event_type!r} rows={len(self.window)} "
            f"deltas={self.deltas_seen} events={self.events_emitted}>"
        )
