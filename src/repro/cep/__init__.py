"""Complex Event Processing engine.

The paper uses a detection-oriented CEP engine as the reasoning component
that "infers patterns leading to drought event based on a set of rules
derived from indigenous knowledge".  The engine here consumes the
semantically annotated event stream published by the ontology segment
layer and evaluates declarative patterns over sliding windows:

* threshold patterns ("soil moisture below 10% for 14 days"),
* trend patterns ("water level falling over the last 30 days"),
* absence patterns ("no rainfall event for 21 days"),
* sequence and conjunction patterns combining simpler ones,
* IK patterns ("sifennefene sightings reported by >= 3 observers").

Matches become *derived events* that are published back onto the broker and
feed the drought forecasters.
"""

from repro.cep.event import DerivedEvent, Event
from repro.cep.patterns import (
    AbsencePattern,
    AggregatePattern,
    ConjunctionPattern,
    CountPattern,
    Pattern,
    SequencePattern,
    ThresholdPattern,
    TrendPattern,
)
from repro.cep.rules import CepRule
from repro.cep.engine import CepEngine
from repro.cep.dsl import parse_rule
from repro.cep.view_stream import ViewEventSource

__all__ = [
    "Event",
    "DerivedEvent",
    "Pattern",
    "ThresholdPattern",
    "TrendPattern",
    "AbsencePattern",
    "AggregatePattern",
    "CountPattern",
    "SequencePattern",
    "ConjunctionPattern",
    "CepRule",
    "CepEngine",
    "parse_rule",
    "ViewEventSource",
]
