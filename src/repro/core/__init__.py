"""The semantic middleware (the paper's primary contribution).

A software layer "interposed between the application layer and the physical
layer" whose role is to hide the complexity of the heterogeneous sources,
eliminate data heterogeneity, represent the data semantically against the
unified ontology and expose a machine-readable, queryable view to
applications (paper §4).  It is organised as the three-tier architecture of
Fig. 3:

``repro.core.interface_layer``
    *Interface protocol layer* -- liaises with the (simulated) cloud store,
    downloading semi-processed sensor readings and feeding them upward.
``repro.core.ontology_layer``
    *Ontology segment layer* -- the mediator (naming / unit / schema
    heterogeneity resolution), the semantic annotator (SSN/DOLCE RDF
    annotation), the reasoner, and the semantic service registry.
``repro.core.application_layer``
    *Application abstraction layer* -- the API applications use: subscribe
    to canonical event streams, run SPARQL-like queries, register CEP
    rules, look up services.
``repro.core.middleware``
    The :class:`~repro.core.middleware.SemanticMiddleware` facade wiring
    the three layers to a broker, a CEP engine and the ontology library.
"""

from repro.core.annotation import SemanticAnnotator
from repro.core.mediator import MediationOutcome, Mediator
from repro.core.pipeline import (
    IngestionContext,
    IngestionPipelineStatistics,
    Pipeline,
    Stage,
    StageStatistics,
)
from repro.core.application_layer import ApplicationAbstractionLayer
from repro.core.interface_layer import InterfaceProtocolLayer
from repro.core.ontology_layer import OntologySegmentLayer
from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.core.services import SemanticService, ServiceRegistry

__all__ = [
    "SemanticAnnotator",
    "Mediator",
    "MediationOutcome",
    "Pipeline",
    "Stage",
    "IngestionContext",
    "IngestionPipelineStatistics",
    "StageStatistics",
    "OntologySegmentLayer",
    "ApplicationAbstractionLayer",
    "InterfaceProtocolLayer",
    "SemanticMiddleware",
    "MiddlewareConfig",
    "SemanticService",
    "ServiceRegistry",
]
