"""The staged ingestion pipeline of the ontology segment layer.

Every raw record crossing the middleware passes the same six stages:

``mediate``
    Heterogeneity resolution: vendor terms, units and schemas are aligned
    to the unified vocabulary (drops unresolvable records).
``validate``
    Sanity checks on the mediated observation (non-finite values or
    timestamps are dropped before they can poison the graph or the CEP
    windows — each reject is written to the dead-letter journal with a
    reason and counted in layer statistics).
``annotate``
    SSN/DOLCE RDF annotation into the shared graph (optional).
``reason``
    Incremental reasoning top-up over the freshly annotated triples
    (optional): the graph's change tracker hands the reasoner exactly the
    delta the ``annotate`` stage committed, so per-batch inference cost
    tracks the batch size, not the accumulated graph.
``publish``
    Registers IK sightings with the knowledge base, builds the canonical
    :class:`~repro.cep.event.Event` and hands it to the application
    abstraction layer's publisher.
``cep``
    Feeds the canonical event to the inference (CEP) engine.

The :class:`Pipeline` runs a record through all stages (``run``) or a
whole batch stage-major (``run_batch``): every surviving record passes
stage *n* before any record enters stage *n + 1*.  Stage-major execution
is what lets batches amortise per-record overhead — mediation runs as one
``mediate_many`` call, annotation accumulates triples for a single
``graph.add_all``, and the CEP engine is flushed once at the end instead
of being interleaved with graph writes and broker publishes.
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cep.engine import CepEngine
from repro.cep.event import DerivedEvent, Event
from repro.core.annotation import SemanticAnnotator
from repro.core.mediator import CanonicalObservation, Mediator
from repro.streams.messages import ObservationRecord

EventPublisher = Callable[[Event], None]


@dataclass
class IngestionContext:
    """Mutable per-record state threaded through the pipeline stages."""

    record: ObservationRecord
    observation: Optional[CanonicalObservation] = None
    annotation_iri: Optional[str] = None
    event: Optional[Event] = None
    derived: List[DerivedEvent] = field(default_factory=list)
    #: Name of the stage that dropped the record, or ``None`` if it survived.
    dropped_by: Optional[str] = None


@dataclass
class StageStatistics:
    """Per-stage throughput accounting."""

    name: str
    entered: int = 0
    dropped: int = 0


@dataclass
class IngestionPipelineStatistics:
    """Counters the middleware statistics snapshot exposes.

    Distinct from :class:`repro.streams.operators.PipelineStatistics`,
    which counts items through a functional stream pipeline.
    """

    records: int = 0
    batches: int = 0
    stages: Dict[str, StageStatistics] = field(default_factory=dict)


class Stage:
    """One composable step of the ingestion pipeline."""

    name = "stage"

    def process(self, context: IngestionContext) -> bool:
        """Process one record; return ``False`` to drop it."""
        raise NotImplementedError

    def process_batch(self, contexts: List[IngestionContext]) -> List[IngestionContext]:
        """Process a batch, returning the surviving contexts.

        The default runs :meth:`process` per record; stages with a cheaper
        amortised path (batched mediation, ``graph.add_all`` annotation,
        deferred CEP flush) override this.
        """
        survivors = []
        for context in contexts:
            if self.process(context):
                survivors.append(context)
            else:
                context.dropped_by = self.name
        return survivors


class Pipeline:
    """An ordered chain of :class:`Stage` objects with drop accounting."""

    def __init__(self, stages: List[Stage]):
        self.stages = list(stages)
        self.statistics = IngestionPipelineStatistics(
            stages={stage.name: StageStatistics(stage.name) for stage in self.stages}
        )

    def run(self, context: IngestionContext) -> IngestionContext:
        """Run one record through every stage (record-major)."""
        self.statistics.records += 1
        for stage in self.stages:
            stats = self.statistics.stages[stage.name]
            stats.entered += 1
            if not stage.process(context):
                stats.dropped += 1
                context.dropped_by = stage.name
                break
        return context

    def run_batch(self, contexts: List[IngestionContext]) -> List[IngestionContext]:
        """Run a batch through every stage (stage-major).

        Returns the contexts that survived all stages; dropped contexts are
        marked with ``dropped_by`` but not returned.
        """
        self.statistics.records += len(contexts)
        self.statistics.batches += 1
        for stage in self.stages:
            if not contexts:
                break
            stats = self.statistics.stages[stage.name]
            stats.entered += len(contexts)
            survivors = stage.process_batch(contexts)
            stats.dropped += len(contexts) - len(survivors)
            contexts = survivors
        return contexts

    def __repr__(self) -> str:
        names = " -> ".join(stage.name for stage in self.stages)
        return f"<Pipeline {names} records={self.statistics.records}>"


# --------------------------------------------------------------------- #
# the concrete stages of the ontology segment layer
# --------------------------------------------------------------------- #


class MediateStage(Stage):
    """Resolve naming / unit / schema heterogeneity."""

    name = "mediate"

    def __init__(self, mediator: Mediator):
        self.mediator = mediator

    def process(self, context: IngestionContext) -> bool:
        outcome = self.mediator.mediate(context.record)
        if not outcome.resolved:
            return False
        context.observation = outcome.observation
        return True

    def process_batch(self, contexts: List[IngestionContext]) -> List[IngestionContext]:
        outcomes = self.mediator.mediate_many([context.record for context in contexts])
        survivors = []
        for context, outcome in zip(contexts, outcomes):
            if outcome.resolved:
                context.observation = outcome.observation
                survivors.append(context)
            else:
                context.dropped_by = self.name
        return survivors


class ValidateStage(Stage):
    """Reject observations whose value or timestamp is not a finite number.

    Rejects do not vanish silently: each one lands in the dead-letter
    journal with a reason string (when the layer has one) and bumps the
    layer's ``validation_rejects`` counter, so bad feeds are visible in
    statistics and recoverable from disk instead of inferred from a
    throughput dip.
    """

    name = "validate"

    def __init__(self, dead_letter=None, layer_statistics=None):
        self.dead_letter = dead_letter
        self.layer_statistics = layer_statistics

    def _reject(self, context: IngestionContext, reason: str) -> bool:
        if self.layer_statistics is not None:
            self.layer_statistics.validation_rejects += 1
        if self.dead_letter is not None:
            record = context.record
            self.dead_letter.record(
                "validation_reject",
                reason,
                records=[asdict(record)] if record is not None else [],
            )
        return False

    def process(self, context: IngestionContext) -> bool:
        observation = context.observation
        if observation is None:
            return self._reject(context, "mediation produced no observation")
        if not math.isfinite(observation.value):
            return self._reject(
                context, f"non-finite value {observation.value!r}"
            )
        if not math.isfinite(observation.timestamp):
            return self._reject(
                context, f"non-finite timestamp {observation.timestamp!r}"
            )
        return True


class AnnotateStage(Stage):
    """Write SSN/DOLCE RDF annotations into the shared graph."""

    name = "annotate"

    def __init__(self, annotator: SemanticAnnotator, layer_statistics, enabled: bool = True):
        self.annotator = annotator
        self.layer_statistics = layer_statistics
        self.enabled = enabled

    def process(self, context: IngestionContext) -> bool:
        if not self.enabled:
            return True
        result = self.annotator.annotate(context.observation)
        self.layer_statistics.annotation_triples += result.triples_added
        context.annotation_iri = result.observation_iri.value
        return True

    def process_batch(self, contexts: List[IngestionContext]) -> List[IngestionContext]:
        if not self.enabled:
            return contexts
        before = len(self.annotator.graph)
        results = self.annotator.annotate_batch(
            [context.observation for context in contexts]
        )
        for context, result in zip(contexts, results):
            context.annotation_iri = result.observation_iri.value
        self.layer_statistics.annotation_triples += len(self.annotator.graph) - before
        return contexts


class ReasonStage(Stage):
    """Top up the reasoner's closure over the annotations just committed.

    Runs after ``annotate`` so that published events and downstream
    queries observe the entailments (SSN/DOLCE typing, alignment axioms,
    IK indicator rules) of the current record or batch.  The top-up is
    incremental — ``ensure_materialized`` drains the graph's delta and
    refires only the rules it can touch — and a no-op when annotation is
    disabled or nothing changed.  Disabled by default: ingest-only
    deployments that never query entailments skip the reasoning cost
    entirely (the reasoner still tops up lazily on first query).
    """

    name = "reason"

    def __init__(self, reasoner, enabled: bool = False):
        self.reasoner = reasoner
        self.enabled = enabled

    def process(self, context: IngestionContext) -> bool:
        if self.enabled:
            self.reasoner.ensure_materialized()
        return True

    def process_batch(self, contexts: List[IngestionContext]) -> List[IngestionContext]:
        if self.enabled and contexts:
            self.reasoner.ensure_materialized()
        return contexts


class PublishStage(Stage):
    """Build the canonical event and publish it upward.

    The publisher is attached late (by the middleware facade, once the
    application abstraction layer exists); a stand-alone ontology segment
    layer runs with ``publisher=None`` and simply skips broker publication.
    """

    name = "publish"

    def __init__(self, knowledge_base, layer_statistics, publisher: Optional[EventPublisher] = None):
        self.knowledge_base = knowledge_base
        self.layer_statistics = layer_statistics
        self.publisher = publisher

    def process(self, context: IngestionContext) -> bool:
        observation = context.observation
        if observation.is_indicator_sighting:
            self.layer_statistics.sightings_out += 1
            self.knowledge_base.register_sighting(context.record)
        else:
            self.layer_statistics.observations_out += 1
        context.event = Event(
            event_type=observation.property_key,
            value=observation.value,
            timestamp=observation.timestamp,
            source_id=observation.source_id,
            source_kind=observation.source_kind,
            location=observation.location,
            area=observation.area,
            annotation_iri=context.annotation_iri,
            attributes={"alignment_method": observation.alignment_method},
        )
        if self.publisher is not None:
            self.publisher(context.event)
        return True


class ShardedAnnotateStage(Stage):
    """Annotate into per-area graph partitions, fanning batches out.

    Drop-in replacement for :class:`AnnotateStage` when the ontology
    segment layer runs sharded: each record's observation is routed by area
    to its partition's annotator, and a batch is split into per-shard
    sub-batches annotated concurrently on the layer's worker pool (each
    worker commits one ``add_all`` into its own graph — partitions are
    single-writer, so no graph is ever touched by two threads).

    Minted IRIs stay identical to the single-graph path: the stage draws
    the whole batch's annotation indexes from the shared counter in
    *arrival order* before fanning out, so thread scheduling cannot leak
    into graph content.  The mutable per-record contexts are safe to fill
    from workers because every context belongs to exactly one sub-batch and
    the stage joins all workers before returning.
    """

    name = "annotate"

    def __init__(
        self,
        annotators,
        router,
        counter,
        layer_statistics,
        executor=None,
        enabled: bool = True,
    ):
        self.annotators = list(annotators)
        self.router = router
        self.counter = counter
        self.layer_statistics = layer_statistics
        self.executor = executor
        self.enabled = enabled
        #: Batches that actually ran on more than one partition worker.
        self.parallel_batches = 0
        #: Wall-clock seconds each shard spent on its last sub-batch.
        self.last_batch_latency: Dict[int, float] = {}

    def process(self, context: IngestionContext) -> bool:
        if not self.enabled:
            return True
        annotator = self.annotators[self.router.shard_for(context.observation.area)]
        result = annotator.annotate(context.observation)
        self.layer_statistics.annotation_triples += result.triples_added
        context.annotation_iri = result.observation_iri.value
        return True

    def _annotate_shard(self, shard: int, pairs) -> int:
        """Annotate one partition's sub-batch; returns the graph growth."""
        started = time.perf_counter()
        annotator = self.annotators[shard]
        before = len(annotator.graph)
        results = annotator.annotate_batch(
            [context.observation for context, _ in pairs],
            indexes=[index for _, index in pairs],
        )
        for (context, _), result in zip(pairs, results):
            context.annotation_iri = result.observation_iri.value
        self.last_batch_latency[shard] = time.perf_counter() - started
        return len(annotator.graph) - before

    def process_batch(self, contexts: List[IngestionContext]) -> List[IngestionContext]:
        if not self.enabled or not contexts:
            return contexts
        counter = self.counter
        indexed = [(context, next(counter)) for context in contexts]
        groups = self.router.split(
            (pair[0].observation.area, pair) for pair in indexed
        )
        if self.executor is not None and len(groups) > 1:
            self.parallel_batches += 1
            futures = [
                self.executor.submit(self._annotate_shard, shard, pairs)
                for shard, pairs in groups.items()
            ]
            grown = sum(future.result() for future in futures)
        else:
            grown = sum(
                self._annotate_shard(shard, pairs) for shard, pairs in groups.items()
            )
        self.layer_statistics.annotation_triples += grown
        return contexts


class ShardedReasonStage(Stage):
    """Top up only the partitions the current record / batch touched.

    The sharded counterpart of :class:`ReasonStage`: every partition has
    its own reasoner over its own graph, so a batch confined to a few areas
    re-materialises only those partitions' closures — the other shards'
    closures (and the query caches keyed on their graph versions) survive
    untouched.  Touched shards top up concurrently on the worker pool.
    """

    name = "reason"

    def __init__(self, reasoners, router, executor=None, enabled: bool = False):
        self.reasoners = list(reasoners)
        self.router = router
        self.executor = executor
        self.enabled = enabled

    def process(self, context: IngestionContext) -> bool:
        if self.enabled:
            shard = self.router.shard_for(context.observation.area)
            self.reasoners[shard].ensure_materialized()
        return True

    def process_batch(self, contexts: List[IngestionContext]) -> List[IngestionContext]:
        if not self.enabled or not contexts:
            return contexts
        touched = self.router.shards_touched(
            context.observation.area for context in contexts
        )
        if self.executor is not None and len(touched) > 1:
            futures = [
                self.executor.submit(self.reasoners[shard].ensure_materialized)
                for shard in touched
            ]
            for future in futures:
                future.result()
        else:
            for shard in touched:
                self.reasoners[shard].ensure_materialized()
        return contexts


class CepStage(Stage):
    """Feed canonical events to the inference (CEP) engine.

    Dense sensor streams only reach the engine when per-record feeding is
    on; IK sightings always do.  In batch mode the whole batch is flushed
    through the engine in arrival order after every record has been
    published (deferred CEP flush).
    """

    name = "cep"

    def __init__(self, cep: CepEngine, layer_statistics, per_record: bool = True):
        self.cep = cep
        self.layer_statistics = layer_statistics
        self.per_record = per_record

    def _wants(self, context: IngestionContext) -> bool:
        return self.per_record or context.observation.is_indicator_sighting

    def process(self, context: IngestionContext) -> bool:
        if self._wants(context):
            context.derived = self.cep.process(context.event)
            self.layer_statistics.derived_events += len(context.derived)
        return True

    def process_batch(self, contexts: List[IngestionContext]) -> List[IngestionContext]:
        for context in contexts:
            if self._wants(context):
                context.derived = self.cep.process(context.event)
                self.layer_statistics.derived_events += len(context.derived)
        return contexts
