"""Process-based shard workers: one OS process per graph partition.

The :class:`ProcessShardBackend` forks one worker per shard.  Each worker
owns its partition outright — the ``Graph``, its ``Reasoner`` and planner
caches, every standing view registered on it, and (when the layer is
durable) its own :class:`~repro.persistence.store.ShardPersistence`
WAL/snapshot generation.  The parent keeps only the router, the shared
arrival-order annotation counter, and one duplex pipe per worker.

Requests travel as ``opcode + body`` messages in the WAL/snapshot codec
(:mod:`repro.core.shard_wire`); the pipe length-prefixes each message.
Annotation indexes are pre-assigned by the parent from the shared counter
before fan-out, so minted IRIs — and therefore graph content — stay
bag-identical to the inline backend regardless of process scheduling.

Crash handling: a worker that dies mid-request is detected by the broken
pipe — and a worker that *hangs* mid-request is detected by the RPC
deadline (``FaultTolerancePolicy.rpc_timeout``) and SIGKILLed, which
turns a hang into the crash the rest of the machinery already handles.
Either way the worker is respawned in recovery mode (newest valid
snapshot + WAL tail), its standing views re-registered, and the
in-flight request replayed.  Replay is safe because every mutating op is
idempotent: annotations use deterministic counter-minted IRIs and
``Graph.add`` deduplicates, so re-ingesting a half-applied batch
converges on exactly the inline oracle's content.

Supervision is budgeted: respawn attempts back off exponentially and a
shard that cannot be brought back within ``restart_budget`` attempts
trips its :class:`~repro.core.faults.ShardBreaker` — queries then raise
:class:`~repro.core.faults.ShardUnavailableError` (or serve partial,
explicitly-marked results under ``degraded_reads``), ingest for the
tripped shard parks in a bounded pending queue, and the next request
after the breaker's retry delay runs a half-open probe that restarts
the shard and flushes the parked batches.  A batch whose *replay* keeps
crashing the worker is a poison batch: after ``replay_budget`` replays
it is written to the dead-letter journal and the shard resumes clean.
Fault injection (hangs, crashes, WAL errors — :mod:`repro.core.faults`)
is armed parent-side and shipped as one-shot ``OP_FAULT`` directives so
it stays deterministic across respawns.

Workers exit with ``os._exit`` in every path.  A forked child inherits
the parent's open WAL buffers for *other* layers; running interpreter
shutdown in the child would flush those buffers and corrupt logs the
child does not own, so the worker never runs ``atexit``/GC finalisers.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
import weakref
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from dataclasses import asdict

from repro.core.annotation import (
    SemanticAnnotator,
    annotation_iri_for,
    next_annotation_index,
)
from repro.core.faults import (
    FaultInjector,
    FaultPlan,
    FaultTolerancePolicy,
    ShardBreaker,
    ShardUnavailableError,
)
from repro.core.pipeline import Stage
from repro.core.services import ServiceRegistry
from repro.core.shard_router import ShardRouter
from repro.core.shard_wire import (
    OP_CHECKPOINT,
    OP_CLOSE,
    OP_DUMP,
    OP_ERROR,
    OP_FAULT,
    OP_HELLO,
    OP_INGEST,
    OP_KILL,
    OP_MATERIALIZE,
    OP_PING,
    OP_QUERY_ASK,
    OP_QUERY_FULL,
    OP_REASON,
    OP_REFRESH_VIEWS,
    OP_REGISTER_VIEW,
    OP_REPLICATE,
    OP_RETRACT_SUBJECT,
    OP_STATS,
    OP_VIEW_ROWS,
    decode_ingest,
    decode_json,
    decode_query_result,
    decode_string,
    decode_term,
    decode_triples,
    decode_view_deltas,
    encode_ingest,
    encode_json,
    encode_query_result,
    encode_string,
    encode_term_into,
    encode_triples,
    encode_view_deltas,
    frame,
    read_uvarint,
    unframe,
    write_uvarint,
)
from repro.persistence.snapshot import (
    decode_graph_body,
    encode_graph_body,
    restore_graph,
)
from repro.persistence.store import DEFAULT_SNAPSHOT_INTERVAL, ShardPersistence
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.sharding import ShardedGraphStore, register_shard_view
from repro.semantics.rdf.term import Term
from repro.semantics.rdf.triple import Triple
from repro.semantics.reasoner import Reasoner
from repro.semantics.rules import InferenceTrace
from repro.semantics.sparql.bindings import EMPTY_BINDINGS
from repro.semantics.sparql.evaluator import QueryResult
from repro.semantics.sparql.planner import (
    PlannerStatistics,
    federated_partition_solutions,
    merge_federated_solutions,
    planner_for,
)
from repro.semantics.sparql.views import ViewDelta


# ------------------------------------------------------------------ #
# the worker side
# ------------------------------------------------------------------ #


class _ShardWorker:
    """Request dispatcher running inside one worker process."""

    def __init__(
        self,
        graph: Graph,
        knowledge_base,
        persistence: Optional[ShardPersistence],
        snapshot_interval: int,
        recovered: bool,
    ):
        self.graph = graph
        self.knowledge_base = knowledge_base
        self.persistence = persistence
        self.snapshot_interval = snapshot_interval
        self.recovered = recovered
        # indexes always arrive pre-assigned from the parent's counter, so
        # this annotator's own counter is never consumed
        self.annotator = SemanticAnnotator(graph, knowledge_base=knowledge_base)
        self.reasoner = Reasoner(graph)
        #: registration text -> StandingView
        self.views: Dict[str, object] = {}
        #: (text, ViewDelta) buffered for the next REFRESH_VIEWS drain —
        #: deltas can also surface implicitly (a query or checkpoint
        #: refreshing a view), and the parent must still see them
        self.pending: List[Tuple[str, ViewDelta]] = []
        if persistence is not None:
            persistence.view_source = self._export_views

    # -- durability ----------------------------------------------------- #

    def _commit(self) -> None:
        if self.persistence is None:
            return
        self.persistence.commit()
        wal = self.persistence.wal
        if wal is not None and wal.records >= self.snapshot_interval:
            self.persistence.checkpoint()

    def _export_views(self) -> List[Tuple[str, str, dict]]:
        """Snapshot payload: every view's current rows (refreshed first)."""
        return [
            (view.name, text, view.export_rows())
            for text, view in self.views.items()
        ]

    # -- dispatch ------------------------------------------------------- #

    def dispatch(self, opcode: int, body: bytes) -> bytes:
        handler = self._HANDLERS.get(opcode)
        if handler is None:
            raise ValueError(f"unknown opcode 0x{opcode:02x}")
        return handler(self, body)

    def _op_ingest(self, body: bytes) -> bytes:
        pairs, _reason = decode_ingest(body)
        before = len(self.graph)
        self.annotator.annotate_batch(
            [obs for obs, _ in pairs], indexes=[index for _, index in pairs]
        )
        grown = len(self.graph) - before
        self._commit()
        reply = bytearray()
        write_uvarint(reply, grown)
        return bytes(reply)

    def _op_reason(self, body: bytes) -> bytes:
        self.reasoner.ensure_materialized()
        self._commit()
        return b""

    def _decode_query(self, body: bytes) -> str:
        entail = bool(body[0])
        text, _ = decode_string(body, 1)
        if entail:
            self.reasoner.ensure_materialized()
            self._commit()
        return text

    def _op_query_ask(self, body: bytes) -> bytes:
        text = self._decode_query(body)
        result = planner_for(self.graph).query(self.graph, text)
        return bytes([1 if result.ask else 0])

    def _op_query_full(self, body: bytes) -> bytes:
        text = self._decode_query(body)
        variables, solutions = federated_partition_solutions(self.graph, text)
        return encode_query_result(variables, solutions)

    def _op_register_view(self, body: bytes) -> bytes:
        spec = decode_json(body)
        text = spec["text"]
        view = self.views.get(text)
        if view is None:
            name = spec["name"]
            seed = None
            if (
                self.persistence is not None
                and self.persistence.wal is not None
                and self.persistence.wal.records == 0
            ):
                # rows from the recovered snapshot are only valid while
                # nothing has mutated the graph since it was written
                seed = self.persistence.view_seed(
                    name if name is not None else text, text
                )
            view = register_shard_view(
                self.graph,
                text,
                name=name,
                federated=bool(spec["federated"]),
                seed=seed,
            )
            self.views[text] = view
            view.subscribe(
                lambda delta, _text=text: self.pending.append((_text, delta))
            )
        rows = sum(len(rows) for rows in view._bases.values())
        return encode_json({"rows": rows, "seeded": view.seeded})

    def _op_refresh_views(self, body: bytes) -> bytes:
        for view in self.views.values():
            view.refresh()
        deltas = [
            (text, delta.full_refresh, delta.view._full_variables,
             delta.added, delta.removed)
            for text, delta in self.pending
        ]
        self.pending = []
        return encode_view_deltas(deltas)

    def _op_view_rows(self, body: bytes) -> bytes:
        spec = decode_json(body)
        view = self.views[spec["text"]]
        rows = view.rows()
        return encode_query_result(view._full_variables, rows)

    def _op_stats(self, body: bytes) -> bytes:
        stats = planner_for(self.graph).statistics
        persistence = self.persistence
        payload = {
            "pid": os.getpid(),
            "triples": len(self.graph),
            "version": self.graph.version,
            "recovered": self.recovered,
            "wal_records": (
                persistence.wal.records
                if persistence is not None and persistence.wal is not None
                else 0
            ),
            "generation": persistence.generation if persistence is not None else 0,
            "planner": {
                "queries": stats.queries,
                "parses": stats.parses,
                "plans_built": stats.plans_built,
                "plan_hits": stats.plan_hits,
                "plan_invalidations": stats.plan_invalidations,
                "result_hits": stats.result_hits,
                "result_misses": stats.result_misses,
                "result_invalidations": stats.result_invalidations,
                "view_hits": stats.view_hits,
            },
            "views": [
                dict(view.stats(), text=text) for text, view in self.views.items()
            ],
        }
        return encode_json(payload)

    def _op_materialize(self, body: bytes) -> bytes:
        trace = self.reasoner.materialize(full=bool(body[0]))
        self._commit()
        return encode_json(
            {
                "iterations": trace.iterations,
                "inferred": trace.inferred,
                "by_rule": trace.by_rule,
            }
        )

    def _op_replicate(self, body: bytes) -> bytes:
        added = self.graph.add_all(
            Triple(s, p, o) for s, p, o in decode_triples(body)
        )
        self._commit()
        reply = bytearray()
        write_uvarint(reply, added)
        return bytes(reply)

    def _op_retract_subject(self, body: bytes) -> bytes:
        subject, _ = decode_term(body, 0)
        removed = self.graph.remove_matching(subject=subject)
        self._commit()
        reply = bytearray()
        write_uvarint(reply, removed)
        return bytes(reply)

    def _op_dump(self, body: bytes) -> bytes:
        return encode_graph_body(self.graph)

    def _op_checkpoint(self, body: bytes) -> bytes:
        if self.persistence is not None:
            self.persistence.commit()
            self.persistence.checkpoint()
        return b""

    def _op_ping(self, body: bytes) -> bytes:
        """Heartbeat: proves the worker loop is live, not just the process."""
        return encode_json({"pid": os.getpid(), "triples": len(self.graph)})

    _HANDLERS = {
        OP_INGEST: _op_ingest,
        OP_REASON: _op_reason,
        OP_QUERY_ASK: _op_query_ask,
        OP_QUERY_FULL: _op_query_full,
        OP_REGISTER_VIEW: _op_register_view,
        OP_REFRESH_VIEWS: _op_refresh_views,
        OP_VIEW_ROWS: _op_view_rows,
        OP_STATS: _op_stats,
        OP_MATERIALIZE: _op_materialize,
        OP_REPLICATE: _op_replicate,
        OP_RETRACT_SUBJECT: _op_retract_subject,
        OP_DUMP: _op_dump,
        OP_CHECKPOINT: _op_checkpoint,
        OP_PING: _op_ping,
    }


def _worker_main(
    conn,
    parent_side,
    shard_dir: Optional[str],
    fsync: str,
    snapshot_interval: int,
    graph: Optional[Graph],
    knowledge_base,
    recover: bool,
    boot_crash: bool = False,
) -> None:
    """Entry point of one forked shard worker."""
    if parent_side is not None:
        parent_side.close()
    if boot_crash:
        # injected startup failure (decided parent-side from the fault
        # plan and this spawn's incarnation number): die before HELLO so
        # the supervisor sees a spawn failure, not a serving worker
        os._exit(2)
    injector = FaultInjector()
    persistence: Optional[ShardPersistence] = None
    try:
        if shard_dir is not None:
            persistence = ShardPersistence(
                shard_dir, fsync=fsync, fault_hook=injector.wal_hook
            )
        if recover:
            graph = persistence.recover()
            # idempotent: the IK indicators use deterministic IRIs, so
            # re-materialising over recovered content journals nothing new
            knowledge_base.materialize(graph)
        elif persistence is not None:
            persistence.attach(graph)
        worker = _ShardWorker(
            graph, knowledge_base, persistence, snapshot_interval, recover
        )
        conn.send_bytes(
            frame(
                OP_HELLO,
                encode_json(
                    {
                        "pid": os.getpid(),
                        "next_index": next_annotation_index([graph]),
                        "triples": len(graph),
                        "recovered": recover,
                        "generation": (
                            persistence.generation if persistence is not None else 0
                        ),
                    }
                ),
            )
        )
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        try:
            conn.send_bytes(
                frame(OP_ERROR, encode_json({"error": f"{type(exc).__name__}: {exc}"}))
            )
        except OSError:
            pass
        os._exit(1)
    while True:
        try:
            message = conn.recv_bytes()
        except (EOFError, OSError):
            # parent vanished: exit without flushing inherited buffers
            os._exit(0)
        opcode, body = unframe(message)
        if opcode == OP_KILL:
            # simulated crash: drop buffered WAL records on the floor
            if persistence is not None:
                persistence.kill()
            os._exit(1)
        if opcode == OP_CLOSE:
            if persistence is not None:
                persistence.close()
            try:
                conn.send_bytes(frame(OP_CLOSE, b""))
                conn.close()
            except OSError:
                pass
            os._exit(0)
        if opcode == OP_FAULT:
            # one-shot injection directives armed by the parent for the
            # next op; fire-and-forget, no reply
            injector.arm(decode_json(body))
            continue
        try:
            deferred = injector.before_op(opcode)
            reply = frame(opcode, worker.dispatch(opcode, body))
            injector.after_op(deferred)
        except OSError:
            # fail-stop: a disk error mid-op (real or injected) can leave
            # the in-memory graph ahead of the durable log.  Dying here
            # makes the supervisor replay the op against the last
            # consistent on-disk state instead of serving divergent data.
            os._exit(3)
        except Exception as exc:  # noqa: BLE001 - forwarded to the parent
            reply = frame(OP_ERROR, encode_json({"error": f"{type(exc).__name__}: {exc}"}))
        try:
            conn.send_bytes(reply)
        except OSError:
            os._exit(0)


# ------------------------------------------------------------------ #
# the parent side
# ------------------------------------------------------------------ #


def _reap_workers(entries: List[List[object]]) -> None:
    """GC/exit fallback: make sure no worker outlives its backend."""
    for entry in entries:
        process, conn = entry
        try:
            conn.close()
        except OSError:
            pass
        if process.is_alive():
            process.terminate()
            process.join(timeout=5)


class _WorkerHungError(RuntimeError):
    """A worker missed its RPC deadline; the supervisor will SIGKILL it."""

    def __init__(self, message: str, shard: int):
        super().__init__(message)
        self.shard = shard


class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = (
        "shard",
        "process",
        "conn",
        "pid",
        "next_index",
        "triples",
        "recovered",
        "inflight",
        "last_batch_latency",
    )

    def __init__(self, shard: int, process, conn, hello: dict):
        self.shard = shard
        self.process = process
        self.conn = conn
        self.pid = hello["pid"]
        self.next_index = hello["next_index"]
        self.triples = hello["triples"]
        self.recovered = hello["recovered"]
        #: the request awaiting a reply, kept for crash replay
        self.inflight: Optional[Tuple[int, bytes]] = None
        self.last_batch_latency = 0.0


class ProcessViewHandle:
    """Parent-side stand-in for one shard's standing view.

    Quacks like :class:`~repro.semantics.sparql.views.StandingView` for
    the surfaces the middleware and applications use — ``name``,
    ``subscribe``/``unsubscribe``, ``refresh``, ``rows``, ``stats`` and
    the delta counters — while the view itself (and its maintenance
    work) lives in the worker.  Deltas are shipped over the wire when the
    backend drains dirty shards and re-dispatched to parent-side
    listeners as ordinary :class:`ViewDelta` objects.
    """

    def __init__(self, backend: "ProcessShardBackend", shard: int, text: str,
                 name: Optional[str], seeded: bool = False):
        self._backend = backend
        self.shard = shard
        self.text = text
        self.name = name or text
        self.seeded = seeded
        self.listeners: List = []

    def subscribe(self, listener) -> None:
        if listener not in self.listeners:
            self.listeners.append(listener)

    def unsubscribe(self, listener) -> None:
        if listener in self.listeners:
            self.listeners.remove(listener)

    def refresh(self) -> None:
        """Drain pending deltas (for every view — refreshes are global)."""
        self._backend.refresh_views()

    def rows(self):
        body = self._backend._rpc(
            self.shard, OP_VIEW_ROWS, encode_json({"text": self.text})
        )
        _variables, rows = decode_query_result(body)
        return rows

    def stats(self) -> dict:
        info = self._backend.worker_stats(self.shard)
        for view in info["views"]:
            if view["text"] == self.text:
                return view
        raise KeyError(f"view {self.text!r} not registered on shard {self.shard}")

    @property
    def delta_updates(self) -> int:
        return self.stats()["delta_updates"]

    @property
    def full_refreshes(self) -> int:
        return self.stats()["full_refreshes"]

    def __repr__(self) -> str:
        return f"<ProcessViewHandle {self.name!r} shard={self.shard}>"


class _WorkerGraphProxy:
    """Write-through stand-in for one worker's graph.

    Lets the parent-side :class:`ServiceRegistry` keep its ``graph.add``
    / ``graph.remove_matching`` contract: service descriptions written
    through the proxy are replicated into the owning worker's partition.
    """

    def __init__(self, backend: "ProcessShardBackend", shard: int):
        self._backend = backend
        self._shard = shard

    def add(self, triple) -> bool:
        return self.add_all([triple]) > 0

    def add_all(self, triples: Iterable) -> int:
        materialised = [
            triple if isinstance(triple, Triple) else Triple(*triple)
            for triple in triples
        ]
        return self._backend.replicate_to(self._shard, materialised)

    def remove_matching(self, subject: Optional[Term] = None, **kwargs) -> int:
        if subject is None or kwargs:
            raise NotImplementedError(
                "process-shard graph proxies only support subject retraction"
            )
        return self._backend.retract_subject(self._shard, subject)

    def __repr__(self) -> str:
        return f"<_WorkerGraphProxy shard={self._shard}>"


class ProcessShardStore:
    """A :class:`ShardedGraphStore`-shaped facade over worker processes.

    Serves the store surface the layer and its tests consume.  Paths that
    need whole graphs (``graphs``, ``union_graph``) ship full snapshots
    over the DUMP RPC — correct but expensive, intended for tests and
    offline inspection, not the hot path.
    """

    def __init__(self, backend: "ProcessShardBackend", replicated_triples: int):
        self._backend = backend
        self.router = backend.router
        self.replicated_triples = replicated_triples

    @property
    def num_shards(self) -> int:
        return self._backend.num_shards

    def shard_for(self, area: Optional[str]) -> int:
        return self.router.shard_for(area)

    @property
    def graphs(self) -> List[Graph]:
        return self._backend.dump_graphs()

    def graph_for(self, area: Optional[str]) -> Graph:
        return self._backend.dump_graph(self.shard_for(area))

    def replicate(self, triples) -> int:
        if isinstance(triples, Graph):
            triples = [Triple(s, p, o) for s, p, o in triples]
        else:
            triples = list(triples)
        return self._backend.replicate_all(triples)

    def replicate_with(self, writer) -> None:
        raise RuntimeError(
            "replicate_with cannot cross the process boundary; replicate "
            "triples, or write into the partitions before the workers fork"
        )

    def query(self, text: str):
        return self._backend.query(text)

    def register_standing(self, text: str, name: Optional[str] = None, seeds=None):
        return self._backend.register_standing(text, name=name)

    def triple_count(self) -> int:
        return sum(self.shard_sizes())

    def shard_sizes(self) -> List[int]:
        return [info["triples"] for info in self._backend.all_worker_stats()]

    def versions(self) -> List[int]:
        return [info["version"] for info in self._backend.all_worker_stats()]

    def union_graph(self) -> Graph:
        union = Graph()
        for shard_graph in self.graphs:
            union.add_all(Triple(s, p, o) for s, p, o in shard_graph)
        return union

    def __len__(self) -> int:
        return self.num_shards

    def __repr__(self) -> str:
        return f"<ProcessShardStore shards={self.num_shards}>"


class ProcessAnnotateStage(Stage):
    """Pipeline ``annotate`` stage fanning batches out to worker processes.

    Indexes are drawn from the shared counter in arrival order before the
    fan-out — exactly like the inline stage — so minted IRIs match the
    single-graph oracle.  The parent recomputes each record's annotation
    IRI locally (it is a pure function of observation + index) instead of
    shipping it back.
    """

    name = "annotate"

    def __init__(self, backend: "ProcessShardBackend", layer_statistics,
                 enabled: bool = True):
        self.backend = backend
        self.router = backend.router
        self.counter = backend.counter
        self.layer_statistics = layer_statistics
        self.enabled = enabled
        self.executor = None
        #: Batches that actually spanned more than one worker process.
        self.parallel_batches = 0

    @property
    def last_batch_latency(self) -> Dict[int, float]:
        return {
            worker.shard: worker.last_batch_latency
            for worker in self.backend.workers
            if worker.last_batch_latency
        }

    def process(self, context) -> bool:
        if not self.enabled:
            return True
        observation = context.observation
        index = next(self.counter)
        shard = self.router.shard_for(observation.area)
        body = encode_ingest([(observation, index)], False)
        reply = self.backend._rpc(shard, OP_INGEST, body)
        self.backend.mark_dirty((shard,))
        self.layer_statistics.annotation_triples += read_uvarint(reply, 0)[0]
        context.annotation_iri = annotation_iri_for(observation, index)
        return True

    def process_batch(self, contexts):
        if not self.enabled or not contexts:
            return contexts
        counter = self.counter
        indexed = [(context, next(counter)) for context in contexts]
        groups = self.router.split(
            (pair[0].observation.area, pair) for pair in indexed
        )
        if len(groups) > 1:
            self.parallel_batches += 1
        requests = [
            (
                shard,
                OP_INGEST,
                encode_ingest(
                    [(context.observation, index) for context, index in pairs], False
                ),
            )
            for shard, pairs in groups.items()
        ]
        replies = self.backend.scatter(requests)
        self.backend.mark_dirty(groups.keys())
        grown = sum(read_uvarint(body, 0)[0] for body in replies.values())
        self.layer_statistics.annotation_triples += grown
        for context, index in indexed:
            context.annotation_iri = annotation_iri_for(context.observation, index)
        return contexts


class ProcessReasonStage(Stage):
    """Pipeline ``reason`` stage: top up only the touched workers' closures."""

    name = "reason"

    def __init__(self, backend: "ProcessShardBackend", enabled: bool = False):
        self.backend = backend
        self.router = backend.router
        self.enabled = enabled
        self.executor = None

    def process(self, context) -> bool:
        if self.enabled:
            shard = self.router.shard_for(context.observation.area)
            self.backend._rpc(shard, OP_REASON, b"")
            self.backend.mark_dirty((shard,))
        return True

    def process_batch(self, contexts):
        if not self.enabled or not contexts:
            return contexts
        touched = self.router.shards_touched(
            context.observation.area for context in contexts
        )
        self.backend.scatter([(shard, OP_REASON, b"") for shard in touched])
        self.backend.mark_dirty(touched)
        return contexts


class ProcessShardBackend:
    """Shared-nothing multi-core sharding: one worker process per partition.

    Satisfies the same surface as
    :class:`~repro.core.shard_backend.InlineShardBackend`; see the module
    docstring for the protocol and crash-recovery story.
    """

    kind = "process"

    def __init__(
        self,
        library,
        knowledge_base,
        statistics,
        shards: int,
        annotate: bool = True,
        reason_per_batch: bool = False,
        persistence=None,
        recovered: bool = False,
        policy: Optional[FaultTolerancePolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        dead_letter=None,
    ):
        self.library = library
        self.knowledge_base = knowledge_base
        self.num_shards = shards
        self.router = ShardRouter(shards)
        self.persistence = persistence
        self.recovered = recovered
        self.executor = None
        # partitions live in the workers; these stay empty on purpose
        self.annotators: List = []
        self.reasoners: List = []
        self._context = multiprocessing.get_context("fork")
        self._dirty: set = set()
        self._handles: Dict[Tuple[int, str], ProcessViewHandle] = {}
        self._ordered_handles: List[ProcessViewHandle] = []
        self._view_specs: List[Tuple[str, Optional[str]]] = []
        self.restart_counts = [0] * shards
        self._closed = False
        self._killed = False
        self.policy = policy if policy is not None else FaultTolerancePolicy()
        self.dead_letter = dead_letter
        self.layer_statistics = statistics
        #: poison batches written to the dead-letter journal this session
        self.quarantined = 0
        self.breakers = [ShardBreaker() for _ in range(shards)]
        # without persistence a crashed worker cannot be rebuilt, so only
        # non-destructive ("slow") injected faults survive the filter —
        # this lets a CI-wide REPRO_FAULT_PLAN run suites that also build
        # ephemeral backends without destroying them
        plan = fault_plan if fault_plan is not None else FaultPlan()
        self._faults = plan.session(recoverable=persistence is not None)
        self._incarnations = [0] * shards

        replicated = 0
        graphs: List[Optional[Graph]] = [None] * shards
        if not recovered:
            # build the partitions in the parent (axiom base + IK catalogue
            # replicated into each) and hand them to the workers via fork —
            # copy-on-write, nothing is pickled
            seed_store = ShardedGraphStore(
                shards, base_graph=library.graph, router=self.router
            )
            seed_store.replicate_with(knowledge_base.materialize)
            replicated = seed_store.replicated_triples
            graphs = list(seed_store.graphs)
        self.workers: List[_WorkerHandle] = [
            self._spawn(index, graphs[index], recovered) for index in range(shards)
        ]
        del graphs
        # belt-and-braces reaper: a backend dropped without close() must
        # not leak worker processes (holds no reference back to self)
        self._reap_entries = [[w.process, w.conn] for w in self.workers]
        self._finalizer = weakref.finalize(self, _reap_workers, self._reap_entries)

        start = (
            max(worker.next_index for worker in self.workers) if recovered else 1
        )
        self.counter = itertools.count(start)
        self.store = ProcessShardStore(self, 0 if recovered else replicated)
        self.services = ServiceRegistry(
            [_WorkerGraphProxy(self, index) for index in range(shards)]
        )
        self.annotate_stage = ProcessAnnotateStage(self, statistics, enabled=annotate)
        self.reason_stage = ProcessReasonStage(self, enabled=reason_per_batch)
        if persistence is not None:
            # a simulated whole-store kill must take the workers down too,
            # or their graceful exits would flush what the test wants lost
            persistence.kill_hook = self._kill_workers

    # -------------------------------------------------------------- #
    # process management
    # -------------------------------------------------------------- #

    def _spawn(self, shard: int, graph: Optional[Graph], recover: bool) -> _WorkerHandle:
        persistence = self.persistence
        shard_dir = (
            str(persistence._shard_dir(shard)) if persistence is not None else None
        )
        self._incarnations[shard] += 1
        boot_crash = self._faults.boot_crash_fires(shard, self._incarnations[shard])
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(
                child_conn,
                parent_conn,
                shard_dir,
                persistence.fsync if persistence is not None else "batch",
                persistence.snapshot_interval
                if persistence is not None
                else DEFAULT_SNAPSHOT_INTERVAL,
                graph,
                self.knowledge_base,
                recover,
                boot_crash,
            ),
            daemon=True,
            name=f"shard-worker-{shard}",
        )
        process.start()
        child_conn.close()
        try:
            message = parent_conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise RuntimeError(f"shard worker {shard} died during startup") from exc
        opcode, body = unframe(message)
        if opcode != OP_HELLO:
            raise RuntimeError(
                f"shard worker {shard} failed to start: {decode_json(body)}"
            )
        return _WorkerHandle(shard, process, parent_conn, decode_json(body))

    def _restart_worker(self, shard: int) -> _WorkerHandle:
        """One respawn attempt: recover from disk, re-register views.

        Raises :class:`RuntimeError`/:class:`OSError` when the spawn or
        the view re-registration fails (the half-started worker is killed
        first, so a failed attempt leaks nothing).
        """
        worker = self._spawn(shard, None, recover=True)
        self.workers[shard] = worker
        self.restart_counts[shard] += 1
        self._reap_entries[shard][0] = worker.process
        self._reap_entries[shard][1] = worker.conn
        try:
            # the worker rebuilt its graph but not its standing views
            for text, name in self._view_specs:
                self._send(
                    worker,
                    OP_REGISTER_VIEW,
                    encode_json(
                        {"text": text, "name": name, "federated": self.num_shards > 1}
                    ),
                )
                self._receive(worker)
        except (RuntimeError, EOFError, OSError) as exc:
            worker.process.kill()
            worker.process.join(timeout=5)
            try:
                worker.conn.close()
            except OSError:
                pass
            raise RuntimeError(
                f"shard worker {shard} failed during view re-registration: {exc}"
            ) from exc
        self._dirty.add(shard)
        return worker

    def _recover_worker(self, shard: int) -> bytes:
        """Bring a dead shard back and replay its in-flight op, budgeted.

        Respawn attempts (from the shard's snapshot + WAL) back off
        exponentially and are capped by ``restart_budget``; exhaustion
        trips the shard's breaker and the in-flight op is answered by
        :meth:`_unavailable_reply`.  A replay that crashes the fresh
        worker again does *not* burn restart budget — it burns
        ``replay_budget``, and past that the batch is a poison batch:
        quarantined to the dead-letter journal while the shard resumes
        clean.  A replay that hangs is SIGKILLed like any hung RPC.
        """
        dead = self.workers[shard]
        inflight = dead.inflight
        dead.inflight = None
        try:
            dead.conn.close()
        except OSError:
            pass
        dead.process.join(timeout=5)
        if self.persistence is None:
            self._trip(shard, "worker died and no data_dir is configured")
            raise ShardUnavailableError(
                f"shard worker {shard} died and no data_dir is configured "
                "for recovery",
                shard=shard,
            )
        failures = 0
        replays = 0
        attempt = 0
        last_error = f"shard worker {shard} died"
        while True:
            if failures >= self.policy.restart_budget:
                self._trip(shard, last_error)
                if inflight is None:
                    return b""
                return self._unavailable_reply(shard, inflight[0], inflight[1])
            delay = self.policy.backoff(attempt)
            attempt += 1
            if delay:
                time.sleep(delay)
            try:
                worker = self._restart_worker(shard)
            except (RuntimeError, OSError) as exc:
                failures += 1
                last_error = str(exc) or f"{type(exc).__name__}"
                continue
            if inflight is None:
                self.breakers[shard].close()
                return b""
            if replays >= self.policy.replay_budget:
                self._quarantine(shard, inflight, last_error)
                self.breakers[shard].close()
                return self._synthetic_reply(shard, inflight[0])
            opcode, body = inflight
            replays += 1
            worker.inflight = inflight
            try:
                self._send(worker, opcode, body)
                reply = self._receive(worker)
            except _WorkerHungError:
                worker.process.kill()
                worker.process.join(timeout=5)
                try:
                    worker.conn.close()
                except OSError:
                    pass
                last_error = f"shard worker {shard} hung replaying the batch"
                continue
            except (EOFError, BrokenPipeError, OSError) as exc:
                worker.process.join(timeout=5)
                try:
                    worker.conn.close()
                except OSError:
                    pass
                last_error = (
                    f"shard worker {shard} died replaying the batch "
                    f"({type(exc).__name__}: {exc})"
                )
                continue
            self.breakers[shard].close()
            return reply

    def _send(self, worker: _WorkerHandle, opcode: int, body: bytes) -> None:
        """Send one request, shipping any armed fault directives first.

        Directives ride ahead of the op they apply to as a fire-and-forget
        ``OP_FAULT`` message, so the worker's injector state is always a
        pure function of what the parent decided — respawns inherit
        nothing, and a replayed batch counts as a fresh matching send.
        """
        if self._faults.active:
            directives = self._faults.op_directive(worker.shard, opcode)
            if directives:
                worker.conn.send_bytes(frame(OP_FAULT, encode_json(directives)))
        worker.conn.send_bytes(frame(opcode, body))

    def _receive(self, worker: _WorkerHandle) -> bytes:
        started = time.perf_counter()
        if not worker.conn.poll(self.policy.rpc_timeout):
            raise _WorkerHungError(
                f"shard worker {worker.shard} did not reply within "
                f"{self.policy.rpc_timeout}s",
                shard=worker.shard,
            )
        message = worker.conn.recv_bytes()
        worker.last_batch_latency = time.perf_counter() - started
        worker.inflight = None
        opcode, body = unframe(message)
        if opcode == OP_ERROR:
            raise RuntimeError(
                f"shard worker {worker.shard} failed: {decode_json(body)['error']}"
            )
        return body

    def scatter(self, requests: Sequence[Tuple[int, int, bytes]]) -> Dict[int, bytes]:
        """Send every request, then collect every reply (in shard order).

        A broken pipe at either end marks the worker dead, and a reply
        missing its deadline marks it hung (the process is SIGKILLed —
        from here on a hang *is* a crash); both route through
        :meth:`_recover_worker`.  The ops are idempotent (deterministic
        IRIs, deduplicating adds), so a request that was half-applied
        before the crash converges on replay.  Requests for a shard whose
        breaker is open are answered locally by :meth:`_unavailable_reply`
        — unless the breaker's retry delay has elapsed, in which case a
        half-open probe tries to bring the shard back first.
        """
        replies: Dict[int, bytes] = {}
        dead: List[int] = []
        sent: List[Tuple[int, int, bytes]] = []
        for shard, opcode, body in requests:
            if self.breakers[shard].open and not self._probe_recover(shard):
                replies[shard] = self._unavailable_reply(shard, opcode, body)
                continue
            worker = self.workers[shard]
            worker.inflight = (opcode, body)
            sent.append((shard, opcode, body))
            try:
                self._send(worker, opcode, body)
            except (BrokenPipeError, OSError):
                dead.append(shard)
        for shard, opcode, body in sent:
            if shard in dead:
                continue
            worker = self.workers[shard]
            try:
                replies[shard] = self._receive(worker)
            except _WorkerHungError:
                worker.process.kill()
                worker.process.join(timeout=5)
                dead.append(shard)
            except (EOFError, BrokenPipeError, OSError):
                dead.append(shard)
        for shard in dead:
            replies[shard] = self._recover_worker(shard)
        return replies

    def _rpc(self, shard: int, opcode: int, body: bytes = b"") -> bytes:
        return self.scatter([(shard, opcode, body)])[shard]

    def _broadcast(self, opcode: int, body: bytes = b"") -> Dict[int, bytes]:
        return self.scatter(
            [(shard, opcode, body) for shard in range(self.num_shards)]
        )

    def mark_dirty(self, shards: Iterable[int]) -> None:
        self._dirty.update(shards)

    # -------------------------------------------------------------- #
    # degraded operation: breaker, pending queue, quarantine
    # -------------------------------------------------------------- #

    def _trip(self, shard: int, error: str) -> None:
        """Open the shard's breaker; the retry delay keeps growing per trip."""
        breaker = self.breakers[shard]
        delay = min(
            self.policy.restart_backoff
            * (2 ** (self.policy.restart_budget + breaker.trips - 1)),
            self.policy.backoff_cap,
        )
        breaker.trip(error, delay)

    def _probe_recover(self, shard: int) -> bool:
        """Half-open probe: one restart attempt once the retry delay passed.

        On success the breaker closes and every parked ingest batch is
        flushed into the recovered shard; on failure the breaker re-trips
        with a doubled delay.  Returns whether the shard is serving again.
        """
        breaker = self.breakers[shard]
        if self.persistence is None:
            return False
        if time.monotonic() < breaker.retry_at:
            return False
        breaker.state = "half_open"
        try:
            self._restart_worker(shard)
        except (RuntimeError, OSError) as exc:
            self._trip(shard, str(exc) or type(exc).__name__)
            return False
        breaker.close()
        self._flush_pending(shard)
        return True

    def _flush_pending(self, shard: int) -> None:
        """Replay parked ingest batches into a freshly recovered shard."""
        breaker = self.breakers[shard]
        parked, breaker.pending = list(breaker.pending), []
        for body in parked:
            reply = self.scatter([(shard, OP_INGEST, body)])[shard]
            self.layer_statistics.annotation_triples += read_uvarint(reply, 0)[0]
            self._dirty.add(shard)

    def _unavailable_reply(self, shard: int, opcode: int, body: bytes) -> bytes:
        """Answer a request for a tripped shard without a worker.

        Ingest parks in the bounded pending queue (recovery will flush
        it); housekeeping ops (stats, view drains, checkpoints, pings)
        get synthetic empty replies so the rest of the system keeps
        running; reads get synthetic partial replies only under
        ``degraded_reads``.  Everything else refuses loudly.
        """
        breaker = self.breakers[shard]
        error = breaker.last_error or "restart budget exhausted"
        if opcode == OP_INGEST and self.persistence is not None:
            if len(breaker.pending) >= self.policy.pending_limit:
                raise ShardUnavailableError(
                    f"shard {shard} is unavailable and its pending ingest "
                    f"queue is full ({self.policy.pending_limit} batches): "
                    f"{error}",
                    shard=shard,
                )
            breaker.pending.append(body)
            return self._synthetic_reply(shard, opcode)
        if opcode in (OP_REFRESH_VIEWS, OP_STATS, OP_CHECKPOINT, OP_PING):
            return self._synthetic_reply(shard, opcode)
        if (
            opcode in (OP_QUERY_ASK, OP_QUERY_FULL, OP_REASON)
            and self.policy.degraded_reads
        ):
            return self._synthetic_reply(shard, opcode)
        raise ShardUnavailableError(
            f"shard {shard} is unavailable (circuit open after "
            f"{breaker.trips} trip(s)): {error}",
            shard=shard,
        )

    def _synthetic_reply(self, shard: int, opcode: int) -> bytes:
        """The empty-but-well-formed reply a missing shard contributes."""
        if opcode in (OP_INGEST, OP_REPLICATE, OP_RETRACT_SUBJECT):
            reply = bytearray()
            write_uvarint(reply, 0)
            return bytes(reply)
        if opcode == OP_REFRESH_VIEWS:
            return encode_view_deltas([])
        if opcode == OP_QUERY_ASK:
            return bytes([0])
        if opcode == OP_QUERY_FULL:
            return encode_query_result([], [])
        if opcode == OP_STATS:
            return encode_json(
                {
                    "pid": None,
                    "triples": 0,
                    "version": 0,
                    "recovered": False,
                    "wal_records": 0,
                    "generation": 0,
                    "tripped": True,
                    "planner": {
                        "queries": 0,
                        "parses": 0,
                        "plans_built": 0,
                        "plan_hits": 0,
                        "plan_invalidations": 0,
                        "result_hits": 0,
                        "result_misses": 0,
                        "result_invalidations": 0,
                        "view_hits": 0,
                    },
                    "views": [],
                }
            )
        if opcode == OP_PING:
            return encode_json({"pid": None, "triples": 0, "tripped": True})
        return b""

    def _quarantine(self, shard: int, inflight: Tuple[int, bytes], error: str) -> None:
        """Write a poison batch to the dead-letter journal and move on.

        What quarantine deliberately loses: the batch's annotations never
        reach the shard's graph, so queries and views will not reflect
        the quarantined records — the journal entry (decoded records +
        error + shard) is the recovery path, not silent retry forever.
        """
        opcode, body = inflight
        records: List[dict] = []
        if opcode == OP_INGEST:
            try:
                pairs, _reason = decode_ingest(body)
                records = [asdict(obs) for obs, _index in pairs]
            except (ValueError, IndexError):
                records = []
        self.quarantined += 1
        if self.dead_letter is not None:
            self.dead_letter.record(
                "poison_batch",
                f"shard worker {shard} kept crashing while replaying "
                f"op 0x{opcode:02x} ({self.policy.replay_budget} replays): "
                f"{error}",
                shard=shard,
                records=records,
            )

    def _degraded_shards(self) -> Tuple[int, ...]:
        return tuple(
            shard for shard in range(self.num_shards) if self.breakers[shard].open
        )

    # -------------------------------------------------------------- #
    # querying and reasoning
    # -------------------------------------------------------------- #

    def query(self, text: str, entail: bool = False):
        anchor = self.library.graph
        parsed = planner_for(anchor)._parse(text)
        if entail:
            # every partition's closure is topped up first — matching the
            # inline oracle's side-effects even when an ASK short-circuits
            self.ensure_all_materialized()
        body = bytearray([0])
        encode_string(body, text)
        body = bytes(body)
        if parsed.form == "ASK":
            # sequential probe so a hit short-circuits the remaining shards
            for shard in range(self.num_shards):
                reply = self._rpc(shard, OP_QUERY_ASK, body)
                if reply and reply[0]:
                    return self._mark_degraded(
                        QueryResult("ASK", [EMPTY_BINDINGS], [])
                    )
            return self._mark_degraded(QueryResult("ASK", [], []))
        replies = self._broadcast(OP_QUERY_FULL, body)
        per_graph: List[List] = []
        full_variables: List = []
        for shard in range(self.num_shards):
            variables, solutions = decode_query_result(replies[shard])
            per_graph.append(solutions)
            full_variables = variables
        return self._mark_degraded(
            merge_federated_solutions(parsed, per_graph, full_variables, anchor)
        )

    def _mark_degraded(self, result: QueryResult) -> QueryResult:
        """Stamp a partial result when any shard sat out behind its breaker."""
        missing = self._degraded_shards()
        if missing:
            result.degraded = True
            result.missing_shards = missing
        return result

    def materialize_inferences(self, full: bool = False) -> List[InferenceTrace]:
        replies = self._broadcast(OP_MATERIALIZE, bytes([1 if full else 0]))
        self.mark_dirty(range(self.num_shards))
        traces = []
        for shard in range(self.num_shards):
            info = decode_json(replies[shard])
            traces.append(
                InferenceTrace(
                    iterations=info["iterations"],
                    inferred=info["inferred"],
                    by_rule=dict(info["by_rule"]),
                )
            )
        return traces

    def ensure_all_materialized(self) -> None:
        self._broadcast(OP_REASON)
        self.mark_dirty(range(self.num_shards))

    # -------------------------------------------------------------- #
    # standing views
    # -------------------------------------------------------------- #

    def register_standing(self, text: str, name: Optional[str] = None, seeds=None):
        body = encode_json(
            {"text": text, "name": name, "federated": self.num_shards > 1}
        )
        handles = []
        for shard in range(self.num_shards):
            handle = self._handles.get((shard, text))
            if handle is None:
                info = decode_json(self._rpc(shard, OP_REGISTER_VIEW, body))
                handle = ProcessViewHandle(
                    self, shard, text, name, seeded=bool(info["seeded"])
                )
                self._handles[(shard, text)] = handle
                self._ordered_handles.append(handle)
            handles.append(handle)
        if (text, name) not in self._view_specs:
            self._view_specs.append((text, name))
        return handles

    def standing_views(self) -> List[ProcessViewHandle]:
        return list(self._ordered_handles)

    def refresh_views(self) -> None:
        """Drain the dirty shards' view deltas to parent-side listeners."""
        if not self._dirty or not self._handles:
            return
        dirty = sorted(self._dirty)
        self._dirty.clear()
        replies = self.scatter([(shard, OP_REFRESH_VIEWS, b"") for shard in dirty])
        for shard in dirty:
            for text, full_refresh, _variables, added, removed in decode_view_deltas(
                replies[shard]
            ):
                handle = self._handles.get((shard, text))
                if handle is None:
                    continue
                delta = ViewDelta(handle, added, removed, full_refresh)
                if delta or delta.full_refresh:
                    for listener in list(handle.listeners):
                        listener(delta)

    # -------------------------------------------------------------- #
    # replication (service descriptions, ontology deltas)
    # -------------------------------------------------------------- #

    def replicate_to(self, shard: int, triples: List[Triple]) -> int:
        body = encode_triples([(t.subject, t.predicate, t.object) for t in triples])
        self.mark_dirty((shard,))
        return read_uvarint(self._rpc(shard, OP_REPLICATE, body), 0)[0]

    def replicate_all(self, triples: List[Triple]) -> int:
        body = encode_triples([(t.subject, t.predicate, t.object) for t in triples])
        replies = self._broadcast(OP_REPLICATE, body)
        self.mark_dirty(range(self.num_shards))
        return sum(read_uvarint(reply, 0)[0] for reply in replies.values())

    def retract_subject(self, shard: int, subject: Term) -> int:
        body = bytearray()
        encode_term_into(body, subject)
        self.mark_dirty((shard,))
        return read_uvarint(self._rpc(shard, OP_RETRACT_SUBJECT, bytes(body)), 0)[0]

    # -------------------------------------------------------------- #
    # observability
    # -------------------------------------------------------------- #

    def ping(self, shard: Optional[int] = None) -> Dict[int, dict]:
        """Heartbeat the workers; a hung worker fails the RPC deadline."""
        shards = range(self.num_shards) if shard is None else (shard,)
        replies = self.scatter([(index, OP_PING, b"") for index in shards])
        return {index: decode_json(replies[index]) for index in shards}

    def health(self) -> dict:
        """Per-shard supervision state, without touching the workers."""
        shards = []
        for shard, worker in enumerate(self.workers):
            breaker = self.breakers[shard]
            if breaker.state == "open":
                state = "tripped"
            elif breaker.state == "half_open":
                state = "restarting"
            elif not worker.process.is_alive():
                state = "down"
            else:
                state = "up"
            shards.append(
                {
                    "shard": shard,
                    "state": state,
                    "breaker": breaker.state,
                    "restarts": self.restart_counts[shard],
                    "trips": breaker.trips,
                    "pending_batches": len(breaker.pending),
                    "pid": worker.pid,
                    "last_error": breaker.last_error,
                }
            )
        return {
            "backend": "process",
            "shards": shards,
            "degraded_reads": self.policy.degraded_reads,
            "rpc_timeout": self.policy.rpc_timeout,
            "quarantined_batches": self.quarantined,
        }

    def worker_stats(self, shard: int) -> dict:
        return decode_json(self._rpc(shard, OP_STATS))

    def all_worker_stats(self) -> List[dict]:
        replies = self._broadcast(OP_STATS)
        return [decode_json(replies[shard]) for shard in range(self.num_shards)]

    def planner_statistics(self) -> PlannerStatistics:
        totals = PlannerStatistics()
        for info in self.all_worker_stats():
            planner = info["planner"]
            totals.queries += planner["queries"]
            totals.parses += planner["parses"]
            totals.plans_built += planner["plans_built"]
            totals.plan_hits += planner["plan_hits"]
            totals.plan_invalidations += planner["plan_invalidations"]
            totals.result_hits += planner["result_hits"]
            totals.result_misses += planner["result_misses"]
            totals.result_invalidations += planner["result_invalidations"]
            totals.view_hits += planner["view_hits"]
        return totals

    def shard_statistics(self) -> List[dict]:
        stats = self.all_worker_stats()
        health = {entry["shard"]: entry for entry in self.health()["shards"]}
        return [
            {
                "shard": shard,
                "triples": stats[shard]["triples"],
                "queue_depth": 1 if worker.inflight is not None else 0,
                "last_batch_latency": worker.last_batch_latency,
                "pid": worker.pid,
                "restarts": self.restart_counts[shard],
                "wal_records": stats[shard]["wal_records"],
                "generation": stats[shard]["generation"],
                "state": health[shard]["state"],
                "breaker": health[shard]["breaker"],
                "trips": health[shard]["trips"],
                "pending_batches": health[shard]["pending_batches"],
            }
            for shard, worker in enumerate(self.workers)
        ]

    def dump_graph(self, shard: int) -> Graph:
        return restore_graph(decode_graph_body(self._rpc(shard, OP_DUMP)))

    def dump_graphs(self) -> List[Graph]:
        replies = self._broadcast(OP_DUMP)
        return [
            restore_graph(decode_graph_body(replies[shard]))
            for shard in range(self.num_shards)
        ]

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #

    def checkpoint_all(self) -> None:
        self._broadcast(OP_CHECKPOINT)

    def _kill_workers(self) -> None:
        """Simulated crash (tests): workers die without flushing buffers."""
        if self._closed or self._killed:
            return
        self._killed = True
        self._finalizer.detach()
        for worker in self.workers:
            try:
                worker.conn.send_bytes(frame(OP_KILL))
            except OSError:
                pass
        for worker in self.workers:
            worker.process.join(timeout=5)
            try:
                worker.conn.close()
            except OSError:
                pass

    def close(self) -> None:
        if self._closed or self._killed:
            return
        self._closed = True
        self._finalizer.detach()
        for worker in self.workers:
            try:
                worker.conn.send_bytes(frame(OP_CLOSE))
            except OSError:
                continue
        for worker in self.workers:
            try:
                worker.conn.recv_bytes()
            except (EOFError, OSError):
                pass
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.process.join(timeout=5)

    def __repr__(self) -> str:
        alive = sum(1 for worker in self.workers if worker.process.is_alive())
        return f"<ProcessShardBackend shards={self.num_shards} alive={alive}>"
