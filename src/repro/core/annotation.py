"""Semantic annotation of canonical observations.

Turns a :class:`~repro.core.mediator.CanonicalObservation` into RDF triples
following the SSN pattern, aligned to DOLCE: an ``ssn:Observation``
individual linked to its sensor, observed property, feature of interest,
result (value + unit) and timestamps; IK sightings become
``ik:IndicatorSighting`` individuals.  The annotations are what make the
middleware's data "machine readable ... for easy integration and
interoperability" -- they land in the middleware's annotation graph, are
queryable through the application layer and feed the reasoner.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.mediator import CanonicalObservation
from repro.ontologies.environment import CANONICAL_PROPERTIES
from repro.ontologies.units import UNIT_DEFINITIONS
from repro.ontologies.vocabulary import AFRICRID, GEO, IK, SSN
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import RDF, RDFS
from repro.semantics.rdf.term import IRI, Literal
from repro.semantics.rdf.triple import Triple


@dataclass
class AnnotationResult:
    """The IRIs minted while annotating one observation."""

    observation_iri: IRI
    sensor_iri: IRI
    property_iri: Optional[IRI]
    triples_added: int


class SemanticAnnotator:
    """Writes SSN/DOLCE annotations for canonical observations into a graph.

    Parameters
    ----------
    graph:
        The annotation graph (usually the ontology segment layer's graph,
        shared with the unified ontology so reasoning spans both).
    knowledge_base:
        Optional IK knowledge base used to annotate indicator sightings.
    """

    def __init__(self, graph: Graph, knowledge_base=None):
        self.graph = graph
        self.knowledge_base = knowledge_base
        self._counter = itertools.count(1)
        self.annotated = 0
        self.annotated_sightings = 0

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def sensor_iri(self, source_id: str) -> IRI:
        """The IRI of the (possibly human) sensor with this source id."""
        return AFRICRID[f"sensor/{source_id}"]

    def feature_iri(self, observation: CanonicalObservation) -> IRI:
        """The feature-of-interest IRI for an observation."""
        area = observation.area or "unknown-area"
        return AFRICRID[f"feature/{area.replace(' ', '_')}"]

    # ------------------------------------------------------------------ #
    # annotation
    # ------------------------------------------------------------------ #

    def annotate(self, observation: CanonicalObservation) -> AnnotationResult:
        """Annotate one canonical observation, returning the minted IRIs."""
        if observation.is_indicator_sighting:
            return self._annotate_sighting(observation)

        before = len(self.graph)
        index = next(self._counter)
        obs_iri = AFRICRID[f"observation/{index}"]
        sensor_iri = self.sensor_iri(observation.source_id)
        result_iri = AFRICRID[f"result/{index}"]
        property_iri = CANONICAL_PROPERTIES.get(observation.property_key)
        feature_iri = self.feature_iri(observation)

        graph = self.graph
        graph.add(Triple(obs_iri, RDF.type, SSN.Observation))
        graph.add(Triple(obs_iri, SSN.observedBy, sensor_iri))
        if property_iri is not None:
            graph.add(Triple(obs_iri, SSN.observedProperty, property_iri))
        graph.add(Triple(obs_iri, SSN.featureOfInterest, feature_iri))
        graph.add(Triple(obs_iri, SSN.hasResult, result_iri))
        graph.add(Triple(obs_iri, SSN.observationResultTime, Literal(observation.timestamp)))

        graph.add(Triple(result_iri, RDF.type, SSN.SensorOutput))
        graph.add(Triple(result_iri, SSN.hasValue, Literal(float(observation.value))))
        unit_definition = UNIT_DEFINITIONS.get(observation.unit)
        if unit_definition is not None:
            graph.add(Triple(result_iri, SSN.hasUnit, unit_definition.iri))

        sensor_class = (
            SSN.HumanSensor if observation.source_kind == "mobile_report" else SSN.SensingDevice
        )
        graph.add(Triple(sensor_iri, RDF.type, sensor_class))
        graph.add(Triple(sensor_iri, RDFS.label, Literal(observation.source_id)))
        if property_iri is not None:
            graph.add(Triple(sensor_iri, SSN.observes, property_iri))
        if observation.location is not None:
            platform_iri = AFRICRID[f"platform/{observation.source_id}"]
            graph.add(Triple(sensor_iri, SSN.onPlatform, platform_iri))
            graph.add(Triple(platform_iri, RDF.type, SSN.Platform))
            graph.add(Triple(platform_iri, GEO.lat, Literal(float(observation.location[0]))))
            graph.add(Triple(platform_iri, GEO.long, Literal(float(observation.location[1]))))

        # provenance of the mediation step (how the raw term was resolved)
        graph.add(
            Triple(obs_iri, AFRICRID.mediatedFromTerm, Literal(observation.original_term))
        )
        graph.add(
            Triple(
                obs_iri,
                AFRICRID.alignmentMethod,
                Literal(observation.alignment_method),
            )
        )
        self.annotated += 1
        return AnnotationResult(obs_iri, sensor_iri, property_iri, len(self.graph) - before)

    def _annotate_sighting(self, observation: CanonicalObservation) -> AnnotationResult:
        before = len(self.graph)
        index = next(self._counter)
        sighting_iri = AFRICRID[f"sighting/{index}"]
        observer_iri = AFRICRID[f"observer/{observation.source_id}"]
        indicator_iri = AFRICRID[f"indicator/{observation.property_key}"]

        graph = self.graph
        graph.add(Triple(sighting_iri, RDF.type, IK.IndicatorSighting))
        graph.add(Triple(sighting_iri, IK.sightedIndicator, indicator_iri))
        graph.add(Triple(sighting_iri, IK.reportedBy, observer_iri))
        graph.add(Triple(sighting_iri, IK.sightingIntensity, Literal(float(observation.value))))
        graph.add(Triple(sighting_iri, SSN.observationResultTime, Literal(observation.timestamp)))
        graph.add(Triple(observer_iri, RDF.type, IK.CommunityObserver))
        if self.knowledge_base is not None:
            definition = self.knowledge_base.get(observation.property_key)
            if definition is not None:
                graph.add(
                    Triple(indicator_iri, IK.hasReliability, Literal(definition.reliability))
                )
        self.annotated += 1
        self.annotated_sightings += 1
        return AnnotationResult(sighting_iri, observer_iri, indicator_iri, len(self.graph) - before)

    def annotate_many(self, observations: List[CanonicalObservation]) -> List[AnnotationResult]:
        """Annotate a batch of observations."""
        return [self.annotate(observation) for observation in observations]
