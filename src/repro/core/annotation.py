"""Semantic annotation of canonical observations.

Turns a :class:`~repro.core.mediator.CanonicalObservation` into RDF triples
following the SSN pattern, aligned to DOLCE: an ``ssn:Observation``
individual linked to its sensor, observed property, feature of interest,
result (value + unit) and timestamps; IK sightings become
``ik:IndicatorSighting`` individuals.  The annotations are what make the
middleware's data "machine readable ... for easy integration and
interoperability" -- they land in the middleware's annotation graph, are
queryable through the application layer and feed the reasoner.

Annotation is split into triple *generation* and graph *insertion* so the
batch path of the ingestion pipeline can accumulate the triples of a whole
batch and commit them with a single :meth:`Graph.add_all` call.  That
commit is also what drives *incremental reasoning*: the graph's change
trackers record every inserted triple, so the reasoner's next
materialisation refires only the rules the batch's annotations can touch
instead of re-running the fixpoint over the accumulated graph.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.mediator import CanonicalObservation
from repro.ontologies.environment import CANONICAL_PROPERTIES
from repro.ontologies.units import UNIT_DEFINITIONS
from repro.ontologies.vocabulary import AFRICRID, GEO, IK, SSN
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import RDF, RDFS
from repro.semantics.rdf.term import IRI, Literal
from repro.semantics.rdf.triple import Triple


@dataclass
class AnnotationResult:
    """The IRIs minted while annotating one observation.

    ``triples_added`` is the graph growth for a single :meth:`annotate`
    call; on the batch path it is the number of generated triples (the
    whole batch is committed at once, so per-observation deduplicated
    growth is not individually observable).
    """

    observation_iri: IRI
    sensor_iri: IRI
    property_iri: Optional[IRI]
    triples_added: int


#: IRI path prefixes minted from the shared annotation counter.
_COUNTER_PREFIXES = ("observation/", "result/", "sighting/")


def next_annotation_index(graphs) -> int:
    """The first unused annotation-counter index across ``graphs``.

    Recovery restores triples but not the in-process counter; restarting it
    at 1 would mint ``observation/1`` IRIs that collide with recovered
    annotations.  The dictionaries hold every IRI the counter ever minted,
    so scanning them for the counter-derived path prefixes yields the exact
    high-water mark.
    """
    base = AFRICRID.base
    highest = 0
    for graph in graphs:
        for term in graph.dictionary.terms:
            if not isinstance(term, IRI) or not term.value.startswith(base):
                continue
            path = term.value[len(base):]
            for prefix in _COUNTER_PREFIXES:
                if path.startswith(prefix):
                    suffix = path[len(prefix):]
                    if suffix.isdigit():
                        highest = max(highest, int(suffix))
                    break
    return highest + 1


def annotation_iri_for(observation: CanonicalObservation, index: int) -> str:
    """The IRI the annotator will mint for ``observation`` at ``index``.

    Lets the process-shard parent fill ``context.annotation_iri`` without
    waiting for the worker's reply: the minted IRI is a pure function of
    the observation kind and the pre-assigned counter index.
    """
    if observation.is_indicator_sighting:
        return AFRICRID[f"sighting/{index}"].value
    return AFRICRID[f"observation/{index}"].value


class SemanticAnnotator:
    """Writes SSN/DOLCE annotations for canonical observations into a graph.

    Parameters
    ----------
    graph:
        The annotation graph (usually the ontology segment layer's graph,
        shared with the unified ontology so reasoning spans both).
    knowledge_base:
        Optional IK knowledge base used to annotate indicator sightings.
    counter:
        Optional shared index allocator for minted observation / sighting
        IRIs.  The sharded ontology layer hands every per-shard annotator
        the *same* counter, so IRIs stay globally unique — and, with
        batch indexes pre-assigned in arrival order, identical to what a
        single-graph deployment would mint for the same stream.
    """

    def __init__(self, graph: Graph, knowledge_base=None, counter=None):
        self.graph = graph
        self.knowledge_base = knowledge_base
        self._counter = counter if counter is not None else itertools.count(1)
        self.annotated = 0
        self.annotated_sightings = 0
        # batch-scoped intern memos (see annotate_batch): a 10k-record
        # batch from 40 motes would otherwise construct and re-validate
        # 10k equal sensor/platform/feature IRIs before the graph's term
        # dictionary collapses them to one id
        self._batch_sensor_iris: Optional[dict] = None
        self._batch_feature_iris: Optional[dict] = None
        self._batch_platform_iris: Optional[dict] = None

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def sensor_iri(self, source_id: str) -> IRI:
        """The IRI of the (possibly human) sensor with this source id."""
        memo = self._batch_sensor_iris
        if memo is None:
            return AFRICRID[f"sensor/{source_id}"]
        iri = memo.get(source_id)
        if iri is None:
            iri = memo[source_id] = AFRICRID[f"sensor/{source_id}"]
        return iri

    def feature_iri(self, observation: CanonicalObservation) -> IRI:
        """The feature-of-interest IRI for an observation."""
        area = observation.area or "unknown-area"
        memo = self._batch_feature_iris
        if memo is None:
            return AFRICRID[f"feature/{area.replace(' ', '_')}"]
        iri = memo.get(area)
        if iri is None:
            iri = memo[area] = AFRICRID[f"feature/{area.replace(' ', '_')}"]
        return iri

    # ------------------------------------------------------------------ #
    # triple generation
    # ------------------------------------------------------------------ #

    def _observation_triples(
        self, observation: CanonicalObservation, index: Optional[int] = None
    ) -> Tuple[IRI, IRI, Optional[IRI], List[Triple]]:
        if index is None:
            index = next(self._counter)
        obs_iri = AFRICRID[f"observation/{index}"]
        sensor_iri = self.sensor_iri(observation.source_id)
        result_iri = AFRICRID[f"result/{index}"]
        property_iri = CANONICAL_PROPERTIES.get(observation.property_key)
        feature_iri = self.feature_iri(observation)

        triples = [
            Triple(obs_iri, RDF.type, SSN.Observation),
            Triple(obs_iri, SSN.observedBy, sensor_iri),
        ]
        if property_iri is not None:
            triples.append(Triple(obs_iri, SSN.observedProperty, property_iri))
        triples.extend(
            [
                Triple(obs_iri, SSN.featureOfInterest, feature_iri),
                Triple(obs_iri, SSN.hasResult, result_iri),
                Triple(obs_iri, SSN.observationResultTime, Literal(observation.timestamp)),
                Triple(result_iri, RDF.type, SSN.SensorOutput),
                Triple(result_iri, SSN.hasValue, Literal(float(observation.value))),
            ]
        )
        unit_definition = UNIT_DEFINITIONS.get(observation.unit)
        if unit_definition is not None:
            triples.append(Triple(result_iri, SSN.hasUnit, unit_definition.iri))

        sensor_class = (
            SSN.HumanSensor if observation.source_kind == "mobile_report" else SSN.SensingDevice
        )
        triples.append(Triple(sensor_iri, RDF.type, sensor_class))
        triples.append(Triple(sensor_iri, RDFS.label, Literal(observation.source_id)))
        if property_iri is not None:
            triples.append(Triple(sensor_iri, SSN.observes, property_iri))
        if observation.location is not None:
            platform_memo = self._batch_platform_iris
            if platform_memo is None:
                platform_iri = AFRICRID[f"platform/{observation.source_id}"]
            else:
                platform_iri = platform_memo.get(observation.source_id)
                if platform_iri is None:
                    platform_iri = platform_memo[observation.source_id] = AFRICRID[
                        f"platform/{observation.source_id}"
                    ]
            triples.extend(
                [
                    Triple(sensor_iri, SSN.onPlatform, platform_iri),
                    Triple(platform_iri, RDF.type, SSN.Platform),
                    Triple(platform_iri, GEO.lat, Literal(float(observation.location[0]))),
                    Triple(platform_iri, GEO.long, Literal(float(observation.location[1]))),
                ]
            )

        # provenance of the mediation step (how the raw term was resolved)
        triples.append(
            Triple(obs_iri, AFRICRID.mediatedFromTerm, Literal(observation.original_term))
        )
        triples.append(
            Triple(obs_iri, AFRICRID.alignmentMethod, Literal(observation.alignment_method))
        )
        return obs_iri, sensor_iri, property_iri, triples

    def _sighting_triples(
        self, observation: CanonicalObservation, index: Optional[int] = None
    ) -> Tuple[IRI, IRI, IRI, List[Triple]]:
        if index is None:
            index = next(self._counter)
        sighting_iri = AFRICRID[f"sighting/{index}"]
        observer_iri = AFRICRID[f"observer/{observation.source_id}"]
        indicator_iri = AFRICRID[f"indicator/{observation.property_key}"]

        triples = [
            Triple(sighting_iri, RDF.type, IK.IndicatorSighting),
            Triple(sighting_iri, IK.sightedIndicator, indicator_iri),
            Triple(sighting_iri, IK.reportedBy, observer_iri),
            Triple(sighting_iri, IK.sightingIntensity, Literal(float(observation.value))),
            Triple(sighting_iri, SSN.observationResultTime, Literal(observation.timestamp)),
            Triple(observer_iri, RDF.type, IK.CommunityObserver),
        ]
        if self.knowledge_base is not None:
            definition = self.knowledge_base.get(observation.property_key)
            if definition is not None:
                triples.append(
                    Triple(indicator_iri, IK.hasReliability, Literal(definition.reliability))
                )
        return sighting_iri, observer_iri, indicator_iri, triples

    def _generate(
        self, observation: CanonicalObservation, index: Optional[int] = None
    ) -> Tuple[AnnotationResult, List[Triple]]:
        if observation.is_indicator_sighting:
            sighting_iri, observer_iri, indicator_iri, triples = self._sighting_triples(
                observation, index
            )
            self.annotated_sightings += 1
            result = AnnotationResult(sighting_iri, observer_iri, indicator_iri, len(triples))
        else:
            obs_iri, sensor_iri, property_iri, triples = self._observation_triples(
                observation, index
            )
            result = AnnotationResult(obs_iri, sensor_iri, property_iri, len(triples))
        self.annotated += 1
        return result, triples

    # ------------------------------------------------------------------ #
    # annotation
    # ------------------------------------------------------------------ #

    def annotate(self, observation: CanonicalObservation) -> AnnotationResult:
        """Annotate one canonical observation, returning the minted IRIs."""
        before = len(self.graph)
        result, triples = self._generate(observation)
        self.graph.add_all(triples)
        result.triples_added = len(self.graph) - before
        return result

    def annotate_many(self, observations: List[CanonicalObservation]) -> List[AnnotationResult]:
        """Annotate a batch of observations one by one."""
        return [self.annotate(observation) for observation in observations]

    def annotate_batch(
        self,
        observations: List[CanonicalObservation],
        indexes: Optional[List[int]] = None,
    ) -> List[AnnotationResult]:
        """Annotate a batch with a single ``graph.add_all`` commit.

        Per-result ``triples_added`` reports generated (pre-deduplication)
        triples; read the graph size around the call for exact growth.

        Term construction is interned per batch: the sensor, platform and
        feature IRIs a batch repeats (a handful of motes and areas across
        thousands of records) are built once and reused, so the graph's
        dictionary encode of the committed triples hits already-hashed
        term objects.  The memos are batch-scoped on purpose — they die
        with the call, so an unbounded source-id population cannot leak.

        ``indexes`` pre-assigns the minted IRI indexes (one per
        observation, drawn from the shared counter by the caller): the
        sharded ingest path allocates them for the *whole* batch in arrival
        order before fanning sub-batches out to per-shard annotators, so
        the IRIs match the single-graph run record for record.
        """
        if indexes is not None and len(indexes) != len(observations):
            raise ValueError("indexes must parallel observations")
        results: List[AnnotationResult] = []
        triples: List[Triple] = []
        self._batch_sensor_iris = {}
        self._batch_feature_iris = {}
        self._batch_platform_iris = {}
        try:
            for position, observation in enumerate(observations):
                index = indexes[position] if indexes is not None else None
                result, observation_triples = self._generate(observation, index)
                results.append(result)
                triples.extend(observation_triples)
        finally:
            self._batch_sensor_iris = None
            self._batch_feature_iris = None
            self._batch_platform_iris = None
        self.graph.add_all(triples)
        return results
