"""The ontology segment layer.

The middle tier of the paper's architecture (Fig. 3): "contains the
ontology module, reasoning module, inference engine, and semantic services
description module".  Concretely it owns

* the unified ontology library and its graph,
* the mediator (heterogeneity resolution),
* the semantic annotator (SSN/DOLCE RDF annotation of observations),
* the reasoner over the combined ontology + annotation graph,
* the CEP engine as the detection-oriented inference engine, and
* the semantic service registry.

Raw records come in from the interface protocol layer (or directly from a
broker topic); canonical events and derived events go out to the
application abstraction layer.  The processing path itself is a staged
:class:`~repro.core.pipeline.Pipeline` (mediate → validate → annotate →
reason → publish → cep), which gives every record the same treatment
whether it
arrives alone (:meth:`process_record`) or in a batch
(:meth:`process_batch`, stage-major with batched annotation and a deferred
CEP flush).
"""

from __future__ import annotations

import itertools
import os
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.cep.engine import CepEngine
from repro.cep.event import DerivedEvent, Event
from repro.cep.rules import CepRule
from repro.core.annotation import SemanticAnnotator, next_annotation_index
from repro.core.api import HealthReport, IngestReceipt, StandingViewHandle
from repro.core.faults import (
    FaultPlan,
    FaultTolerancePolicy,
    resolve_fault_plan,
    resolve_rpc_timeout,
)
from repro.core.mediator import CanonicalObservation, MediationOutcome, Mediator
from repro.core.pipeline import (
    AnnotateStage,
    CepStage,
    EventPublisher,
    IngestionContext,
    MediateStage,
    Pipeline,
    PublishStage,
    ReasonStage,
    ValidateStage,
)
from repro.core.services import SemanticService, ServiceRegistry
from repro.core.shard_backend import make_shard_backend, resolve_shard_backend
from repro.ik.knowledge_base import IndigenousKnowledgeBase
from repro.ontologies.environment import CANONICAL_PROPERTIES
from repro.ontologies.library import OntologyLibrary, build_unified_ontology
from repro.ontologies.vocabulary import DROUGHT
from repro.persistence.dead_letter import DeadLetterJournal
from repro.persistence.store import DEFAULT_SNAPSHOT_INTERVAL, StorePersistence
from repro.semantics.rdf.graph import Graph
from repro.semantics.reasoner import Reasoner
from repro.semantics.sparql.evaluator import QueryResult, query
from repro.semantics.sparql.planner import (
    PlannerStatistics,
    QueryPlanner,
    planner_for,
)
from repro.streams.broker import topic_matches
from repro.streams.messages import ObservationRecord


@dataclass
class OntologyLayerStatistics:
    """Counters reported by the layer (feeds the E1/E2 benchmarks)."""

    records_in: int = 0
    observations_out: int = 0
    sightings_out: int = 0
    derived_events: int = 0
    annotation_triples: int = 0
    #: Records the validate stage rejected (each also journaled to the
    #: dead-letter file with its reason).
    validation_rejects: int = 0

    def __call__(self) -> Dict[str, int]:
        """Snapshot as a plain dict.

        The layer exposes this dataclass as an *attribute* (the original
        contract: ``layer.statistics.records_in``); calling it yields the
        JSON-safe form, which makes ``layer.statistics()`` line up with
        the ``statistics()`` methods of the other embedding surfaces.
        """
        return asdict(self)


class OntologySegmentLayer:
    """Mediation, annotation, reasoning and inference over one shared graph.

    Parameters
    ----------
    library:
        The ontology library; built (and materialised) on demand if omitted.
    knowledge_base:
        The community IK knowledge base; defaults to the reference
        catalogue.  Its indicators are materialised into the graph.
    mediator:
        Custom mediator (the ablation benchmark passes the passthrough one).
    annotate:
        Whether to write RDF annotations for every observation.  The
        annotation graph grows linearly with traffic; experiments that only
        need canonical events can disable it.
    cep_engine:
        Custom CEP engine; a fresh one is created if omitted.
    reason_per_batch:
        Keep the reasoner's closure current as part of the pipeline: the
        ``reason`` stage tops up the materialisation incrementally right
        after each record / batch is annotated.  Off by default — the
        reasoner then tops up lazily on the first entailment query, which
        is just as incremental.
    shards:
        Number of per-area graph partitions.  ``1`` (the default) keeps the
        original single shared graph — the equivalence oracle of the
        sharded path.  With more, annotations are routed by district into
        per-shard graphs (each with its own term dictionary, indexes,
        reasoner and planner caches, ontology axioms replicated), batch
        annotation / reasoning fan out over a worker pool, and queries are
        federated scatter-gather across the partitions.
    shard_workers:
        Worker-thread pool size for the sharded batch fan-out (defaults to
        the shard count, capped at 8); ``0`` disables the pool and runs the
        per-shard work inline, which is the right call on single-core hosts.
        Only meaningful for the ``inline`` backend.
    shard_backend:
        How the partitions execute: ``"inline"`` (per-shard graphs in this
        process, thread-pool fan-out — the default and the equivalence
        oracle) or ``"process"`` (one worker process per shard, see
        :mod:`repro.core.shard_worker`).  ``None`` defers to the
        ``REPRO_SHARD_BACKEND`` environment variable.  Ignored when
        ``shards == 1``.
    data_dir:
        Directory for durable state (per-shard WAL + snapshots).  ``None``
        (the default) keeps the layer purely in-memory.  When the directory
        already holds a persisted store, the layer *recovers* it: every
        partition is rebuilt from its newest valid snapshot plus its WAL
        tail, the annotation counter resumes past the recovered IRIs,
        reasoner closures are rebuilt and persisted standing views are
        re-registered.
    wal_fsync:
        ``"always"`` / ``"batch"`` / ``"never"`` — see
        :mod:`repro.persistence.wal`.  ``"batch"`` fsyncs once per ingest
        batch, bounding loss to the in-flight batch.
    snapshot_interval:
        WAL records per shard segment before the post-batch checkpoint
        rolls a fresh snapshot and truncates the log.
    shard_rpc_timeout:
        Deadline (seconds) for every worker RPC of the process backend; a
        worker that misses it is declared hung, SIGKILLed and restarted
        from its durable state.  ``None`` defers to the
        ``REPRO_SHARD_RPC_TIMEOUT`` environment variable (default 30s).
    shard_restart_budget / shard_restart_backoff:
        How many restart attempts a dead shard gets (with exponential
        backoff between them) before its circuit breaker trips.
    replay_budget:
        How often a recovered worker replays the same in-flight batch
        before it is quarantined to the dead-letter journal as poison.
    degraded_reads:
        With a tripped shard, serve federated queries from the surviving
        partitions (results carry ``degraded`` + ``missing_shards``
        markers) instead of raising ``ShardUnavailableError``.
    pending_queue_limit:
        Ingest batches parked per tripped shard until recovery; overflow
        raises.
    fault_plan:
        A :class:`~repro.core.faults.FaultPlan` of injected faults for
        the process backend (tests/CI); ``None`` defers to the
        ``REPRO_FAULT_PLAN`` / ``REPRO_FAULT_SEED`` environment.
    """

    def __init__(
        self,
        library: Optional[OntologyLibrary] = None,
        knowledge_base: Optional[IndigenousKnowledgeBase] = None,
        mediator: Optional[Mediator] = None,
        annotate: bool = True,
        cep_engine: Optional[CepEngine] = None,
        cep_per_record: bool = True,
        reason_per_batch: bool = False,
        shards: int = 1,
        shard_workers: Optional[int] = None,
        shard_backend: Optional[str] = None,
        data_dir: Optional[str] = None,
        wal_fsync: str = "batch",
        snapshot_interval: int = DEFAULT_SNAPSHOT_INTERVAL,
        shard_rpc_timeout: Optional[float] = None,
        shard_restart_budget: int = 3,
        shard_restart_backoff: float = 0.1,
        replay_budget: int = 2,
        degraded_reads: bool = False,
        pending_queue_limit: int = 32,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self.library = library or build_unified_ontology(materialize=True)
        self.graph = self.library.graph
        self.shards = max(1, int(shards))
        self.knowledge_base = knowledge_base or IndigenousKnowledgeBase()
        self.mediator = mediator or Mediator()
        self.annotate_observations = annotate
        self.cep_per_record = cep_per_record
        self.cep = cep_engine or CepEngine()
        self.statistics = OntologyLayerStatistics()
        self._publish_stage = PublishStage(self.knowledge_base, self.statistics)
        #: Execution model of the partitions ("inline" for a single graph).
        self.shard_backend = (
            resolve_shard_backend(shard_backend) if self.shards > 1 else "inline"
        )
        self._closed = False
        #: Supervision knobs for the process backend (harmless elsewhere).
        self.fault_policy = FaultTolerancePolicy(
            rpc_timeout=resolve_rpc_timeout(shard_rpc_timeout),
            restart_budget=shard_restart_budget,
            restart_backoff=shard_restart_backoff,
            replay_budget=replay_budget,
            degraded_reads=degraded_reads,
            pending_limit=pending_queue_limit,
        )
        self.fault_plan = resolve_fault_plan(fault_plan)
        #: Records the pipeline gave up on: validation rejects and poison
        #: batches, on disk when a ``data_dir`` exists, in memory otherwise.
        self.dead_letter = DeadLetterJournal(data_dir)

        self.persistence: Optional[StorePersistence] = None
        #: Whether this layer's graphs were rebuilt from durable state.
        self.recovered = False
        recovered_graphs: Optional[List[Graph]] = None
        if data_dir is not None:
            self.persistence = StorePersistence(
                data_dir, fsync=wal_fsync, snapshot_interval=snapshot_interval
            )
            if self.persistence.recoverable:
                if self.shard_backend == "process":
                    # the workers recover their own partitions; the parent
                    # only validates that the store matches the layout
                    self.persistence.validate_meta(
                        expected_shards=self.shards, backend="process"
                    )
                else:
                    recovered_graphs = self.persistence.recover_all(
                        expected_shards=self.shards, backend=self.shard_backend
                    )
                self.recovered = True

        if self.shards == 1:
            # the original single-graph path: ontology axioms, IK catalogue,
            # service descriptions and annotations all share one graph —
            # the recovered graph replaces the freshly built library graph
            if recovered_graphs is not None:
                self.graph = recovered_graphs[0]
            self._backend = None
            self.store = None
            self.router = None
            self._executor = None
            self.knowledge_base.materialize(self.graph)
            self._annotation_counter = itertools.count(
                next_annotation_index([self.graph]) if self.recovered else 1
            )
            self.annotator = SemanticAnnotator(
                self.graph,
                knowledge_base=self.knowledge_base,
                counter=self._annotation_counter,
            )
            self.reasoner = Reasoner(self.graph)
            self.annotators = [self.annotator]
            self.reasoners = [self.reasoner]
            self.services = ServiceRegistry(self.graph)
            self._annotate_stage = AnnotateStage(
                self.annotator, self.statistics, enabled=self.annotate_observations
            )
            self._reason_stage = ReasonStage(self.reasoner, enabled=reason_per_batch)
        else:
            # per-area partitions: the library graph stays the pristine
            # axiom base (replicated into every shard); annotations, the IK
            # catalogue and the service catalogue live in the shards.  The
            # backend decides where the partitions execute — this process
            # (inline) or one worker process each.
            self._backend = make_shard_backend(
                self.shard_backend,
                self.library,
                self.knowledge_base,
                self.statistics,
                self.shards,
                annotate=self.annotate_observations,
                reason_per_batch=reason_per_batch,
                shard_workers=shard_workers,
                persistence=self.persistence,
                recovered=self.recovered,
                recovered_graphs=recovered_graphs,
                policy=self.fault_policy,
                fault_plan=self.fault_plan,
                dead_letter=self.dead_letter,
            )
            self.store = self._backend.store
            self.router = self._backend.router
            self._executor = self._backend.executor
            self._annotation_counter = self._backend.counter
            self.annotators = self._backend.annotators
            self.reasoners = self._backend.reasoners
            self.services = self._backend.services
            self._annotate_stage = self._backend.annotate_stage
            self._reason_stage = self._backend.reason_stage

        self.pipeline = Pipeline(
            [
                MediateStage(self.mediator),
                ValidateStage(
                    dead_letter=self.dead_letter, layer_statistics=self.statistics
                ),
                self._annotate_stage,
                self._reason_stage,
                self._publish_stage,
                CepStage(self.cep, self.statistics, per_record=self.cep_per_record),
            ]
        )
        self._register_default_services()

        if self.persistence is not None and not self.recovered:
            # start journalling only after the base content (axioms, IK
            # catalogue, service descriptions) is in: it all lands in each
            # shard's generation-0 snapshot instead of bloating the WAL
            if self.shard_backend == "process":
                # the workers attached their own WALs/snapshots; the parent
                # only records the store layout
                self.persistence.register_remote(self.shards, "process")
            else:
                self.persistence.attach_all(self.graphs, backend="inline")
        if self.persistence is not None and self.shard_backend != "process":
            # snapshots carry the standing views' materialized rows, so a
            # restart can re-register them without re-materializing
            for index, shard_persistence in enumerate(self.persistence.shards):
                shard_persistence.view_source = self._make_view_exporter(
                    self.graphs[index]
                )
        if self.recovered:
            if reason_per_batch:
                # the pipeline expects closures to be current between
                # batches; a lazy layer instead recomputes on first
                # entailment query, which needs no eager rebuild
                if self._backend is not None:
                    self._backend.ensure_all_materialized()
                else:
                    self.reasoner.ensure_materialized()
            for registration in self.persistence.standing_registrations():
                self.register_standing(
                    registration["text"], name=registration["name"]
                )

    @staticmethod
    def _make_view_exporter(graph: Graph):
        """Snapshot payload callback: the graph's views' current rows."""

        def export() -> List:
            out = []
            for view in planner_for(graph).standing_views():
                out.append((view.name, view.text, view.export_rows()))
            return out

        return export

    def _register_default_services(self) -> None:
        self.services.register(
            SemanticService(
                name="canonical-observations",
                topic="canonical/#",
                description="Mediated observations in the unified vocabulary",
                provides=list(CANONICAL_PROPERTIES.values()),
            )
        )
        self.services.register(
            SemanticService(
                name="derived-events",
                topic="derived/#",
                description="CEP-derived environmental process and IK indication events",
                provides=[DROUGHT.DroughtEvent],
            )
        )
        self.services.register(
            SemanticService(
                name="ontology-query",
                topic="query/ontology",
                description="SPARQL-like query answering over the unified ontology and annotations",
                provides=[],
            )
        )

    # ------------------------------------------------------------------ #
    # rule management (inference engine configuration)
    # ------------------------------------------------------------------ #

    def add_cep_rules(self, rules: Iterable[CepRule]) -> None:
        """Register CEP rules (sensor-side or IK-derived)."""
        self.cep.add_rules(rules)

    # ------------------------------------------------------------------ #
    # the processing path
    # ------------------------------------------------------------------ #

    def set_publisher(self, publisher: Optional[EventPublisher]) -> None:
        """Attach the callable receiving canonical events (publish stage).

        Called by the middleware facade once the application abstraction
        layer exists; a stand-alone layer keeps ``None`` and skips broker
        publication.
        """
        self._publish_stage.publisher = publisher

    def process_record(self, record: ObservationRecord) -> Optional[Event]:
        """Run one raw record through the staged pipeline.

        Returns the canonical :class:`~repro.cep.event.Event` fed to the CEP
        engine, or ``None`` when a stage dropped the record.
        """
        self.statistics.records_in += 1
        context = self.pipeline.run(IngestionContext(record))
        if self.persistence is not None:
            self.persistence.commit()
            self.persistence.maybe_checkpoint()
        return context.event if context.dropped_by is None else None

    def process_records(self, records: Iterable[ObservationRecord]) -> List[Event]:
        """Process records one by one, returning the canonical events."""
        events = []
        for record in records:
            event = self.process_record(record)
            if event is not None:
                events.append(event)
        return events

    def process_batch(self, records: Iterable[ObservationRecord]) -> List[Event]:
        """Process a batch stage-major through the pipeline.

        Equivalent output to :meth:`process_records`, but mediation runs as
        one batch call, annotation triples are committed with a single
        ``graph.add_all`` and the CEP engine is flushed once after all
        records have been published.
        """
        contexts = [IngestionContext(record) for record in records]
        self.statistics.records_in += len(contexts)
        survivors = self.pipeline.run_batch(contexts)
        if self.persistence is not None:
            # the batch's durability point: one commit (fsync per policy)
            # after the fan-out threads have joined, then roll any shard
            # whose WAL outgrew the snapshot interval
            self.persistence.commit()
            self.persistence.maybe_checkpoint()
        return [context.event for context in survivors]

    def ingest_batch(self, records: Iterable[ObservationRecord]) -> IngestReceipt:
        """:meth:`process_batch` with a typed receipt — the unified surface.

        The receipt iterates as the accepted events (the old ``List[Event]``
        contract); ``rejected`` counts the records a pipeline stage dropped
        during *this* call (delta of the stage drop counters, each record
        journaled to the dead-letter file), and ``quarantined`` counts
        poison batches the process backend gave up replaying.
        """
        dropped_before = self._dropped_total()
        quarantined_before = self._quarantined_total()
        events = self.process_batch(records)
        return IngestReceipt(
            events,
            rejected=self._dropped_total() - dropped_before,
            quarantined=self._quarantined_total() - quarantined_before,
        )

    def _dropped_total(self) -> int:
        return sum(
            stage.dropped for stage in self.pipeline.statistics.stages.values()
        )

    def _quarantined_total(self) -> int:
        return int(getattr(self._backend, "quarantined", 0) or 0)

    def subscribe(
        self, pattern: str, handler: Callable[[DerivedEvent], None]
    ) -> None:
        """Subscribe ``handler`` to derived events matching a topic pattern.

        The stand-alone layer has no broker, so the unified ``subscribe``
        surface is served straight from the CEP engine, with the wire's
        MQTT-style pattern language: each derived event is matched as
        ``derived/<type>/<area>`` (``+`` one level, ``#`` the rest).
        """

        def listener(event: DerivedEvent) -> None:
            topic = f"derived/{event.event_type}/{event.area or 'unknown'}"
            if topic_matches(pattern, topic):
                handler(event)

        self.cep.on_derived_event(listener)

    # ------------------------------------------------------------------ #
    # reasoning and querying
    # ------------------------------------------------------------------ #

    @property
    def sharded(self) -> bool:
        """Whether the layer runs per-area graph partitions."""
        return self.store is not None

    @property
    def graphs(self) -> List[Graph]:
        """The graphs holding annotations: the partitions, or ``[graph]``."""
        if self.store is not None:
            return self.store.graphs
        return [self.graph]

    def triple_count(self) -> int:
        """Resident triples (summed across partitions when sharded)."""
        if self.store is not None:
            return self.store.triple_count()
        return len(self.graph)

    def materialize_inferences(self, full: bool = False):
        """Run the OWL/RDFS reasoner over ontology + annotations.

        Incremental over the triples added since the last run;
        ``full=True`` forces the from-scratch fixpoint.  Sharded layers
        materialise every partition and return the list of traces.
        """
        if self._backend is not None:
            return self._backend.materialize_inferences(full=full)
        return self.reasoner.materialize(full=full)

    def query(self, text: str, entail: bool = False) -> QueryResult:
        """Run a SPARQL-like query over the shared graph / the partitions.

        Evaluation goes through the graph's shared cost-based planner
        (join-order selection, filter pushdown, version-keyed plan / result
        caches), so repeated dashboard and DEWS queries over an unchanged
        graph skip parse, plan and evaluation entirely.  With ``entail``
        the reasoner's closure is topped up (incrementally) first, so the
        answers also reflect inferred triples.

        A sharded layer scatter-gathers: the query is broadcast to every
        partition (each served through its own planner and caches — an
        untouched partition answers from its result cache) and the decoded
        solutions are merged bag-exactly with the single-graph oracle for
        in-contract queries; with ``entail`` every
        partition's closure is topped up first, which only costs work on
        the partitions that actually changed.
        """
        if self._backend is not None:
            return self._backend.query(text, entail=entail)
        if entail:
            return self.reasoner.query(text)
        return query(self.graph, text)

    def _view_seeds(self, name: Optional[str], text: str) -> Optional[List]:
        """Recovered snapshot rows for one view per shard, where still valid.

        A stored row set seeds the view only while the partition is
        byte-for-byte the snapshot's state: nothing replayed from the WAL
        tail, nothing journalled since, and the stored query text matches
        the registration.  Anything else re-materializes from the graph.
        """
        if self.persistence is None or not self.persistence.shards:
            return None
        seeds = []
        for shard_persistence in self.persistence.shards:
            wal = shard_persistence.wal
            if wal is None or wal.records != 0:
                seeds.append(None)
            else:
                seeds.append(
                    shard_persistence.view_seed(
                        name if name is not None else text, text
                    )
                )
        return seeds

    def register_standing(
        self, text: str, name: Optional[str] = None
    ) -> StandingViewHandle:
        """Register ``text`` as a delta-maintained standing view.

        Single-graph layers register one view on the shared graph; sharded
        layers register one per partition (a write to one district then
        folds only that partition's delta in).  :meth:`query` serves the
        registered query from the materialized views from then on.
        Returns a :class:`~repro.core.api.StandingViewHandle` — still a
        list of the underlying view objects (parent-side handles for the
        process backend), plus the registration's identity.
        """
        if self._backend is not None:
            if self.shard_backend == "process":
                # the workers consult their own recovered snapshots for seeds
                views = self._backend.register_standing(text, name=name)
            else:
                views = self._backend.register_standing(
                    text, name=name, seeds=self._view_seeds(name, text)
                )
        else:
            seeds = self._view_seeds(name, text)
            views = [
                planner_for(self.graph).register_standing(
                    self.graph, text, name=name, seed=seeds[0] if seeds else None
                )
            ]
        if self.persistence is not None:
            self.persistence.record_standing(name, text)
        return StandingViewHandle(views, name=name, text=text)

    def standing_views(self) -> List:
        """Every live standing view across the layer's graphs."""
        if self._backend is not None:
            return self._backend.standing_views()
        return list(planner_for(self.graph).standing_views())

    def refresh_standing_views(self) -> None:
        """Fold pending graph deltas into every standing view.

        Called by the middleware facade after each ingest so push-mode
        subscribers (CEP windows over broker-delivered view deltas) see
        changes without anyone querying; a no-op for clean views.  The
        process backend drains only the shards written since the last
        refresh and ships their deltas over the wire in one round.
        """
        if self._backend is not None:
            self._backend.refresh_views()
            return
        for view in self.standing_views():
            view.refresh()

    @property
    def query_planner(self) -> QueryPlanner:
        """The shared planner for the single graph (``shards == 1`` only)."""
        if self.store is not None:
            raise RuntimeError(
                "a sharded layer has one planner per partition; "
                "use planner_statistics() or planner_for(shard_graph)"
            )
        return planner_for(self.graph)

    def planner_statistics(self) -> PlannerStatistics:
        """Aggregated planner / cache counters across the layer's graphs."""
        if self._backend is not None:
            return self._backend.planner_statistics()
        totals = PlannerStatistics()
        stats = planner_for(self.graph).statistics
        totals.queries += stats.queries
        totals.parses += stats.parses
        totals.plans_built += stats.plans_built
        totals.plan_hits += stats.plan_hits
        totals.plan_invalidations += stats.plan_invalidations
        totals.result_hits += stats.result_hits
        totals.result_misses += stats.result_misses
        totals.result_invalidations += stats.result_invalidations
        totals.view_hits += stats.view_hits
        return totals

    def standing_view_statistics(self) -> Dict[str, object]:
        """Observability snapshot of the maintained standing views."""
        views = [view.stats() for view in self.standing_views()]
        return {
            "views": views,
            "delta_updates": sum(v["delta_updates"] for v in views),
            "full_refreshes": sum(v["full_refreshes"] for v in views),
        }

    def sharding_statistics(self) -> Optional[Dict[str, object]]:
        """Partition layout counters, or ``None`` for a single-graph layer."""
        if self.store is None:
            return None
        return {
            "shards": self.store.num_shards,
            "backend": self.shard_backend,
            "replicated_triples": self.store.replicated_triples,
            "shard_sizes": self.store.shard_sizes(),
            "parallel_batches": self._annotate_stage.parallel_batches,
        }

    def shard_statistics(self) -> List[Dict[str, object]]:
        """Per-partition health: size, queue depth, latency, pid, restarts.

        A single-graph layer reports itself as one inline "shard" so
        dashboards can consume the same shape everywhere.
        """
        if self._backend is not None:
            return self._backend.shard_statistics()
        return [
            {
                "shard": 0,
                "triples": len(self.graph),
                "queue_depth": 0,
                "last_batch_latency": 0.0,
                "pid": os.getpid(),
                "restarts": 0,
                "state": "up",
                "breaker": "closed",
                "trips": 0,
                "pending_batches": 0,
            }
        ]

    def health(self) -> HealthReport:
        """Supervision snapshot: per-shard state, breaker, dead-letter depth.

        Shard states are ``up`` / ``down`` / ``restarting`` / ``tripped``
        (the latter two only for the process backend, the one place a
        partition can fail independently of this interpreter).  With
        persistence enabled the report also carries the durable store's
        per-shard generation / WAL depth under ``"persistence"``.  The
        return is a :class:`~repro.core.api.HealthReport` — still a dict,
        JSON-safe as-is.
        """
        if self._backend is not None:
            report = dict(self._backend.health())
        else:
            report = {
                "backend": "single",
                "shards": [
                    {
                        "shard": 0,
                        "state": "up",
                        "breaker": "closed",
                        "restarts": 0,
                        "trips": 0,
                        "pending_batches": 0,
                        "pid": os.getpid(),
                        "last_error": None,
                    }
                ],
                "degraded_reads": False,
                "rpc_timeout": None,
                "quarantined_batches": 0,
            }
        report["validation_rejects"] = self.statistics.validation_rejects
        report["dead_letter_depth"] = len(self.dead_letter)
        report["dead_letter_path"] = (
            str(self.dead_letter.path) if self.dead_letter.path is not None else None
        )
        report["healthy"] = all(
            entry["state"] == "up" for entry in report["shards"]
        )
        if self.persistence is not None:
            report["persistence"] = self.persistence.health()
        return HealthReport(report)

    def checkpoint(self) -> None:
        """Force a durable snapshot of every shard (no-op without persistence)."""
        if self._backend is not None and self.shard_backend == "process":
            self._backend.checkpoint_all()
        elif self.persistence is not None:
            self.persistence.checkpoint_all()

    def close(self) -> None:
        """Shut down the shard backend and the persistence layer (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._backend is not None:
            self._backend.close()
            self._executor = None
        if self.persistence is not None:
            self.persistence.close()

    def __enter__(self) -> "OntologySegmentLayer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (
            f"<OntologySegmentLayer shards={self.shards} "
            f"triples={self.triple_count()}, "
            f"rules={len(self.cep.rules)}, services={len(self.services)}>"
        )
