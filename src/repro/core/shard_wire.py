"""Wire encoding for the process-shard RPC boundary.

Worker processes speak a tiny binary protocol over a duplex pipe.  The
payload codec is the same varint/term framing the WAL and snapshots use
(:mod:`repro.persistence.codec`): observations, solution rows and view
deltas all travel as length-prefixed strings, doubles and self-describing
terms.  Control-plane payloads (statistics) travel as JSON strings — they
are read by humans and dashboards, not replayed into graphs.

Every message is ``opcode byte + body``; the pipe itself length-prefixes
each message, so no outer framing is needed here.
"""

from __future__ import annotations

import json
import math
import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mediator import CanonicalObservation
from repro.persistence.codec import (
    decode_string,
    decode_term,
    encode_string,
    encode_term_into,
    read_uvarint,
    write_uvarint,
)
from repro.semantics.rdf.term import Term, Variable
from repro.semantics.sparql.bindings import Bindings, bindings_from_mapping

_DOUBLE = struct.Struct("<d")

# ------------------------------------------------------------------ #
# opcodes (parent -> worker requests; worker echoes the opcode back)
# ------------------------------------------------------------------ #

OP_HELLO = 0x01
OP_INGEST = 0x02
OP_REASON = 0x03
OP_QUERY_ASK = 0x04
OP_QUERY_FULL = 0x05
OP_REGISTER_VIEW = 0x06
OP_REFRESH_VIEWS = 0x07
OP_STATS = 0x08
OP_MATERIALIZE = 0x09
OP_REPLICATE = 0x0A
OP_RETRACT_SUBJECT = 0x0B
OP_DUMP = 0x0C
OP_CLOSE = 0x0D
OP_KILL = 0x0E
OP_PING = 0x0F
OP_CHECKPOINT = 0x10
OP_VIEW_ROWS = 0x11
OP_FAULT = 0x12
OP_ERROR = 0x7F


def frame(opcode: int, body: bytes = b"") -> bytes:
    """One wire message: opcode byte + body."""
    return bytes([opcode]) + body


def unframe(message: bytes) -> Tuple[int, bytes]:
    """Split a wire message into ``(opcode, body)``."""
    if not message:
        raise ValueError("empty wire message")
    return message[0], message[1:]


# ------------------------------------------------------------------ #
# scalar helpers
# ------------------------------------------------------------------ #


def _write_double(buffer: bytearray, value: float) -> None:
    buffer += _DOUBLE.pack(value)


def _read_double(data: bytes, offset: int) -> Tuple[float, int]:
    if offset + 8 > len(data):
        raise ValueError("truncated double")
    return _DOUBLE.unpack_from(data, offset)[0], offset + 8


def _write_optional_string(buffer: bytearray, text: Optional[str]) -> None:
    if text is None:
        buffer.append(0)
    else:
        buffer.append(1)
        encode_string(buffer, text)


def _read_optional_string(data: bytes, offset: int) -> Tuple[Optional[str], int]:
    if offset >= len(data):
        raise ValueError("truncated optional string")
    flag = data[offset]
    offset += 1
    if not flag:
        return None, offset
    return decode_string(data, offset)


# ------------------------------------------------------------------ #
# canonical observations
# ------------------------------------------------------------------ #


def encode_observation_into(buffer: bytearray, obs: CanonicalObservation) -> None:
    """Append the wire encoding of one canonical observation."""
    encode_string(buffer, obs.property_key)
    _write_double(buffer, float(obs.value))
    encode_string(buffer, obs.unit)
    _write_double(buffer, float(obs.timestamp))
    encode_string(buffer, obs.source_id)
    encode_string(buffer, obs.source_kind)
    if obs.location is None:
        buffer.append(0)
    else:
        buffer.append(1)
        _write_double(buffer, float(obs.location[0]))
        _write_double(buffer, float(obs.location[1]))
    _write_optional_string(buffer, obs.area)
    encode_string(buffer, obs.original_term)
    _write_optional_string(buffer, obs.original_unit)
    encode_string(buffer, obs.alignment_method)
    _write_double(buffer, float(obs.alignment_confidence))
    # metadata values are JSON-representable by construction (the mediator
    # folds vendor fields into plain strings/numbers)
    encode_string(buffer, json.dumps(obs.metadata, sort_keys=True) if obs.metadata else "")


def decode_observation(data: bytes, offset: int) -> Tuple[CanonicalObservation, int]:
    """Decode one canonical observation at ``offset``."""
    property_key, offset = decode_string(data, offset)
    value, offset = _read_double(data, offset)
    unit, offset = decode_string(data, offset)
    timestamp, offset = _read_double(data, offset)
    source_id, offset = decode_string(data, offset)
    source_kind, offset = decode_string(data, offset)
    if offset >= len(data):
        raise ValueError("truncated observation")
    has_location = data[offset]
    offset += 1
    location: Optional[Tuple[float, float]] = None
    if has_location:
        lat, offset = _read_double(data, offset)
        lon, offset = _read_double(data, offset)
        location = (lat, lon)
    area, offset = _read_optional_string(data, offset)
    original_term, offset = decode_string(data, offset)
    original_unit, offset = _read_optional_string(data, offset)
    alignment_method, offset = decode_string(data, offset)
    alignment_confidence, offset = _read_double(data, offset)
    metadata_json, offset = decode_string(data, offset)
    metadata: Dict[str, object] = json.loads(metadata_json) if metadata_json else {}
    return (
        CanonicalObservation(
            property_key=property_key,
            value=value,
            unit=unit,
            timestamp=timestamp,
            source_id=source_id,
            source_kind=source_kind,
            location=location,
            area=area,
            original_term=original_term,
            original_unit=original_unit,
            alignment_method=alignment_method,
            alignment_confidence=alignment_confidence,
            metadata=metadata,
        ),
        offset,
    )


def encode_ingest(pairs: Sequence[Tuple[CanonicalObservation, int]], reason: bool) -> bytes:
    """INGEST body: reason flag + (annotation index, observation) pairs."""
    buffer = bytearray()
    buffer.append(1 if reason else 0)
    write_uvarint(buffer, len(pairs))
    for obs, index in pairs:
        write_uvarint(buffer, index)
        encode_observation_into(buffer, obs)
    return bytes(buffer)


def decode_ingest(body: bytes) -> Tuple[List[Tuple[CanonicalObservation, int]], bool]:
    """Decode an INGEST body back into (observation, index) pairs."""
    if not body:
        raise ValueError("truncated ingest body")
    reason = bool(body[0])
    count, offset = read_uvarint(body, 1)
    pairs: List[Tuple[CanonicalObservation, int]] = []
    for _ in range(count):
        index, offset = read_uvarint(body, offset)
        obs, offset = decode_observation(body, offset)
        pairs.append((obs, index))
    return pairs, reason


# ------------------------------------------------------------------ #
# solution rows (query results, view rows, view deltas)
# ------------------------------------------------------------------ #


def encode_rows_into(
    buffer: bytearray, variables: Sequence[Variable], rows: Sequence[Bindings]
) -> None:
    """Append a variable header + bindings encoded as (ordinal, term) pairs."""
    ordinals = {var: i for i, var in enumerate(variables)}
    write_uvarint(buffer, len(variables))
    for var in variables:
        encode_string(buffer, var.name)
    write_uvarint(buffer, len(rows))
    for row in rows:
        write_uvarint(buffer, len(row))
        for var, term in row.items():
            write_uvarint(buffer, ordinals[var])
            encode_term_into(buffer, term)


def decode_rows(data: bytes, offset: int) -> Tuple[List[Variable], List[Bindings], int]:
    """Decode a variable header + rows; returns ``(variables, rows, offset)``."""
    var_count, offset = read_uvarint(data, offset)
    variables: List[Variable] = []
    for _ in range(var_count):
        name, offset = decode_string(data, offset)
        variables.append(Variable(name))
    row_count, offset = read_uvarint(data, offset)
    rows: List[Bindings] = []
    for _ in range(row_count):
        size, offset = read_uvarint(data, offset)
        mapping: Dict[Variable, Term] = {}
        for _ in range(size):
            ordinal, offset = read_uvarint(data, offset)
            term, offset = decode_term(data, offset)
            mapping[variables[ordinal]] = term
        rows.append(bindings_from_mapping(mapping))
    return variables, rows, offset


def encode_query_result(variables: Sequence[Variable], rows: Sequence[Bindings]) -> bytes:
    """A full query-result body."""
    buffer = bytearray()
    encode_rows_into(buffer, variables, rows)
    return bytes(buffer)


def decode_query_result(body: bytes) -> Tuple[List[Variable], List[Bindings]]:
    """Decode a full query-result body."""
    variables, rows, _ = decode_rows(body, 0)
    return variables, rows


def encode_view_deltas(deltas: Sequence[Tuple[str, bool, Sequence[Variable],
                                              Sequence[Bindings], Sequence[Bindings]]]) -> bytes:
    """REFRESH_VIEWS reply: (name, full_refresh, variables, added, removed) per view."""
    buffer = bytearray()
    write_uvarint(buffer, len(deltas))
    for name, full_refresh, variables, added, removed in deltas:
        encode_string(buffer, name)
        buffer.append(1 if full_refresh else 0)
        ordinals = {var: i for i, var in enumerate(variables)}
        write_uvarint(buffer, len(variables))
        for var in variables:
            encode_string(buffer, var.name)
        for rows in (added, removed):
            write_uvarint(buffer, len(rows))
            for row in rows:
                write_uvarint(buffer, len(row))
                for var, term in row.items():
                    write_uvarint(buffer, ordinals[var])
                    encode_term_into(buffer, term)
    return bytes(buffer)


def decode_view_deltas(
    body: bytes,
) -> List[Tuple[str, bool, List[Variable], List[Bindings], List[Bindings]]]:
    """Decode a REFRESH_VIEWS reply."""
    count, offset = read_uvarint(body, 0)
    out: List[Tuple[str, bool, List[Variable], List[Bindings], List[Bindings]]] = []
    for _ in range(count):
        name, offset = decode_string(body, offset)
        full_refresh = bool(body[offset])
        offset += 1
        var_count, offset = read_uvarint(body, offset)
        variables: List[Variable] = []
        for _ in range(var_count):
            var_name, offset = decode_string(body, offset)
            variables.append(Variable(var_name))
        sections: List[List[Bindings]] = []
        for _ in range(2):
            row_count, offset = read_uvarint(body, offset)
            rows: List[Bindings] = []
            for _ in range(row_count):
                size, offset = read_uvarint(body, offset)
                mapping: Dict[Variable, Term] = {}
                for _ in range(size):
                    ordinal, offset = read_uvarint(body, offset)
                    term, offset = decode_term(body, offset)
                    mapping[variables[ordinal]] = term
                rows.append(bindings_from_mapping(mapping))
            sections.append(rows)
        out.append((name, full_refresh, variables, sections[0], sections[1]))
    return out


# ------------------------------------------------------------------ #
# triples (REPLICATE) and control-plane JSON
# ------------------------------------------------------------------ #


def encode_triples(triples: Sequence[Tuple[Term, Term, Term]]) -> bytes:
    """REPLICATE body: a flat list of decoded triples."""
    buffer = bytearray()
    write_uvarint(buffer, len(triples))
    for s, p, o in triples:
        encode_term_into(buffer, s)
        encode_term_into(buffer, p)
        encode_term_into(buffer, o)
    return bytes(buffer)


def decode_triples(body: bytes) -> List[Tuple[Term, Term, Term]]:
    """Decode a REPLICATE body."""
    count, offset = read_uvarint(body, 0)
    triples: List[Tuple[Term, Term, Term]] = []
    for _ in range(count):
        s, offset = decode_term(body, offset)
        p, offset = decode_term(body, offset)
        o, offset = decode_term(body, offset)
        triples.append((s, p, o))
    return triples


def encode_json(payload: object) -> bytes:
    """Control-plane body: one JSON document."""
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def decode_json(body: bytes) -> object:
    """Decode a control-plane JSON body."""
    return json.loads(body.decode("utf-8"))


def sanitize_number(value: float) -> float:
    """Clamp NaN/inf for JSON transport (statistics only)."""
    if isinstance(value, float) and not math.isfinite(value):
        return 0.0
    return value
