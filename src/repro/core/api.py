"""Typed result objects of the unified public embedding API.

The three embedding surfaces — :class:`~repro.core.middleware.SemanticMiddleware`,
:class:`~repro.core.ontology_layer.OntologySegmentLayer` and
:class:`~repro.dews.system.DroughtEarlyWarningSystem` — expose the same
six calls (``ingest_batch`` / ``query`` / ``register_standing`` /
``subscribe`` / ``health`` / ``statistics``) and return the types in this
module, so the serving gateway (and any other host) can sit on whichever
surface fits without per-class adapters.

Compatibility shape: :class:`IngestReceipt` and :class:`StandingViewHandle`
subclass ``list`` and :class:`HealthReport` subclasses ``dict``, because
years of call sites (and the equivalence-test suites) iterate the event
list, index the views, and subscript the health report.  The typed fields
are additive — old code keeps working unchanged, new code reads
``receipt.rejected`` instead of diffing statistics snapshots.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.cep.event import Event


class IngestReceipt(List["Event"]):
    """What one ``ingest_batch`` call did: the accepted events plus counts.

    Iterating / indexing yields the canonical events of the accepted
    records in arrival order (the old ``List[Event]`` contract).

    ``accepted``
        Records that survived every pipeline stage (== ``len(receipt)``).
    ``rejected``
        Records dropped by the mediate / validate stages this batch; each
        is journaled to the dead-letter file with a reason.
    ``quarantined``
        Poison *batches* the process backend gave up replaying during this
        call (0 everywhere else); their records are in the dead-letter
        journal, not in the graph.
    """

    __slots__ = ("accepted", "rejected", "quarantined")

    def __init__(
        self,
        events: Iterable["Event"] = (),
        rejected: int = 0,
        quarantined: int = 0,
    ):
        super().__init__(events)
        self.accepted = len(self)
        self.rejected = rejected
        self.quarantined = quarantined

    @property
    def events(self) -> List["Event"]:
        """The accepted canonical events (the receipt itself, as a list)."""
        return list(self)

    def to_payload(self) -> dict:
        """JSON-safe summary served by the gateway's ingest route."""
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "quarantined": self.quarantined,
        }

    def __repr__(self) -> str:
        return (
            f"<IngestReceipt accepted={self.accepted} "
            f"rejected={self.rejected} quarantined={self.quarantined}>"
        )


class HealthReport(dict):
    """A typed view over the layered health snapshot.

    Still a ``dict`` (every existing caller subscripts it; it JSON-encodes
    as-is on the wire), with properties for the fields operators actually
    branch on.
    """

    @property
    def healthy(self) -> bool:
        return bool(self.get("healthy", False))

    @property
    def backend(self) -> str:
        return str(self.get("backend", "unknown"))

    @property
    def shards(self) -> List[dict]:
        return list(self.get("shards", ()))

    @property
    def degraded_reads(self) -> bool:
        return bool(self.get("degraded_reads", False))

    @property
    def quarantined_batches(self) -> int:
        return int(self.get("quarantined_batches", 0))

    @property
    def validation_rejects(self) -> int:
        return int(self.get("validation_rejects", 0))

    @property
    def dead_letter_depth(self) -> int:
        return int(self.get("dead_letter_depth", 0))

    @property
    def persistence(self) -> Optional[dict]:
        """Durable-store state (path, per-shard generation / WAL depth),
        or ``None`` for an in-memory deployment."""
        return self.get("persistence")

    def __repr__(self) -> str:
        states = [entry.get("state") for entry in self.shards]
        return f"<HealthReport healthy={self.healthy} shards={states}>"


class StandingViewHandle(List[object]):
    """Handle to one registered standing view across the layer's graphs.

    Indexing / iterating yields the per-graph (or per-shard)
    :class:`~repro.semantics.sparql.views.StandingView` objects — the old
    ``List[StandingView]`` contract.  The handle adds the registration's
    identity, which is what wire clients address the view by.
    """

    __slots__ = ("name", "text", "push")

    def __init__(
        self,
        views: Iterable[object] = (),
        name: Optional[str] = None,
        text: str = "",
        push: bool = False,
    ):
        super().__init__(views)
        self.name = name
        self.text = text
        self.push = push

    @property
    def views(self) -> List[object]:
        """The underlying per-graph views (the handle itself, as a list)."""
        return list(self)

    @property
    def topic(self) -> Optional[str]:
        """The broker topic this view's deltas publish on (push mode)."""
        return f"views/{self.name}" if self.push and self.name else None

    def to_payload(self) -> dict:
        """JSON-safe summary served by the gateway's view routes."""
        return {
            "name": self.name,
            "query": self.text,
            "push": self.push,
            "topic": self.topic,
            "partitions": len(self),
        }

    def __repr__(self) -> str:
        return f"<StandingViewHandle {self.name!r} partitions={len(self)} push={self.push}>"
