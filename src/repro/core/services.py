"""Semantic service descriptions and registry.

The ontology segment layer of Fig. 3 contains a "semantic services
description module": applications and output channels discover what the
middleware can provide (canonical event streams, forecast feeds, query
endpoints) by matching on the ontology terms a service is described with,
rather than on hard-coded endpoint names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.ontologies.vocabulary import AFRICRID
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import RDF, RDFS
from repro.semantics.rdf.term import IRI, Literal
from repro.semantics.rdf.triple import Triple


@dataclass
class SemanticService:
    """One service exposed through the middleware.

    Attributes
    ----------
    name:
        Unique service name, e.g. ``"canonical-observations"``.
    topic:
        Broker topic (pattern) on which the service publishes.
    description:
        Human-readable description.
    provides:
        Ontology IRIs describing what the service delivers (canonical
        property classes, forecast classes, ...).
    layer:
        Which middleware layer offers the service.
    """

    name: str
    topic: str
    description: str
    provides: List[IRI] = field(default_factory=list)
    layer: str = "ontology-segment"

    def iri(self) -> IRI:
        """The service's IRI in the instance namespace."""
        return AFRICRID[f"service/{self.name}"]


class ServiceRegistry:
    """Registry of semantic services, materialised into the shared graph(s).

    A sharded ontology segment layer passes every partition graph: the
    catalogue triples are replicated, like the ontology axioms, so a
    service description is discoverable from any partition a federated
    query lands on.
    """

    def __init__(self, graph: Optional[Union[Graph, Sequence[Graph]]] = None):
        if graph is None:
            graphs: List[Graph] = []
        elif isinstance(graph, Graph):
            graphs = [graph]
        else:
            graphs = list(graph)
        self.graphs = graphs
        #: The primary graph (kept for existing single-graph callers).
        self.graph = graphs[0] if graphs else None
        self._services: Dict[str, SemanticService] = {}

    def register(self, service: SemanticService) -> SemanticService:
        """Register (or replace) a service description."""
        self._services[service.name] = service
        iri = service.iri()
        for graph in self.graphs:
            graph.add(Triple(iri, RDF.type, AFRICRID.SemanticService))
            graph.add(Triple(iri, RDFS.label, Literal(service.name)))
            graph.add(Triple(iri, RDFS.comment, Literal(service.description)))
            graph.add(Triple(iri, AFRICRID.publishesOn, Literal(service.topic)))
            for provided in service.provides:
                graph.add(Triple(iri, AFRICRID.providesConcept, provided))
        return service

    def unregister(self, name: str) -> bool:
        """Remove a service by name; returns whether it existed."""
        service = self._services.pop(name, None)
        if service is None:
            return False
        for graph in self.graphs:
            graph.remove_matching(subject=service.iri())
        return True

    def get(self, name: str) -> Optional[SemanticService]:
        """Look up a service by name."""
        return self._services.get(name)

    def all(self) -> List[SemanticService]:
        """All registered services, sorted by name."""
        return [self._services[name] for name in sorted(self._services)]

    def find_providing(self, concept: IRI) -> List[SemanticService]:
        """Services whose description includes ``concept``."""
        return [
            service
            for service in self.all()
            if concept in service.provides
        ]

    def find_by_layer(self, layer: str) -> List[SemanticService]:
        """Services offered by a given middleware layer."""
        return [service for service in self.all() if service.layer == layer]

    def __len__(self) -> int:
        return len(self._services)
