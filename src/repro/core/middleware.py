"""The semantic middleware facade.

:class:`SemanticMiddleware` wires the three layers of Fig. 3 together over a
shared broker and simulation scheduler and exposes the handful of calls the
DEWS application and the examples need:

* feed raw records in (directly, or by attaching a cloud store through the
  interface protocol layer),
* get canonical and derived events out (broker subscriptions via the
  application abstraction layer),
* query the unified ontology and the annotations,
* register CEP rules (sensor-side process rules and IK-derived rules).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from repro.cep.engine import CepEngine
from repro.cep.event import DerivedEvent, Event
from repro.cep.rules import CepRule
from repro.core.api import HealthReport, IngestReceipt, StandingViewHandle
from repro.core.application_layer import ApplicationAbstractionLayer
from repro.core.interface_layer import InterfaceProtocolLayer
from repro.core.mediator import Mediator
from repro.core.ontology_layer import OntologySegmentLayer
from repro.ik.knowledge_base import IndigenousKnowledgeBase
from repro.ik.rules import derive_cep_rules, sensor_process_rules
from repro.ontologies.library import OntologyLibrary
from repro.streams.broker import Broker, Message, Subscription
from repro.streams.messages import ObservationRecord
from repro.streams.scheduler import SimulationScheduler


@dataclass
class MiddlewareConfig:
    """Configuration knobs of the middleware facade."""

    #: Whether to write RDF annotations for every observation.
    annotate_observations: bool = True
    #: Whether to install the default sensor-side process-detection rules.
    install_sensor_rules: bool = True
    #: Whether to derive and install CEP rules from the IK knowledge base.
    install_ik_rules: bool = True
    #: Minimum distinct observers for IK rule corroboration.
    ik_min_observers: int = 2
    #: Feed every canonical observation to the CEP engine.  Applications
    #: processing high-frequency mote streams (the DEWS) usually disable
    #: this and feed daily per-district aggregates instead via
    #: :meth:`SemanticMiddleware.inject_event`; IK sightings always reach
    #: the engine.
    cep_per_record: bool = True
    #: Keep the reasoner's closure current inside the ingestion pipeline:
    #: after each record / batch is annotated, the ``reason`` stage tops
    #: the materialisation up incrementally (cost proportional to the
    #: batch, not the graph).  Off by default — entailment queries top up
    #: lazily, just as incrementally.
    reason_per_batch: bool = False
    #: Per-hop broker delivery latency in simulated seconds.
    broker_latency: float = 0.05
    #: Cloud polling interval of the interface protocol layer.
    cloud_poll_interval: float = 900.0
    #: Number of per-area graph partitions in the ontology segment layer.
    #: ``1`` keeps the original single shared graph; with more, records are
    #: routed by district to per-shard graphs (own dictionary, reasoner and
    #: planner caches, ontology axioms replicated), batches fan out over a
    #: worker pool, and queries federate scatter-gather across partitions.
    shards: int = 1
    #: Worker threads for the sharded batch fan-out (``None`` = one per
    #: shard, capped at 8; ``0`` = run per-shard work inline).  Only
    #: meaningful for the ``inline`` shard backend.
    shard_workers: Optional[int] = None
    #: Shard execution model: ``"inline"`` (per-shard graphs in this
    #: process) or ``"process"`` (one worker process per shard —
    #: shared-nothing multi-core scale-out).  ``None`` defers to the
    #: ``REPRO_SHARD_BACKEND`` environment variable, defaulting to inline.
    shard_backend: Optional[str] = None
    #: Directory for durable state (per-shard WAL + snapshots).  ``None``
    #: keeps the middleware purely in-memory; a directory that already
    #: holds a persisted store is *recovered* on construction — graphs,
    #: closures and standing views come back, and push-mode views are
    #: re-wired to the broker.
    data_dir: Optional[str] = None
    #: WAL durability policy: ``"always"`` (fsync per record), ``"batch"``
    #: (fsync once per ingest batch — the default) or ``"never"``.
    wal_fsync: str = "batch"
    #: WAL records per shard segment before the post-batch checkpoint
    #: rolls a fresh snapshot and truncates the log.
    snapshot_interval: int = 50_000
    #: Deadline (seconds) for every RPC to a shard worker process; a
    #: worker that misses it is declared hung, killed and restarted from
    #: its snapshot + WAL.  ``None`` defers to ``REPRO_SHARD_RPC_TIMEOUT``,
    #: defaulting to 30 s.  Process backend only.
    shard_rpc_timeout: Optional[float] = None
    #: Consecutive failed restarts of one shard before its circuit
    #: breaker trips and the shard is declared unavailable.
    shard_restart_budget: int = 3
    #: Base of the exponential backoff between restart attempts (seconds).
    shard_restart_backoff: float = 0.1
    #: Replays of an in-flight batch after a worker crash before the batch
    #: is declared poisonous and quarantined to the dead-letter journal.
    replay_budget: int = 2
    #: Serve *partial* federated query results (marked ``degraded`` with
    #: the missing shards listed) when a shard's breaker is open, instead
    #: of raising :class:`repro.core.faults.ShardUnavailableError`.
    degraded_reads: bool = False
    #: Ingest batches parked per tripped shard awaiting recovery before
    #: further ingest for that shard raises.
    pending_queue_limit: int = 32
    #: Deterministic fault-injection plan (a
    #: :class:`repro.core.faults.FaultPlan` or its compact string form).
    #: ``None`` defers to ``REPRO_FAULT_PLAN`` / ``REPRO_FAULT_SEED``;
    #: normal operation leaves all three unset.
    fault_plan: Optional[object] = None


class SemanticMiddleware:
    """The assembled three-tier semantic middleware.

    Parameters
    ----------
    scheduler:
        The simulation scheduler shared with the physical layer; a fresh
        one is created when omitted (fine for purely record-driven use).
    knowledge_base:
        The community IK knowledge base used for annotation and rules.
    library:
        A pre-built ontology library (building one takes ~100 ms; tests and
        benchmarks that construct many middleware instances share one).
    mediator:
        Custom mediator, e.g. the passthrough mediator for the ablation.
    config:
        Behavioural knobs, see :class:`MiddlewareConfig`.
    """

    def __init__(
        self,
        scheduler: Optional[SimulationScheduler] = None,
        knowledge_base: Optional[IndigenousKnowledgeBase] = None,
        library: Optional[OntologyLibrary] = None,
        mediator: Optional[Mediator] = None,
        config: Optional[MiddlewareConfig] = None,
    ):
        self.config = config or MiddlewareConfig()
        self.scheduler = scheduler or SimulationScheduler()
        self.broker = Broker(
            scheduler=self.scheduler, delivery_latency=self.config.broker_latency
        )
        self.knowledge_base = knowledge_base or IndigenousKnowledgeBase()
        self.ontology_layer = OntologySegmentLayer(
            library=library,
            knowledge_base=self.knowledge_base,
            mediator=mediator,
            annotate=self.config.annotate_observations,
            cep_engine=CepEngine(),
            cep_per_record=self.config.cep_per_record,
            reason_per_batch=self.config.reason_per_batch,
            shards=self.config.shards,
            shard_workers=self.config.shard_workers,
            shard_backend=self.config.shard_backend,
            data_dir=self.config.data_dir,
            wal_fsync=self.config.wal_fsync,
            snapshot_interval=self.config.snapshot_interval,
            shard_rpc_timeout=self.config.shard_rpc_timeout,
            shard_restart_budget=self.config.shard_restart_budget,
            shard_restart_backoff=self.config.shard_restart_backoff,
            replay_budget=self.config.replay_budget,
            degraded_reads=self.config.degraded_reads,
            pending_queue_limit=self.config.pending_queue_limit,
            fault_plan=self.config.fault_plan,
        )
        self.application_layer = ApplicationAbstractionLayer(
            self.ontology_layer, self.broker
        )
        # standing views registered in push mode: refreshed after every
        # ingest so their deltas reach broker subscribers unprompted
        self._push_views: List = []
        # the pipeline's publish stage hands canonical events to the
        # application abstraction layer
        self.ontology_layer.set_publisher(self.application_layer.publish_event)
        self.interface_layer: Optional[InterfaceProtocolLayer] = None

        if self.config.install_sensor_rules:
            self.ontology_layer.add_cep_rules(sensor_process_rules())
        if self.config.install_ik_rules:
            self.ontology_layer.add_cep_rules(
                derive_cep_rules(
                    self.knowledge_base, min_observers=self.config.ik_min_observers
                )
            )
        if self.ontology_layer.recovered:
            self._rewire_recovered_push_views()

    def _rewire_recovered_push_views(self) -> None:
        # the ontology layer re-registered every persisted standing view
        # during recovery, but broker wiring is this facade's concern:
        # re-subscribe the push-mode ones so their deltas flow again
        persistence = self.ontology_layer.persistence
        pushed = {
            registration["name"]
            for registration in persistence.standing_registrations()
            if registration["push"] and registration["name"] is not None
        }
        if not pushed:
            return
        for view in self.ontology_layer.standing_views():
            if view.name in pushed:
                topic = f"views/{view.name}"

                def publish(delta, _topic=topic):
                    self.broker.publish(_topic, delta)

                view.subscribe(publish)
                self._push_views.append(view)

    # ------------------------------------------------------------------ #
    # wiring to the physical layer
    # ------------------------------------------------------------------ #

    def attach_cloud_store(self, cloud_store) -> InterfaceProtocolLayer:
        """Attach a cloud store; the interface layer polls it periodically.

        Each poll's records are ingested as one batch so the staged
        pipeline can amortise mediation, annotation and CEP work.
        """
        self.interface_layer = InterfaceProtocolLayer(
            cloud_store,
            batch_sink=self.ingest_batch,
            broker=self.broker,
            scheduler=self.scheduler,
            poll_interval=self.config.cloud_poll_interval,
            on_poll=self._after_poll,
        )
        return self.interface_layer

    def _after_poll(self, records) -> None:
        # even an empty poll refreshes the push-mode standing views, so
        # absence-style subscribers observe quiet cycles too
        self._refresh_push_views()

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #

    def ingest_record(self, record: ObservationRecord) -> Optional[Event]:
        """Push one raw record through the staged ingestion pipeline.

        The pipeline mediates, validates, annotates, publishes the
        canonical event on the broker and feeds the CEP engine.
        """
        event = self.ontology_layer.process_record(record)
        if self._push_views:
            self._refresh_push_views()
        return event

    def ingest_records(self, records: Iterable[ObservationRecord]) -> List[Event]:
        """Push raw records through the pipeline one at a time."""
        events = []
        for record in records:
            event = self.ingest_record(record)
            if event is not None:
                events.append(event)
        return events

    def ingest_batch(self, records: Iterable[ObservationRecord]) -> IngestReceipt:
        """Push a batch of raw records through the pipeline stage-major.

        Produces the same events as :meth:`ingest_records` while amortising
        per-record overhead: one batched mediation call, one
        ``graph.add_all`` annotation commit and a deferred CEP flush after
        every record of the batch has been published.  Returns an
        :class:`~repro.core.api.IngestReceipt` — still the list of accepted
        canonical events, plus accepted / rejected / quarantined counts.
        """
        receipt = self.ontology_layer.ingest_batch(records)
        if self._push_views:
            self._refresh_push_views()
        return receipt

    def inject_event(self, event: Event) -> List[DerivedEvent]:
        """Feed an already-canonical event directly to the CEP engine.

        Used by applications that aggregate canonical observations (e.g. to
        daily per-district means) before pattern detection.
        """
        return self.ontology_layer.cep.process(event)

    # ------------------------------------------------------------------ #
    # standing views
    # ------------------------------------------------------------------ #

    def register_standing(self, text: str, name: Optional[str] = None, push: bool = False):
        """Register a SPARQL query as a delta-maintained standing view.

        From then on :meth:`query` serves ``text`` from the materialized
        view(s): each ingest folds its delta into the affected graph /
        shard in O(|delta|) instead of invalidating the result cache.

        With ``push=True`` the views are also refreshed after every ingest
        and their itemised :class:`~repro.semantics.sparql.views.ViewDelta`
        payloads published on the ``views/<name>`` broker topic, so CEP
        windows and dashboards can follow the standing result without
        re-polling it.  Returns a
        :class:`~repro.core.api.StandingViewHandle` — still the list of
        underlying per-graph views, plus the registration's name / query /
        topic for wire clients.
        """
        view_name = name or f"standing-{len(self._push_views) + 1}"
        views = self.ontology_layer.register_standing(text, name=view_name)
        if push:
            topic = f"views/{view_name}"

            def publish(delta, _topic=topic):
                self.broker.publish(_topic, delta)

            for view in views:
                view.subscribe(publish)
            self._push_views.extend(views)
        persistence = self.ontology_layer.persistence
        if persistence is not None:
            # upgrade the layer's record with the push flag so a restart
            # re-wires the broker subscription too
            persistence.record_standing(view_name, text, push=push)
        return StandingViewHandle(views, name=view_name, text=text, push=push)

    def _refresh_push_views(self) -> None:
        for view in self._push_views:
            view.refresh()

    def inject_events(self, events: Iterable[Event]) -> List[DerivedEvent]:
        """Feed a batch of already-canonical events to the CEP engine."""
        return self.ontology_layer.cep.process_many(events)

    # ------------------------------------------------------------------ #
    # the API applications use (delegates to the application layer)
    # ------------------------------------------------------------------ #

    def subscribe(
        self,
        pattern: str,
        handler: Callable[[Message], None],
        subscriber_name: str = "application",
    ) -> Subscription:
        """Subscribe to any broker topic pattern — the unified surface.

        ``handler`` receives the full :class:`~repro.streams.broker.Message`
        (topic, payload, timestamp, headers), because a pattern with
        wildcards can match many topics and subscribers need to know which
        one fired.  Topics of interest: ``canonical/<property>/<area>``,
        ``derived/<type>/<area>``, ``views/<name>`` (push-mode view
        deltas).  The typed helpers below unwrap the payload for the
        common cases.
        """
        return self.broker.subscribe(pattern, handler, subscriber_name=subscriber_name)

    def subscribe_property(self, property_key: str, handler, area: str = "+"):
        """Subscribe to canonical events of one property."""
        return self.application_layer.subscribe_property(property_key, handler, area)

    def subscribe_derived(self, event_type: str, handler, area: str = "+"):
        """Subscribe to CEP-derived events."""
        return self.application_layer.subscribe_derived(event_type, handler, area)

    def register_rule(self, rule: CepRule) -> None:
        """Register an additional CEP rule."""
        self.application_layer.register_rule(rule)

    def query(self, text: str, entail: bool = False):
        """Run a SPARQL-like query over the unified ontology + annotations.

        Queries are planned cost-based (join ordering from graph
        statistics, filter pushdown) and cached: a repeated query over an
        unchanged graph is served straight from the version-keyed result
        cache.  ``entail`` tops up the reasoner's closure first so the
        answers include inferred triples.  Sharded deployments federate the
        query scatter-gather across the per-area partitions, with untouched
        partitions answering from their own result caches.
        """
        return self.application_layer.query(text, entail=entail)

    def services(self):
        """The registered semantic services."""
        return self.application_layer.services()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release owned resources (worker pool, WAL file handles).

        Idempotent.  With persistence enabled this is the graceful-shutdown
        path: buffered WAL records are committed and the files released, so
        the next construction over the same ``data_dir`` recovers without
        replay loss.  Dropping the middleware without calling this models a
        crash — recovery then loses at most the uncommitted batch.
        """
        self.ontology_layer.close()

    def __enter__(self) -> "SemanticMiddleware":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def graph(self):
        """The shared RDF graph (ontology library + annotations).

        Under sharding (``config.shards > 1``) this is the pristine
        ontology axiom base: annotations live in the per-area partitions
        (``ontology_layer.graphs``), and queries federate across them.
        """
        return self.ontology_layer.graph

    def statistics(self) -> dict:
        """A merged statistics snapshot across the three layers."""
        stats = {
            "mediation": self.ontology_layer.mediator.statistics,
            "ontology_layer": self.ontology_layer.statistics,
            "pipeline": self.ontology_layer.pipeline.statistics,
            "application_layer": self.application_layer.statistics,
            "broker": self.broker.statistics,
            "cep": self.ontology_layer.cep.statistics,
            "query_planner": self.ontology_layer.planner_statistics(),
            "standing_views": self.ontology_layer.standing_view_statistics(),
            "graph_triples": self.ontology_layer.triple_count(),
        }
        sharding = self.ontology_layer.sharding_statistics()
        if sharding is not None:
            stats["sharding"] = sharding
        if self.interface_layer is not None:
            stats["interface_layer"] = self.interface_layer.statistics
        return stats

    def health(self) -> HealthReport:
        """Liveness and fault-tolerance state of the shard serving path.

        Per shard: process state (``up`` / ``down`` / ``tripped``), circuit
        breaker, restart and trip counts, parked ingest depth.  Top level:
        backend kind, degraded-read mode, RPC deadline, quarantined batch
        count, dead-letter journal depth, durable-store state (when
        persistence is on), and an overall ``healthy`` flag.
        """
        return self.ontology_layer.health()

    def __repr__(self) -> str:
        return (
            f"<SemanticMiddleware rules={len(self.ontology_layer.cep.rules)} "
            f"graph={len(self.graph)} triples>"
        )
