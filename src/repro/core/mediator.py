"""The mediator: eliminating data heterogeneity.

The mediator turns a raw :class:`~repro.streams.messages.ObservationRecord`
(vendor spelling, vendor unit, vendor schema) into a *canonical
observation*: canonical property key, value in canonical units, resolved
feature of interest and area.  This is the concrete mechanism behind the
paper's claim that the middleware "hide[s] the complexities and eliminate[s]
the data heterogeneity from multiple data sources".

Resolution steps per record:

1. **Naming heterogeneity** -- the term aligner maps the source's property
   spelling to a canonical property (exact / synonym / fuzzy match against
   the alignment ontology).
2. **Unit (cognitive) heterogeneity** -- the reported unit is converted to
   the canonical unit of the property's dimension; missing units are
   assumed canonical (and flagged).
3. **Schema heterogeneity** -- source-specific metadata fields are folded
   into a uniform metadata map keyed by the unified vocabulary.
4. IK sightings bypass property alignment (their "property" is an indicator
   key) but are still normalised and routed.

Unresolvable records are not silently dropped: they are returned as failed
outcomes with a reason, and counted, because the mediation benchmark (E1)
and the ablation benchmark (E9) need exactly those numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ik.indicators import INDICATOR_CATALOGUE
from repro.ontologies.alignment import AlignmentResult, TermAligner
from repro.ontologies.environment import CANONICAL_PROPERTIES
from repro.ontologies.units import UnitConversionError, canonical_symbol, to_canonical
from repro.sensors.modality import MODALITIES
from repro.streams.messages import ObservationRecord


@dataclass
class CanonicalObservation:
    """A fully mediated observation in the unified vocabulary."""

    property_key: str
    value: float
    unit: str
    timestamp: float
    source_id: str
    source_kind: str
    location: Optional[Tuple[float, float]] = None
    area: Optional[str] = None
    original_term: str = ""
    original_unit: Optional[str] = None
    alignment_method: str = "exact"
    alignment_confidence: float = 1.0
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def is_indicator_sighting(self) -> bool:
        """Whether this observation is an IK indicator sighting."""
        return self.source_kind == "ik_sighting"


@dataclass
class MediationOutcome:
    """The result of mediating one raw record."""

    record: ObservationRecord
    observation: Optional[CanonicalObservation]
    failure_reason: Optional[str] = None

    @property
    def resolved(self) -> bool:
        """Whether mediation produced a canonical observation."""
        return self.observation is not None


@dataclass
class MediatorStatistics:
    """Counters the heterogeneity benchmarks read off the mediator."""

    records_seen: int = 0
    resolved: int = 0
    unresolved_term: int = 0
    unresolved_unit: int = 0
    invalid_value: int = 0
    by_method: Dict[str, int] = field(default_factory=dict)

    @property
    def resolution_rate(self) -> float:
        """Fraction of records fully mediated."""
        if self.records_seen == 0:
            return 0.0
        return self.resolved / self.records_seen


class Mediator:
    """Resolves heterogeneous raw records into canonical observations.

    Parameters
    ----------
    aligner:
        The term aligner to use; pass one with ``fuzzy_threshold=1.0`` and
        no synonyms to emulate the "no semantic mediation" ablation.
    area_resolver:
        Optional callable mapping a record to a district / area name
        (defaults to using the record's metadata or the source id prefix).
    strict_units:
        When true, records whose unit cannot be interpreted are rejected;
        when false the value is passed through unchanged (and flagged),
        which is what a naive standards-only pipeline would do.
    """

    def __init__(
        self,
        aligner: Optional[TermAligner] = None,
        area_resolver=None,
        strict_units: bool = True,
    ):
        self.aligner = aligner or TermAligner()
        self.area_resolver = area_resolver or self._default_area
        self.strict_units = strict_units
        self.statistics = MediatorStatistics()

    # ------------------------------------------------------------------ #
    # area resolution
    # ------------------------------------------------------------------ #

    @staticmethod
    def _default_area(record: ObservationRecord) -> Optional[str]:
        area = record.metadata.get("area")
        if isinstance(area, str):
            return area
        # source ids in the scenario are "<district>-mote-03" etc.
        if "-" in record.source_id:
            return record.source_id.rsplit("-", 2)[0]
        return None

    # ------------------------------------------------------------------ #
    # mediation
    # ------------------------------------------------------------------ #

    def mediate(self, record: ObservationRecord) -> MediationOutcome:
        """Mediate one raw record."""
        self.statistics.records_seen += 1

        if record.source_kind == "ik_sighting":
            return self._mediate_sighting(record)

        return self._mediate_aligned(record, self.aligner.align(record.property_name))

    def _mediate_aligned(
        self, record: ObservationRecord, alignment: AlignmentResult
    ) -> MediationOutcome:
        """Resolve units, range and schema given an already-aligned term."""
        if not alignment.resolved:
            self.statistics.unresolved_term += 1
            return MediationOutcome(
                record, None, failure_reason=f"unresolved term: {record.property_name!r}"
            )

        canonical_key = alignment.canonical_key
        modality = MODALITIES.get(canonical_key)
        canonical_unit = modality.canonical_unit if modality else None

        value = record.value
        original_unit = record.unit
        if original_unit and canonical_unit and original_unit != canonical_unit:
            try:
                value = to_canonical(value, original_unit)
                resolved_unit = canonical_symbol(original_unit)
                if canonical_unit and resolved_unit != canonical_unit:
                    raise UnitConversionError(
                        f"{original_unit!r} is not a unit of the dimension of {canonical_key!r}"
                    )
            except UnitConversionError as exc:
                if self.strict_units:
                    self.statistics.unresolved_unit += 1
                    return MediationOutcome(record, None, failure_reason=str(exc))
                # pass the raw number through, flagged
                value = record.value
        unit = canonical_unit or (original_unit or "unknown")

        if modality is not None and not (
            modality.minimum - 1e6 <= value <= modality.maximum + 1e6
        ):
            self.statistics.invalid_value += 1
            return MediationOutcome(
                record, None, failure_reason=f"value out of physical range: {value!r}"
            )

        observation = CanonicalObservation(
            property_key=canonical_key,
            value=float(value),
            unit=unit,
            timestamp=record.timestamp,
            source_id=record.source_id,
            source_kind=record.source_kind,
            location=record.location,
            area=self.area_resolver(record),
            original_term=record.property_name,
            original_unit=original_unit,
            alignment_method=alignment.method,
            alignment_confidence=alignment.confidence,
            metadata=dict(record.metadata),
        )
        self._record_success(alignment)
        return MediationOutcome(record, observation)

    def _mediate_sighting(self, record: ObservationRecord) -> MediationOutcome:
        indicator_key = record.property_name
        if indicator_key not in INDICATOR_CATALOGUE:
            self.statistics.unresolved_term += 1
            return MediationOutcome(
                record, None, failure_reason=f"unknown indicator: {indicator_key!r}"
            )
        observation = CanonicalObservation(
            property_key=indicator_key,
            value=float(record.value),
            unit="index",
            timestamp=record.timestamp,
            source_id=record.source_id,
            source_kind=record.source_kind,
            location=record.location,
            area=self.area_resolver(record),
            original_term=indicator_key,
            original_unit=None,
            alignment_method="indicator",
            alignment_confidence=1.0,
            metadata=dict(record.metadata),
        )
        self.statistics.resolved += 1
        self.statistics.by_method["indicator"] = (
            self.statistics.by_method.get("indicator", 0) + 1
        )
        return MediationOutcome(record, observation)

    def _record_success(self, alignment: AlignmentResult) -> None:
        self.statistics.resolved += 1
        self.statistics.by_method[alignment.method] = (
            self.statistics.by_method.get(alignment.method, 0) + 1
        )

    def mediate_many(self, records: Iterable[ObservationRecord]) -> List[MediationOutcome]:
        """Mediate a batch of records, aligning each distinct term once.

        Term alignment (unicode normalisation, synonym and fuzzy lookup) is
        by far the most expensive mediation step and is a pure function of
        the vendor spelling, so a batch resolves every distinct
        ``property_name`` once and reuses the alignment for all records
        carrying it.  Outcomes and :class:`MediatorStatistics` are
        identical to calling :meth:`mediate` per record; the aligner's own
        counters see one ``align`` call per distinct term, not per record.
        """
        alignments: Dict[str, AlignmentResult] = {}
        outcomes: List[MediationOutcome] = []
        for record in records:
            self.statistics.records_seen += 1
            if record.source_kind == "ik_sighting":
                outcomes.append(self._mediate_sighting(record))
                continue
            alignment = alignments.get(record.property_name)
            if alignment is None:
                alignment = self.aligner.align(record.property_name)
                alignments[record.property_name] = alignment
            outcomes.append(self._mediate_aligned(record, alignment))
        return outcomes


def passthrough_mediator() -> Mediator:
    """A mediator with semantic alignment disabled (the E9 ablation arm).

    Only exact canonical spellings resolve; synonyms, other languages and
    fuzzy matches all fail, and units are passed through unconverted --
    i.e. the behaviour of a fixed-schema, standards-only pipeline.
    """
    aligner = TermAligner(fuzzy_threshold=1.0)
    aligner._lookup = {  # keep only the canonical keys themselves
        key: value for key, value in aligner._lookup.items()
        if value.replace("_", " ") == key or value == key
    }
    return Mediator(aligner=aligner, strict_units=False)
