"""The interface protocol layer.

The bottom tier of the paper's middleware (Fig. 3): "the interface
protocols liaise with the storage database in the cloud for downloading the
semi-processed sensory reading".  Concretely this layer polls the simulated
cloud store for newly uploaded SenML documents, decodes them back into raw
observation records and hands them to the ontology segment layer (or
publishes them on the ``raw/...`` broker topics).

When a ``batch_sink`` is attached, each poll forwards all of its decoded
records in one call so the ontology segment layer's staged pipeline can
amortise per-record overhead (batched mediation and annotation, deferred
CEP flush); ``sink`` remains available for per-record dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.streams.broker import Broker
from repro.streams.messages import ObservationRecord, SenMLCodec
from repro.streams.scheduler import SimulationScheduler

RecordSink = Callable[[ObservationRecord], None]
RecordBatchSink = Callable[[List[ObservationRecord]], None]


@dataclass
class InterfaceLayerStatistics:
    """Counters for the middleware-layer benchmark (E2)."""

    documents_downloaded: int = 0
    records_decoded: int = 0
    decode_failures: int = 0
    polls: int = 0
    batches_forwarded: int = 0


class InterfaceProtocolLayer:
    """Downloads semi-processed readings from the cloud store.

    Parameters
    ----------
    cloud_store:
        An object exposing ``fetch_since(cursor) -> (documents, new_cursor)``
        -- normally :class:`repro.dews.cloud.CloudStore`.
    sink:
        Callback receiving each decoded raw record individually.
    batch_sink:
        Callback receiving all records of one poll at once (normally the
        middleware facade's ``ingest_batch``).  Takes precedence over
        ``sink`` when both are given.
    broker / raw_topic_prefix:
        When given, every decoded record is also published on
        ``<prefix>/<source_kind>/<source_id>`` so other subscribers (e.g.
        archiving, debugging dashboards) see the raw stream.
    scheduler / poll_interval:
        When given, the layer polls the store periodically on the simulated
        clock; otherwise call :meth:`poll` explicitly.
    on_poll:
        Callback invoked with the poll's records *after* dispatch — on
        every poll, including empty ones.  The middleware facade hooks its
        standing-view refresh here, so continuous queries and their
        broker-pushed deltas advance once per poll cycle even when a cycle
        delivers nothing.
    """

    def __init__(
        self,
        cloud_store,
        sink: Optional[RecordSink] = None,
        batch_sink: Optional[RecordBatchSink] = None,
        broker: Optional[Broker] = None,
        raw_topic_prefix: str = "raw",
        scheduler: Optional[SimulationScheduler] = None,
        poll_interval: float = 900.0,
        on_poll: Optional[RecordBatchSink] = None,
    ):
        self.cloud_store = cloud_store
        self.sink = sink
        self.batch_sink = batch_sink
        self.broker = broker
        self.raw_topic_prefix = raw_topic_prefix
        self.scheduler = scheduler
        self.on_poll = on_poll
        self.statistics = InterfaceLayerStatistics()
        self._cursor = 0
        if scheduler is not None:
            scheduler.schedule_repeating(poll_interval, self.poll)

    def poll(self) -> List[ObservationRecord]:
        """Fetch and dispatch everything uploaded since the last poll."""
        self.statistics.polls += 1
        documents, self._cursor = self.cloud_store.fetch_since(self._cursor)
        records: List[ObservationRecord] = []
        for document in documents:
            self.statistics.documents_downloaded += 1
            try:
                decoded = SenMLCodec.decode(document)
            except (ValueError, KeyError, TypeError):
                self.statistics.decode_failures += 1
                continue
            records.extend(decoded)
        if records:
            self.statistics.records_decoded += len(records)
            if self.broker is not None:
                for record in records:
                    topic = f"{self.raw_topic_prefix}/{record.source_kind}/{record.source_id}"
                    self.broker.publish(topic, record, timestamp=record.timestamp)
            if self.batch_sink is not None:
                self.statistics.batches_forwarded += 1
                self.batch_sink(records)
            elif self.sink is not None:
                for record in records:
                    self.sink(record)
        if self.on_poll is not None:
            self.on_poll(records)
        return records

    def __repr__(self) -> str:
        return (
            f"<InterfaceProtocolLayer decoded={self.statistics.records_decoded} "
            f"polls={self.statistics.polls}>"
        )
