"""Pluggable execution backends for the sharded ontology segment layer.

The layer partitions its annotation state by area (see
:mod:`repro.core.shard_router`); *how* those partitions execute is a
backend decision hidden behind one interface:

``inline``
    The original in-process path — every partition is a ``Graph`` +
    ``Reasoner`` in this interpreter, batches fan out over a thread pool.
    Construction and behaviour are byte-identical to the pre-backend
    layer, which makes this backend the equivalence oracle for the
    others.

``process``
    One worker *process* per partition
    (:class:`repro.core.shard_worker.ProcessShardBackend`): each worker
    owns its graph, reasoner, planner caches, standing views and WAL
    generation outright, so ingest and reasoning scale across cores
    instead of serialising on the GIL.

Backends expose the same surface — the stage objects the pipeline runs,
the shared annotation counter, the service registry, federated
``query``/``register_standing``/``refresh_views``, statistics — so the
layer code does not branch on the execution model beyond construction.

The default is ``inline``; the ``REPRO_SHARD_BACKEND`` environment
variable (or the explicit ``shard_backend`` configuration knob, which
wins) selects another.
"""

from __future__ import annotations

import itertools
import os
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional

from repro.core.annotation import SemanticAnnotator, next_annotation_index
from repro.core.faults import ShardUnavailableError  # noqa: F401 - re-export
from repro.core.pipeline import ShardedAnnotateStage, ShardedReasonStage
from repro.core.services import ServiceRegistry
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.sharding import ShardedGraphStore
from repro.semantics.reasoner import Reasoner
from repro.semantics.sparql.planner import (
    PlannerStatistics,
    federated_query,
    planner_for,
)

#: Environment variable selecting the default shard backend.
SHARD_BACKEND_ENV = "REPRO_SHARD_BACKEND"

_BACKENDS = ("inline", "process")


def resolve_shard_backend(explicit: Optional[str] = None) -> str:
    """The effective backend name: explicit arg > environment > ``inline``."""
    backend = explicit
    if backend is None:
        backend = os.environ.get(SHARD_BACKEND_ENV) or "inline"
    backend = backend.strip().lower()
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown shard backend {backend!r}; expected one of {list(_BACKENDS)}"
        )
    return backend


class InlineShardBackend:
    """The in-process sharding path: per-partition graphs in this interpreter.

    Construction mirrors the pre-backend sharded layer exactly — same
    store, replication, counter seeding, annotator/reasoner wiring and
    stage objects — so layers built on this backend behave (and journal)
    byte-identically to the historical code.
    """

    kind = "inline"

    def __init__(
        self,
        library,
        knowledge_base,
        statistics,
        shards: int,
        annotate: bool = True,
        reason_per_batch: bool = False,
        shard_workers: Optional[int] = None,
        recovered_graphs: Optional[List[Graph]] = None,
    ):
        self.library = library
        self.knowledge_base = knowledge_base
        self.num_shards = shards
        if recovered_graphs is not None:
            # the recovered partitions already hold the replicated axioms
            # (they were in each shard's gen-0 snapshot)
            self.store = ShardedGraphStore(shards, graphs=recovered_graphs)
        else:
            self.store = ShardedGraphStore(shards, base_graph=library.graph)
        self.router = self.store.router
        # idempotent on recovery: the indicators use deterministic IRIs,
        # so re-materialising adds (and therefore journals) nothing new
        self.store.replicate_with(knowledge_base.materialize)
        if shard_workers is None:
            shard_workers = min(shards, 8)
        self.executor = (
            ThreadPoolExecutor(
                max_workers=shard_workers, thread_name_prefix="shard-worker"
            )
            if shard_workers > 0
            else None
        )
        self.counter = itertools.count(
            next_annotation_index(self.store.graphs)
            if recovered_graphs is not None
            else 1
        )
        self.annotators = [
            SemanticAnnotator(
                shard_graph, knowledge_base=knowledge_base, counter=self.counter
            )
            for shard_graph in self.store.graphs
        ]
        self.reasoners = [Reasoner(shard_graph) for shard_graph in self.store.graphs]
        self.services = ServiceRegistry(self.store.graphs)
        self.annotate_stage = ShardedAnnotateStage(
            self.annotators,
            self.router,
            self.counter,
            statistics,
            executor=self.executor,
            enabled=annotate,
        )
        self.reason_stage = ShardedReasonStage(
            self.reasoners,
            self.router,
            executor=self.executor,
            enabled=reason_per_batch,
        )

    # -------------------------------------------------------------- #
    # querying and reasoning
    # -------------------------------------------------------------- #

    def query(self, text: str, entail: bool = False):
        if entail:
            self.ensure_all_materialized()
        return federated_query(self.store.graphs, text)

    def materialize_inferences(self, full: bool = False):
        return [reasoner.materialize(full=full) for reasoner in self.reasoners]

    def ensure_all_materialized(self) -> None:
        for reasoner in self.reasoners:
            reasoner.ensure_materialized()

    # -------------------------------------------------------------- #
    # standing views
    # -------------------------------------------------------------- #

    def register_standing(self, text: str, name: Optional[str] = None, seeds=None):
        return self.store.register_standing(text, name=name, seeds=seeds)

    def standing_views(self) -> List:
        views: List = []
        for shard_graph in self.store.graphs:
            views.extend(planner_for(shard_graph).standing_views())
        return views

    def refresh_views(self) -> None:
        for view in self.standing_views():
            view.refresh()

    # -------------------------------------------------------------- #
    # observability
    # -------------------------------------------------------------- #

    def planner_statistics(self) -> PlannerStatistics:
        totals = PlannerStatistics()
        for shard_graph in self.store.graphs:
            stats = planner_for(shard_graph).statistics
            totals.queries += stats.queries
            totals.parses += stats.parses
            totals.plans_built += stats.plans_built
            totals.plan_hits += stats.plan_hits
            totals.plan_invalidations += stats.plan_invalidations
            totals.result_hits += stats.result_hits
            totals.result_misses += stats.result_misses
            totals.result_invalidations += stats.result_invalidations
            totals.view_hits += stats.view_hits
        return totals

    def shard_statistics(self) -> List[dict]:
        pid = os.getpid()
        return [
            {
                "shard": index,
                "triples": len(shard_graph),
                "queue_depth": 0,
                "last_batch_latency": self.annotate_stage.last_batch_latency.get(
                    index, 0.0
                ),
                "pid": pid,
                "restarts": 0,
                "state": "up",
                "breaker": "closed",
                "trips": 0,
                "pending_batches": 0,
            }
            for index, shard_graph in enumerate(self.store.graphs)
        ]

    def health(self) -> dict:
        """Same shape as the process backend's; inline shards cannot fail
        independently of this interpreter, so everything reports up."""
        pid = os.getpid()
        return {
            "backend": "inline",
            "shards": [
                {
                    "shard": index,
                    "state": "up",
                    "breaker": "closed",
                    "restarts": 0,
                    "trips": 0,
                    "pending_batches": 0,
                    "pid": pid,
                    "last_error": None,
                }
                for index in range(self.num_shards)
            ],
            "degraded_reads": False,
            "rpc_timeout": None,
            "quarantined_batches": 0,
        }

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #

    def checkpoint_all(self) -> None:
        """Snapshotting is owned by the layer's persistence for inline shards."""

    def close(self) -> None:
        if self.executor is not None:
            self.executor.shutdown(wait=True)
            self.executor = None
            self.annotate_stage.executor = None
            self.reason_stage.executor = None

    def __repr__(self) -> str:
        return f"<InlineShardBackend shards={self.num_shards}>"


def make_shard_backend(
    kind: str,
    library,
    knowledge_base,
    statistics,
    shards: int,
    annotate: bool = True,
    reason_per_batch: bool = False,
    shard_workers: Optional[int] = None,
    persistence=None,
    recovered: bool = False,
    recovered_graphs: Optional[List[Graph]] = None,
    policy=None,
    fault_plan=None,
    dead_letter=None,
):
    """Build the configured backend (lazily importing the process one)."""
    if kind == "process":
        from repro.core.shard_worker import ProcessShardBackend

        return ProcessShardBackend(
            library,
            knowledge_base,
            statistics,
            shards,
            annotate=annotate,
            reason_per_batch=reason_per_batch,
            persistence=persistence,
            recovered=recovered,
            policy=policy,
            fault_plan=fault_plan,
            dead_letter=dead_letter,
        )
    return InlineShardBackend(
        library,
        knowledge_base,
        statistics,
        shards,
        annotate=annotate,
        reason_per_batch=reason_per_batch,
        shard_workers=shard_workers,
        recovered_graphs=recovered_graphs,
    )
