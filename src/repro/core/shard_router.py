"""Routing of records, observations and query constants to graph shards.

The sharded ontology segment layer partitions its annotation state by
*geographic area* (the drought scenario's districts): every record of one
district lands in the same partition, so the cross-record joins that matter
— same-area corroboration, per-district dashboards, area-scoped entailment
— stay partition-local, while partitions of different areas can be
ingested, reasoned over and cache-invalidated independently.

The :class:`ShardRouter` maps an area name to a shard index with a *stable*
hash (CRC-32 of the UTF-8 spelling), so the assignment is deterministic
across processes and runs — ``PYTHONHASHSEED`` does not leak into data
placement, and a router rebuilt from the same shard count reproduces the
same layout.  Records whose area could not be resolved hash the empty
string, i.e. they all share one well-defined shard instead of scattering.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class ShardRouter:
    """Stable area -> shard-index assignment for ``num_shards`` partitions."""

    __slots__ = ("num_shards",)

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards

    def shard_for(self, area: Optional[str]) -> int:
        """The shard index owning ``area`` (``None`` routes like ``""``)."""
        if self.num_shards == 1:
            return 0
        key = (area or "").encode("utf-8")
        return zlib.crc32(key) % self.num_shards

    def split(
        self, items: Iterable[Tuple[Optional[str], T]]
    ) -> Dict[int, List[T]]:
        """Group ``(area, item)`` pairs by owning shard, preserving order.

        Only shards that receive at least one item appear in the result, so
        callers fan work out to exactly the touched partitions.
        """
        groups: Dict[int, List[T]] = {}
        for area, item in items:
            shard = self.shard_for(area)
            bucket = groups.get(shard)
            if bucket is None:
                bucket = groups[shard] = []
            bucket.append(item)
        return groups

    def shards_touched(self, areas: Iterable[Optional[str]]) -> List[int]:
        """The sorted set of shard indexes owning any of ``areas``."""
        return sorted({self.shard_for(area) for area in areas})

    def __repr__(self) -> str:
        return f"<ShardRouter shards={self.num_shards}>"
