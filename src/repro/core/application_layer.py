"""The application abstraction layer.

The top tier of the paper's middleware (Fig. 3): "provides a high level of
software abstraction that allows communication among the applications and
the semantic middleware".  This is the API the DEWS, dashboards and other
IoT applications program against -- they never see raw vendor records, only
canonical events, derived events, query results and registered services.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cep.event import DerivedEvent, Event
from repro.cep.rules import CepRule
from repro.core.ontology_layer import OntologySegmentLayer
from repro.core.services import SemanticService
from repro.semantics.sparql.evaluator import QueryResult
from repro.streams.broker import Broker, Subscription

EventHandler = Callable[[Event], None]
DerivedEventHandler = Callable[[DerivedEvent], None]


@dataclass
class ApplicationLayerStatistics:
    """Counters for the middleware-layer benchmark (E2)."""

    events_published: int = 0
    derived_published: int = 0
    queries_answered: int = 0


class ApplicationAbstractionLayer:
    """The API surface applications use to talk to the middleware.

    Parameters
    ----------
    ontology_layer:
        The ontology segment layer whose outputs are exposed.
    broker:
        The broker canonical / derived events are published on.
    """

    def __init__(self, ontology_layer: OntologySegmentLayer, broker: Broker):
        self.ontology_layer = ontology_layer
        self.broker = broker
        self.statistics = ApplicationLayerStatistics()
        # republish derived events from the CEP engine onto the broker
        self.ontology_layer.cep.on_derived_event(self._publish_derived)

    # ------------------------------------------------------------------ #
    # publication (called by the middleware facade)
    # ------------------------------------------------------------------ #

    def publish_event(self, event: Event) -> None:
        """Publish a canonical event on ``canonical/<property>/<area>``."""
        area = event.area or "unknown"
        self.broker.publish(
            f"canonical/{event.event_type}/{area}",
            event,
            timestamp=event.timestamp,
            headers={"source_kind": event.source_kind},
        )
        self.statistics.events_published += 1

    def publish_events(self, events: List[Event]) -> None:
        """Publish a batch of canonical events in order."""
        for event in events:
            self.publish_event(event)

    def _publish_derived(self, event: DerivedEvent) -> None:
        area = event.area or "unknown"
        self.broker.publish(
            f"derived/{event.event_type}/{area}",
            event,
            timestamp=event.timestamp,
            headers={"rule": event.rule_name},
        )
        self.statistics.derived_published += 1

    # ------------------------------------------------------------------ #
    # the application-facing API
    # ------------------------------------------------------------------ #

    def subscribe_property(
        self, property_key: str, handler: EventHandler, area: str = "+",
        subscriber_name: str = "application",
    ) -> Subscription:
        """Subscribe to canonical events of one property (``+`` = any area)."""
        return self.broker.subscribe(
            f"canonical/{property_key}/{area}",
            lambda message: handler(message.payload),
            subscriber_name=subscriber_name,
        )

    def subscribe_derived(
        self, event_type: str, handler: DerivedEventHandler, area: str = "+",
        subscriber_name: str = "application",
    ) -> Subscription:
        """Subscribe to CEP-derived events of one type (``#`` = all types)."""
        pattern = f"derived/{event_type}/{area}" if event_type != "#" else "derived/#"
        return self.broker.subscribe(
            pattern,
            lambda message: handler(message.payload),
            subscriber_name=subscriber_name,
        )

    def register_rule(self, rule: CepRule) -> None:
        """Register an application-supplied CEP rule."""
        self.ontology_layer.cep.add_rule(rule)

    def query(self, text: str, entail: bool = False) -> QueryResult:
        """Run a SPARQL-like query over the unified ontology + annotations.

        Served through the graph's shared cost-based planner; ``entail``
        additionally tops up the reasoner's closure so inferred triples
        are visible to the query.  On a sharded ontology layer the query
        scatter-gathers across the per-area partitions (oracle-equivalent
        bag merge), with untouched partitions answering from their caches.
        """
        self.statistics.queries_answered += 1
        return self.ontology_layer.query(text, entail=entail)

    def services(self) -> List[SemanticService]:
        """The registered semantic services."""
        return self.ontology_layer.services.all()

    def find_services(self, concept) -> List[SemanticService]:
        """Services providing a given ontology concept."""
        return self.ontology_layer.services.find_providing(concept)

    def __repr__(self) -> str:
        return (
            f"<ApplicationAbstractionLayer events={self.statistics.events_published} "
            f"derived={self.statistics.derived_published}>"
        )
