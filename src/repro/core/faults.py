"""Deterministic fault injection for the process shard backend.

A :class:`FaultPlan` is a declarative list of faults — worker hangs,
slow RPCs, crash-at-op-N, boot-time crashes, WAL write/fsync errors and
torn frames — that the supervisor arms against its workers at precise,
reproducible points in the RPC stream.  The plan lives in the *parent*:
per-spec fire counters are kept on the supervisor side and shipped to
the worker as one-shot ``OP_FAULT`` directives immediately before the
RPC they apply to.  That keeps injection deterministic across worker
respawns (a forked worker inherits no half-spent counters) and makes a
replayed in-flight batch count as a fresh matching send, which is
exactly what a crash-loop test needs.

Plans come from three places, in precedence order: an explicit
``MiddlewareConfig.fault_plan``, the ``REPRO_FAULT_PLAN`` environment
variable (a compact spec string, see :meth:`FaultPlan.parse`), or
``REPRO_FAULT_SEED`` (a seeded random plan).  Environment-sourced plans
are meant for CI fault-matrix legs that run the *whole* suite under a
standard fault profile, so a :class:`FaultSession` drops unrecoverable
faults (anything but ``slow``) for backends without persistence — a
crash injected into a store that cannot recover would fail tests that
are not about fault tolerance at all.

The worker half is :class:`FaultInjector`: it holds armed directives,
fires hangs/delays/crashes around op dispatch, and exposes a
``wal_hook`` that :mod:`repro.persistence.wal` calls before WAL writes
and fsyncs to simulate disk-full errors and torn frames.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"
FAULT_SEED_ENV = "REPRO_FAULT_SEED"
RPC_TIMEOUT_ENV = "REPRO_SHARD_RPC_TIMEOUT"

DEFAULT_RPC_TIMEOUT = 30.0

# fault kinds a worker can survive without persistence (no state is lost)
RECOVERABLE_ONLY_KINDS = frozenset(
    {"hang", "crash", "crash_after", "boot_crash", "wal_error", "wal_fsync_error", "wal_torn"}
)

KINDS = frozenset(
    {
        "hang",
        "slow",
        "crash",
        "crash_after",
        "boot_crash",
        "wal_error",
        "wal_fsync_error",
        "wal_torn",
    }
)

# symbolic op names accepted in plan specs, resolved lazily to opcodes so
# this module stays importable without shard_wire
OP_NAMES = {
    "ingest": 0x02,
    "reason": 0x03,
    "query_ask": 0x04,
    "query_full": 0x05,
    "register_view": 0x06,
    "refresh_views": 0x07,
    "stats": 0x08,
    "materialize": 0x09,
    "replicate": 0x0A,
    "retract": 0x0B,
    "dump": 0x0C,
    "ping": 0x0F,
    "checkpoint": 0x10,
}


class ShardUnavailableError(ReproError, RuntimeError):
    """A shard's worker is gone and its circuit breaker is open.

    Raised by the process backend when an operation needs a shard whose
    restart budget is exhausted (and, for queries, ``degraded_reads`` is
    off).  Keeps :class:`RuntimeError` in its bases so pre-existing
    callers that caught worker-death errors keep working; carries the
    stable code ``shard_unavailable`` for the typed hierarchy (the
    serving gateway maps it to 503).
    """

    code = "shard_unavailable"

    def __init__(self, message: str, shard: Optional[int] = None):
        super().__init__(message, detail={"shard": shard} if shard is not None else {})
        self.shard = shard


@dataclass(frozen=True)
class FaultSpec:
    """One fault: *kind*, where it applies, and when it fires.

    ``at`` is 1-based over the matching sends (or boots, for
    ``boot_crash``): ``at=2, count=1`` fires on exactly the second
    matching send.  ``delay`` is the sleep for ``hang``/``slow``.
    """

    kind: str
    shard: Optional[int] = None  # None = any shard
    op: Optional[int] = None  # opcode; None = any op
    at: int = 1
    count: int = 1
    delay: float = 0.0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 1:
            raise ValueError("fault 'at' is 1-based and must be >= 1")

    def matches(self, shard: int, opcode: Optional[int]) -> bool:
        if self.shard is not None and self.shard != shard:
            return False
        if self.op is not None and self.op != opcode:
            return False
        return True


def _parse_spec(text: str) -> FaultSpec:
    parts = [part.strip() for part in text.strip().split(":") if part.strip()]
    if not parts:
        raise ValueError("empty fault spec")
    kind = parts[0]
    kwargs: Dict[str, object] = {}
    for part in parts[1:]:
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"malformed fault field {part!r} (expected key=value)")
        key = key.strip()
        value = value.strip()
        if key == "op":
            if value not in OP_NAMES:
                raise ValueError(f"unknown op name {value!r} in fault spec")
            kwargs["op"] = OP_NAMES[value]
        elif key in ("shard", "at", "count"):
            kwargs[key] = int(value)
        elif key == "delay":
            kwargs[key] = float(value)
        else:
            raise ValueError(f"unknown fault field {key!r}")
    return FaultSpec(kind=kind, **kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable set of :class:`FaultSpec`."""

    specs: Tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a compact plan string.

        Comma-separated specs of colon-separated fields, e.g.
        ``"hang:op=ingest:at=2:delay=60,slow:op=query_full:delay=0.05"``.
        """
        specs = tuple(
            _parse_spec(chunk) for chunk in text.split(",") if chunk.strip()
        )
        return cls(specs)

    @classmethod
    def random(cls, seed: int, faults: int = 3) -> "FaultPlan":
        """A seeded random plan of recoverable faults for soak runs."""
        rng = random.Random(seed)
        kinds = ["hang", "crash", "crash_after", "wal_error", "wal_torn"]
        ops = [OP_NAMES["ingest"], OP_NAMES["query_full"], OP_NAMES["refresh_views"], None]
        specs = []
        for _ in range(faults):
            kind = rng.choice(kinds)
            specs.append(
                FaultSpec(
                    kind=kind,
                    shard=None,
                    op=rng.choice(ops) if kind != "hang" else OP_NAMES["ingest"],
                    at=rng.randint(1, 6),
                    count=1,
                    delay=60.0 if kind == "hang" else 0.0,
                )
            )
        return cls(tuple(specs))

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultPlan"]:
        environ = os.environ if environ is None else environ
        text = environ.get(FAULT_PLAN_ENV)
        if text:
            return cls.parse(text)
        seed = environ.get(FAULT_SEED_ENV)
        if seed:
            return cls.random(int(seed))
        return None

    def session(self, recoverable: bool) -> "FaultSession":
        specs = self.specs
        if not recoverable:
            specs = tuple(spec for spec in specs if spec.kind == "slow")
        return FaultSession(specs)


def resolve_fault_plan(explicit: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """An explicit plan wins over the environment; None disables injection."""
    if explicit is not None:
        return explicit
    return FaultPlan.from_env()


def resolve_rpc_timeout(explicit: Optional[float]) -> float:
    """Explicit config wins; else ``REPRO_SHARD_RPC_TIMEOUT``; else 30s."""
    if explicit is not None:
        return float(explicit)
    env = os.environ.get(RPC_TIMEOUT_ENV)
    if env:
        return float(env)
    return DEFAULT_RPC_TIMEOUT


class FaultSession:
    """Parent-side fire counters for one backend instance.

    The supervisor asks :meth:`op_directive` before every send; matching
    specs advance their counter and, when the send falls inside the
    ``[at, at+count)`` window, contribute a one-shot directive that is
    shipped to the worker as ``OP_FAULT``.  Boot crashes are a pure
    function of ``(shard, incarnation)`` so forked children can check
    them without shared state.
    """

    def __init__(self, specs: Sequence[FaultSpec]):
        self.specs = tuple(specs)
        self._sends: Dict[int, int] = {}  # spec index -> matching sends so far
        self._boots: Dict[Tuple[int, int], int] = {}  # (spec idx, shard) -> boots

    @property
    def active(self) -> bool:
        return bool(self.specs)

    def op_directive(self, shard: int, opcode: int) -> List[dict]:
        directives = []
        for index, spec in enumerate(self.specs):
            if spec.kind == "boot_crash" or not spec.matches(shard, opcode):
                continue
            nth = self._sends.get(index, 0) + 1
            self._sends[index] = nth
            if spec.at <= nth < spec.at + spec.count:
                directives.append(
                    {"kind": spec.kind, "delay": spec.delay}
                )
        return directives

    def boot_crash_fires(self, shard: int, incarnation: int) -> bool:
        """True when this (re)spawn of ``shard`` should die before HELLO.

        ``incarnation`` is 1-based and monotonic per shard, so the
        decision is deterministic and independent of process state.
        """
        for spec in self.specs:
            if spec.kind != "boot_crash" or not spec.matches(shard, None):
                continue
            if spec.at <= incarnation < spec.at + spec.count:
                return True
        return False


class FaultInjector:
    """Worker-side executor of armed fault directives.

    Lives inside the forked worker.  ``arm`` is called on ``OP_FAULT``;
    ``before_op``/``after_op`` bracket op dispatch; ``wal_hook`` is
    threaded into the WAL so persistence faults fire on the exact write
    or fsync the plan named.
    """

    def __init__(self):
        self._pending: List[dict] = []

    def arm(self, directives: Sequence[dict]) -> None:
        self._pending.extend(directives)

    def before_op(self, opcode: int) -> List[dict]:
        """Fire pre-dispatch faults; return directives deferred to later."""
        directives, self._pending = self._pending, []
        deferred = []
        for directive in directives:
            kind = directive["kind"]
            if kind in ("hang", "slow"):
                # a hang is just a sleep longer than the RPC deadline
                time.sleep(float(directive.get("delay") or 0.0))
            elif kind == "crash":
                os._exit(2)
            elif kind in ("crash_after", "wal_error", "wal_fsync_error", "wal_torn"):
                deferred.append(directive)
        # WAL faults stay armed until the op's persistence path hits them
        self._pending = [d for d in deferred if d["kind"] != "crash_after"]
        return [d for d in deferred if d["kind"] == "crash_after"]

    def after_op(self, deferred: Sequence[dict]) -> None:
        for directive in deferred:
            if directive["kind"] == "crash_after":
                os._exit(2)

    def wal_hook(self, event: str, buffer: Optional[list] = None, fh=None) -> None:
        """Called by the WAL before writes (``"write"``) and fsyncs
        (``"fsync"``).  Raises :class:`OSError` to simulate a full disk;
        for ``wal_torn`` first writes half the frame so recovery sees a
        torn tail."""
        remaining = []
        fired: Optional[dict] = None
        for directive in self._pending:
            kind = directive["kind"]
            if fired is None and (
                (kind in ("wal_error", "wal_torn") and event == "write")
                or (kind == "wal_fsync_error" and event == "fsync")
            ):
                fired = directive
            else:
                remaining.append(directive)
        if fired is None:
            return
        self._pending = remaining
        if fired["kind"] == "wal_torn" and buffer is not None and fh is not None:
            data = b"".join(bytes(chunk) for chunk in buffer)
            fh.write(data[: max(1, len(data) // 2)])
            fh.flush()
            os.fsync(fh.fileno())
            # keep the buffer object (GraphWal caches it) but drop the
            # frames so a retry cannot complete the torn write
            del buffer[:]
        raise OSError(28, "injected WAL fault (no space left on device)")


@dataclass
class FaultTolerancePolicy:
    """Supervision knobs for the process backend, resolved from config."""

    rpc_timeout: float = DEFAULT_RPC_TIMEOUT
    restart_budget: int = 3
    restart_backoff: float = 0.1
    replay_budget: int = 2
    degraded_reads: bool = False
    pending_limit: int = 32
    backoff_cap: float = 30.0

    @classmethod
    def from_config(cls, config) -> "FaultTolerancePolicy":
        return cls(
            rpc_timeout=resolve_rpc_timeout(
                getattr(config, "shard_rpc_timeout", None)
            ),
            restart_budget=getattr(config, "shard_restart_budget", 3),
            restart_backoff=getattr(config, "shard_restart_backoff", 0.1),
            replay_budget=getattr(config, "replay_budget", 2),
            degraded_reads=getattr(config, "degraded_reads", False),
            pending_limit=getattr(config, "pending_queue_limit", 32),
        )

    def backoff(self, attempt: int) -> float:
        """Exponential backoff for the ``attempt``-th retry (1-based)."""
        if attempt <= 0:
            return 0.0
        return min(self.restart_backoff * (2 ** (attempt - 1)), self.backoff_cap)


@dataclass
class ShardBreaker:
    """Per-shard circuit breaker state (parent side).

    ``closed`` — normal serving.  ``open`` — restart budget exhausted;
    operations are refused or served degraded, ingest parks in
    ``pending``.  ``half_open`` — a probe restart is in flight.
    """

    state: str = "closed"
    trips: int = 0
    retry_at: float = 0.0
    pending: List[bytes] = field(default_factory=list)
    last_error: Optional[str] = None

    @property
    def open(self) -> bool:
        return self.state != "closed"

    def trip(self, error: str, delay: float) -> None:
        self.state = "open"
        self.trips += 1
        self.retry_at = time.monotonic() + delay
        self.last_error = error

    def close(self) -> None:
        self.state = "closed"
        self.retry_at = 0.0
