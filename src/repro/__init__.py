"""repro -- semantic middleware for drought early warning.

A full reproduction of *Towards Semantic Integration of Heterogeneous Sensor
Data with Indigenous Knowledge for Drought Forecasting* (Akanbi & Masinde,
MIDDLEWARE 2015): an ontology-based semantic middleware that mediates
heterogeneous sensor streams against a unified ontology, integrates them
with indigenous-knowledge indicators through a complex-event-processing
engine, and drives an IoT-based drought early warning system.

Top-level subpackages
---------------------
``repro.semantics``    pure-Python RDF / OWL-lite / rules / SPARQL-like substrate
``repro.ontologies``   the unified ontology library (DOLCE, SSN, environment,
                       drought, indigenous knowledge, units, alignment)
``repro.streams``      discrete-event scheduler, pub/sub broker, windows, codecs
``repro.sensors``      simulated WSN motes, radio, gateway, stations, observers
``repro.cep``          complex event processing engine and rule DSL
``repro.ik``           indigenous-knowledge indicators, elicitation, rules
``repro.forecasting``  drought indices, baseline / IK / fusion forecasters, skill
``repro.workloads``    synthetic Free State climate and deployment scenarios
``repro.core``         the three-tier semantic middleware (the paper's contribution)
``repro.dews``         the end-to-end drought early warning system application
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
