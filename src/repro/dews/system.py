"""The end-to-end Drought Early Warning System.

Wires the whole reproduction together and runs it over simulated time:

1. Every simulated day the WSN motes sample and route their raw
   heterogeneous records to their district sink; weather stations report on
   their own cadence; mobile observers send coarse reports and IK indicator
   sightings.  Everything reaches the SMS gateway, which uploads SenML
   batches to the cloud store.
2. The middleware's interface protocol layer polls the cloud, the ontology
   segment layer mediates and (optionally) annotates each record, and the
   application layer publishes canonical events.
3. The DEWS aggregates canonical observations to daily per-district values,
   feeds the aggregates (and the IK sightings, which the middleware already
   routed) through the CEP engine, and lets the fusion forecaster accumulate
   the derived evidence.
4. On the forecast cadence the three forecasters (statistical baseline,
   IK-only, fusion) each issue a forecast per district; the fused forecast
   drives the vulnerability index, alerts and dissemination.
5. At the end of the run the forecasts are scored against the climate's
   ground-truth drought mask.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.cep.event import DerivedEvent, Event
from repro.core.api import HealthReport, IngestReceipt, StandingViewHandle
from repro.core.mediator import Mediator
from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.dews.alerts import DroughtAlert, build_alerts
from repro.dews.cloud import CloudStore
from repro.dews.dissemination import DisseminationHub
from repro.forecasting.evaluation import ForecastSkill, evaluate_forecasts
from repro.forecasting.fusion import Forecast, FusionForecaster, IndigenousForecaster
from repro.forecasting.statistical import StatisticalForecaster
from repro.forecasting.vulnerability import compute_vulnerability
from repro.ik.elicitation import ElicitationCampaign
from repro.ik.knowledge_base import IndigenousKnowledgeBase
from repro.ontologies.library import OntologyLibrary
from repro.sensors.gateway import SmsGateway
from repro.streams.scheduler import DAY, SimulationScheduler
from repro.workloads.climate import ClimateGenerator
from repro.workloads.scenario import DeploymentScenario

#: Properties aggregated to daily district values for forecasting and CEP.
AGGREGATED_PROPERTIES = [
    "rainfall",
    "soil_moisture",
    "air_temperature",
    "water_level",
    "vegetation_index",
    "relative_humidity",
]


@dataclass
class DewsConfig:
    """Run configuration of the end-to-end system."""

    days: int = 730
    sampling_rounds_per_day: int = 1
    station_reports_per_day: int = 1
    observer_reports_every_days: int = 3
    forecast_every_days: int = 10
    forecast_start_day: int = 60
    annotate_observations: bool = False
    use_indigenous_knowledge: bool = True
    use_semantic_mediation: bool = True
    elicit_knowledge_base: bool = True
    climatology_years: int = 5
    drought_threshold: float = 0.5
    seed: int = 0
    #: Per-district graph partitions in the middleware (1 = single graph).
    #: Districts are natural shard keys: each gateway's uploads touch one
    #: partition, so other districts' caches and closures stay warm.
    shards: int = 1
    #: Shard execution model: ``"inline"`` (per-shard graphs in-process)
    #: or ``"process"`` (one worker process per shard).  ``None`` defers
    #: to the ``REPRO_SHARD_BACKEND`` environment variable.
    shard_backend: Optional[str] = None
    #: Directory for the middleware's durable state (per-shard WAL +
    #: snapshots); ``None`` runs fully in-memory.  Pointing a new run at a
    #: previous run's directory recovers its graphs and standing views.
    data_dir: Optional[str] = None
    #: Serve partial (marked) federated query results when a shard worker
    #: is unavailable instead of failing the warning pipeline outright.
    #: An early-warning system prefers a degraded forecast over none.
    degraded_reads: bool = False
    #: RPC deadline for shard worker calls (process backend); ``None``
    #: defers to ``REPRO_SHARD_RPC_TIMEOUT``.
    shard_rpc_timeout: Optional[float] = None
    #: Deterministic fault-injection plan for resilience drills; ``None``
    #: defers to ``REPRO_FAULT_PLAN`` / ``REPRO_FAULT_SEED``.
    fault_plan: Optional[object] = None


@dataclass
class DewsRunResult:
    """Everything a run produces, consumed by benchmarks and examples."""

    config: DewsConfig
    forecasts: Dict[str, List[Forecast]]
    skills: Dict[str, ForecastSkill]
    alerts: List[DroughtAlert]
    daily_series: Dict[str, Dict[str, np.ndarray]]
    middleware_statistics: dict
    wsn_statistics: dict
    gateway_statistics: dict
    dissemination_statistics: dict
    derived_event_count: int

    def skill_table(self) -> List[dict]:
        """One row per forecasting method (the E4 table)."""
        return [skill.as_row() for skill in self.skills.values()]


class _DailyAggregator:
    """Accumulates canonical observations into daily per-district means."""

    def __init__(self) -> None:
        self._sums: Dict[tuple, float] = defaultdict(float)
        self._counts: Dict[tuple, int] = defaultdict(int)

    def add(self, event: Event) -> None:
        day = int(event.timestamp // DAY)
        key = (event.area or "unknown", event.event_type, day)
        self._sums[key] += event.value
        self._counts[key] += 1

    def value(self, area: str, property_key: str, day: int) -> float:
        key = (area, property_key, day)
        count = self._counts.get(key, 0)
        if count == 0:
            return float("nan")
        return self._sums[key] / count

    def series(self, area: str, property_key: str, days: int) -> np.ndarray:
        return np.asarray(
            [self.value(area, property_key, day) for day in range(days)], dtype=float
        )


class DroughtEarlyWarningSystem:
    """The assembled IoT-based DEWS of the paper's case study."""

    def __init__(
        self,
        scenario: DeploymentScenario,
        config: Optional[DewsConfig] = None,
        library: Optional[OntologyLibrary] = None,
    ):
        self.scenario = scenario
        self.config = config or DewsConfig()
        self.scheduler = SimulationScheduler()
        self.cloud = CloudStore(availability=0.98, seed=self.config.seed)

        # --- indigenous knowledge -------------------------------------- #
        if self.config.elicit_knowledge_base:
            campaign = ElicitationCampaign(
                community="free-state-workshop", respondents=30, seed=self.config.seed
            )
            self.knowledge_base = campaign.run()
        else:
            self.knowledge_base = IndigenousKnowledgeBase()

        # --- the middleware --------------------------------------------- #
        mediator: Optional[Mediator] = None
        if not self.config.use_semantic_mediation:
            from repro.core.mediator import passthrough_mediator

            mediator = passthrough_mediator()
        middleware_config = MiddlewareConfig(
            annotate_observations=self.config.annotate_observations,
            install_sensor_rules=True,
            install_ik_rules=self.config.use_indigenous_knowledge,
            cep_per_record=False,
            shards=self.config.shards,
            shard_backend=self.config.shard_backend,
            data_dir=self.config.data_dir,
            degraded_reads=self.config.degraded_reads,
            shard_rpc_timeout=self.config.shard_rpc_timeout,
            fault_plan=self.config.fault_plan,
        )
        self.middleware = SemanticMiddleware(
            scheduler=self.scheduler,
            knowledge_base=self.knowledge_base,
            library=library,
            mediator=mediator,
            config=middleware_config,
        )
        self.middleware.attach_cloud_store(self.cloud)

        # --- gateways (one per district sink) ---------------------------- #
        self.gateways: Dict[str, SmsGateway] = {
            district.name: SmsGateway(
                self.scheduler,
                self.cloud.ingest,
                upload_interval=6 * 3600.0,
                outage_probability=0.05,
                seed=self.config.seed + index,
            )
            for index, district in enumerate(scenario.districts)
        }

        # --- forecasting and dissemination ------------------------------- #
        self.aggregator = _DailyAggregator()
        self.middleware.subscribe_property("+", self._on_canonical_event)
        for key in AGGREGATED_PROPERTIES:
            self.middleware.subscribe_property(key, self.aggregator.add)
        self.fusion = FusionForecaster(self.knowledge_base)
        self.indigenous = IndigenousForecaster(self.knowledge_base)
        self.statistical = StatisticalForecaster()
        self.middleware.subscribe_derived("#", self.fusion.observe)
        self.dissemination = DisseminationHub(seed=self.config.seed)
        self.derived_events: List[DerivedEvent] = []
        self.middleware.ontology_layer.cep.on_derived_event(self.derived_events.append)

        # climatology reference for the statistical indices and the anomaly
        # event streams the sensor-side CEP rules watch: the scenario's own
        # climate without its drought episodes, i.e. the local seasonal
        # normal an operational service would have learned from history
        self._reference_climate = ClimateGenerator(seed=scenario.climate.seed)
        self._climatology: Dict[str, Dict[str, np.ndarray]] = {}
        self._reference_rain = self._reference_climate.daily_series(
            "rainfall", 365 * self.config.climatology_years
        )
        self._reference_soil = self._reference_climate.daily_series(
            "soil_moisture", 365 * self.config.climatology_years
        )
        self._build_climatology()

    def _build_climatology(self) -> None:
        """Per-property day-of-year normals (mean, std) from the reference climate."""
        years = self.config.climatology_years
        for key in AGGREGATED_PROPERTIES:
            series = self._reference_climate.daily_series(key, 365 * years)
            stacked = series[: 365 * years].reshape(years, 365)
            mean = stacked.mean(axis=0)
            std = stacked.std(axis=0)
            # smooth over +/- 7 days so single-year noise does not dominate
            kernel = np.ones(15) / 15.0
            padded_mean = np.concatenate([mean[-7:], mean, mean[:7]])
            padded_std = np.concatenate([std[-7:], std, std[:7]])
            mean = np.convolve(padded_mean, kernel, mode="valid")
            std = np.maximum(np.convolve(padded_std, kernel, mode="valid"), 1e-3)
            self._climatology[key] = {"mean": mean, "std": std}

    def _anomaly(self, key: str, day: int, value: float) -> float:
        """Standardised departure of a daily value from its seasonal normal."""
        climatology = self._climatology[key]
        doy = day % 365
        return float((value - climatology["mean"][doy]) / climatology["std"][doy])

    # ------------------------------------------------------------------ #
    # event plumbing
    # ------------------------------------------------------------------ #

    def _on_canonical_event(self, event: Event) -> None:
        # single subscription point kept for extensions / examples
        return None

    def _feed_daily_aggregates(self, day: int) -> None:
        """Inject aggregate and anomaly events per property per district.

        The raw aggregate keeps the canonical property key; the anomaly
        event (``<property>_anomaly``, standardised against the seasonal
        climatology) is what the sensor-side process-detection rules watch.
        The whole day's events go to the CEP engine as one batch.
        """
        daily_events: List[Event] = []
        for district in self.scenario.districts:
            for key in AGGREGATED_PROPERTIES:
                value = self.aggregator.value(district.name, key, day)
                if np.isnan(value):
                    continue
                timestamp = (day + 1) * DAY - 1.0
                daily_events.append(
                    Event(
                        event_type=key,
                        value=float(value),
                        timestamp=timestamp,
                        source_id=f"aggregate:{district.name}",
                        source_kind="aggregate",
                        area=district.name,
                    )
                )
                daily_events.append(
                    Event(
                        event_type=f"{key}_anomaly",
                        value=self._anomaly(key, day, value),
                        timestamp=timestamp,
                        source_id=f"aggregate:{district.name}",
                        source_kind="aggregate",
                        area=district.name,
                    )
                )
        self.middleware.inject_events(daily_events)

    # ------------------------------------------------------------------ #
    # the simulated day loop
    # ------------------------------------------------------------------ #

    def _run_physical_layer(self, day: int) -> None:
        config = self.config
        for district in self.scenario.districts:
            gateway = self.gateways[district.name]
            for round_index in range(config.sampling_rounds_per_day):
                timestamp = day * DAY + (round_index + 1) * DAY / (
                    config.sampling_rounds_per_day + 1
                )
                outcomes = district.network.sample_and_deliver(timestamp)
                for outcome in outcomes:
                    if outcome.delivered:
                        gateway.receive(outcome.records)
            for station in district.stations:
                for report_index in range(config.station_reports_per_day):
                    timestamp = day * DAY + (report_index + 0.5) * DAY / config.station_reports_per_day
                    gateway.receive(station.report(timestamp))
            if day % config.observer_reports_every_days == 0:
                for observer in district.observers:
                    timestamp = day * DAY + DAY / 2
                    gateway.receive(observer.report_conditions(timestamp))
                    gateway.receive(observer.report_sightings(timestamp))

    def _issue_forecasts(
        self, day: int, forecasts: Dict[str, Dict[str, List[Forecast]]]
    ) -> List[DroughtAlert]:
        """Issue per-district forecasts from all three methods and alert."""
        fused_by_district: Dict[str, Forecast] = {}
        for district in self.scenario.districts:
            observed_rain = self.aggregator.series(district.name, "rainfall", day + 1)
            observed_soil = self.aggregator.series(district.name, "soil_moisture", day + 1)
            # Days with no delivered observation are filled with the seasonal
            # normal, not with zero -- treating missing data as "no rain"
            # would manufacture droughts out of sensor outages.
            days_index = np.arange(day + 1) % 365
            rain_filled = np.where(
                np.isnan(observed_rain),
                self._climatology["rainfall"]["mean"][days_index],
                observed_rain,
            )
            soil_filled = np.where(
                np.isnan(observed_soil),
                self._climatology["soil_moisture"]["mean"][days_index],
                observed_soil,
            )

            statistical = self.statistical.forecast_series(
                rain_filled,
                soil_filled,
                area=district.name,
                issue_every_days=1,
                reference_rainfall=self._reference_rain,
                reference_soil_moisture=self._reference_soil,
            )
            if statistical:
                # the forecast issued at the most recent day is the
                # operational one for this cadence point
                forecasts["statistical"][district.name].append(statistical[-1])

            ik_summary = self.indigenous.drought_probability_at(float(day))
            ik_forecast = Forecast(
                issue_day=float(day),
                lead_time_days=self.knowledge_base.mean_lead_time("drier") or 30.0,
                drought_probability=ik_summary["probability"],
                confidence=min(1.0, 0.25 + 0.75 * (ik_summary["drier"] + ik_summary["wetter"])),
                method="indigenous",
                area=district.name,
                evidence={"net_drier": ik_summary["net_drier"]},
            )
            forecasts["indigenous"][district.name].append(ik_forecast)

            fused_probability = self.fusion.drought_probability_at(float(day), district.name)
            fused = Forecast(
                issue_day=float(day),
                lead_time_days=max(10.0, 0.5 * self.knowledge_base.mean_lead_time("drier")),
                drought_probability=fused_probability,
                confidence=0.7,
                method="fusion",
                area=district.name,
                evidence=self.fusion._evidence_at(float(day), district.name),
            )
            forecasts["fusion"][district.name].append(fused)
            fused_by_district[district.name] = fused

        vulnerability = {
            index.district: index
            for index in compute_vulnerability(
                {name: forecast.drought_probability for name, forecast in fused_by_district.items()}
            )
        }
        alerts = build_alerts(fused_by_district, vulnerability)
        self.dissemination.disseminate([alert for alert in alerts if alert.actionable])
        return alerts

    # ------------------------------------------------------------------ #
    # the unified embedding API (shared with SemanticMiddleware)
    # ------------------------------------------------------------------ #

    @property
    def broker(self):
        """The middleware's broker — the bus serving gateways attach to."""
        return self.middleware.broker

    def ingest_batch(self, records: Iterable) -> IngestReceipt:
        """Ingest raw observation records directly, bypassing the cloud hop.

        The serving gateway (and any operational feed) pushes records here
        rather than through the simulated SMS-gateway → cloud-store path;
        the staged middleware pipeline treats them identically.
        """
        return self.middleware.ingest_batch(records)

    def subscribe(
        self, pattern: str, handler: Callable, subscriber_name: str = "application"
    ):
        """Subscribe to a broker topic pattern (full messages, see
        :meth:`SemanticMiddleware.subscribe`)."""
        return self.middleware.subscribe(
            pattern, handler, subscriber_name=subscriber_name
        )

    def statistics(self) -> dict:
        """The middleware's merged statistics snapshot across its layers."""
        return self.middleware.statistics()

    def query(self, text: str, entail: bool = False):
        """Run a SPARQL-like query over the middleware's semantic graph.

        Dashboards and post-run analyses ask the same handful of queries
        repeatedly; they are served through the middleware's cost-based
        planner with version-keyed plan / result caching, and with
        ``entail`` the answers also include reasoner-inferred triples.
        """
        return self.middleware.query(text, entail=entail)

    def register_standing(
        self, text: str, name: Optional[str] = None, push: bool = False
    ) -> StandingViewHandle:
        """Register a dashboard query as a delta-maintained standing view.

        The query is then served from a materialized view that each
        ingest updates in O(|delta|) — the right shape for the queries a
        DEWS dashboard re-runs every poll cycle.  With ``push`` the view's
        itemised deltas are also published on ``views/<name>`` so CEP
        subscribers can follow the standing result without re-polling.
        """
        return self.middleware.register_standing(text, name=name, push=push)

    def health(self) -> HealthReport:
        """Fault-tolerance state of the middleware's shard serving path.

        What an operations dashboard polls between forecast cycles: which
        district partitions are up, tripped or restarting, how much ingest
        is parked awaiting recovery, and how deep the dead-letter journal
        of quarantined batches and rejected records runs.
        """
        return self.middleware.health()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release the middleware's owned resources (idempotent).

        Graceful shutdown of worker pools / shard worker processes and the
        persistence layer; see :meth:`SemanticMiddleware.close`.
        """
        self.middleware.close()

    def __enter__(self) -> "DroughtEarlyWarningSystem":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ #
    # the run
    # ------------------------------------------------------------------ #

    def run(self) -> DewsRunResult:
        """Run the full pipeline for ``config.days`` simulated days."""
        config = self.config
        forecasts: Dict[str, Dict[str, List[Forecast]]] = {
            "statistical": defaultdict(list),
            "indigenous": defaultdict(list),
            "fusion": defaultdict(list),
        }
        all_alerts: List[DroughtAlert] = []

        for day in range(config.days):
            self._run_physical_layer(day)
            # let gateway uploads, cloud polls and broker deliveries run
            self.scheduler.run_until((day + 1) * DAY)
            self._feed_daily_aggregates(day)
            if day >= config.forecast_start_day and day % config.forecast_every_days == 0:
                all_alerts.extend(self._issue_forecasts(day, forecasts))

        # ----------------------------------------------------------------- #
        # evaluation against ground truth
        # ----------------------------------------------------------------- #
        truth = self.scenario.climate.drought_truth(config.days)
        episodes = self.scenario.climate.episodes
        skills: Dict[str, ForecastSkill] = {}
        flat_forecasts: Dict[str, List[Forecast]] = {}
        for method, per_district in forecasts.items():
            flat = [forecast for series in per_district.values() for forecast in series]
            flat_forecasts[method] = flat
            if flat:
                skills[method] = evaluate_forecasts(
                    flat, truth, episodes, threshold=config.drought_threshold
                )

        daily_series = {
            district.name: {
                key: self.aggregator.series(district.name, key, config.days)
                for key in AGGREGATED_PROPERTIES
            }
            for district in self.scenario.districts
        }
        return DewsRunResult(
            config=config,
            forecasts=flat_forecasts,
            skills=skills,
            alerts=all_alerts,
            daily_series=daily_series,
            middleware_statistics=self.middleware.statistics(),
            wsn_statistics={
                district.name: district.network.statistics
                for district in self.scenario.districts
            },
            gateway_statistics={
                name: gateway.statistics for name, gateway in self.gateways.items()
            },
            dissemination_statistics=self.dissemination.statistics(),
            derived_event_count=len(self.derived_events),
        )
