"""Drought alerts.

Turns fused forecasts and district vulnerability indices into the
actionable artefacts the DEWS disseminates: an alert per district per issue
day, with a level (Normal / Watch / Warning / Emergency), the probability
and vulnerability behind it, and a short human-readable advisory that the
output channels render in their own formats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.forecasting.fusion import Forecast
from repro.forecasting.vulnerability import VulnerabilityIndex
from repro.ontologies.drought import ALERT_LEVELS, alert_level_for_probability
from repro.ontologies.vocabulary import DROUGHT
from repro.semantics.rdf.term import IRI

#: Advisory text per alert level, rendered by the channels.
_ADVISORIES: Dict[str, str] = {
    "Normal": "Conditions near normal. Routine seasonal planning applies.",
    "Watch": (
        "Early signs of drying conditions. Review fodder reserves and water "
        "points; conserve soil moisture where possible."
    ),
    "Warning": (
        "Drought conditions developing. Reduce stocking rates, prioritise "
        "drought-tolerant crops and secure water supplies."
    ),
    "Emergency": (
        "Severe drought expected. Activate drought relief plans, destock "
        "early and ration water. Contact extension services for support."
    ),
}


def alert_level_name(level_iri: IRI) -> str:
    """The plain name ('Watch', ...) of an alert-level individual IRI."""
    local = level_iri.local_name
    return local[len("Level"):] if local.startswith("Level") else local


@dataclass
class DroughtAlert:
    """One alert issued for one district."""

    district: str
    issue_day: float
    level: str
    drought_probability: float
    vulnerability: float
    lead_time_days: float
    advisory: str
    evidence: Dict[str, float] = field(default_factory=dict)

    @property
    def rank(self) -> int:
        """Numeric rank of the level (0 = Normal ... 3 = Emergency)."""
        return ALERT_LEVELS.index(self.level) if self.level in ALERT_LEVELS else 0

    @property
    def actionable(self) -> bool:
        """Whether the alert calls for action (Watch or above)."""
        return self.rank >= 1

    def headline(self) -> str:
        """One-line headline used by the narrow channels (billboard, radio)."""
        return (
            f"[{self.level.upper()}] {self.district}: drought probability "
            f"{self.drought_probability:.0%}, vulnerability {self.vulnerability:.2f}"
        )


def build_alerts(
    forecasts_by_district: Mapping[str, Forecast],
    vulnerability_by_district: Mapping[str, VulnerabilityIndex],
    escalate_high_vulnerability: bool = True,
) -> List[DroughtAlert]:
    """Combine forecasts and vulnerability into per-district alerts.

    With ``escalate_high_vulnerability`` a district whose vulnerability
    category is ``high`` or ``extreme`` is bumped one alert level: the same
    forecast probability warrants earlier action where coping capacity is
    low, which is exactly the argument for computing a vulnerability index
    rather than broadcasting raw probabilities.
    """
    alerts: List[DroughtAlert] = []
    for district, forecast in sorted(forecasts_by_district.items()):
        level_iri = alert_level_for_probability(forecast.drought_probability)
        level = alert_level_name(level_iri)
        vulnerability = vulnerability_by_district.get(district)
        vulnerability_score = vulnerability.score if vulnerability else 0.0
        if (
            escalate_high_vulnerability
            and vulnerability is not None
            and vulnerability.category in ("high", "extreme")
            and level in ALERT_LEVELS
        ):
            index = min(len(ALERT_LEVELS) - 1, ALERT_LEVELS.index(level) + 1)
            level = ALERT_LEVELS[index]
        alerts.append(
            DroughtAlert(
                district=district,
                issue_day=forecast.issue_day,
                level=level,
                drought_probability=forecast.drought_probability,
                vulnerability=vulnerability_score,
                lead_time_days=forecast.lead_time_days,
                advisory=_ADVISORIES[level],
                evidence=dict(forecast.evidence),
            )
        )
    return alerts
