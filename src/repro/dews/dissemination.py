"""Dissemination channels.

The paper's motivation section laments "the absence of smart billboards
placed at strategic locations, smart phones, IP radios and semantic web" as
dissemination channels.  Each channel here models the reach, latency and
failure characteristics of one of those outputs; the
:class:`DisseminationHub` fans every alert out to all channels and keeps the
per-channel accounting the E7 benchmark reports.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dews.alerts import DroughtAlert
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import RDF, RDFS
from repro.semantics.rdf.term import Literal
from repro.semantics.rdf.triple import Triple
from repro.ontologies.vocabulary import AFRICRID, DROUGHT


@dataclass
class Delivery:
    """One alert delivered (or not) through one channel."""

    channel: str
    district: str
    issue_day: float
    delivered: bool
    latency_seconds: float
    recipients: int


@dataclass
class ChannelStatistics:
    """Aggregated per-channel delivery accounting."""

    attempted: int = 0
    delivered: int = 0
    recipients_reached: int = 0
    total_latency: float = 0.0

    @property
    def delivery_ratio(self) -> float:
        """Fraction of attempted deliveries that succeeded."""
        return self.delivered / self.attempted if self.attempted else 0.0

    @property
    def mean_latency(self) -> float:
        """Mean delivery latency over successful deliveries (seconds)."""
        return self.total_latency / self.delivered if self.delivered else 0.0


class DisseminationChannel:
    """Base class: a channel turns an alert into a rendered delivery."""

    name = "channel"

    def __init__(
        self,
        reach: int,
        base_latency: float,
        failure_probability: float = 0.0,
        seed: int = 0,
    ):
        self.reach = reach
        self.base_latency = base_latency
        self.failure_probability = failure_probability
        self._rng = random.Random(seed)
        self.statistics = ChannelStatistics()
        self.log: List[Delivery] = []

    def render(self, alert: DroughtAlert) -> str:
        """Render the alert in the channel's native format."""
        return alert.headline()

    def minimum_level(self) -> int:
        """Alerts below this rank are not pushed on this channel."""
        return 0

    def deliver(self, alert: DroughtAlert) -> Delivery:
        """Attempt to deliver one alert."""
        self.statistics.attempted += 1
        failed = self._rng.random() < self.failure_probability
        latency = self.base_latency * (0.7 + 0.6 * self._rng.random())
        delivery = Delivery(
            channel=self.name,
            district=alert.district,
            issue_day=alert.issue_day,
            delivered=not failed,
            latency_seconds=0.0 if failed else latency,
            recipients=0 if failed else self.reach,
        )
        if delivery.delivered:
            self.statistics.delivered += 1
            self.statistics.recipients_reached += delivery.recipients
            self.statistics.total_latency += delivery.latency_seconds
            self.render(alert)
        self.log.append(delivery)
        return delivery


class SmartBillboardChannel(DisseminationChannel):
    """Roadside smart billboards at strategic locations."""

    name = "smart_billboard"

    def __init__(self, boards: int = 12, seed: int = 0):
        super().__init__(reach=boards * 400, base_latency=60.0,
                         failure_probability=0.05, seed=seed)

    def minimum_level(self) -> int:
        return 1  # billboards only show Watch and above

    def render(self, alert: DroughtAlert) -> str:
        return f"{alert.district.upper()} | {alert.level.upper()} | DVI {alert.vulnerability:.2f}"


class MobileAppChannel(DisseminationChannel):
    """Smartphone push notifications / SMS broadcast to registered farmers."""

    name = "mobile_app"

    def __init__(self, subscribers: int = 2500, seed: int = 0):
        super().__init__(reach=subscribers, base_latency=20.0,
                         failure_probability=0.08, seed=seed)

    def render(self, alert: DroughtAlert) -> str:
        return json.dumps(
            {
                "title": f"Drought {alert.level} - {alert.district}",
                "probability": round(alert.drought_probability, 2),
                "lead_time_days": alert.lead_time_days,
                "advisory": alert.advisory,
            }
        )


class IpRadioChannel(DisseminationChannel):
    """Community IP radio bulletins (read out on a schedule)."""

    name = "ip_radio"

    def __init__(self, listeners: int = 15000, seed: int = 0):
        super().__init__(reach=listeners, base_latency=3 * 3600.0,
                         failure_probability=0.02, seed=seed)

    def minimum_level(self) -> int:
        return 1

    def render(self, alert: DroughtAlert) -> str:
        return (
            f"Drought bulletin for {alert.district}: level {alert.level}. "
            f"{alert.advisory}"
        )


class SemanticWebChannel(DisseminationChannel):
    """A machine-readable endpoint publishing alerts as RDF.

    Other systems (provincial dashboards, research portals) consume the
    alert graph; ``reach`` counts integrated systems rather than people.
    """

    name = "semantic_web"

    def __init__(self, consumers: int = 5, seed: int = 0):
        super().__init__(reach=consumers, base_latency=2.0,
                         failure_probability=0.01, seed=seed)
        self.graph = Graph()
        self._counter = 0

    def render(self, alert: DroughtAlert) -> str:
        self._counter += 1
        alert_iri = AFRICRID[f"alert/{self._counter}"]
        self.graph.add(Triple(alert_iri, RDF.type, DROUGHT.DroughtAlert))
        self.graph.add(Triple(alert_iri, DROUGHT.hasAlertLevel, DROUGHT[f"Level{alert.level}"]))
        self.graph.add(Triple(alert_iri, DROUGHT.hasProbability, Literal(alert.drought_probability)))
        self.graph.add(Triple(alert_iri, DROUGHT.hasLeadTimeDays, Literal(alert.lead_time_days)))
        self.graph.add(Triple(alert_iri, RDFS.label, Literal(alert.headline())))
        self.graph.add(Triple(alert_iri, AFRICRID.forDistrict, Literal(alert.district)))
        return self.graph.serialize("turtle")


class DisseminationHub:
    """Fans alerts out to every registered channel."""

    def __init__(self, channels: Optional[List[DisseminationChannel]] = None, seed: int = 0):
        self.channels: List[DisseminationChannel] = channels if channels is not None else [
            SmartBillboardChannel(seed=seed),
            MobileAppChannel(seed=seed + 1),
            IpRadioChannel(seed=seed + 2),
            SemanticWebChannel(seed=seed + 3),
        ]
        self.deliveries: List[Delivery] = []

    def disseminate(self, alerts: List[DroughtAlert]) -> List[Delivery]:
        """Send each alert on every channel whose minimum level it meets."""
        deliveries: List[Delivery] = []
        for alert in alerts:
            for channel in self.channels:
                if alert.rank < channel.minimum_level():
                    continue
                deliveries.append(channel.deliver(alert))
        self.deliveries.extend(deliveries)
        return deliveries

    def statistics(self) -> Dict[str, ChannelStatistics]:
        """Per-channel delivery statistics."""
        return {channel.name: channel.statistics for channel in self.channels}

    def total_recipients_reached(self) -> int:
        """Total recipient count across channels (double counting accepted)."""
        return sum(channel.statistics.recipients_reached for channel in self.channels)
