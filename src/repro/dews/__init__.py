"""The Drought Early Warning System (DEWS) application.

The end-to-end IoT application of the paper's case study, built on the
public API of the semantic middleware:

``repro.dews.cloud``
    The simulated cloud storage the SMS gateway uploads to and the
    interface protocol layer downloads from.
``repro.dews.alerts``
    Alert levels and alert construction from forecasts and vulnerability.
``repro.dews.dissemination``
    Output channels (smart billboards, mobile app push, IP radio bulletins,
    a semantic-web endpoint) with delivery and latency accounting.
``repro.dews.system``
    :class:`~repro.dews.system.DroughtEarlyWarningSystem`: wires the
    deployment scenario, the middleware, the forecasters and the channels
    together and runs the whole pipeline over simulated time.
"""

from repro.dews.alerts import DroughtAlert, alert_level_name, build_alerts
from repro.dews.cloud import CloudStore
from repro.dews.dissemination import (
    DisseminationHub,
    IpRadioChannel,
    MobileAppChannel,
    SemanticWebChannel,
    SmartBillboardChannel,
)
from repro.dews.system import DewsConfig, DewsRunResult, DroughtEarlyWarningSystem

__all__ = [
    "CloudStore",
    "DroughtAlert",
    "build_alerts",
    "alert_level_name",
    "DisseminationHub",
    "SmartBillboardChannel",
    "MobileAppChannel",
    "IpRadioChannel",
    "SemanticWebChannel",
    "DroughtEarlyWarningSystem",
    "DewsConfig",
    "DewsRunResult",
]
