"""Simulated cloud storage.

The paper's pipeline uploads semi-processed sensor readings to "storage
database in the cloud"; the interface protocol layer later downloads them.
The store keeps uploaded SenML documents in arrival order, supports
cursor-based incremental fetching (so the middleware only sees new data per
poll), and models availability: an unavailable store rejects uploads, which
the gateway then retries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class CloudStoreStatistics:
    """Counters for the dissemination / end-to-end benchmarks."""

    documents_stored: int = 0
    documents_served: int = 0
    rejected_uploads: int = 0
    fetches: int = 0


class CloudStore:
    """An append-only document store with cursor-based fetching.

    Parameters
    ----------
    availability:
        Probability that an upload attempt succeeds (cloud-side or backhaul
        outages).  Fetches are assumed to always succeed (the middleware
        polls from a well-connected site).
    seed:
        RNG seed for reproducible outage behaviour.
    """

    def __init__(self, availability: float = 1.0, seed: int = 0):
        if not 0.0 < availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")
        self.availability = availability
        self._documents: List[Tuple[str, float]] = []
        self._rng = random.Random(seed)
        self.statistics = CloudStoreStatistics()

    # ------------------------------------------------------------------ #
    # upload side (SMS gateway)
    # ------------------------------------------------------------------ #

    def ingest(self, document: str, timestamp: float) -> bool:
        """Store one uploaded document; returns whether it was accepted."""
        if self._rng.random() > self.availability:
            self.statistics.rejected_uploads += 1
            return False
        self._documents.append((document, timestamp))
        self.statistics.documents_stored += 1
        return True

    # ------------------------------------------------------------------ #
    # download side (interface protocol layer)
    # ------------------------------------------------------------------ #

    def fetch_since(self, cursor: int) -> Tuple[List[str], int]:
        """Documents stored since ``cursor``; returns (documents, new cursor)."""
        self.statistics.fetches += 1
        documents = [document for document, _ in self._documents[cursor:]]
        self.statistics.documents_served += len(documents)
        return documents, len(self._documents)

    def fetch_window(self, start_time: float, end_time: float) -> List[str]:
        """Documents whose upload timestamp falls within ``[start, end)``."""
        return [
            document
            for document, timestamp in self._documents
            if start_time <= timestamp < end_time
        ]

    def __len__(self) -> int:
        return len(self._documents)

    def __repr__(self) -> str:
        return f"<CloudStore documents={len(self._documents)} availability={self.availability}>"
