"""The unified ontology library (paper Fig. 1).

Assembles every component ontology -- DOLCE upper level, SSN sensing,
environmental processes, drought domain, indigenous knowledge, units and the
term alignment -- into a single shared graph, which is what the paper calls
the *unified ontology* the middleware semantically references data against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.ontologies.alignment import build_alignment_ontology
from repro.ontologies.dolce import build_dolce_ontology
from repro.ontologies.drought import build_drought_ontology
from repro.ontologies.environment import build_environment_ontology
from repro.ontologies.indigenous import build_indigenous_ontology
from repro.ontologies.ssn import build_ssn_ontology
from repro.ontologies.units import build_units_ontology
from repro.ontologies.vocabulary import bind_all
from repro.semantics.owl.ontology import Ontology
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.term import IRI
from repro.semantics.reasoner import Reasoner


@dataclass
class OntologyLibrary:
    """The assembled ontology library plus access to its parts.

    Attributes
    ----------
    graph:
        The shared RDF graph holding the union of every component ontology.
    unified:
        An :class:`Ontology` facade over the shared graph, carrying the
        merged class / property / individual registries.
    components:
        The component ontologies keyed by short name
        (``dolce``, ``ssn``, ``environment``, ``drought``, ``indigenous``,
        ``units``, ``alignment``).
    """

    graph: Graph
    unified: Ontology
    components: Dict[str, Ontology] = field(default_factory=dict)

    def reasoner(self) -> Reasoner:
        """A fresh reasoner over the shared graph."""
        return Reasoner(self.graph)

    def statistics(self) -> Dict[str, int]:
        """Size statistics used by the ontology benchmarks and docs."""
        return {
            "triples": len(self.graph),
            "classes": len(self.unified.classes),
            "properties": len(self.unified.properties),
            "individuals": len(self.unified.individuals),
            "components": len(self.components),
        }


def build_unified_ontology(materialize: bool = False) -> OntologyLibrary:
    """Build the full ontology library into one shared graph.

    Parameters
    ----------
    materialize:
        When true, run the reasoner to fixpoint after assembly so that the
        subclass / equivalence closure is already available to queries.
        The middleware does this once at start-up.
    """
    graph = Graph(identifier=IRI("http://africrid.example.org/ontology/unified"))
    bind_all(graph.namespaces)

    components: Dict[str, Ontology] = {}
    components["dolce"] = build_dolce_ontology(graph)
    components["ssn"] = build_ssn_ontology(graph)
    components["units"] = build_units_ontology(graph)
    components["environment"] = build_environment_ontology(graph)
    components["drought"] = build_drought_ontology(graph)
    components["indigenous"] = build_indigenous_ontology(graph)
    components["alignment"] = build_alignment_ontology(graph)

    unified = Ontology(IRI("http://africrid.example.org/ontology/unified"), graph=graph)
    for component in components.values():
        unified.imports(component)

    library = OntologyLibrary(graph=graph, unified=unified, components=components)
    if materialize:
        library.reasoner().materialize()
    return library
