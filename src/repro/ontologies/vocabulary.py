"""Namespaces and canonical IRIs for the ontology library.

Every subsystem refers to vocabulary terms through these namespace objects
so the IRIs are defined exactly once.  The namespace bases are modelled on
the public vocabularies the paper cites (DOLCE, SSN, QUDT, WGS84 geo) with
project-specific namespaces for the drought and indigenous-knowledge
domains hosted under an AfriCRID-style base IRI.
"""

from __future__ import annotations

from typing import Dict

from repro.semantics.rdf.namespace import Namespace

#: Upper-level foundational ontology (DOLCE).
DOLCE = Namespace("http://www.loa-cnr.it/ontologies/DOLCE-Lite#")

#: Semantic Sensor Network ontology (SSN / SOSA style).
SSN = Namespace("http://purl.oclc.org/NET/ssnx/ssn#")

#: Environmental process ontology (project specific).
ENVO = Namespace("http://africrid.example.org/ontology/environment#")

#: Drought domain ontology (project specific).
DROUGHT = Namespace("http://africrid.example.org/ontology/drought#")

#: Indigenous knowledge ontology (project specific).
IK = Namespace("http://africrid.example.org/ontology/indigenous#")

#: Instance namespace for the Free State DEWS deployment.
AFRICRID = Namespace("http://africrid.example.org/resource/")

#: WGS84 geo vocabulary for latitude / longitude.
GEO = Namespace("http://www.w3.org/2003/01/geo/wgs84_pos#")

#: QUDT-style quantities, units and dimensions.
QUDT = Namespace("http://qudt.org/schema/qudt#")

#: QUDT-style unit individuals.
UNIT = Namespace("http://qudt.org/vocab/unit#")

#: SenML-ish message vocabulary used by the interface protocol layer.
MSG = Namespace("http://africrid.example.org/ontology/message#")

#: Prefix table bound into every middleware graph.
PREFIXES: Dict[str, Namespace] = {
    "dolce": DOLCE,
    "ssn": SSN,
    "envo": ENVO,
    "drought": DROUGHT,
    "ik": IK,
    "africrid": AFRICRID,
    "geo": GEO,
    "qudt": QUDT,
    "unit": UNIT,
    "msg": MSG,
}


def bind_all(namespace_manager) -> None:
    """Bind every project prefix into a namespace manager."""
    for prefix, namespace in PREFIXES.items():
        namespace_manager.bind(prefix, namespace)
