"""Drought domain ontology.

Extends the environmental process ontology with the drought-specific
concepts the DEWS needs: drought types (meteorological, agricultural,
hydrological, socio-economic), severity classes aligned to the standardised
precipitation index (SPI) bands, precursor processes, forecast and alert
artefacts, and the drought vulnerability index the paper says is
disseminated to end users.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ontologies.vocabulary import DOLCE, DROUGHT, ENVO
from repro.semantics.owl.ontology import Ontology
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import XSD
from repro.semantics.rdf.term import IRI


#: SPI thresholds for the severity classes (McKee et al. convention).
#: Each entry is (class IRI local name, upper SPI bound exclusive).
SPI_SEVERITY_BANDS: List[Tuple[str, float]] = [
    ("ExtremeDrought", -2.0),
    ("SevereDrought", -1.5),
    ("ModerateDrought", -1.0),
    ("MildDrought", -0.5),
]

#: Alert levels used by the DEWS, ordered from least to most urgent.
ALERT_LEVELS: List[str] = ["Normal", "Watch", "Warning", "Emergency"]


def build_drought_ontology(graph: Optional[Graph] = None) -> Ontology:
    """Construct the drought domain ontology (aligned to ENVO / DOLCE)."""
    ontology = Ontology(IRI("http://africrid.example.org/ontology/drought"), graph=graph)
    ontology.graph.namespaces.bind("drought", DROUGHT)

    # ------------------------------------------------------------------ #
    # drought event taxonomy
    # ------------------------------------------------------------------ #
    drought_event = ontology.declare_class(
        DROUGHT.DroughtEvent,
        label="drought event",
        comment="A prolonged moisture deficit event affecting a region.",
        parents=[ENVO.DroughtOnsetEvent],
    )
    for name, comment in [
        ("MeteorologicalDrought", "Precipitation deficit relative to climatology."),
        ("AgriculturalDrought", "Soil moisture deficit affecting crops and forage."),
        ("HydrologicalDrought", "Deficit in surface / ground water storage."),
        ("SocioEconomicDrought", "Water shortage affecting supply of economic goods."),
    ]:
        ontology.declare_class(
            DROUGHT[name], label=name, comment=comment, parents=[drought_event]
        )

    # ------------------------------------------------------------------ #
    # severity classes
    # ------------------------------------------------------------------ #
    severity = ontology.declare_class(
        DROUGHT.DroughtSeverity,
        label="drought severity",
        comment="Severity bands aligned to SPI thresholds.",
        parents=[DOLCE.Region],
    )
    previous_bound = None
    for name, bound in SPI_SEVERITY_BANDS:
        cls = ontology.declare_class(
            DROUGHT[name],
            label=name,
            comment=f"SPI below {bound}"
            + (f" and at or above {previous_bound}" if previous_bound is not None else ""),
            parents=[severity],
        )
        ontology.assert_fact(cls.iri, DROUGHT.hasUpperSpiBound, bound)
        previous_bound = bound
    ontology.declare_class(
        DROUGHT.NoDrought,
        label="no drought",
        comment="SPI at or above -0.5.",
        parents=[severity],
    )

    # ------------------------------------------------------------------ #
    # indices, forecasts, alerts
    # ------------------------------------------------------------------ #
    index = ontology.declare_class(
        DROUGHT.DroughtIndex,
        label="drought index",
        comment="A computed scalar summarising moisture conditions.",
        parents=[DOLCE.InformationObject],
    )
    for name, comment in [
        ("StandardizedPrecipitationIndex", "SPI over a configurable accumulation window."),
        ("EffectiveDroughtIndex", "EDI-style daily accumulation index."),
        ("PercentOfNormalIndex", "Precipitation as percent of climatological normal."),
        ("DecileIndex", "Rainfall decile rank against climatology."),
        ("SoilMoistureAnomalyIndex", "Standardised soil moisture anomaly."),
        ("VegetationConditionIndex", "Scaled vegetation index anomaly."),
    ]:
        ontology.declare_class(DROUGHT[name], label=name, comment=comment, parents=[index])

    vulnerability = ontology.declare_class(
        DROUGHT.DroughtVulnerabilityIndex,
        label="drought vulnerability index",
        comment=(
            "Composite exposure x sensitivity x adaptive-capacity score per "
            "district, the artefact the DEWS disseminates."
        ),
        parents=[index],
    )
    forecast = ontology.declare_class(
        DROUGHT.DroughtForecast,
        label="drought forecast",
        comment="A forward-looking statement about drought likelihood for an area.",
        parents=[DOLCE.InformationObject],
    )
    ontology.declare_class(
        DROUGHT.IndigenousForecast,
        label="indigenous forecast",
        comment="Forecast derived from indigenous-knowledge indicators only.",
        parents=[forecast],
    )
    ontology.declare_class(
        DROUGHT.StatisticalForecast,
        label="statistical forecast",
        comment="Forecast derived from sensor data and statistical indices only.",
        parents=[forecast],
    )
    ontology.declare_class(
        DROUGHT.IntegratedForecast,
        label="integrated forecast",
        comment="Forecast fusing semantically integrated sensor data with IK.",
        parents=[forecast],
    )
    alert = ontology.declare_class(
        DROUGHT.DroughtAlert,
        label="drought alert",
        comment="An actionable warning disseminated through output channels.",
        parents=[DOLCE.InformationObject],
    )
    alert_level = ontology.declare_class(
        DROUGHT.AlertLevel,
        label="alert level",
        parents=[DOLCE.Region],
    )
    for idx, name in enumerate(ALERT_LEVELS):
        level = ontology.declare_individual(
            DROUGHT[f"Level{name}"], types=[alert_level], label=name
        )
        ontology.assert_fact(level, DROUGHT.hasRank, idx)

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    ontology.declare_object_property(
        DROUGHT.hasSeverity,
        label="has severity",
        domain=drought_event,
        range=severity,
    )
    ontology.declare_object_property(
        DROUGHT.affectsArea,
        label="affects area",
        domain=drought_event,
        range=ENVO.LandParcel,
    )
    ontology.declare_object_property(
        DROUGHT.derivedFromIndex,
        label="derived from index",
        domain=forecast,
        range=index,
    )
    ontology.declare_object_property(
        DROUGHT.hasAlertLevel,
        label="has alert level",
        domain=alert,
        range=alert_level,
    )
    ontology.declare_object_property(
        DROUGHT.forecastsEvent,
        label="forecasts event",
        domain=forecast,
        range=drought_event,
    )
    ontology.declare_datatype_property(
        DROUGHT.hasIndexValue, label="has index value", domain=index, range=XSD.double
    )
    ontology.declare_datatype_property(
        DROUGHT.hasUpperSpiBound,
        label="has upper SPI bound",
        domain=severity,
        range=XSD.double,
    )
    ontology.declare_datatype_property(
        DROUGHT.hasProbability,
        label="has probability",
        domain=forecast,
        range=XSD.double,
    )
    ontology.declare_datatype_property(
        DROUGHT.hasLeadTimeDays,
        label="has lead time (days)",
        domain=forecast,
        range=XSD.double,
    )
    ontology.declare_datatype_property(
        DROUGHT.hasRank, label="has rank", domain=alert_level, range=XSD.integer
    )

    return ontology


def severity_class_for_spi(spi: float) -> IRI:
    """Map an SPI value to the drought severity class IRI.

    Follows the McKee et al. bands recorded in :data:`SPI_SEVERITY_BANDS`.
    """
    for name, bound in SPI_SEVERITY_BANDS:
        if spi < bound:
            return DROUGHT[name]
    return DROUGHT.NoDrought


def alert_level_for_probability(probability: float) -> IRI:
    """Map a drought probability to the DEWS alert level individual."""
    if probability >= 0.8:
        return DROUGHT.LevelEmergency
    if probability >= 0.6:
        return DROUGHT.LevelWarning
    if probability >= 0.35:
        return DROUGHT.LevelWatch
    return DROUGHT.LevelNormal
