"""Environmental process ontology.

The paper argues (§1, §2) that representing dynamic environmental phenomena
requires modelling the *process* that leads to the *event*: a soil-drying
process, sustained rainfall deficit and heat stress culminate in a drought
event.  This module provides the Object / State / Process / Event backbone
(specialising the DOLCE perdurant branch) together with the observable
environmental properties the Free State deployment measures and the
causal / participation relations that let the reasoner and the CEP engine
track "what, where, when".
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ontologies.vocabulary import DOLCE, ENVO, SSN
from repro.semantics.owl.ontology import Ontology, OntologyClass
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import XSD
from repro.semantics.rdf.term import IRI


#: Canonical observable properties (the unified vocabulary the mediator
#: normalises heterogeneous source terms into).
CANONICAL_PROPERTIES: Dict[str, IRI] = {
    "air_temperature": ENVO.AirTemperature,
    "soil_moisture": ENVO.SoilMoisture,
    "soil_temperature": ENVO.SoilTemperature,
    "rainfall": ENVO.Rainfall,
    "relative_humidity": ENVO.RelativeHumidity,
    "wind_speed": ENVO.WindSpeed,
    "wind_direction": ENVO.WindDirection,
    "solar_radiation": ENVO.SolarRadiation,
    "barometric_pressure": ENVO.BarometricPressure,
    "water_level": ENVO.WaterLevel,
    "evapotranspiration": ENVO.Evapotranspiration,
    "vegetation_index": ENVO.VegetationIndex,
}


def build_environment_ontology(graph: Optional[Graph] = None) -> Ontology:
    """Construct the environmental process ontology (aligned to DOLCE/SSN)."""
    ontology = Ontology(IRI("http://africrid.example.org/ontology/environment"), graph=graph)
    ontology.graph.namespaces.bind("envo", ENVO)

    # ------------------------------------------------------------------ #
    # objects (endurants)
    # ------------------------------------------------------------------ #
    env_object = ontology.declare_class(
        ENVO.EnvironmentalObject,
        label="environmental object",
        comment="Physical endurants participating in environmental processes.",
        parents=[DOLCE.PhysicalObject, SSN.FeatureOfInterest],
    )
    for name, comment in [
        ("LandParcel", "A field, farm or grazing area under observation."),
        ("Catchment", "A hydrological catchment / river basin."),
        ("WaterBody", "River, dam or borehole."),
        ("SoilBody", "The soil column of a land parcel."),
        ("VegetationCover", "Crops, grass or indigenous trees on a parcel."),
        ("Atmosphere", "The local atmospheric column."),
        ("LivestockHerd", "Animals whose condition responds to forage and water."),
    ]:
        ontology.declare_class(ENVO[name], label=name, comment=comment, parents=[env_object])

    # ------------------------------------------------------------------ #
    # states
    # ------------------------------------------------------------------ #
    env_state = ontology.declare_class(
        ENVO.EnvironmentalState,
        label="environmental state",
        comment="A homeomeric condition of an environmental object over an interval.",
        parents=[DOLCE.State],
    )
    for name, comment in [
        ("DrySoilState", "Soil moisture below the wilting-point band."),
        ("WetSoilState", "Soil moisture in or above the field-capacity band."),
        ("HeatStressState", "Sustained above-normal temperature."),
        ("LowWaterLevelState", "Water body level below seasonal norm."),
        ("VegetationStressState", "Vegetation index below seasonal norm."),
        ("NormalConditionState", "No anomalous condition detected."),
    ]:
        ontology.declare_class(ENVO[name], label=name, comment=comment, parents=[env_state])

    # ------------------------------------------------------------------ #
    # processes
    # ------------------------------------------------------------------ #
    env_process = ontology.declare_class(
        ENVO.EnvironmentalProcess,
        label="environmental process",
        comment="A cumulative perdurant with internal change leading towards events.",
        parents=[DOLCE.Process],
    )
    for name, comment in [
        ("SoilDryingProcess", "Progressive decline of soil moisture."),
        ("RainfallDeficitProcess", "Accumulating shortfall of precipitation vs. climatology."),
        ("HeatAccumulationProcess", "Accumulating degree-days above threshold."),
        ("WaterDepletionProcess", "Declining water level in a water body."),
        ("VegetationDeclineProcess", "Progressive loss of vegetation vigour."),
        ("RechargeProcess", "Recovery of soil moisture / water level after rains."),
    ]:
        ontology.declare_class(ENVO[name], label=name, comment=comment, parents=[env_process])

    # ------------------------------------------------------------------ #
    # events
    # ------------------------------------------------------------------ #
    env_event = ontology.declare_class(
        ENVO.EnvironmentalEvent,
        label="environmental event",
        comment="A culminating occurrence inferred from processes and states.",
        parents=[DOLCE.Accomplishment],
    )
    for name, comment in [
        ("DroughtOnsetEvent", "The culmination of deficit processes into drought conditions."),
        ("DroughtRecoveryEvent", "Return to normal conditions after a drought."),
        ("HeatWaveEvent", "Short intense heat episode."),
        ("FloodEvent", "Excess precipitation event (contrast class)."),
        ("FrostEvent", "Sub-zero temperature event."),
    ]:
        ontology.declare_class(ENVO[name], label=name, comment=comment, parents=[env_event])

    # ------------------------------------------------------------------ #
    # observable properties (qualities)
    # ------------------------------------------------------------------ #
    env_property = ontology.declare_class(
        ENVO.EnvironmentalProperty,
        label="environmental property",
        comment="Canonical observable properties of environmental objects.",
        parents=[SSN.ObservableProperty, DOLCE.PhysicalQuality],
    )
    for key, iri in CANONICAL_PROPERTIES.items():
        ontology.declare_class(
            iri,
            label=key.replace("_", " "),
            comment=f"Canonical property '{key}' in the unified vocabulary.",
            parents=[env_property],
        )

    # ------------------------------------------------------------------ #
    # relations
    # ------------------------------------------------------------------ #
    ontology.declare_object_property(
        ENVO.affectsObject,
        label="affects object",
        domain=env_process,
        range=env_object,
    ).subproperty_of(DOLCE.hasParticipant)
    ontology.declare_object_property(
        ENVO.manifestsState,
        label="manifests state",
        domain=env_process,
        range=env_state,
    )
    ontology.declare_object_property(
        ENVO.culminatesIn,
        label="culminates in",
        domain=env_process,
        range=env_event,
    )
    ontology.declare_object_property(
        ENVO.precededBy,
        label="preceded by",
        domain=env_event,
        range=env_process,
    ).inverse_of(ENVO.culminatesIn)
    ontology.declare_object_property(
        ENVO.indicatedBy,
        label="indicated by",
        domain=env_process,
        range=SSN.ObservableProperty,
    )
    ontology.declare_object_property(
        ENVO.occursAt,
        label="occurs at",
        domain=DOLCE.Perdurant,
        range=env_object,
    )
    ontology.declare_datatype_property(
        ENVO.hasOnsetTime, label="has onset time", domain=env_event, range=XSD.double
    )
    ontology.declare_datatype_property(
        ENVO.hasSeverityScore,
        label="has severity score",
        domain=env_event,
        range=XSD.double,
    )

    # Causal structure connecting processes to the drought onset event:
    # which processes indicate which canonical properties.
    indicated_by = ENVO.indicatedBy
    ontology.assert_fact(ENVO.SoilDryingProcess, indicated_by, ENVO.SoilMoisture)
    ontology.assert_fact(ENVO.RainfallDeficitProcess, indicated_by, ENVO.Rainfall)
    ontology.assert_fact(ENVO.HeatAccumulationProcess, indicated_by, ENVO.AirTemperature)
    ontology.assert_fact(ENVO.WaterDepletionProcess, indicated_by, ENVO.WaterLevel)
    ontology.assert_fact(ENVO.VegetationDeclineProcess, indicated_by, ENVO.VegetationIndex)
    culminates = ENVO.culminatesIn
    for process in (
        ENVO.SoilDryingProcess,
        ENVO.RainfallDeficitProcess,
        ENVO.HeatAccumulationProcess,
        ENVO.WaterDepletionProcess,
        ENVO.VegetationDeclineProcess,
    ):
        ontology.assert_fact(process, culminates, ENVO.DroughtOnsetEvent)
    ontology.assert_fact(ENVO.RechargeProcess, culminates, ENVO.DroughtRecoveryEvent)

    return ontology


def canonical_property(key: str) -> IRI:
    """The canonical property IRI for a normalised property key.

    Raises ``KeyError`` for unknown keys; the mediator catches this and
    reports an unresolved term instead of silently passing raw data through.
    """
    return CANONICAL_PROPERTIES[key]
