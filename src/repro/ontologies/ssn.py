"""SSN/SOSA-style semantic sensor network ontology.

The middleware annotates raw sensor readings as *observations*: who observed
(Sensor, on a Platform, in a Deployment), what was observed (an
ObservableProperty of a FeatureOfInterest), the result (value + unit) and
when.  The class names follow the W3C SSN / SOSA pattern the paper's
semantic-sensor-web references build on, and the classes are aligned to the
DOLCE upper ontology: sensors and platforms are physical endurants,
observations are information objects about events, observable properties are
qualities.
"""

from __future__ import annotations

from typing import Optional

from repro.ontologies.vocabulary import DOLCE, GEO, QUDT, SSN
from repro.semantics.owl.ontology import Ontology
from repro.semantics.owl.restrictions import SomeValuesFrom
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import XSD
from repro.semantics.rdf.term import IRI


def build_ssn_ontology(graph: Optional[Graph] = None) -> Ontology:
    """Construct the sensor ontology, aligned to DOLCE.

    The DOLCE classes referenced here must already be present in ``graph``
    when a shared graph is used (the ontology library builds DOLCE first);
    when used stand-alone the alignment triples simply reference the DOLCE
    IRIs without their definitions, which is harmless.
    """
    ontology = Ontology(IRI("http://purl.oclc.org/NET/ssnx/ssn"), graph=graph)
    ontology.graph.namespaces.bind("ssn", SSN)
    ontology.graph.namespaces.bind("geo", GEO)

    # ------------------------------------------------------------------ #
    # classes
    # ------------------------------------------------------------------ #
    system = ontology.declare_class(
        SSN.System,
        label="system",
        comment="A unit of abstraction for pieces of sensing infrastructure.",
        parents=[DOLCE.PhysicalObject],
    )
    sensor = ontology.declare_class(
        SSN.Sensor,
        label="sensor",
        comment="A device that observes an observable property and produces observations.",
        parents=[system],
    )
    platform = ontology.declare_class(
        SSN.Platform,
        label="platform",
        comment="The entity (mote, weather station, person with a phone) hosting sensors.",
        parents=[DOLCE.PhysicalObject],
    )
    deployment = ontology.declare_class(
        SSN.Deployment,
        label="deployment",
        comment="The process of installing sensing infrastructure at a site.",
        parents=[DOLCE.Process],
    )
    observable_property = ontology.declare_class(
        SSN.ObservableProperty,
        label="observable property",
        comment="A quality of a feature of interest that a sensor can observe.",
        parents=[DOLCE.PhysicalQuality],
    )
    feature = ontology.declare_class(
        SSN.FeatureOfInterest,
        label="feature of interest",
        comment="The real-world entity whose property is observed (a field, a river).",
        parents=[DOLCE.PhysicalObject],
    )
    observation = ontology.declare_class(
        SSN.Observation,
        label="observation",
        comment="The act and record of estimating a property value at a time.",
        parents=[DOLCE.InformationObject],
    )
    result = ontology.declare_class(
        SSN.SensorOutput,
        label="sensor output",
        comment="The result produced by an observation: value plus unit.",
        parents=[DOLCE.InformationObject],
    )
    stimulus = ontology.declare_class(
        SSN.Stimulus,
        label="stimulus",
        comment="The environmental event that triggered the sensor (a DOLCE event).",
        parents=[DOLCE.Event],
    )
    ontology.declare_class(
        SSN.SensingDevice,
        label="sensing device",
        comment="A sensor that is also a physical device (as opposed to a human observer).",
        parents=[sensor],
    )
    human_sensor = ontology.declare_class(
        SSN.HumanSensor,
        label="human sensor",
        comment=(
            "A person acting as an observer, e.g. a farmer reporting an "
            "indigenous indicator sighting through a mobile phone."
        ),
        parents=[sensor],
    )

    # ------------------------------------------------------------------ #
    # object properties
    # ------------------------------------------------------------------ #
    ontology.declare_object_property(
        SSN.observes, label="observes", domain=sensor, range=observable_property
    )
    observed_by = ontology.declare_object_property(
        SSN.observedBy, label="observed by", domain=observation, range=sensor
    )
    ontology.declare_object_property(
        SSN.madeObservation, label="made observation", domain=sensor, range=observation
    ).inverse_of(observed_by)
    ontology.declare_object_property(
        SSN.observedProperty,
        label="observed property",
        domain=observation,
        range=observable_property,
    )
    ontology.declare_object_property(
        SSN.featureOfInterest,
        label="feature of interest",
        domain=observation,
        range=feature,
    )
    ontology.declare_object_property(
        SSN.hasResult, label="has result", domain=observation, range=result
    )
    ontology.declare_object_property(
        SSN.onPlatform, label="on platform", domain=system, range=platform
    )
    ontology.declare_object_property(
        SSN.attachedSystem, label="attached system", domain=platform, range=system
    ).inverse_of(SSN.onPlatform)
    ontology.declare_object_property(
        SSN.deployedOnPlatform,
        label="deployed on platform",
        domain=deployment,
        range=platform,
    )
    ontology.declare_object_property(
        SSN.wasOriginatedBy,
        label="was originated by",
        domain=observation,
        range=stimulus,
    )
    ontology.declare_object_property(
        SSN.isPropertyOf,
        label="is property of",
        domain=observable_property,
        range=feature,
    ).subproperty_of(DOLCE.inheresIn)
    ontology.declare_object_property(
        SSN.hasUnit, label="has unit", domain=result, range=QUDT.Unit
    )

    # ------------------------------------------------------------------ #
    # datatype properties
    # ------------------------------------------------------------------ #
    ontology.declare_datatype_property(
        SSN.hasValue, label="has value", domain=result, range=XSD.double
    )
    ontology.declare_datatype_property(
        SSN.observationResultTime,
        label="observation result time",
        domain=observation,
        range=XSD.double,
    )
    ontology.declare_datatype_property(
        SSN.observationSamplingTime,
        label="observation sampling time",
        domain=observation,
        range=XSD.double,
    )
    ontology.declare_datatype_property(
        SSN.hasAccuracy, label="has accuracy", domain=sensor, range=XSD.double
    )
    ontology.declare_datatype_property(
        GEO.lat, label="latitude", domain=platform, range=XSD.double
    )
    ontology.declare_datatype_property(
        GEO.long, label="longitude", domain=platform, range=XSD.double
    )

    # A well-formed observation names the sensor that made it and the
    # property it observed.
    observation.add_restriction(SomeValuesFrom(SSN.observedBy, SSN.Sensor))
    observation.add_restriction(
        SomeValuesFrom(SSN.observedProperty, SSN.ObservableProperty)
    )

    return ontology
