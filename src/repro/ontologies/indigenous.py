"""Indigenous knowledge ontology.

Encodes the structure of the indigenous drought-forecasting knowledge the
paper wants to integrate with sensor data: *indicators* (biological,
meteorological, astronomical and behavioural signs recognised by local
communities), *sightings* of those indicators reported by observers, and the
*implied conditions* (drier / wetter season ahead) each indicator carries,
with a community-assigned reliability.

The specific indicator individuals (sifennefene worms, mutiga tree
flowering, etc.) are created by :mod:`repro.ik.indicators`; this module
supplies the classes and relations they instantiate so the knowledge is
representable in the unified ontology and can be queried and reasoned over
alongside the sensor observations.
"""

from __future__ import annotations

from typing import Optional

from repro.ontologies.vocabulary import DOLCE, DROUGHT, ENVO, IK, SSN
from repro.semantics.owl.ontology import Ontology
from repro.semantics.owl.restrictions import SomeValuesFrom
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import XSD
from repro.semantics.rdf.term import IRI


def build_indigenous_ontology(graph: Optional[Graph] = None) -> Ontology:
    """Construct the indigenous-knowledge ontology (aligned to DOLCE/SSN)."""
    ontology = Ontology(IRI("http://africrid.example.org/ontology/indigenous"), graph=graph)
    ontology.graph.namespaces.bind("ik", IK)

    # ------------------------------------------------------------------ #
    # indicator taxonomy
    # ------------------------------------------------------------------ #
    indicator = ontology.declare_class(
        IK.IndigenousIndicator,
        label="indigenous indicator",
        comment=(
            "A sign recognised by a local community as carrying information "
            "about coming seasonal conditions."
        ),
        parents=[DOLCE.SocialObject],
    )
    for name, comment in [
        ("BiologicalIndicator", "Plant or animal behaviour, e.g. sifennefene worm abundance."),
        ("PlantIndicator", "Plant phenology, e.g. mutiga tree flowering or shedding."),
        ("AnimalIndicator", "Animal behaviour, e.g. bird migration, frog calls."),
        ("InsectIndicator", "Insect behaviour, e.g. armyworm or termite activity."),
        ("MeteorologicalIndicator", "Sky, wind, cloud or haze patterns read by elders."),
        ("AstronomicalIndicator", "Moon halo, star visibility and similar signs."),
        ("HydrologicalIndicator", "Spring flow, riverbed state and similar signs."),
    ]:
        ontology.declare_class(IK[name], label=name, comment=comment, parents=[indicator])
    # refine the biological sub-hierarchy
    ontology.classes[IK.PlantIndicator].subclass_of(IK.BiologicalIndicator)
    ontology.classes[IK.AnimalIndicator].subclass_of(IK.BiologicalIndicator)
    ontology.classes[IK.InsectIndicator].subclass_of(IK.AnimalIndicator)

    # ------------------------------------------------------------------ #
    # sightings and implied conditions
    # ------------------------------------------------------------------ #
    sighting = ontology.declare_class(
        IK.IndicatorSighting,
        label="indicator sighting",
        comment=(
            "A dated report that an indicator was observed, made by a "
            "community observer (a human sensor in SSN terms)."
        ),
        parents=[SSN.Observation],
    )
    sighting.add_restriction(SomeValuesFrom(IK.sightedIndicator, IK.IndigenousIndicator))

    implied = ontology.declare_class(
        IK.ImpliedCondition,
        label="implied condition",
        comment="The seasonal condition a sighting points to (drier / wetter / normal).",
        parents=[DOLCE.Region],
    )
    for name in ("DrierCondition", "WetterCondition", "NormalCondition"):
        ontology.declare_individual(IK[name], types=[implied], label=name)

    observer = ontology.declare_class(
        IK.CommunityObserver,
        label="community observer",
        comment="A farmer or elder reporting indicator sightings.",
        parents=[SSN.HumanSensor],
    )
    forecast_rule = ontology.declare_class(
        IK.IndigenousForecastRule,
        label="indigenous forecast rule",
        comment=(
            "A codified rule derived from elicitation: indicator state implies "
            "condition with a community-assigned reliability."
        ),
        parents=[DOLCE.InformationObject],
    )

    # ------------------------------------------------------------------ #
    # relations
    # ------------------------------------------------------------------ #
    ontology.declare_object_property(
        IK.sightedIndicator,
        label="sighted indicator",
        domain=sighting,
        range=indicator,
    )
    ontology.declare_object_property(
        IK.reportedBy, label="reported by", domain=sighting, range=observer
    ).subproperty_of(SSN.observedBy)
    ontology.declare_object_property(
        IK.implies, label="implies", domain=indicator, range=implied
    )
    ontology.declare_object_property(
        IK.indicatesProcess,
        label="indicates process",
        domain=indicator,
        range=ENVO.EnvironmentalProcess,
    )
    ontology.declare_object_property(
        IK.derivedFromIndicator,
        label="derived from indicator",
        domain=forecast_rule,
        range=indicator,
    )
    ontology.declare_object_property(
        IK.supportsForecast,
        label="supports forecast",
        domain=sighting,
        range=DROUGHT.IndigenousForecast,
    )
    ontology.declare_datatype_property(
        IK.hasReliability,
        label="has reliability",
        domain=indicator,
        range=XSD.double,
    )
    ontology.declare_datatype_property(
        IK.hasLeadTimeDays,
        label="has lead time (days)",
        domain=indicator,
        range=XSD.double,
    )
    ontology.declare_datatype_property(
        IK.sightingIntensity,
        label="sighting intensity",
        domain=sighting,
        range=XSD.double,
    )
    ontology.declare_datatype_property(
        IK.elicitedFromCommunity,
        label="elicited from community",
        domain=forecast_rule,
        range=XSD.string,
    )

    return ontology
