"""Term alignment: resolving naming heterogeneity.

The paper's running example of naming heterogeneity is that the water-level
property is called "Hoehe" by a German-built gauge and "Stav" by a Czech
one.  Different vendors, standards (SensorML, WaterML, O&M) and information
communities use different field names, languages, spellings and
abbreviations for the same observable property.

This module maintains the alignment table between *source terms* (as they
appear in raw data streams) and the *canonical properties* of the unified
ontology, and materialises the alignment as ``owl:equivalentClass`` /
``skos``-style label triples so the reasoner can use it.  Matching combines
exact lookup, normalisation (case, punctuation, underscores), a synonym
dictionary covering multiple languages and vendor schemas, and a
similarity-based fallback for unseen spellings.
"""

from __future__ import annotations

import difflib
import re
import unicodedata
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ontologies.environment import CANONICAL_PROPERTIES
from repro.ontologies.vocabulary import ENVO
from repro.semantics.owl.ontology import Ontology
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import OWL, RDFS, Namespace
from repro.semantics.rdf.term import IRI, Literal
from repro.semantics.rdf.triple import Triple

#: Namespace under which unknown source terms are minted before alignment.
SOURCE_TERMS = Namespace("http://africrid.example.org/sourceterm/")


#: Synonym table: canonical property key -> source spellings seen in the
#: wild (multiple languages, vendor schema field names, standard tags).
SYNONYMS: Dict[str, List[str]] = {
    "air_temperature": [
        "temperature", "temp", "air temp", "tair", "t_air", "airtemperature",
        "ambient temperature", "lufttemperatur", "temperatur", "teplota",
        "temperatura", "dry bulb temperature", "ta", "temp_c", "temp_f", "tc",
    ],
    "soil_moisture": [
        "soil moisture", "soilmoist", "soil_moist", "sm", "vwc",
        "volumetric water content", "bodenfeuchte", "vlhkost pudy",
        "humedad del suelo", "soil_water", "soil water content", "theta_v",
        "moisture",
    ],
    "soil_temperature": [
        "soil temperature", "tsoil", "t_soil", "bodentemperatur",
        "teplota pudy", "ground temperature", "soil temp",
    ],
    "rainfall": [
        "rain", "precipitation", "precip", "rain_mm", "rainfall amount",
        "niederschlag", "srazky", "pluie", "precipitacion", "rain gauge",
        "rain_accumulated", "ppt", "prcp", "pluvio", "rain today",
    ],
    "relative_humidity": [
        "humidity", "rh", "relhum", "rel humidity", "luftfeuchtigkeit",
        "vlhkost", "humedad", "relative humidity", "hum",
    ],
    "wind_speed": [
        "wind", "windspeed", "wind velocity", "ws", "windgeschwindigkeit",
        "rychlost vetru", "viento", "wind_speed_ms", "ff", "ane", "anemometer",
    ],
    "wind_direction": [
        "wind direction", "wd", "winddir", "windrichtung", "smer vetru", "dd",
    ],
    "solar_radiation": [
        "radiation", "solar", "srad", "global radiation", "globalstrahlung",
        "solar irradiance", "shortwave radiation", "rs", "rad",
    ],
    "barometric_pressure": [
        "pressure", "air pressure", "baro", "luftdruck", "tlak",
        "atmospheric pressure", "slp", "station pressure", "pres",
    ],
    "water_level": [
        "water level", "level", "stage", "hoehe", "höhe", "stav",
        "wasserstand", "river level", "gauge height", "waterlevel",
        "niveau d'eau", "nivel de agua",
    ],
    "evapotranspiration": [
        "et", "eto", "evapotranspiration", "reference et", "pet",
        "potential evapotranspiration", "verdunstung",
    ],
    "vegetation_index": [
        "ndvi", "vegetation index", "evi", "greenness", "vci",
        "vegetationsindex", "vegetation condition",
    ],
}


def normalise_term(term: str) -> str:
    """Normalise a raw source term for dictionary lookup.

    Lower-cases, strips accents, removes punctuation and collapses
    separators, so that ``"Soil_Moisture(%)"`` and ``"soil moisture"`` meet.
    """
    text = unicodedata.normalize("NFKD", term)
    text = "".join(ch for ch in text if not unicodedata.combining(ch))
    text = text.lower()
    text = re.sub(r"\(.*?\)", " ", text)
    text = re.sub(r"[^a-z0-9]+", " ", text)
    return " ".join(text.split())


@dataclass
class AlignmentResult:
    """Outcome of aligning one source term."""

    source_term: str
    canonical_key: Optional[str]
    canonical_iri: Optional[IRI]
    method: str                    # "exact" | "synonym" | "fuzzy" | "unresolved"
    confidence: float

    @property
    def resolved(self) -> bool:
        """Whether the term was mapped to a canonical property."""
        return self.canonical_iri is not None


@dataclass
class AlignmentStatistics:
    """Aggregate counters kept by a :class:`TermAligner`."""

    total: int = 0
    exact: int = 0
    synonym: int = 0
    fuzzy: int = 0
    unresolved: int = 0

    @property
    def resolution_rate(self) -> float:
        """Fraction of lookups that found a canonical property."""
        if self.total == 0:
            return 0.0
        return 1.0 - self.unresolved / self.total

    def record(self, result: AlignmentResult) -> None:
        """Update the counters with one alignment outcome."""
        self.total += 1
        if result.method == "exact":
            self.exact += 1
        elif result.method == "synonym":
            self.synonym += 1
        elif result.method == "fuzzy":
            self.fuzzy += 1
        else:
            self.unresolved += 1


class TermAligner:
    """Maps heterogeneous source terms to canonical observable properties.

    Parameters
    ----------
    fuzzy_threshold:
        Minimum :mod:`difflib` similarity ratio for the fuzzy fallback.
        Set to 1.0 to disable fuzzy matching (used by the mediation
        ablation benchmark).
    extra_synonyms:
        Additional ``canonical_key -> [spellings]`` entries, e.g. learned
        during deployment or elicited alongside IK.
    """

    def __init__(
        self,
        fuzzy_threshold: float = 0.84,
        extra_synonyms: Optional[Dict[str, Iterable[str]]] = None,
    ):
        self.fuzzy_threshold = fuzzy_threshold
        self.statistics = AlignmentStatistics()
        self._lookup: Dict[str, str] = {}
        for key in CANONICAL_PROPERTIES:
            self._lookup[normalise_term(key)] = key
            self._lookup[normalise_term(key.replace("_", " "))] = key
        for key, spellings in SYNONYMS.items():
            for spelling in spellings:
                self._lookup.setdefault(normalise_term(spelling), key)
        if extra_synonyms:
            for key, spellings in extra_synonyms.items():
                if key not in CANONICAL_PROPERTIES:
                    raise KeyError(f"unknown canonical property: {key!r}")
                for spelling in spellings:
                    self._lookup[normalise_term(spelling)] = key

    def add_synonym(self, canonical_key: str, spelling: str) -> None:
        """Register a new source spelling for a canonical property."""
        if canonical_key not in CANONICAL_PROPERTIES:
            raise KeyError(f"unknown canonical property: {canonical_key!r}")
        self._lookup[normalise_term(spelling)] = canonical_key

    def align(self, source_term: str) -> AlignmentResult:
        """Resolve one source term, recording statistics."""
        result = self._align(source_term)
        self.statistics.record(result)
        return result

    def _align(self, source_term: str) -> AlignmentResult:
        normalised = normalise_term(source_term)
        if not normalised:
            return AlignmentResult(source_term, None, None, "unresolved", 0.0)
        # exact canonical key
        if normalised in (normalise_term(k) for k in CANONICAL_PROPERTIES):
            key = self._lookup[normalised]
            return AlignmentResult(source_term, key, CANONICAL_PROPERTIES[key], "exact", 1.0)
        # synonym dictionary
        key = self._lookup.get(normalised)
        if key is not None:
            return AlignmentResult(source_term, key, CANONICAL_PROPERTIES[key], "synonym", 0.95)
        # fuzzy fallback
        if self.fuzzy_threshold < 1.0:
            candidates = difflib.get_close_matches(
                normalised, list(self._lookup), n=1, cutoff=self.fuzzy_threshold
            )
            if candidates:
                matched = candidates[0]
                key = self._lookup[matched]
                ratio = difflib.SequenceMatcher(None, normalised, matched).ratio()
                return AlignmentResult(
                    source_term, key, CANONICAL_PROPERTIES[key], "fuzzy", ratio
                )
        return AlignmentResult(source_term, None, None, "unresolved", 0.0)

    def materialize_alignment(self, graph: Graph, source_terms: Iterable[str]) -> int:
        """Write alignment axioms for ``source_terms`` into ``graph``.

        Each resolved term is minted as a class in the source-term namespace,
        declared ``owl:equivalentClass`` to its canonical property and given
        an ``rdfs:label`` carrying the original spelling.  Returns the number
        of resolved terms.
        """
        graph.namespaces.bind("srcterm", SOURCE_TERMS)
        resolved = 0
        for term in source_terms:
            result = self.align(term)
            if not result.resolved:
                continue
            local = re.sub(r"[^A-Za-z0-9]+", "_", term).strip("_") or "term"
            source_iri = SOURCE_TERMS[local]
            graph.add(Triple(source_iri, OWL.equivalentClass, result.canonical_iri))
            graph.add(Triple(source_iri, RDFS.label, Literal(term)))
            resolved += 1
        return resolved


def build_alignment_ontology(graph: Optional[Graph] = None) -> Ontology:
    """Materialise the full synonym table as an alignment ontology.

    Every known spelling becomes an ``rdfs:label`` (with a best-effort
    language tag of ``und``) on the canonical property class, so the
    alignment is visible to SPARQL queries and external tools.
    """
    ontology = Ontology(IRI("http://africrid.example.org/ontology/alignment"), graph=graph)
    ontology.graph.namespaces.bind("envo", ENVO)
    for key, spellings in SYNONYMS.items():
        canonical = CANONICAL_PROPERTIES[key]
        for spelling in spellings:
            ontology.graph.add(Triple(canonical, RDFS.label, Literal(spelling, lang="und")))
    return ontology
