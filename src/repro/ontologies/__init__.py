"""The ontology library (paper Fig. 1).

The paper proposes a *unified ontology* assembled from an upper-level
foundational ontology (DOLCE) extended with domain ontologies for sensing,
environmental processes, the drought domain and indigenous knowledge, plus
alignment and measurement-unit vocabularies:

``repro.ontologies.vocabulary``
    All namespace objects and canonical IRIs used across the system.
``repro.ontologies.dolce``
    DOLCE-inspired upper ontology: endurants, perdurants, qualities.
``repro.ontologies.ssn``
    SSN/SOSA-style sensor ontology: Sensor, Observation, ObservableProperty,
    FeatureOfInterest, Platform, Deployment.
``repro.ontologies.environment``
    Environmental process ontology: Object / State / Process / Event and the
    participation relations the paper argues are needed to track the
    "what / where / when" of phenomena.
``repro.ontologies.drought``
    Drought domain ontology: drought types, severity classes, precursors,
    indices and the drought vulnerability index.
``repro.ontologies.indigenous``
    Indigenous-knowledge ontology: indicator classes (biological,
    meteorological, astronomical), sightings and implied conditions.
``repro.ontologies.units``
    QUDT-like measurement units with conversion factors.
``repro.ontologies.alignment``
    Multilingual / cross-community term alignment used to resolve naming
    heterogeneity (e.g. "Hoehe" / "Stav" / "water level").
``repro.ontologies.library``
    Builds the unified ontology by importing all of the above into one
    graph, mirroring the paper's ontology library figure.
"""

from repro.ontologies.vocabulary import (
    AFRICRID,
    DOLCE,
    DROUGHT,
    ENVO,
    GEO,
    IK,
    QUDT,
    SSN,
    UNIT,
)
from repro.ontologies.library import OntologyLibrary, build_unified_ontology

__all__ = [
    "DOLCE",
    "SSN",
    "ENVO",
    "DROUGHT",
    "IK",
    "AFRICRID",
    "GEO",
    "QUDT",
    "UNIT",
    "OntologyLibrary",
    "build_unified_ontology",
]
