"""DOLCE-inspired upper ontology.

The paper (§4) proposes DOLCE (Descriptive Ontology for Linguistic and
Cognitive Engineering, WonderWeb deliverable D17) as the upper-level
foundational ontology, with domain entities classified into *endurants*
(wholly present at any time: physical objects such as a sensor node, a
river, a mutiga tree), *perdurants* (entities that happen in time: states,
processes, events such as a rainfall deficit process or a drought event) and
*qualities* (entities that inhere in other entities: soil moisture,
temperature, rainfall amount), plus abstract *regions* in which quality
values are located (quale).

This module builds a faithful, compact subset of the DOLCE-Lite taxonomy:
the branches the middleware actually classifies into, with the participation
and inherence relations between them.
"""

from __future__ import annotations

from repro.ontologies.vocabulary import DOLCE
from repro.semantics.owl.ontology import Ontology
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import XSD
from repro.semantics.rdf.term import IRI


def build_dolce_ontology(graph: Graph = None) -> Ontology:
    """Construct the DOLCE upper ontology.

    Returns an :class:`~repro.semantics.owl.ontology.Ontology` whose graph
    contains the taxonomy and core relations.  Pass an existing graph to
    materialise into the shared unified-ontology graph.
    """
    ontology = Ontology(IRI("http://www.loa-cnr.it/ontologies/DOLCE-Lite"), graph=graph)
    ontology.graph.namespaces.bind("dolce", DOLCE)

    # ------------------------------------------------------------------ #
    # top level
    # ------------------------------------------------------------------ #
    particular = ontology.declare_class(
        DOLCE.Particular,
        label="particular",
        comment="Any entity that cannot be instantiated (the DOLCE root).",
    )

    endurant = ontology.declare_class(
        DOLCE.Endurant,
        label="endurant",
        comment="Entity wholly present at any time it is present (continuant).",
        parents=[particular],
    )
    perdurant = ontology.declare_class(
        DOLCE.Perdurant,
        label="perdurant",
        comment="Entity that happens in time and accumulates temporal parts (occurrent).",
        parents=[particular],
    )
    quality = ontology.declare_class(
        DOLCE.Quality,
        label="quality",
        comment="Entity that inheres in another entity, e.g. the soil moisture of a field.",
        parents=[particular],
    )
    abstract = ontology.declare_class(
        DOLCE.Abstract,
        label="abstract",
        comment="Entity outside space-time, e.g. a region of quality values.",
        parents=[particular],
    )

    # ------------------------------------------------------------------ #
    # endurant branch
    # ------------------------------------------------------------------ #
    physical_endurant = ontology.declare_class(
        DOLCE.PhysicalEndurant, label="physical endurant", parents=[endurant]
    )
    non_physical_endurant = ontology.declare_class(
        DOLCE.NonPhysicalEndurant, label="non-physical endurant", parents=[endurant]
    )
    ontology.declare_class(
        DOLCE.PhysicalObject,
        label="physical object",
        comment="Unified material endurants: sensor nodes, plants, animals, rivers.",
        parents=[physical_endurant],
    )
    ontology.declare_class(
        DOLCE.AmountOfMatter,
        label="amount of matter",
        comment="Unstructured matter such as a volume of water or soil.",
        parents=[physical_endurant],
    )
    ontology.declare_class(
        DOLCE.Feature,
        label="feature",
        comment="Dependent places/parts such as a catchment or field boundary.",
        parents=[physical_endurant],
    )
    ontology.declare_class(
        DOLCE.SocialObject,
        label="social object",
        comment="Non-physical endurants created by communities, e.g. an indigenous forecast.",
        parents=[non_physical_endurant],
    )
    ontology.declare_class(
        DOLCE.InformationObject,
        label="information object",
        comment="Encoded content such as an observation record or a forecast bulletin.",
        parents=[non_physical_endurant],
    )

    # ------------------------------------------------------------------ #
    # perdurant branch
    # ------------------------------------------------------------------ #
    stative = ontology.declare_class(
        DOLCE.Stative, label="stative", parents=[perdurant]
    )
    eventive = ontology.declare_class(
        DOLCE.Event, label="event", parents=[perdurant],
        comment="Perdurants that are not homeomeric; culminations and achievements.",
    )
    ontology.declare_class(
        DOLCE.State,
        label="state",
        comment="Homeomeric stative perdurant, e.g. 'the soil is dry'.",
        parents=[stative],
    )
    ontology.declare_class(
        DOLCE.Process,
        label="process",
        comment="Stative perdurant with internal change, e.g. progressive soil drying.",
        parents=[stative],
    )
    ontology.declare_class(
        DOLCE.Achievement,
        label="achievement",
        comment="Instantaneous event, e.g. a threshold crossing.",
        parents=[eventive],
    )
    ontology.declare_class(
        DOLCE.Accomplishment,
        label="accomplishment",
        comment="Extended event with a culmination, e.g. a drought episode.",
        parents=[eventive],
    )

    # ------------------------------------------------------------------ #
    # quality branch
    # ------------------------------------------------------------------ #
    ontology.declare_class(
        DOLCE.PhysicalQuality,
        label="physical quality",
        comment="Qualities of physical endurants: temperature, moisture, height.",
        parents=[quality],
    )
    ontology.declare_class(
        DOLCE.TemporalQuality,
        label="temporal quality",
        comment="Qualities of perdurants: duration, onset time.",
        parents=[quality],
    )
    ontology.declare_class(
        DOLCE.AbstractQuality,
        label="abstract quality",
        comment="Qualities of non-physical endurants, e.g. forecast confidence.",
        parents=[quality],
    )

    # ------------------------------------------------------------------ #
    # abstract branch
    # ------------------------------------------------------------------ #
    region = ontology.declare_class(
        DOLCE.Region, label="region", parents=[abstract],
        comment="Value space in which a quale is located.",
    )
    ontology.declare_class(
        DOLCE.PhysicalRegion, label="physical region", parents=[region]
    )
    ontology.declare_class(
        DOLCE.TemporalRegion, label="temporal region", parents=[region]
    )
    ontology.declare_class(
        DOLCE.SpaceRegion, label="space region", parents=[region]
    )

    # ------------------------------------------------------------------ #
    # core relations
    # ------------------------------------------------------------------ #
    ontology.declare_object_property(
        DOLCE.participantIn,
        label="participant in",
        domain=endurant,
        range=perdurant,
    )
    ontology.declare_object_property(
        DOLCE.hasParticipant,
        label="has participant",
        domain=perdurant,
        range=endurant,
    ).inverse_of(DOLCE.participantIn)
    ontology.declare_object_property(
        DOLCE.hasQuality,
        label="has quality",
        domain=particular,
        range=quality,
    )
    ontology.declare_object_property(
        DOLCE.inheresIn,
        label="inheres in",
        domain=quality,
        range=particular,
    ).inverse_of(DOLCE.hasQuality)
    ontology.declare_object_property(
        DOLCE.hasQuale,
        label="has quale",
        domain=quality,
        range=region,
    )
    ontology.declare_object_property(
        DOLCE.partOf,
        label="part of",
        domain=particular,
        range=particular,
    ).make_transitive()
    ontology.declare_object_property(
        DOLCE.constituentOf,
        label="constituent of",
        domain=particular,
        range=particular,
    )
    ontology.declare_object_property(
        DOLCE.precedes,
        label="precedes",
        domain=perdurant,
        range=perdurant,
    ).make_transitive()
    ontology.declare_datatype_property(
        DOLCE.hasQualityValue,
        label="has quality value",
        domain=quality,
        range=XSD.double,
    )

    return ontology


#: Convenient aliases used by the classification helpers in the middleware.
ENDURANT = DOLCE.Endurant
PERDURANT = DOLCE.Perdurant
QUALITY = DOLCE.Quality
EVENT = DOLCE.Event
PROCESS = DOLCE.Process
STATE = DOLCE.State
PHYSICAL_OBJECT = DOLCE.PhysicalObject
PHYSICAL_QUALITY = DOLCE.PhysicalQuality
