"""Measurement units and conversions (QUDT-style).

One face of *cognitive heterogeneity* in the paper is that heterogeneous
sources report the same property in different units and scales: a Libelium
mote reports soil moisture in volumetric percent, a legacy weather station
reports temperature in Fahrenheit, a river gauge reports level in feet.
This module declares the unit vocabulary in the ontology and provides the
conversion engine the mediator uses to normalise every result into the
canonical unit of its property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.ontologies.vocabulary import QUDT, UNIT
from repro.semantics.owl.ontology import Ontology
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import XSD
from repro.semantics.rdf.term import IRI


class UnitConversionError(ValueError):
    """Raised when a value cannot be converted between two units."""


@dataclass(frozen=True)
class UnitDefinition:
    """A unit with its dimension and affine conversion to the base unit.

    ``value_in_base = multiplier * value + offset``.
    """

    iri: IRI
    symbol: str
    dimension: str
    multiplier: float = 1.0
    offset: float = 0.0

    def to_base(self, value: float) -> float:
        """Convert ``value`` from this unit into the dimension's base unit."""
        return self.multiplier * value + self.offset

    def from_base(self, value: float) -> float:
        """Convert ``value`` from the base unit into this unit."""
        return (value - self.offset) / self.multiplier


#: Registry of known units.  The first unit declared for a dimension with
#: multiplier 1 / offset 0 is that dimension's base unit.
UNIT_DEFINITIONS: Dict[str, UnitDefinition] = {}


def _register(symbol: str, local: str, dimension: str, multiplier: float = 1.0, offset: float = 0.0) -> UnitDefinition:
    definition = UnitDefinition(UNIT[local], symbol, dimension, multiplier, offset)
    UNIT_DEFINITIONS[symbol] = definition
    return definition


# temperature (base: degree Celsius, the unit the forecasting layer expects)
_register("degC", "DegreeCelsius", "temperature")
_register("degF", "DegreeFahrenheit", "temperature", multiplier=5.0 / 9.0, offset=-160.0 / 9.0)
_register("K", "Kelvin", "temperature", multiplier=1.0, offset=-273.15)

# precipitation depth (base: millimetre)
_register("mm", "Millimetre", "length")
_register("cm", "Centimetre", "length", multiplier=10.0)
_register("m", "Metre", "length", multiplier=1000.0)
_register("in", "Inch", "length", multiplier=25.4)
_register("ft", "Foot", "length", multiplier=304.8)

# soil moisture / humidity (base: percent)
_register("percent", "Percent", "fraction")
_register("fraction", "Fraction", "fraction", multiplier=100.0)
_register("permille", "PerMille", "fraction", multiplier=0.1)

# wind speed (base: metre per second)
_register("m/s", "MetrePerSecond", "speed")
_register("km/h", "KilometrePerHour", "speed", multiplier=1.0 / 3.6)
_register("knot", "Knot", "speed", multiplier=0.514444)

# pressure (base: hectopascal)
_register("hPa", "Hectopascal", "pressure")
_register("kPa", "Kilopascal", "pressure", multiplier=10.0)
_register("mmHg", "MillimetreOfMercury", "pressure", multiplier=1.33322)

# solar radiation (base: watt per square metre)
_register("W/m2", "WattPerSquareMetre", "irradiance")
_register("MJ/m2/day", "MegajoulePerSquareMetrePerDay", "irradiance", multiplier=11.574)

# dimensionless indices
_register("index", "DimensionlessIndex", "dimensionless")
_register("degree", "Degree", "angle")


#: Canonical unit per property dimension used by the mediator.
CANONICAL_UNITS: Dict[str, str] = {
    "temperature": "degC",
    "length": "mm",
    "fraction": "percent",
    "speed": "m/s",
    "pressure": "hPa",
    "irradiance": "W/m2",
    "dimensionless": "index",
    "angle": "degree",
}


def get_unit(symbol: str) -> UnitDefinition:
    """Look up a unit by symbol.

    Raises :class:`UnitConversionError` for unknown symbols so callers can
    report an unresolved-unit heterogeneity failure.
    """
    try:
        return UNIT_DEFINITIONS[symbol]
    except KeyError as exc:
        raise UnitConversionError(f"unknown unit symbol: {symbol!r}") from exc


def convert(value: float, from_symbol: str, to_symbol: str) -> float:
    """Convert ``value`` between two units of the same dimension."""
    source = get_unit(from_symbol)
    target = get_unit(to_symbol)
    if source.dimension != target.dimension:
        raise UnitConversionError(
            f"cannot convert between dimensions: "
            f"{source.dimension!r} ({from_symbol}) -> {target.dimension!r} ({to_symbol})"
        )
    return target.from_base(source.to_base(value))


def to_canonical(value: float, from_symbol: str) -> float:
    """Convert ``value`` into the canonical unit of its dimension."""
    source = get_unit(from_symbol)
    return convert(value, from_symbol, CANONICAL_UNITS[source.dimension])


def canonical_symbol(from_symbol: str) -> str:
    """The canonical unit symbol for the dimension of ``from_symbol``."""
    return CANONICAL_UNITS[get_unit(from_symbol).dimension]


def build_units_ontology(graph: Optional[Graph] = None) -> Ontology:
    """Materialise the unit vocabulary into an ontology graph."""
    ontology = Ontology(IRI("http://qudt.org/schema/qudt"), graph=graph)
    ontology.graph.namespaces.bind("qudt", QUDT)
    ontology.graph.namespaces.bind("unit", UNIT)

    unit_class = ontology.declare_class(
        QUDT.Unit, label="unit", comment="A unit of measure."
    )
    ontology.declare_class(
        QUDT.QuantityKind, label="quantity kind", comment="A dimension of measurement."
    )
    ontology.declare_datatype_property(
        QUDT.conversionMultiplier,
        label="conversion multiplier",
        domain=unit_class,
        range=XSD.double,
    )
    ontology.declare_datatype_property(
        QUDT.conversionOffset,
        label="conversion offset",
        domain=unit_class,
        range=XSD.double,
    )
    ontology.declare_datatype_property(
        QUDT.symbol, label="symbol", domain=unit_class, range=XSD.string
    )

    dimensions: Dict[str, IRI] = {}
    for symbol, definition in UNIT_DEFINITIONS.items():
        dim_iri = dimensions.get(definition.dimension)
        if dim_iri is None:
            dim_iri = QUDT[definition.dimension.capitalize() + "Kind"]
            dimensions[definition.dimension] = dim_iri
            ontology.declare_individual(dim_iri, types=[QUDT.QuantityKind], label=definition.dimension)
        ontology.declare_individual(definition.iri, types=[unit_class], label=symbol)
        ontology.assert_fact(definition.iri, QUDT.symbol, symbol)
        ontology.assert_fact(definition.iri, QUDT.conversionMultiplier, definition.multiplier)
        ontology.assert_fact(definition.iri, QUDT.conversionOffset, definition.offset)
        ontology.assert_fact(definition.iri, QUDT.hasQuantityKind, dim_iri)

    return ontology
