"""RDFS + OWL-lite forward-chaining reasoner.

The ontology segment layer of the middleware needs inference so that, for
example, an observation annotated with a *German* water-level property is
recognised as an observation of the canonical ``WaterLevel`` property once
the alignment axiom ``de:Hoehe owl:equivalentClass ex:WaterLevel`` is in the
ontology, and so that an individual typed ``SoilMoistureSensor`` is also an
instance of the DOLCE ``PhysicalEndurant`` it transitively specialises.

The supported entailment rules cover the constructs the ontology library
uses:

* ``rdfs:subClassOf`` transitivity and type propagation (rdfs9, rdfs11)
* ``rdfs:subPropertyOf`` transitivity and triple propagation (rdfs5, rdfs7)
* ``rdfs:domain`` / ``rdfs:range`` typing (rdfs2, rdfs3)
* ``owl:equivalentClass`` / ``owl:equivalentProperty`` (bidirectional
  subclass / subproperty expansion)
* ``owl:sameAs`` (symmetry, transitivity and limited statement copying)
* ``owl:inverseOf``, ``owl:SymmetricProperty``, ``owl:TransitiveProperty``
* restriction-based classification via
  :class:`~repro.semantics.owl.restrictions.Restriction` checkers
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.semantics.owl.ontology import Ontology
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import OWL, RDF, RDFS
from repro.semantics.rdf.term import IRI, Term, Variable
from repro.semantics.rdf.triple import Triple
from repro.semantics.rules import InferenceTrace, Rule, RuleEngine

_S = Variable("s")
_P = Variable("p")
_O = Variable("o")
_X = Variable("x")
_Y = Variable("y")
_Z = Variable("z")
_C1 = Variable("c1")
_C2 = Variable("c2")
_C3 = Variable("c3")


def _rdfs_owl_rules() -> List[Rule]:
    """The static entailment rule set (independent of any ontology content)."""
    return [
        # rdfs11: subclass transitivity
        Rule(
            "rdfs11-subclass-transitivity",
            body=[
                Triple(_C1, RDFS.subClassOf, _C2),
                Triple(_C2, RDFS.subClassOf, _C3),
            ],
            head=[Triple(_C1, RDFS.subClassOf, _C3)],
        ),
        # rdfs9: type propagation along subclass
        Rule(
            "rdfs9-type-propagation",
            body=[
                Triple(_X, RDF.type, _C1),
                Triple(_C1, RDFS.subClassOf, _C2),
            ],
            head=[Triple(_X, RDF.type, _C2)],
        ),
        # rdfs5: subproperty transitivity
        Rule(
            "rdfs5-subproperty-transitivity",
            body=[
                Triple(_C1, RDFS.subPropertyOf, _C2),
                Triple(_C2, RDFS.subPropertyOf, _C3),
            ],
            head=[Triple(_C1, RDFS.subPropertyOf, _C3)],
        ),
        # rdfs7: statement propagation along subproperty
        Rule(
            "rdfs7-subproperty-propagation",
            body=[
                Triple(_X, _C1, _Y),
                Triple(_C1, RDFS.subPropertyOf, _C2),
            ],
            head=[Triple(_X, _C2, _Y)],
        ),
        # rdfs2: domain typing
        Rule(
            "rdfs2-domain",
            body=[
                Triple(_X, _P, _Y),
                Triple(_P, RDFS.domain, _C1),
            ],
            head=[Triple(_X, RDF.type, _C1)],
        ),
        # rdfs3: range typing (objects that are IRIs / bnodes only, guarded
        # by the fact that literals cannot be subjects of rdf:type)
        Rule(
            "rdfs3-range",
            body=[
                Triple(_X, _P, _Y),
                Triple(_P, RDFS.range, _C1),
            ],
            head=[Triple(_Y, RDF.type, _C1)],
            guard=lambda b: not _is_literal(b.get(_Y)),
        ),
        # owl:equivalentClass -> mutual subclass
        Rule(
            "owl-equivalent-class",
            body=[Triple(_C1, OWL.equivalentClass, _C2)],
            head=[
                Triple(_C1, RDFS.subClassOf, _C2),
                Triple(_C2, RDFS.subClassOf, _C1),
                Triple(_C2, OWL.equivalentClass, _C1),
            ],
        ),
        # owl:equivalentProperty -> mutual subproperty
        Rule(
            "owl-equivalent-property",
            body=[Triple(_C1, OWL.equivalentProperty, _C2)],
            head=[
                Triple(_C1, RDFS.subPropertyOf, _C2),
                Triple(_C2, RDFS.subPropertyOf, _C1),
                Triple(_C2, OWL.equivalentProperty, _C1),
            ],
        ),
        # owl:sameAs symmetry and transitivity
        Rule(
            "owl-sameas-symmetry",
            body=[Triple(_X, OWL.sameAs, _Y)],
            head=[Triple(_Y, OWL.sameAs, _X)],
        ),
        Rule(
            "owl-sameas-transitivity",
            body=[Triple(_X, OWL.sameAs, _Y), Triple(_Y, OWL.sameAs, _Z)],
            head=[Triple(_X, OWL.sameAs, _Z)],
        ),
        # owl:sameAs statement copying (subject position)
        Rule(
            "owl-sameas-subject-copy",
            body=[Triple(_X, OWL.sameAs, _Y), Triple(_X, _P, _O)],
            head=[Triple(_Y, _P, _O)],
            guard=lambda b: b.get(_P) != OWL.sameAs,
        ),
        # owl:inverseOf
        Rule(
            "owl-inverse-of",
            body=[Triple(_C1, OWL.inverseOf, _C2), Triple(_X, _C1, _Y)],
            head=[Triple(_Y, _C2, _X)],
            guard=lambda b: not _is_literal(b.get(_Y)),
        ),
        Rule(
            "owl-inverse-of-reverse",
            body=[Triple(_C1, OWL.inverseOf, _C2), Triple(_X, _C2, _Y)],
            head=[Triple(_Y, _C1, _X)],
            guard=lambda b: not _is_literal(b.get(_Y)),
        ),
        # owl:SymmetricProperty
        Rule(
            "owl-symmetric-property",
            body=[Triple(_P, RDF.type, OWL.SymmetricProperty), Triple(_X, _P, _Y)],
            head=[Triple(_Y, _P, _X)],
            guard=lambda b: not _is_literal(b.get(_Y)),
        ),
        # owl:TransitiveProperty
        Rule(
            "owl-transitive-property",
            body=[
                Triple(_P, RDF.type, OWL.TransitiveProperty),
                Triple(_X, _P, _Y),
                Triple(_Y, _P, _Z),
            ],
            head=[Triple(_X, _P, _Z)],
        ),
    ]


def _is_literal(term: Optional[Term]) -> bool:
    from repro.semantics.rdf.term import Literal

    return isinstance(term, Literal)


class Reasoner:
    """Forward-chaining reasoner over an RDF graph or :class:`Ontology`.

    Typical use inside the ontology segment layer::

        reasoner = Reasoner(ontology.graph)
        trace = reasoner.materialize()
        assert reasoner.is_instance_of(obs, SSN.Observation)

    The materialisation is **delta-driven**: the reasoner registers a
    :class:`~repro.semantics.rdf.graph.ChangeTracker` on its graph, so any
    mutation after a :meth:`materialize` marks the closure stale, and the
    next entailment query (or :meth:`ensure_materialized` call) tops the
    closure up *incrementally* — only rules whose body can touch the
    added triples are refired, seeded from the delta.  Cost is therefore
    proportional to the size of the added batch, not the whole graph.
    ``materialize(full=True)`` forces a from-scratch naive fixpoint (the
    correctness oracle the equivalence tests compare against); removals
    and newly registered rules also fall back to a full run.  Inferred
    triples are never retracted when their premises are removed.
    """

    def __init__(
        self,
        graph: Graph,
        extra_rules: Optional[Iterable[Rule]] = None,
        use_ids: bool = True,
    ):
        self.graph = graph
        # use_ids selects the dictionary-encoded join loop for rule firing
        # (the default); the decoded-object loop is kept as the oracle the
        # randomized encoded-vs-decoded equivalence suite compares against
        self._engine = RuleEngine(_rdfs_owl_rules(), use_ids=use_ids)
        if extra_rules:
            self._engine.extend(extra_rules)
        self._tracker = graph.track_changes()
        self._materialized = False
        self._needs_full = True
        self.last_trace: Optional[InferenceTrace] = None

    @classmethod
    def for_ontology(cls, ontology: Ontology, extra_rules: Optional[Iterable[Rule]] = None) -> "Reasoner":
        """Convenience constructor over an ontology's graph."""
        return cls(ontology.graph, extra_rules=extra_rules)

    def add_rules(self, rules: Iterable[Rule]) -> None:
        """Register extra inference rules (e.g. IK-derived rules).

        New rules must be evaluated against the whole graph, so the next
        materialisation runs from scratch.
        """
        self._engine.extend(rules)
        self._materialized = False
        self._needs_full = True

    def materialize(self, full: bool = False) -> InferenceTrace:
        """Run forward chaining to fixpoint, adding inferred triples.

        Incremental (semi-naive, seeded from the triples added since the
        last run) whenever a previous closure exists and nothing was
        retracted; pass ``full=True`` to force the from-scratch naive
        fixpoint.
        """
        delta = self._tracker.drain()
        try:
            if full or self._needs_full or not self._materialized or delta.needs_full:
                trace = self._engine.run(self.graph)
            else:
                trace = self._engine.run_incremental(self.graph, delta.added)
        except BaseException:
            # a failed run (e.g. a user rule's guard raising an unexpected
            # exception) must not lose the delta, or the closure would stay
            # silently stale forever; requeue it so the next call retries
            self._tracker.requeue(delta)
            raise
        # the run's own insertions land in the tracker too; discard them
        # so they are not replayed as a delta on the next call
        self._tracker.drain()
        self.last_trace = trace
        self._materialized = True
        self._needs_full = False
        return trace

    def ensure_materialized(self) -> None:
        """Bring the closure up to date; cheap to call when nothing changed.

        First call runs the full fixpoint; afterwards graph mutations are
        topped up incrementally (removals trigger a full re-run).
        """
        if not self._materialized or self._tracker.dirty:
            self.materialize()

    # ------------------------------------------------------------------ #
    # entailment queries
    # ------------------------------------------------------------------ #

    def is_instance_of(self, individual: Term, cls: IRI) -> bool:
        """Whether ``individual`` is an (inferred) instance of ``cls``."""
        self.ensure_materialized()
        return Triple(individual, RDF.type, cls) in self.graph

    def instances_of(self, cls: IRI) -> Set[Term]:
        """All (inferred) instances of ``cls``."""
        self.ensure_materialized()
        return set(self.graph.subjects(RDF.type, cls))

    def types_of(self, individual: Term) -> Set[IRI]:
        """All (inferred) classes of ``individual``."""
        self.ensure_materialized()
        return {
            t for t in self.graph.types_of(individual)
            if isinstance(t, IRI) and t != OWL.NamedIndividual
        }

    def is_subclass_of(self, child: IRI, parent: IRI) -> bool:
        """Whether ``child`` is entailed to be a subclass of ``parent``."""
        self.ensure_materialized()
        return child == parent or Triple(child, RDFS.subClassOf, parent) in self.graph

    def same_as(self, individual: Term) -> Set[Term]:
        """All individuals entailed to be owl:sameAs ``individual``."""
        self.ensure_materialized()
        result = {individual}
        result.update(self.graph.objects(individual, OWL.sameAs))
        return result

    def query(self, text: str):
        """Run a SPARQL-like query over the *entailed* graph.

        Brings the closure up to date first (incremental top-up), then
        evaluates through the graph's shared cost-based planner, so the
        answers include inferred triples and repeated queries over an
        unchanged closure are served from the version-keyed result cache.
        """
        from repro.semantics.sparql.evaluator import query as _query

        self.ensure_materialized()
        return _query(self.graph, text)

    def classify_with_restrictions(self, ontology: Ontology) -> int:
        """Type individuals into classes whose restrictions they satisfy.

        For every declared class carrying restrictions, every individual in
        the graph satisfying *all* of them is asserted as an instance.
        Returns the number of new ``rdf:type`` triples.
        """
        self.ensure_materialized()
        added = 0
        individuals = set(self.graph.subjects(RDF.type, OWL.NamedIndividual))
        for cls in ontology.classes.values():
            if not cls.restrictions:
                continue
            for individual in individuals:
                if Triple(individual, RDF.type, cls.iri) in self.graph:
                    continue
                if all(r.satisfied_by(self.graph, individual) for r in cls.restrictions):
                    if self.graph.add(Triple(individual, RDF.type, cls.iri)):
                        added += 1
        if added:
            # new types may trigger further propagation
            self.materialize()
        return added

    def __repr__(self) -> str:
        return f"<Reasoner over {self.graph!r} materialized={self._materialized}>"
