"""OWL property restrictions.

Restrictions describe anonymous classes defined by constraints on a
property (``someValuesFrom``, ``allValuesFrom``, ``hasValue``, cardinality).
The environmental process ontology uses them, for example, to state that a
``DroughtEvent`` is a perdurant that ``hasParticipant some RainfallDeficit``.

Restrictions are materialised into the graph as blank-node class
descriptions following the OWL RDF mapping, and the reasoner's structural
checker (:meth:`Restriction.satisfied_by`) can evaluate them directly
against individuals, which is cheaper than full tableau reasoning and
sufficient for the middleware's classification needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.semantics.rdf.namespace import OWL, RDF
from repro.semantics.rdf.term import BlankNode, IRI, Literal, Term
from repro.semantics.rdf.triple import Triple

if TYPE_CHECKING:  # pragma: no cover
    from repro.semantics.rdf.graph import Graph


class Restriction:
    """Base class for property restrictions."""

    def __init__(self, on_property: IRI):
        self.on_property = on_property
        self.node: Optional[BlankNode] = None

    def materialize(self, graph: "Graph") -> BlankNode:
        """Write the restriction into ``graph``, returning its blank node."""
        node = BlankNode()
        self.node = node
        graph.add(Triple(node, RDF.type, OWL.Restriction))
        graph.add(Triple(node, OWL.onProperty, self.on_property))
        self._materialize_constraint(graph, node)
        return node

    def _materialize_constraint(self, graph: "Graph", node: BlankNode) -> None:
        raise NotImplementedError

    def satisfied_by(self, graph: "Graph", individual: Term) -> bool:
        """Structurally check whether ``individual`` satisfies the restriction."""
        raise NotImplementedError


class SomeValuesFrom(Restriction):
    """``owl:someValuesFrom``: at least one property value in the filler class."""

    def __init__(self, on_property: IRI, filler: IRI):
        super().__init__(on_property)
        self.filler = filler

    def _materialize_constraint(self, graph: "Graph", node: BlankNode) -> None:
        graph.add(Triple(node, OWL.someValuesFrom, self.filler))

    def satisfied_by(self, graph: "Graph", individual: Term) -> bool:
        for value in graph.objects(individual, self.on_property):
            if Triple(value, RDF.type, self.filler) in graph:
                return True
        return False

    def __repr__(self) -> str:
        return f"SomeValuesFrom({self.on_property.local_name}, {self.filler.local_name})"


class AllValuesFrom(Restriction):
    """``owl:allValuesFrom``: every property value is in the filler class."""

    def __init__(self, on_property: IRI, filler: IRI):
        super().__init__(on_property)
        self.filler = filler

    def _materialize_constraint(self, graph: "Graph", node: BlankNode) -> None:
        graph.add(Triple(node, OWL.allValuesFrom, self.filler))

    def satisfied_by(self, graph: "Graph", individual: Term) -> bool:
        values = list(graph.objects(individual, self.on_property))
        if not values:
            return True
        return all(Triple(v, RDF.type, self.filler) in graph for v in values)

    def __repr__(self) -> str:
        return f"AllValuesFrom({self.on_property.local_name}, {self.filler.local_name})"


class HasValue(Restriction):
    """``owl:hasValue``: the property takes a specific value."""

    def __init__(self, on_property: IRI, value: Term):
        super().__init__(on_property)
        self.value = value

    def _materialize_constraint(self, graph: "Graph", node: BlankNode) -> None:
        graph.add(Triple(node, OWL.hasValue, self.value))

    def satisfied_by(self, graph: "Graph", individual: Term) -> bool:
        return Triple(individual, self.on_property, self.value) in graph

    def __repr__(self) -> str:
        return f"HasValue({self.on_property.local_name}, {self.value})"


class Cardinality(Restriction):
    """Minimum / maximum cardinality constraint on a property."""

    def __init__(
        self,
        on_property: IRI,
        minimum: Optional[int] = None,
        maximum: Optional[int] = None,
    ):
        if minimum is None and maximum is None:
            raise ValueError("cardinality restriction needs a minimum and/or maximum")
        super().__init__(on_property)
        self.minimum = minimum
        self.maximum = maximum

    def _materialize_constraint(self, graph: "Graph", node: BlankNode) -> None:
        if self.minimum is not None:
            graph.add(Triple(node, OWL.minCardinality, Literal(self.minimum)))
        if self.maximum is not None:
            graph.add(Triple(node, OWL.maxCardinality, Literal(self.maximum)))

    def satisfied_by(self, graph: "Graph", individual: Term) -> bool:
        count = len(list(graph.objects(individual, self.on_property)))
        if self.minimum is not None and count < self.minimum:
            return False
        if self.maximum is not None and count > self.maximum:
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"Cardinality({self.on_property.local_name}, "
            f"min={self.minimum}, max={self.maximum})"
        )
