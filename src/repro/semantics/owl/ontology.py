"""Ontology construction API.

The paper builds its "ontology library" (Fig. 1) from a DOLCE upper layer,
domain ontologies (sensors, environment, drought, indigenous knowledge) and
alignment axioms.  :class:`Ontology` is the programmatic builder those
modules use: it records classes, properties, individuals and axioms and
materialises everything as RDF triples in an underlying
:class:`~repro.semantics.rdf.graph.Graph`, so that the same content is
available both to Python code (fast attribute access) and to the reasoner /
query engine (triples).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.semantics.owl.restrictions import Restriction
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import OWL, RDF, RDFS, Namespace, XSD
from repro.semantics.rdf.term import IRI, Literal, Term
from repro.semantics.rdf.triple import Triple


class OntologyClass:
    """A named class with its local hierarchy and restriction axioms."""

    def __init__(self, iri: IRI, ontology: "Ontology"):
        self.iri = iri
        self._ontology = ontology
        self.parents: Set[IRI] = set()
        self.restrictions: List[Restriction] = []

    @property
    def label(self) -> str:
        """Human-readable label (rdfs:label or the IRI local name)."""
        value = self._ontology.graph.literal_value(self.iri, RDFS.label)
        return value if isinstance(value, str) else self.iri.local_name

    def subclass_of(self, parent: Union[IRI, "OntologyClass"]) -> "OntologyClass":
        """Assert this class as a subclass of ``parent`` (chainable)."""
        parent_iri = parent.iri if isinstance(parent, OntologyClass) else parent
        self.parents.add(parent_iri)
        self._ontology.graph.add(Triple(self.iri, RDFS.subClassOf, parent_iri))
        return self

    def add_restriction(self, restriction: Restriction) -> "OntologyClass":
        """Attach a property restriction as a superclass of this class."""
        node = restriction.materialize(self._ontology.graph)
        self._ontology.graph.add(Triple(self.iri, RDFS.subClassOf, node))
        self.restrictions.append(restriction)
        return self

    def instances(self) -> Set[Term]:
        """Asserted instances of this class (no inference)."""
        return self._ontology.graph.instances_of(self.iri)

    def __repr__(self) -> str:
        return f"OntologyClass({self.iri.local_name})"


class OntologyProperty:
    """A named object or datatype property."""

    def __init__(self, iri: IRI, ontology: "Ontology", kind: str = "object"):
        self.iri = iri
        self.kind = kind
        self._ontology = ontology
        self.domain: Optional[IRI] = None
        self.range: Optional[IRI] = None

    def set_domain(self, cls: Union[IRI, OntologyClass]) -> "OntologyProperty":
        """Declare ``rdfs:domain`` for this property (chainable)."""
        iri = cls.iri if isinstance(cls, OntologyClass) else cls
        self.domain = iri
        self._ontology.graph.add(Triple(self.iri, RDFS.domain, iri))
        return self

    def set_range(self, cls: Union[IRI, OntologyClass]) -> "OntologyProperty":
        """Declare ``rdfs:range`` for this property (chainable)."""
        iri = cls.iri if isinstance(cls, OntologyClass) else cls
        self.range = iri
        self._ontology.graph.add(Triple(self.iri, RDFS.range, iri))
        return self

    def subproperty_of(self, parent: Union[IRI, "OntologyProperty"]) -> "OntologyProperty":
        """Assert ``rdfs:subPropertyOf`` (chainable)."""
        iri = parent.iri if isinstance(parent, OntologyProperty) else parent
        self._ontology.graph.add(Triple(self.iri, RDFS.subPropertyOf, iri))
        return self

    def make_transitive(self) -> "OntologyProperty":
        """Mark the property ``owl:TransitiveProperty``."""
        self._ontology.graph.add(Triple(self.iri, RDF.type, OWL.TransitiveProperty))
        return self

    def make_symmetric(self) -> "OntologyProperty":
        """Mark the property ``owl:SymmetricProperty``."""
        self._ontology.graph.add(Triple(self.iri, RDF.type, OWL.SymmetricProperty))
        return self

    def make_functional(self) -> "OntologyProperty":
        """Mark the property ``owl:FunctionalProperty``."""
        self._ontology.graph.add(Triple(self.iri, RDF.type, OWL.FunctionalProperty))
        return self

    def inverse_of(self, other: Union[IRI, "OntologyProperty"]) -> "OntologyProperty":
        """Assert ``owl:inverseOf`` between this property and ``other``."""
        iri = other.iri if isinstance(other, OntologyProperty) else other
        self._ontology.graph.add(Triple(self.iri, OWL.inverseOf, iri))
        return self

    def __repr__(self) -> str:
        return f"OntologyProperty({self.iri.local_name}, kind={self.kind})"


class Ontology:
    """A named ontology: a builder facade over an RDF graph.

    Parameters
    ----------
    iri:
        The ontology IRI (e.g. ``http://africrid.example/ont/drought``).
    graph:
        The graph to materialise into.  Several ontologies can share one
        graph, which is how the "ontology library" of the paper is stitched
        together into the unified ontology.
    """

    def __init__(self, iri: Union[str, IRI], graph: Optional[Graph] = None):
        self.iri = iri if isinstance(iri, IRI) else IRI(iri)
        self.graph = graph if graph is not None else Graph(identifier=self.iri)
        self.graph.add(Triple(self.iri, RDF.type, OWL.Ontology))
        self.classes: Dict[IRI, OntologyClass] = {}
        self.properties: Dict[IRI, OntologyProperty] = {}
        self.individuals: Dict[IRI, Set[IRI]] = {}

    # ------------------------------------------------------------------ #
    # declaration
    # ------------------------------------------------------------------ #

    def declare_class(
        self,
        iri: IRI,
        label: Optional[str] = None,
        comment: Optional[str] = None,
        parents: Sequence[Union[IRI, OntologyClass]] = (),
    ) -> OntologyClass:
        """Declare (or retrieve) a named class."""
        cls = self.classes.get(iri)
        if cls is None:
            cls = OntologyClass(iri, self)
            self.classes[iri] = cls
            self.graph.add(Triple(iri, RDF.type, OWL.Class))
        if label:
            self.graph.add(Triple(iri, RDFS.label, Literal(label)))
        if comment:
            self.graph.add(Triple(iri, RDFS.comment, Literal(comment)))
        for parent in parents:
            cls.subclass_of(parent)
        return cls

    def declare_object_property(
        self,
        iri: IRI,
        label: Optional[str] = None,
        domain: Optional[Union[IRI, OntologyClass]] = None,
        range: Optional[Union[IRI, OntologyClass]] = None,
    ) -> OntologyProperty:
        """Declare (or retrieve) an object property."""
        prop = self.properties.get(iri)
        if prop is None:
            prop = OntologyProperty(iri, self, kind="object")
            self.properties[iri] = prop
            self.graph.add(Triple(iri, RDF.type, OWL.ObjectProperty))
        if label:
            self.graph.add(Triple(iri, RDFS.label, Literal(label)))
        if domain is not None:
            prop.set_domain(domain)
        if range is not None:
            prop.set_range(range)
        return prop

    def declare_datatype_property(
        self,
        iri: IRI,
        label: Optional[str] = None,
        domain: Optional[Union[IRI, OntologyClass]] = None,
        range: Optional[IRI] = None,
    ) -> OntologyProperty:
        """Declare (or retrieve) a datatype property."""
        prop = self.properties.get(iri)
        if prop is None:
            prop = OntologyProperty(iri, self, kind="datatype")
            self.properties[iri] = prop
            self.graph.add(Triple(iri, RDF.type, OWL.DatatypeProperty))
        if label:
            self.graph.add(Triple(iri, RDFS.label, Literal(label)))
        if domain is not None:
            prop.set_domain(domain)
        if range is not None:
            prop.set_range(range)
        return prop

    def declare_individual(
        self,
        iri: IRI,
        types: Sequence[Union[IRI, OntologyClass]] = (),
        label: Optional[str] = None,
    ) -> IRI:
        """Declare a named individual with the given types."""
        type_iris = {
            t.iri if isinstance(t, OntologyClass) else t for t in types
        }
        self.individuals.setdefault(iri, set()).update(type_iris)
        self.graph.add(Triple(iri, RDF.type, OWL.NamedIndividual))
        for t in type_iris:
            self.graph.add(Triple(iri, RDF.type, t))
        if label:
            self.graph.add(Triple(iri, RDFS.label, Literal(label)))
        return iri

    def assert_fact(self, subject: IRI, predicate: IRI, obj: Union[Term, str, int, float, bool]) -> None:
        """Assert an arbitrary property value for an individual."""
        value: Term = obj if isinstance(obj, Term) else Literal(obj)
        self.graph.add(Triple(subject, predicate, value))

    def equivalent_classes(self, first: Union[IRI, OntologyClass], second: Union[IRI, OntologyClass]) -> None:
        """Assert ``owl:equivalentClass`` between two classes."""
        a = first.iri if isinstance(first, OntologyClass) else first
        b = second.iri if isinstance(second, OntologyClass) else second
        self.graph.add(Triple(a, OWL.equivalentClass, b))

    def equivalent_properties(self, first: Union[IRI, OntologyProperty], second: Union[IRI, OntologyProperty]) -> None:
        """Assert ``owl:equivalentProperty`` between two properties."""
        a = first.iri if isinstance(first, OntologyProperty) else first
        b = second.iri if isinstance(second, OntologyProperty) else second
        self.graph.add(Triple(a, OWL.equivalentProperty, b))

    def same_individuals(self, first: IRI, second: IRI) -> None:
        """Assert ``owl:sameAs`` between two individuals."""
        self.graph.add(Triple(first, OWL.sameAs, second))

    def imports(self, other: "Ontology") -> None:
        """Merge another ontology's triples into this ontology's graph."""
        self.graph.add(Triple(self.iri, OWL.imports, other.iri))
        if other.graph is not self.graph:
            self.graph.add_all(other.graph)
        self.classes.update(other.classes)
        self.properties.update(other.properties)
        for ind, types in other.individuals.items():
            self.individuals.setdefault(ind, set()).update(types)

    # ------------------------------------------------------------------ #
    # interrogation
    # ------------------------------------------------------------------ #

    def class_hierarchy(self) -> Dict[IRI, Set[IRI]]:
        """Asserted ``child -> {parents}`` map for every declared class."""
        hierarchy: Dict[IRI, Set[IRI]] = {}
        for triple in self.graph.triples((None, RDFS.subClassOf, None)):
            if isinstance(triple.subject, IRI) and isinstance(triple.object, IRI):
                hierarchy.setdefault(triple.subject, set()).add(triple.object)
        return hierarchy

    def superclasses(self, cls: IRI) -> Set[IRI]:
        """Transitive closure of asserted superclasses of ``cls``."""
        result: Set[IRI] = set()
        frontier = [cls]
        while frontier:
            current = frontier.pop()
            for parent in self.graph.objects(current, RDFS.subClassOf):
                if isinstance(parent, IRI) and parent not in result:
                    result.add(parent)
                    frontier.append(parent)
        return result

    def subclasses(self, cls: IRI) -> Set[IRI]:
        """Transitive closure of asserted subclasses of ``cls``."""
        result: Set[IRI] = set()
        frontier = [cls]
        while frontier:
            current = frontier.pop()
            for child in self.graph.subjects(RDFS.subClassOf, current):
                if isinstance(child, IRI) and child not in result:
                    result.add(child)
                    frontier.append(child)
        return result

    def is_subclass(self, child: IRI, parent: IRI) -> bool:
        """Whether ``child`` is (transitively) a subclass of ``parent``."""
        return child == parent or parent in self.superclasses(child)

    def classify_individual(self, individual: Term) -> Set[IRI]:
        """All classes the individual belongs to, including inherited ones."""
        direct = self.graph.types_of(individual)
        result = set(direct)
        for cls in direct:
            result |= self.superclasses(cls)
        result.discard(OWL.NamedIndividual)
        return result

    def __len__(self) -> int:
        return len(self.graph)

    def __repr__(self) -> str:
        return (
            f"<Ontology {self.iri.value}: {len(self.classes)} classes, "
            f"{len(self.properties)} properties, {len(self.individuals)} individuals>"
        )
