"""OWL-lite ontology construction on top of the RDF graph."""

from repro.semantics.owl.ontology import Ontology, OntologyClass, OntologyProperty
from repro.semantics.owl.restrictions import (
    AllValuesFrom,
    Cardinality,
    HasValue,
    Restriction,
    SomeValuesFrom,
)

__all__ = [
    "Ontology",
    "OntologyClass",
    "OntologyProperty",
    "Restriction",
    "SomeValuesFrom",
    "AllValuesFrom",
    "HasValue",
    "Cardinality",
]
