"""Datalog-style rule engine over RDF graphs.

Rules are Horn clauses of triple patterns: when every pattern in the body
matches the graph under some variable binding, the head patterns are
instantiated and asserted.  The engine performs semi-naive forward chaining
to a fixed point.

Two clients use this module:

* the :class:`~repro.semantics.reasoner.Reasoner`, whose RDFS / OWL-lite
  entailment rules are expressed as :class:`Rule` objects, and
* the indigenous-knowledge layer, which derives drought-indicator rules
  (e.g. "sighting of sifennefene worms implies a DryConditionIndication")
  that run against the annotated observation graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.term import Term, Variable
from repro.semantics.rdf.triple import Triple
from repro.semantics.sparql.algebra import BGP
from repro.semantics.sparql.bindings import Bindings

#: Optional guard evaluated on the bindings before firing a rule.
RuleGuard = Callable[[Bindings], bool]


@dataclass
class Rule:
    """A Horn rule ``body => head`` over triple patterns.

    Parameters
    ----------
    name:
        Identifier used in provenance and diagnostics.
    body:
        Triple patterns that must all match.
    head:
        Triple patterns asserted for each match.  Head variables must occur
        in the body (the engine checks this and raises ``ValueError``).
    guard:
        Optional Python predicate over the bindings, used for numeric
        conditions that triple patterns cannot express (e.g. thresholds).
    """

    name: str
    body: Sequence[Triple]
    head: Sequence[Triple]
    guard: Optional[RuleGuard] = None

    def __post_init__(self) -> None:
        body_vars = {v for pattern in self.body for v in pattern.variables()}
        for pattern in self.head:
            for v in pattern.variables():
                if v not in body_vars:
                    raise ValueError(
                        f"rule {self.name!r}: head variable {v} not bound in body"
                    )

    def derive(self, graph: Graph) -> Set[Triple]:
        """All head triples derivable from ``graph`` by this rule."""
        derived: Set[Triple] = set()
        bgp = BGP(list(self.body))
        for solution in bgp.solutions(graph):
            if self.guard is not None:
                try:
                    if not self.guard(solution):
                        continue
                except (TypeError, ValueError, KeyError):
                    continue
            mapping = solution.as_dict()
            for pattern in self.head:
                triple = pattern.substitute(mapping)
                if triple.is_ground():
                    derived.add(triple)
        return derived

    def __repr__(self) -> str:
        return f"Rule({self.name!r}, body={len(self.body)}, head={len(self.head)})"


@dataclass
class InferenceTrace:
    """Provenance of one forward-chaining run."""

    iterations: int = 0
    inferred: int = 0
    by_rule: Dict[str, int] = field(default_factory=dict)

    def record(self, rule_name: str, count: int) -> None:
        """Account ``count`` new triples to ``rule_name``."""
        if count:
            self.by_rule[rule_name] = self.by_rule.get(rule_name, 0) + count
            self.inferred += count


class RuleEngine:
    """Forward-chaining engine applying a rule set to a graph to fixpoint."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None, max_iterations: int = 100):
        self.rules: List[Rule] = list(rules or [])
        self.max_iterations = max_iterations

    def add_rule(self, rule: Rule) -> None:
        """Register an additional rule."""
        self.rules.append(rule)

    def extend(self, rules: Iterable[Rule]) -> None:
        """Register several rules."""
        self.rules.extend(rules)

    def run(self, graph: Graph) -> InferenceTrace:
        """Apply all rules repeatedly until no new triple is produced.

        The inferred triples are added to ``graph`` in place; the returned
        :class:`InferenceTrace` reports how many triples each rule added.
        """
        trace = InferenceTrace()
        for iteration in range(self.max_iterations):
            added_this_round = 0
            for rule in self.rules:
                new_triples = [t for t in rule.derive(graph) if t not in graph]
                for triple in new_triples:
                    graph.add(triple)
                trace.record(rule.name, len(new_triples))
                added_this_round += len(new_triples)
            trace.iterations = iteration + 1
            if added_this_round == 0:
                break
        return trace

    def infer_only(self, graph: Graph) -> Graph:
        """Like :meth:`run` but returns only the inferred triples.

        The input graph is not modified.
        """
        working = graph.copy()
        self.run(working)
        return working.difference(graph)

    def __repr__(self) -> str:
        return f"<RuleEngine {len(self.rules)} rules>"
