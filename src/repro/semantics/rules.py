"""Datalog-style rule engine over RDF graphs.

Rules are Horn clauses of triple patterns: when every pattern in the body
matches the graph under some variable binding, the head patterns are
instantiated and asserted.  The engine offers two evaluation modes:

* :meth:`RuleEngine.run` — *naive* forward chaining to a fixed point:
  every rule is re-derived against the whole graph each iteration.  This
  is the from-scratch oracle; its cost grows with total graph size.
* :meth:`RuleEngine.run_incremental` — *semi-naive* forward chaining from
  a delta: only rules whose body can touch the delta are refired, and
  each refiring seeds one body atom from a delta triple before joining
  the remaining atoms against the full graph.  Per-round cost is
  proportional to the delta, not the graph.

Two clients use this module:

* the :class:`~repro.semantics.reasoner.Reasoner`, whose RDFS / OWL-lite
  entailment rules are expressed as :class:`Rule` objects, and
* the indigenous-knowledge layer, which derives drought-indicator rules
  (e.g. "sighting of sifennefene worms implies a DryConditionIndication")
  that run against the annotated observation graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.term import Term, Variable
from repro.semantics.rdf.triple import Triple
from repro.semantics.sparql.algebra import BGP
from repro.semantics.sparql.bindings import Bindings

#: Optional guard evaluated on the bindings before firing a rule.
RuleGuard = Callable[[Bindings], bool]


@dataclass
class Rule:
    """A Horn rule ``body => head`` over triple patterns.

    Parameters
    ----------
    name:
        Identifier used in provenance and diagnostics.
    body:
        Triple patterns that must all match.
    head:
        Triple patterns asserted for each match.  Head variables must occur
        in the body (the engine checks this and raises ``ValueError``).
    guard:
        Optional Python predicate over the bindings, used for numeric
        conditions that triple patterns cannot express (e.g. thresholds).
    """

    name: str
    body: Sequence[Triple]
    head: Sequence[Triple]
    guard: Optional[RuleGuard] = None

    def __post_init__(self) -> None:
        body_vars = {v for pattern in self.body for v in pattern.variables()}
        for pattern in self.head:
            for v in pattern.variables():
                if v not in body_vars:
                    raise ValueError(
                        f"rule {self.name!r}: head variable {v} not bound in body"
                    )

    def body_predicates(self) -> Optional[FrozenSet[Term]]:
        """The ground predicates of the body atoms, for delta indexing.

        ``None`` when any body atom has a variable in predicate position:
        such a rule can match a delta triple of *any* predicate and must
        always be considered by the incremental engine.
        """
        predicates = set()
        for pattern in self.body:
            if isinstance(pattern.predicate, Variable):
                return None
            predicates.add(pattern.predicate)
        return frozenset(predicates)

    def derive(self, graph: Graph, use_ids: bool = True) -> Set[Triple]:
        """All head triples derivable from ``graph`` by this rule.

        ``use_ids`` selects the dictionary-encoded join loop (variables
        bound to integer ids, decoded only per solution); pass ``False``
        for the decoded-object join, the equivalence oracle.
        """
        derived: Set[Triple] = set()
        self._instantiate(
            BGP(list(self.body), use_ids=use_ids).solutions(graph), derived
        )
        return derived

    def derive_delta(self, graph: Graph, delta: Graph, use_ids: bool = True) -> Set[Triple]:
        """Head triples of matches that use at least one ``delta`` triple.

        Semi-naive evaluation: every new solution must bind some body atom
        to a triple of the delta, so each atom in turn is seeded from the
        delta triples matching it and the remaining atoms are joined
        against the full ``graph`` (which already contains the delta).
        Solutions using several delta triples are found more than once;
        the returned set deduplicates them.
        """
        derived: Set[Triple] = set()
        for index, seed_pattern in enumerate(self.body):
            rest = BGP(
                [p for i, p in enumerate(self.body) if i != index], use_ids=use_ids
            )
            allowed = self._allowed_predicates(graph, index)
            for triple in delta.triples(tuple(seed_pattern)):
                if allowed is not None and triple.predicate not in allowed:
                    continue
                match = seed_pattern.matches(triple)
                if match is None:
                    continue
                self._instantiate(
                    rest.solutions_from(graph, Bindings(match)), derived
                )
        return derived

    def _allowed_predicates(self, graph: Graph, seed_index: int) -> Optional[Set[Term]]:
        """Semi-join bound for a variable-predicate seed atom.

        When body atom ``seed_index`` has a variable in predicate position
        that also occurs (in subject / object position) in another body
        atom with a *ground* predicate — the schema atom, e.g. ``?p
        rdfs:domain ?c`` alongside ``?x ?p ?y`` — only predicates the
        schema atom can bind may ever complete a match.  Those sets (the
        declared domains, sub-properties, inverses, …) are small, so
        computing them per call is far cheaper than joining from every
        delta triple.  ``None`` means unconstrained.
        """
        predicate = self.body[seed_index].predicate
        if not isinstance(predicate, Variable):
            return None
        allowed: Optional[Set[Term]] = None
        for index, other in enumerate(self.body):
            if index == seed_index or isinstance(other.predicate, Variable):
                continue
            if other.subject == predicate:
                values = {t.subject for t in graph.triples(tuple(other))}
            elif other.object == predicate:
                values = {t.object for t in graph.triples(tuple(other))}
            else:
                continue
            allowed = values if allowed is None else allowed & values
        return allowed

    def _instantiate(self, solutions: Iterable[Bindings], out: Set[Triple]) -> None:
        """Apply the guard and add the ground head triples of each solution."""
        for solution in solutions:
            if self.guard is not None:
                try:
                    if not self.guard(solution):
                        continue
                except (TypeError, ValueError, KeyError):
                    continue
            mapping = solution.as_dict()
            for pattern in self.head:
                # a head that would place a bound literal in subject or
                # predicate position derives nothing from this solution
                triple = pattern.try_substitute(mapping)
                if triple is not None and triple.is_ground():
                    out.add(triple)

    def __repr__(self) -> str:
        return f"Rule({self.name!r}, body={len(self.body)}, head={len(self.head)})"


@dataclass
class InferenceTrace:
    """Provenance of one forward-chaining run."""

    iterations: int = 0
    inferred: int = 0
    by_rule: Dict[str, int] = field(default_factory=dict)

    def record(self, rule_name: str, count: int) -> None:
        """Account ``count`` new triples to ``rule_name``."""
        if count:
            self.by_rule[rule_name] = self.by_rule.get(rule_name, 0) + count
            self.inferred += count


class RuleEngine:
    """Forward-chaining engine applying a rule set to a graph to fixpoint."""

    def __init__(
        self,
        rules: Optional[Iterable[Rule]] = None,
        max_iterations: int = 100,
        use_ids: bool = True,
    ):
        self.rules: List[Rule] = list(rules or [])
        self.max_iterations = max_iterations
        #: Join over dictionary-encoded ids (default) or decoded term
        #: objects (the equivalence oracle used by the randomized
        #: encoded-vs-decoded suite).
        self.use_ids = use_ids
        self._predicate_index: Optional[Dict[Term, List[Rule]]] = None
        self._wildcard_rules: List[Rule] = []

    def add_rule(self, rule: Rule) -> None:
        """Register an additional rule."""
        self.rules.append(rule)
        self._predicate_index = None

    def extend(self, rules: Iterable[Rule]) -> None:
        """Register several rules."""
        self.rules.extend(rules)
        self._predicate_index = None

    def _body_index(self) -> Dict[Term, List[Rule]]:
        """Map each ground body predicate to the rules mentioning it.

        Rules with a variable-predicate body atom land in
        ``_wildcard_rules`` instead: they can react to any delta triple.
        The index is rebuilt lazily after rule registration.
        """
        if self._predicate_index is None:
            index: Dict[Term, List[Rule]] = {}
            wildcard: List[Rule] = []
            for rule in self.rules:
                predicates = rule.body_predicates()
                if predicates is None:
                    wildcard.append(rule)
                    continue
                for predicate in predicates:
                    index.setdefault(predicate, []).append(rule)
            self._predicate_index = index
            self._wildcard_rules = wildcard
        return self._predicate_index

    def run(self, graph: Graph) -> InferenceTrace:
        """Apply all rules repeatedly until no new triple is produced.

        The inferred triples are added to ``graph`` in place; the returned
        :class:`InferenceTrace` reports how many triples each rule added.
        """
        trace = InferenceTrace()
        for iteration in range(self.max_iterations):
            added_this_round = 0
            for rule in self.rules:
                new_triples = [
                    t for t in rule.derive(graph, use_ids=self.use_ids)
                    if t not in graph
                ]
                for triple in new_triples:
                    graph.add(triple)
                trace.record(rule.name, len(new_triples))
                added_this_round += len(new_triples)
            trace.iterations = iteration + 1
            if added_this_round == 0:
                break
        return trace

    def run_incremental(self, graph: Graph, delta: Iterable[Triple]) -> InferenceTrace:
        """Semi-naive fixpoint from a delta of recently added triples.

        ``graph`` must already contain the delta triples (they are the
        mutations since the caller's last run); only rules whose body
        predicates intersect the current frontier are refired, and each
        firing joins from a frontier triple instead of re-enumerating the
        whole graph.  Produces the same fixpoint as :meth:`run` provided
        ``graph`` was closed under the rules before the delta was added.
        """
        trace = InferenceTrace()
        frontier: Set[Triple] = {t for t in delta if t in graph}
        if not frontier:
            return trace
        index = self._body_index()
        for iteration in range(self.max_iterations):
            # the delta graph shares the main graph's dictionary: frontier
            # triples are already interned there, so seeding re-uses their
            # ids instead of growing a private term table every round
            delta_graph = Graph(dictionary=graph.dictionary)
            for triple in frontier:
                delta_graph.add(triple)
            candidates = {id(rule) for rule in self._wildcard_rules}
            for predicate in {t.predicate for t in frontier}:
                candidates.update(id(rule) for rule in index.get(predicate, ()))
            next_frontier: Set[Triple] = set()
            for rule in self.rules:
                if id(rule) not in candidates:
                    continue
                new_triples = [
                    t for t in rule.derive_delta(graph, delta_graph, use_ids=self.use_ids)
                    if t not in graph
                ]
                for triple in new_triples:
                    graph.add(triple)
                trace.record(rule.name, len(new_triples))
                next_frontier.update(new_triples)
            trace.iterations = iteration + 1
            if not next_frontier:
                break
            frontier = next_frontier
        return trace

    def infer_only(self, graph: Graph) -> Graph:
        """Like :meth:`run` but returns only the inferred triples.

        The input graph is not modified.
        """
        working = graph.copy()
        self.run(working)
        return working.difference(graph)

    def __repr__(self) -> str:
        return f"<RuleEngine {len(self.rules)} rules>"
