"""Semantic-technology substrate.

The paper's middleware relies on machine-readable knowledge representation
(RDF, OWL) and reasoning to attach meaning to raw sensor readings.  Because
this reproduction runs offline, the whole stack is implemented here in pure
Python rather than depending on rdflib / owlready2:

``repro.semantics.rdf``
    Terms (IRIs, literals, blank nodes), namespaces, triples and an indexed
    in-memory graph with N-Triples / Turtle-subset round-tripping.

``repro.semantics.sparql``
    A small query engine (basic graph patterns, FILTER, OPTIONAL, UNION,
    SELECT / ASK) over :class:`~repro.semantics.rdf.graph.Graph`.

``repro.semantics.owl``
    Ontology construction helpers: classes, properties, individuals,
    restrictions and axioms layered on top of the RDF graph.

``repro.semantics.reasoner``
    Forward-chaining RDFS + OWL-lite reasoner (subclass / subproperty
    closure, domain/range typing, inverse / symmetric / transitive
    properties, equivalence).

``repro.semantics.rules``
    A Datalog-style rule engine used both by the reasoner and by the
    IK-derived inference rules.
"""

from repro.semantics.rdf.term import IRI, Literal, BlankNode, Variable
from repro.semantics.rdf.namespace import Namespace, NamespaceManager, RDF, RDFS, OWL, XSD
from repro.semantics.rdf.triple import Triple
from repro.semantics.rdf.graph import Graph
from repro.semantics.owl.ontology import Ontology
from repro.semantics.reasoner import Reasoner
from repro.semantics.rules import Rule, RuleEngine
from repro.semantics.sparql.evaluator import query

__all__ = [
    "IRI",
    "Literal",
    "BlankNode",
    "Variable",
    "Namespace",
    "NamespaceManager",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "Triple",
    "Graph",
    "Ontology",
    "Reasoner",
    "Rule",
    "RuleEngine",
    "query",
]
