"""Serialisation of graphs to N-Triples and a Turtle subset.

The middleware's interface protocol layer exchanges "machine readable"
representations of annotated observations; these serialisers provide the
wire format.  Output is deterministic (triples are sorted) so tests and the
benchmark harness can compare snapshots.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, List

from repro.semantics.rdf.term import BlankNode, IRI, Literal, Term

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.semantics.rdf.graph import Graph


def serialize_graph(graph: "Graph", format: str = "ntriples") -> str:
    """Serialise ``graph`` to the requested format.

    Supported formats: ``"ntriples"`` (also ``"nt"``) and ``"turtle"``
    (also ``"ttl"``).
    """
    fmt = format.lower()
    if fmt in ("ntriples", "nt", "n-triples"):
        return to_ntriples(graph)
    if fmt in ("turtle", "ttl"):
        return to_turtle(graph)
    raise ValueError(f"unsupported serialisation format: {format!r}")


def to_ntriples(graph: "Graph") -> str:
    """Canonical (sorted) N-Triples serialisation."""
    lines = sorted(t.n3() for t in graph)
    return "\n".join(lines) + ("\n" if lines else "")


def _turtle_term(term: Term, graph: "Graph") -> str:
    if isinstance(term, IRI):
        return graph.namespaces.compact(term)
    if isinstance(term, (Literal, BlankNode)):
        return term.n3()
    return term.n3()


def to_turtle(graph: "Graph") -> str:
    """Serialise to a readable Turtle subset.

    Triples are grouped by subject and predicate; prefix declarations are
    emitted for every bound namespace actually used.
    """
    # Group triples: subject -> predicate -> [objects]
    grouped: Dict[Term, Dict[Term, List[Term]]] = defaultdict(lambda: defaultdict(list))
    for t in graph:
        grouped[t.subject][t.predicate].append(t.object)

    used_prefixes = set()

    def compact(term: Term) -> str:
        text = _turtle_term(term, graph)
        if ":" in text and not text.startswith("<") and not text.startswith('"'):
            used_prefixes.add(text.split(":", 1)[0])
        return text

    body_lines: List[str] = []
    for subject in sorted(grouped, key=lambda t: t.sort_key()):
        subj_text = compact(subject)
        pred_parts: List[str] = []
        preds = grouped[subject]
        for predicate in sorted(preds, key=lambda t: t.sort_key()):
            objs = sorted(preds[predicate], key=lambda t: t.sort_key())
            obj_text = ", ".join(compact(o) for o in objs)
            pred_parts.append(f"    {compact(predicate)} {obj_text}")
        body_lines.append(subj_text + "\n" + " ;\n".join(pred_parts) + " .")

    header_lines = []
    for prefix, ns in graph.namespaces.bindings():
        if prefix in used_prefixes:
            header_lines.append(f"@prefix {prefix}: <{ns.base}> .")

    parts = []
    if header_lines:
        parts.append("\n".join(header_lines))
    if body_lines:
        parts.append("\n\n".join(body_lines))
    return "\n\n".join(parts) + ("\n" if parts else "")
