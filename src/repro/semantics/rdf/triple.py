"""Triples and triple patterns.

A :class:`Triple` is the atomic RDF statement ``(subject, predicate,
object)``.  The same class doubles as a *triple pattern* when any position
holds a :class:`~repro.semantics.rdf.term.Variable`; the
:meth:`Triple.is_ground` predicate distinguishes the two uses.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.semantics.rdf.term import BlankNode, IRI, Literal, Term, Variable


class Triple:
    """An immutable RDF triple or triple pattern."""

    __slots__ = ("subject", "predicate", "object", "_hash")

    def __init__(self, subject: Term, predicate: Term, obj: Term):
        if not isinstance(subject, (IRI, BlankNode, Variable)):
            raise TypeError(f"invalid triple subject: {subject!r}")
        if not isinstance(predicate, (IRI, Variable)):
            raise TypeError(f"invalid triple predicate: {predicate!r}")
        if not isinstance(obj, (IRI, BlankNode, Literal, Variable)):
            raise TypeError(f"invalid triple object: {obj!r}")
        object.__setattr__(self, "subject", subject)
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "object", obj)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):
        raise AttributeError("Triple is immutable")

    def __iter__(self) -> Iterator[Term]:
        return iter((self.subject, self.predicate, self.object))

    def __getitem__(self, index: int) -> Term:
        return (self.subject, self.predicate, self.object)[index]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Triple)
            and other.subject == self.subject
            and other.predicate == self.predicate
            and other.object == self.object
        )

    def __hash__(self) -> int:
        # computed lazily: most triples are encoded to id tuples at the
        # graph boundary and never hashed as objects at all
        cached = self._hash
        if cached is None:
            cached = hash((self.subject, self.predicate, self.object))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"

    def n3(self) -> str:
        """N-Triples serialisation of the statement (ground triples only)."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def is_ground(self) -> bool:
        """True when the triple contains no variables."""
        return (
            self.subject.is_concrete()
            and self.predicate.is_concrete()
            and self.object.is_concrete()
        )

    def variables(self) -> Tuple[Variable, ...]:
        """The variables occurring in this pattern, in S/P/O order."""
        return tuple(t for t in self if isinstance(t, Variable))

    def matches(self, other: "Triple") -> Optional[Dict[Variable, Term]]:
        """Try to match this *pattern* against a ground triple.

        Returns the variable bindings produced by the match, or ``None`` when
        the triples do not unify.  A variable occurring twice must bind to
        the same term both times.
        """
        bindings: Dict[Variable, Term] = {}
        for mine, theirs in zip(self, other):
            if isinstance(mine, Variable):
                bound = bindings.get(mine)
                if bound is None:
                    bindings[mine] = theirs
                elif bound != theirs:
                    return None
            elif mine != theirs:
                return None
        return bindings

    def substitute(self, bindings: Dict[Variable, Term]) -> "Triple":
        """Replace variables with their bindings, leaving unbound ones."""

        def _sub(term: Term) -> Term:
            if isinstance(term, Variable):
                return bindings.get(term, term)
            return term

        return Triple(_sub(self.subject), _sub(self.predicate), _sub(self.object))

    def try_substitute(self, bindings: Dict[Variable, Term]) -> Optional["Triple"]:
        """Substitute, or ``None`` when the result is not a valid pattern.

        A join step can bind a variable to a literal and then meet that
        variable again in subject (or predicate) position of a later
        pattern.  No stored triple has a literal subject, so such a step
        matches nothing — the join operators treat ``None`` as "no
        solutions" rather than letting the :class:`Triple` constructor
        raise.
        """
        try:
            return self.substitute(bindings)
        except TypeError:
            return None
