"""Namespaces and prefix management.

A :class:`Namespace` makes IRI construction readable: ``SSN.Sensor`` instead
of ``IRI("http://purl.oclc.org/NET/ssnx/ssn#Sensor")``.  A
:class:`NamespaceManager` keeps the prefix -> namespace bindings a graph uses
when serialising to Turtle or compacting IRIs for display.

The well-known namespaces used throughout the middleware (RDF, RDFS, OWL,
XSD) are defined here once; domain namespaces (SSN, DOLCE, the drought and
IK ontologies) live in :mod:`repro.ontologies.vocabulary`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.semantics.rdf.term import IRI


class Namespace:
    """A factory of IRIs sharing a common prefix.

    >>> EX = Namespace("http://example.org/")
    >>> EX.Sensor
    IRI('http://example.org/Sensor')
    >>> EX["soil moisture"]          # doctest: +SKIP
    """

    __slots__ = ("_base", "_attr_cache")

    def __init__(self, base: str):
        if not base:
            raise ValueError("namespace base must be non-empty")
        self._base = base
        self._attr_cache: Dict[str, IRI] = {}

    @property
    def base(self) -> str:
        """The namespace IRI prefix string."""
        return self._base

    def term(self, name: str) -> IRI:
        """Build the IRI for ``name`` inside this namespace."""
        return IRI(self._base + name)

    def __getattr__(self, name: str) -> IRI:
        # attribute access reaches a *fixed* vocabulary (``SSN.Observation``)
        # spelled in source code, so memoising it is bounded — and it is on
        # the annotation hot path, where rebuilding (and re-validating) the
        # same IRI per record dominated triple generation.  Dynamic names
        # (``ns[f"observation/{i}"]``) stay uncached: they are unbounded.
        if name.startswith("_"):
            raise AttributeError(name)
        iri = self._attr_cache.get(name)
        if iri is None:
            iri = self._attr_cache[name] = self.term(name)
        return iri

    def __getitem__(self, name: str) -> IRI:
        return self.term(name)

    def __contains__(self, iri: object) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self._base)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Namespace) and other._base == self._base

    def __hash__(self) -> int:
        return hash(("Namespace", self._base))

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"

    def __str__(self) -> str:
        return self._base


#: Core W3C vocabularies.
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")

#: Default prefix table every graph starts with.
DEFAULT_PREFIXES: Dict[str, Namespace] = {
    "rdf": RDF,
    "rdfs": RDFS,
    "owl": OWL,
    "xsd": XSD,
}


class NamespaceManager:
    """Bidirectional prefix <-> namespace registry used by serialisers.

    :attr:`generation` is a monotonic counter bumped whenever a binding
    actually changes; query-plan and result caches include it in their
    validity checks, since rebinding a prefix changes how CURIEs in cached
    query text resolve without touching any triple (or the graph version).
    """

    def __init__(self, initial: Optional[Dict[str, Namespace]] = None):
        self._by_prefix: Dict[str, Namespace] = {}
        self._by_base: Dict[str, str] = {}
        self._generation = 0
        for prefix, ns in (initial or DEFAULT_PREFIXES).items():
            self.bind(prefix, ns)

    @property
    def generation(self) -> int:
        """Monotonic binding counter (bumps when a binding changes)."""
        return self._generation

    def bind(self, prefix: str, namespace: Namespace, replace: bool = True) -> None:
        """Associate ``prefix`` with ``namespace``.

        With ``replace=False`` an existing binding for the prefix is kept.
        """
        old = self._by_prefix.get(prefix)
        if old is not None:
            if not replace:
                return
            if old == namespace:
                # re-asserted binding: the most recent bind wins the
                # reverse (base -> prefix) map used by compact() and the
                # serialisers, but CURIE resolution is unchanged, so the
                # generation (and the query caches keyed on it) stays put
                self._by_base[namespace.base] = prefix
                return
            self._by_base.pop(old.base, None)
        self._by_prefix[prefix] = namespace
        self._by_base[namespace.base] = prefix
        self._generation += 1

    def namespace(self, prefix: str) -> Optional[Namespace]:
        """Look up the namespace bound to ``prefix`` (or ``None``)."""
        return self._by_prefix.get(prefix)

    def prefix(self, namespace: Namespace) -> Optional[str]:
        """Look up the prefix bound to ``namespace`` (or ``None``)."""
        return self._by_base.get(namespace.base)

    def bindings(self) -> Iterator[Tuple[str, Namespace]]:
        """Iterate ``(prefix, namespace)`` pairs sorted by prefix."""
        return iter(sorted(self._by_prefix.items()))

    def compact(self, iri: IRI) -> str:
        """Return a CURIE (``prefix:local``) for ``iri`` when possible.

        Falls back to the ``<...>`` form when no bound namespace matches or
        when the local part would itself contain separators.
        """
        for base, prefix in sorted(
            self._by_base.items(), key=lambda kv: -len(kv[0])
        ):
            if iri.value.startswith(base):
                local = iri.value[len(base):]
                if local and "/" not in local and "#" not in local:
                    return f"{prefix}:{local}"
        return iri.n3()

    def expand(self, curie: str) -> IRI:
        """Expand a CURIE such as ``ssn:Sensor`` to a full IRI.

        Raises ``KeyError`` if the prefix is unknown.
        """
        if curie.startswith("<") and curie.endswith(">"):
            return IRI(curie[1:-1])
        prefix, _, local = curie.partition(":")
        ns = self._by_prefix.get(prefix)
        if ns is None:
            raise KeyError(f"unknown namespace prefix: {prefix!r}")
        return ns.term(local)

    def copy(self) -> "NamespaceManager":
        """Return an independent copy of this manager."""
        clone = NamespaceManager(initial={})
        for prefix, ns in self._by_prefix.items():
            clone.bind(prefix, ns)
        return clone
