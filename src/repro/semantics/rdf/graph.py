"""Indexed in-memory RDF graph.

The graph keeps three permutation indexes (SPO, POS, OSP) so that any triple
pattern with at least one ground position is answered by dictionary lookups
instead of a scan.  This is the storage layer the ontology segment layer of
the middleware is built on: every annotated observation, ontology axiom and
inferred statement ends up as triples in a :class:`Graph`.

Mutations are observable: a consumer that needs to react to graph growth
(the incremental reasoner, most importantly) registers a
:class:`ChangeTracker` via :meth:`Graph.track_changes` and periodically
drains it for the triples added — and whether anything was retracted —
since the last drain.  Trackers are held by weak reference, so dropping
the consumer drops its tracker without explicit deregistration.

The graph also maintains cheap cardinality statistics (triples per
predicate, distinct subjects per predicate) alongside the indexes, so the
SPARQL query planner can estimate the result size of any triple pattern in
O(1)–O(small dict) without enumerating matches — see
:meth:`Graph.pattern_cardinality` and the ``distinct_*_count`` accessors.
Empty index buckets are pruned on removal so the ``len``-based statistics
stay exact under churn.
"""

from __future__ import annotations

import weakref
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.semantics.rdf.namespace import NamespaceManager, RDF
from repro.semantics.rdf.term import BlankNode, IRI, Literal, Term, Variable, as_term
from repro.semantics.rdf.triple import Triple

TriplePattern = Tuple[Optional[Term], Optional[Term], Optional[Term]]


@dataclass
class GraphDelta:
    """The mutations a :class:`ChangeTracker` observed between two drains.

    ``added`` lists the triples inserted (in insertion order, without
    duplicates — re-adding a present triple is not a mutation).
    ``retracted`` is ``True`` when any triple was removed or the graph was
    cleared; removals are not itemised because incremental consumers fall
    back to a full recomputation on any retraction.  ``overflowed`` is
    ``True`` when the tracker's buffer exceeded
    :attr:`ChangeTracker.max_buffered` and the backlog was dropped —
    consumers must likewise fall back to a full recomputation.
    """

    added: List[Triple] = field(default_factory=list)
    retracted: bool = False
    overflowed: bool = False

    def __bool__(self) -> bool:
        return bool(self.added) or self.retracted or self.overflowed

    @property
    def needs_full(self) -> bool:
        """Whether an incremental consumer must recompute from scratch."""
        return self.retracted or self.overflowed


class ChangeTracker:
    """Accumulates one consumer's view of graph mutations.

    Obtained from :meth:`Graph.track_changes`; the graph only keeps a weak
    reference, so the tracker lives exactly as long as its consumer.  A
    consumer that never drains does not hoard memory forever: once more
    than :attr:`max_buffered` adds pile up, the buffer collapses into an
    ``overflowed`` flag (the consumer then recomputes from scratch, which
    needs no backlog).
    """

    __slots__ = ("_added", "_retracted", "_overflowed", "__weakref__")

    #: Buffered-adds bound before the backlog collapses into ``overflowed``.
    max_buffered = 250_000

    def __init__(self) -> None:
        self._added: List[Triple] = []
        self._retracted = False
        self._overflowed = False

    @property
    def dirty(self) -> bool:
        """Whether any mutation happened since the last :meth:`drain`."""
        return self._retracted or self._overflowed or bool(self._added)

    @property
    def retracted(self) -> bool:
        """Whether a removal / clear happened since the last drain."""
        return self._retracted

    def record_add(self, triple: Triple) -> None:
        """Buffer one added triple, collapsing to overflow past the bound."""
        if self._overflowed:
            return
        self._added.append(triple)
        if len(self._added) > self.max_buffered:
            self._added = []
            self._overflowed = True

    def drain(self) -> GraphDelta:
        """Return and reset the accumulated delta."""
        delta = GraphDelta(self._added, self._retracted, self._overflowed)
        self._added = []
        self._retracted = False
        self._overflowed = False
        return delta

    def requeue(self, delta: GraphDelta) -> None:
        """Put a drained delta back in front of the buffer.

        Used by consumers whose processing of the delta failed midway, so
        the next drain sees the unconsumed mutations again.
        """
        if delta.added and not self._overflowed:
            self._added = delta.added + self._added
            if len(self._added) > self.max_buffered:
                self._added = []
                self._overflowed = True
        self._retracted = self._retracted or delta.retracted
        self._overflowed = self._overflowed or delta.overflowed


class Graph:
    """A set of RDF triples with pattern-matching access.

    Parameters
    ----------
    identifier:
        Optional IRI naming the graph (useful when several graphs are
        managed together, e.g. one per sensor source).
    namespaces:
        Optional namespace manager; a fresh one with the core W3C prefixes
        is created when omitted.
    """

    def __init__(
        self,
        identifier: Optional[IRI] = None,
        namespaces: Optional[NamespaceManager] = None,
    ):
        self.identifier = identifier
        self.namespaces = namespaces or NamespaceManager()
        self._spo: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._pos: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._osp: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._size = 0
        self._version = 0
        self._trackers: List["weakref.ref[ChangeTracker]"] = []
        # cardinality statistics maintained incrementally for the planner
        self._pred_counts: Dict[Term, int] = {}
        self._pred_subjects: Dict[Term, int] = {}

    # ------------------------------------------------------------------ #
    # change tracking
    # ------------------------------------------------------------------ #

    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumps on every add / remove / clear)."""
        return self._version

    def track_changes(self) -> ChangeTracker:
        """Register and return a fresh :class:`ChangeTracker`.

        The tracker sees every mutation from this point on.  It is held by
        weak reference: when the consumer drops it, the graph forgets it.
        """
        tracker = ChangeTracker()
        self._trackers.append(weakref.ref(tracker, self._forget_tracker))
        return tracker

    def _forget_tracker(self, ref: "weakref.ref[ChangeTracker]") -> None:
        # garbage-collection callback: prune the dead ref eagerly so the
        # notify loops never iterate (or allocate for) dropped trackers
        try:
            self._trackers.remove(ref)
        except ValueError:
            pass

    def _live_trackers(self) -> List[ChangeTracker]:
        return [t for t in (ref() for ref in self._trackers) if t is not None]

    def _notify_add(self, triple: Triple) -> None:
        # snapshot: a GC-triggered _forget_tracker may prune the list while
        # we iterate, which would make the index-based loop skip a tracker
        for ref in tuple(self._trackers):
            tracker = ref()
            if tracker is not None:
                tracker.record_add(triple)

    def _notify_retract(self) -> None:
        for ref in tuple(self._trackers):
            tracker = ref()
            if tracker is not None:
                tracker._retracted = True

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def add(self, triple: Union[Triple, Tuple[Term, Term, Term]]) -> bool:
        """Add a ground triple.  Returns ``True`` if it was not present."""
        if not isinstance(triple, Triple):
            s, p, o = triple
            triple = Triple(as_term(s), as_term(p), as_term(o))
        if not triple.is_ground():
            raise ValueError("cannot add a triple containing variables")
        s, p, o = triple.subject, triple.predicate, triple.object
        sp_objects = self._spo[s][p]
        if o in sp_objects:
            return False
        if not sp_objects:
            # first (s, p, *) triple: s becomes a distinct subject of p
            self._pred_subjects[p] = self._pred_subjects.get(p, 0) + 1
        sp_objects.add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        self._size += 1
        self._pred_counts[p] = self._pred_counts.get(p, 0) + 1
        self._version += 1
        if self._trackers:
            self._notify_add(triple)
        return True

    def add_all(self, triples: Iterable[Union[Triple, Tuple[Term, Term, Term]]]) -> int:
        """Add many triples; returns the number actually inserted."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Union[Triple, Tuple[Term, Term, Term]]) -> bool:
        """Remove a ground triple.  Returns ``True`` if it was present."""
        if not isinstance(triple, Triple):
            s, p, o = triple
            triple = Triple(as_term(s), as_term(p), as_term(o))
        s, p, o = triple.subject, triple.predicate, triple.object
        if o not in self._spo.get(s, {}).get(p, set()):
            return False
        # discard from all three permutations, pruning emptied buckets so
        # the len()-based distinct-count statistics stay exact
        sp_map = self._spo[s]
        sp_map[p].discard(o)
        if not sp_map[p]:
            del sp_map[p]
            if not sp_map:
                del self._spo[s]
            remaining = self._pred_subjects.get(p, 0) - 1
            if remaining > 0:
                self._pred_subjects[p] = remaining
            else:
                self._pred_subjects.pop(p, None)
        po_map = self._pos[p]
        po_map[o].discard(s)
        if not po_map[o]:
            del po_map[o]
            if not po_map:
                del self._pos[p]
        os_map = self._osp[o]
        os_map[s].discard(p)
        if not os_map[s]:
            del os_map[s]
            if not os_map:
                del self._osp[o]
        self._size -= 1
        count = self._pred_counts.get(p, 0) - 1
        if count > 0:
            self._pred_counts[p] = count
        else:
            self._pred_counts.pop(p, None)
        self._version += 1
        if self._trackers:
            self._notify_retract()
        return True

    def remove_matching(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ) -> int:
        """Remove every triple matching the (possibly wildcard) pattern."""
        victims = list(self.triples((subject, predicate, obj)))
        for t in victims:
            self.remove(t)
        return len(victims)

    def clear(self) -> None:
        """Remove every triple."""
        had_triples = self._size > 0
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._pred_counts.clear()
        self._pred_subjects.clear()
        self._size = 0
        if had_triples:
            self._version += 1
            if self._trackers:
                self._notify_retract()

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Union[Triple, Tuple]) -> bool:
        if isinstance(triple, Triple):
            s, p, o = triple.subject, triple.predicate, triple.object
        else:
            s, p, o = triple
        return o in self._spo.get(s, {}).get(p, set())

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def triples(
        self, pattern: TriplePattern = (None, None, None)
    ) -> Iterator[Triple]:
        """Yield triples matching ``pattern``; ``None`` is a wildcard.

        A :class:`~repro.semantics.rdf.term.Variable` in a position is
        treated as a wildcard too, so SPARQL basic-graph-pattern evaluation
        can pass patterns through unchanged.
        """
        s, p, o = (
            None if isinstance(t, Variable) else t for t in pattern
        )
        if s is not None:
            if p is not None:
                if o is not None:
                    if o in self._spo.get(s, {}).get(p, set()):
                        yield Triple(s, p, o)
                else:
                    for obj in self._spo.get(s, {}).get(p, set()):
                        yield Triple(s, p, obj)
            else:
                for pred, objs in self._spo.get(s, {}).items():
                    if o is not None:
                        if o in objs:
                            yield Triple(s, pred, o)
                    else:
                        for obj in objs:
                            yield Triple(s, pred, obj)
        elif p is not None:
            if o is not None:
                for subj in self._pos.get(p, {}).get(o, set()):
                    yield Triple(subj, p, o)
            else:
                for obj, subjs in self._pos.get(p, {}).items():
                    for subj in subjs:
                        yield Triple(subj, p, obj)
        elif o is not None:
            for subj, preds in self._osp.get(o, {}).items():
                for pred in preds:
                    yield Triple(subj, pred, o)
        else:
            for subj, po in self._spo.items():
                for pred, objs in po.items():
                    for obj in objs:
                        yield Triple(subj, pred, obj)

    def subjects(
        self, predicate: Optional[Term] = None, obj: Optional[Term] = None
    ) -> Iterator[Term]:
        """Distinct subjects of triples matching ``(?, predicate, obj)``."""
        seen: Set[Term] = set()
        for t in self.triples((None, predicate, obj)):
            if t.subject not in seen:
                seen.add(t.subject)
                yield t.subject

    def objects(
        self, subject: Optional[Term] = None, predicate: Optional[Term] = None
    ) -> Iterator[Term]:
        """Distinct objects of triples matching ``(subject, predicate, ?)``."""
        seen: Set[Term] = set()
        for t in self.triples((subject, predicate, None)):
            if t.object not in seen:
                seen.add(t.object)
                yield t.object

    def predicates(
        self, subject: Optional[Term] = None, obj: Optional[Term] = None
    ) -> Iterator[Term]:
        """Distinct predicates of triples matching ``(subject, ?, obj)``."""
        seen: Set[Term] = set()
        for t in self.triples((subject, None, obj)):
            if t.predicate not in seen:
                seen.add(t.predicate)
                yield t.predicate

    def value(
        self, subject: Optional[Term] = None, predicate: Optional[Term] = None,
        obj: Optional[Term] = None, default: Optional[Term] = None,
    ) -> Optional[Term]:
        """Return one term completing the pattern, or ``default``.

        Exactly one of the three positions must be ``None``; that position is
        the value returned.
        """
        holes = [subject is None, predicate is None, obj is None]
        if sum(holes) != 1:
            raise ValueError("value() requires exactly one unspecified position")
        for t in self.triples((subject, predicate, obj)):
            if subject is None:
                return t.subject
            if predicate is None:
                return t.predicate
            return t.object
        return default

    # ------------------------------------------------------------------ #
    # cardinality statistics (consumed by the SPARQL query planner)
    # ------------------------------------------------------------------ #

    def predicate_cardinality(self, predicate: Term) -> int:
        """Exact number of triples carrying ``predicate``."""
        return self._pred_counts.get(predicate, 0)

    def distinct_subjects_count(self, predicate: Optional[Term] = None) -> int:
        """Distinct subjects of triples with ``predicate`` (or of any triple)."""
        if predicate is None:
            return len(self._spo)
        return self._pred_subjects.get(predicate, 0)

    def distinct_objects_count(self, predicate: Optional[Term] = None) -> int:
        """Distinct objects of triples with ``predicate`` (or of any triple)."""
        if predicate is None:
            return len(self._osp)
        return len(self._pos.get(predicate, ()))

    def distinct_predicates_count(self) -> int:
        """Number of distinct predicates in the graph."""
        return len(self._pos)

    def pattern_cardinality(self, pattern: TriplePattern) -> int:
        """Exact number of triples matching ``pattern``.

        ``None`` (or a :class:`~repro.semantics.rdf.term.Variable`) is a
        wildcard.  Answered from the permutation indexes and the maintained
        per-predicate counters without enumerating matches; the worst cases
        — one fixed subject or one fixed object — iterate a single small
        inner dictionary.
        """
        s, p, o = (None if isinstance(t, Variable) else t for t in pattern)
        if s is not None:
            if p is not None:
                if o is not None:
                    return 1 if o in self._spo.get(s, {}).get(p, ()) else 0
                return len(self._spo.get(s, {}).get(p, ()))
            if o is not None:
                return len(self._osp.get(o, {}).get(s, ()))
            return sum(len(objs) for objs in self._spo.get(s, {}).values())
        if p is not None:
            if o is not None:
                return len(self._pos.get(p, {}).get(o, ()))
            return self._pred_counts.get(p, 0)
        if o is not None:
            return sum(len(preds) for preds in self._osp.get(o, {}).values())
        return self._size

    # ------------------------------------------------------------------ #
    # conveniences used heavily by the ontology layer
    # ------------------------------------------------------------------ #

    def add_type(self, individual: Term, cls: IRI) -> bool:
        """Assert ``individual rdf:type cls``."""
        return self.add(Triple(individual, RDF.type, cls))

    def types_of(self, individual: Term) -> Set[IRI]:
        """All asserted ``rdf:type`` values for ``individual``."""
        return {o for o in self.objects(individual, RDF.type) if isinstance(o, IRI)}

    def instances_of(self, cls: IRI) -> Set[Term]:
        """All subjects asserted to be of type ``cls``."""
        return set(self.subjects(RDF.type, cls))

    def literal_value(
        self, subject: Term, predicate: Term, default=None
    ):
        """The Python value of the first literal object for the pattern."""
        val = self.value(subject, predicate, None)
        if isinstance(val, Literal):
            return val.to_python()
        return default

    # ------------------------------------------------------------------ #
    # set operations
    # ------------------------------------------------------------------ #

    def union(self, other: "Graph") -> "Graph":
        """A new graph holding the triples of both graphs."""
        result = self.copy()
        result.add_all(other)
        return result

    def intersection(self, other: "Graph") -> "Graph":
        """A new graph holding only the triples present in both graphs."""
        result = Graph(namespaces=self.namespaces.copy())
        for t in self:
            if t in other:
                result.add(t)
        return result

    def difference(self, other: "Graph") -> "Graph":
        """A new graph holding the triples of ``self`` absent from ``other``."""
        result = Graph(namespaces=self.namespaces.copy())
        for t in self:
            if t not in other:
                result.add(t)
        return result

    def copy(self) -> "Graph":
        """An independent copy of this graph."""
        result = Graph(identifier=self.identifier, namespaces=self.namespaces.copy())
        result.add_all(self)
        return result

    def __iadd__(self, other: Iterable[Triple]) -> "Graph":
        self.add_all(other)
        return self

    # ------------------------------------------------------------------ #
    # serialisation (delegates)
    # ------------------------------------------------------------------ #

    def serialize(self, format: str = "ntriples") -> str:
        """Serialise to ``ntriples`` or ``turtle``."""
        from repro.semantics.rdf.serializer import serialize_graph

        return serialize_graph(self, format=format)

    def parse(self, text: str, format: str = "ntriples") -> int:
        """Parse ``text`` into this graph; returns triples added."""
        from repro.semantics.rdf.parser import parse_into_graph

        return parse_into_graph(self, text, format=format)

    def __repr__(self) -> str:
        name = self.identifier.value if self.identifier else "anonymous"
        return f"<Graph {name} ({self._size} triples)>"
