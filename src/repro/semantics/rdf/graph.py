"""Indexed in-memory RDF graph, dictionary-encoded to integer ids.

Terms are interned once at the mutation boundary into a per-graph
:class:`~repro.semantics.rdf.dictionary.TermDictionary` (term -> dense int
id, append-only), and the three permutation indexes (SPO, POS, OSP) store
``(int, int, int)`` tuples: every index probe, join step and cardinality
lookup is integer hashing instead of structural term hashing.  Decoding
back to :class:`~repro.semantics.rdf.term.Term` objects happens lazily and
only at the boundaries — iteration, SPARQL projection, serialisation and
change-listener drains.

Index layout: each permutation is ``Dict[int, Dict[int, bucket]]`` where a
*bucket* is either a bare ``int`` (the overwhelmingly common single-entry
case — one object per ``(s, p)``, one predicate per ``(o, s)``) or a
``Set[int]`` once a second entry arrives.  Collapsing singleton buckets
avoids a ~200-byte ``set`` allocation per triple per permutation, which is
where the bulk of the per-triple memory went in the object-keyed layout.

Mutations are observable: a consumer that needs to react to graph growth
(the incremental reasoner, most importantly) registers a
:class:`ChangeTracker` via :meth:`Graph.track_changes` and periodically
drains it for the triples added — and whether anything was retracted —
since the last drain.  Tracker journals hold *encoded* triples (decode is
deferred until someone reads :attr:`GraphDelta.added`, and id-consumers
read :attr:`GraphDelta.added_ids` without decoding at all); the dictionary
is append-only, so journalled ids stay valid across later mutations.
Trackers are held by weak reference, so dropping the consumer drops its
tracker without explicit deregistration.

The graph also maintains cheap cardinality statistics (triples per
predicate, distinct subjects per predicate) alongside the indexes, so the
SPARQL query planner can estimate the result size of any triple pattern in
O(1)–O(small dict) without enumerating matches — see
:meth:`Graph.pattern_cardinality` and the ``distinct_*_count`` accessors.
Empty index buckets are pruned on removal so the statistics stay exact
under churn.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.semantics.rdf.dictionary import TermDictionary, TripleIds
from repro.semantics.rdf.namespace import NamespaceManager, RDF
from repro.semantics.rdf.term import BlankNode, IRI, Literal, Term, Variable, as_term
from repro.semantics.rdf.triple import Triple

TriplePattern = Tuple[Optional[Term], Optional[Term], Optional[Term]]
#: An encoded pattern: ``None`` is a wildcard, an int a ground term id.
IdPattern = Tuple[Optional[int], Optional[int], Optional[int]]

#: A bucket is one id (singleton) or a set of ids (two or more entries).
Bucket = Union[int, Set[int]]
Index = Dict[int, Dict[int, Bucket]]


# --------------------------------------------------------------------- #
# adaptive buckets (int for singletons, set once a second entry arrives)
# --------------------------------------------------------------------- #

def _bucket_add(inner: Dict[int, Bucket], key: int, value: int) -> bool:
    """Add ``value`` under ``key``; returns ``True`` when it was new."""
    current = inner.get(key)
    if current is None:
        inner[key] = value
        return True
    if current.__class__ is int:
        if current == value:
            return False
        inner[key] = {current, value}
        return True
    if value in current:
        return False
    current.add(value)
    return True


def _bucket_discard(inner: Dict[int, Bucket], key: int, value: int) -> bool:
    """Remove ``value`` from ``key``'s bucket, pruning/collapsing it."""
    current = inner.get(key)
    if current is None:
        return False
    if current.__class__ is int:
        if current != value:
            return False
        del inner[key]
        return True
    if value not in current:
        return False
    current.remove(value)
    if len(current) == 1:
        inner[key] = next(iter(current))
    return True


def _bucket_contains(bucket: Optional[Bucket], value: int) -> bool:
    if bucket is None:
        return False
    if bucket.__class__ is int:
        return bucket == value
    return value in bucket


def _bucket_iter(bucket: Bucket) -> Iterator[int]:
    if bucket.__class__ is int:
        yield bucket
    else:
        yield from bucket


def _bucket_len(bucket: Optional[Bucket]) -> int:
    if bucket is None:
        return 0
    if bucket.__class__ is int:
        return 1
    return len(bucket)


class GraphDelta:
    """The mutations a :class:`ChangeTracker` observed between two drains.

    ``added_ids`` lists the encoded triples inserted (in insertion order,
    without duplicates — re-adding a present triple is not a mutation);
    :attr:`added` decodes them lazily on first access.  ``retracted`` is
    ``True`` when any triple was removed or the graph was cleared.
    ``removed_ids`` itemises those removals when the tracker could afford
    to journal them: ``None`` means the retraction is *un-itemised* (the
    graph was cleared, or the journal overflowed) and the consumer cannot
    know which triples left.  ``overflowed`` is ``True`` when the
    tracker's buffer exceeded :attr:`ChangeTracker.max_buffered` and the
    backlog was dropped — consumers must fall back to a full
    recomputation.

    Coarse consumers (the reasoner) keep keying off :attr:`needs_full`,
    which stays ``True`` on *any* retraction; finer consumers (standing
    views) inspect :attr:`removed_ids` to decide whether the removals
    actually intersect the patterns they maintain.
    """

    __slots__ = (
        "added_ids",
        "removed_ids",
        "retracted",
        "overflowed",
        "_dictionary",
        "_decoded",
        "_decoded_removed",
    )

    def __init__(
        self,
        added_ids: Optional[List[TripleIds]] = None,
        retracted: bool = False,
        overflowed: bool = False,
        dictionary: Optional[TermDictionary] = None,
        removed_ids: Optional[List[TripleIds]] = None,
    ):
        self.added_ids: List[TripleIds] = added_ids if added_ids is not None else []
        # None = un-itemised retraction; [] = no removals happened
        self.removed_ids: Optional[List[TripleIds]] = (
            removed_ids if (removed_ids is not None or retracted) else []
        )
        self.retracted = retracted
        self.overflowed = overflowed
        self._dictionary = dictionary
        self._decoded: Optional[List[Triple]] = None
        self._decoded_removed: Optional[List[Triple]] = None

    @property
    def added(self) -> List[Triple]:
        """The added triples, decoded (and memoised) on first access."""
        if self._decoded is None:
            if self._dictionary is None:
                self._decoded = []
            else:
                self._decoded = self._dictionary.decode_triples(self.added_ids)
        return self._decoded

    @property
    def removed(self) -> List[Triple]:
        """The removed triples, decoded lazily; empty when un-itemised."""
        if self._decoded_removed is None:
            if self._dictionary is None or not self.removed_ids:
                self._decoded_removed = []
            else:
                self._decoded_removed = self._dictionary.decode_triples(self.removed_ids)
        return self._decoded_removed

    @property
    def removals_itemised(self) -> bool:
        """Whether every retraction in this delta is listed in ``removed_ids``."""
        return self.removed_ids is not None

    def __bool__(self) -> bool:
        return bool(self.added_ids) or self.retracted or self.overflowed

    @property
    def needs_full(self) -> bool:
        """Whether a coarse incremental consumer must recompute from scratch."""
        return self.retracted or self.overflowed

    def __repr__(self) -> str:
        removed = "?" if self.removed_ids is None else len(self.removed_ids)
        return (
            f"GraphDelta(added={len(self.added_ids)}, removed={removed}, "
            f"retracted={self.retracted}, overflowed={self.overflowed})"
        )


class ChangeTracker:
    """Accumulates one consumer's view of graph mutations.

    Obtained from :meth:`Graph.track_changes`; the graph only keeps a weak
    reference, so the tracker lives exactly as long as its consumer.  The
    journal buffers *encoded* triples — appending an id tuple per add keeps
    the per-mutation cost flat, and the dictionary's append-only guarantee
    makes deferred decoding safe.  A consumer that never drains does not
    hoard memory forever: once more than :attr:`max_buffered` adds pile up,
    the buffer collapses into an ``overflowed`` flag (the consumer then
    recomputes from scratch, which needs no backlog).
    """

    __slots__ = (
        "_added",
        "_removed",
        "_retracted",
        "_overflowed",
        "_dictionary",
        "__weakref__",
    )

    #: Buffered-mutations bound before the backlog collapses into ``overflowed``.
    max_buffered = 250_000

    def __init__(self, dictionary: Optional[TermDictionary] = None) -> None:
        self._added: List[TripleIds] = []
        # None = a clear (or overflow) made the removal set un-itemisable
        self._removed: Optional[List[TripleIds]] = []
        self._retracted = False
        self._overflowed = False
        self._dictionary = dictionary

    @property
    def dirty(self) -> bool:
        """Whether any mutation happened since the last :meth:`drain`."""
        return self._retracted or self._overflowed or bool(self._added)

    @property
    def retracted(self) -> bool:
        """Whether a removal / clear happened since the last drain."""
        return self._retracted

    def record_add(self, triple_ids: TripleIds) -> None:
        """Buffer one added (encoded) triple, collapsing past the bound."""
        if self._overflowed:
            return
        self._added.append(triple_ids)
        if self._buffered() > self.max_buffered:
            self._collapse()

    def record_remove(self, triple_ids: TripleIds) -> None:
        """Buffer one removed (encoded) triple, collapsing past the bound."""
        self._retracted = True
        if self._overflowed or self._removed is None:
            return
        self._removed.append(triple_ids)
        if self._buffered() > self.max_buffered:
            self._collapse()

    def record_retract_unitemised(self) -> None:
        """Note a retraction whose victims cannot be listed (a clear)."""
        self._retracted = True
        self._removed = None

    def _buffered(self) -> int:
        return len(self._added) + (len(self._removed) if self._removed else 0)

    def _collapse(self) -> None:
        self._added = []
        self._removed = None if self._retracted else []
        self._overflowed = True

    def drain(self) -> GraphDelta:
        """Return and reset the accumulated delta."""
        delta = GraphDelta(
            self._added,
            self._retracted,
            self._overflowed,
            self._dictionary,
            removed_ids=self._removed,
        )
        self._added = []
        self._removed = []
        self._retracted = False
        self._overflowed = False
        return delta

    def requeue(self, delta: GraphDelta) -> None:
        """Put a drained delta back in front of the buffer.

        Used by consumers whose processing of the delta failed midway, so
        the next drain sees the unconsumed mutations again.
        """
        if delta.added_ids and not self._overflowed:
            self._added = delta.added_ids + self._added
        if delta.retracted:
            if delta.removed_ids is None:
                self._removed = None
            elif self._removed is not None:
                self._removed = delta.removed_ids + self._removed
            self._retracted = True
        self._overflowed = self._overflowed or delta.overflowed
        if self._overflowed:
            self._collapse()
        elif self._buffered() > self.max_buffered:
            self._collapse()


class Graph:
    """A set of RDF triples with pattern-matching access.

    Parameters
    ----------
    identifier:
        Optional IRI naming the graph (useful when several graphs are
        managed together, e.g. one per sensor source).
    namespaces:
        Optional namespace manager; a fresh one with the core W3C prefixes
        is created when omitted.
    dictionary:
        Optional term dictionary to *share* with related graphs.  Shared
        dictionaries make ids directly comparable across graphs, which the
        set operations (:meth:`copy`, :meth:`union`, ...) exploit to move
        triples without a decode/re-encode round trip.  The dictionary is
        append-only, so sharing is safe: a graph never renumbers another
        graph's terms.
    """

    def __init__(
        self,
        identifier: Optional[IRI] = None,
        namespaces: Optional[NamespaceManager] = None,
        dictionary: Optional[TermDictionary] = None,
    ):
        self.identifier = identifier
        self.namespaces = namespaces or NamespaceManager()
        self._dict = dictionary if dictionary is not None else TermDictionary()
        self._spo: Index = {}
        self._pos: Index = {}
        self._osp: Index = {}
        self._size = 0
        self._version = 0
        self._trackers: List["weakref.ref[ChangeTracker]"] = []
        # synchronous mutation journals (WAL sinks) — unlike trackers these
        # are strong references and observe ops in exact order, because a
        # write-ahead log must not miss or reorder a single mutation
        self._journals: List[object] = []
        # cardinality statistics maintained incrementally for the planner,
        # keyed by predicate id
        self._pred_counts: Dict[int, int] = {}
        self._pred_subjects: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # dictionary / encoded access
    # ------------------------------------------------------------------ #

    @property
    def dictionary(self) -> TermDictionary:
        """The graph's term dictionary (term <-> id, append-only)."""
        return self._dict

    def encode_pattern(self, pattern: TriplePattern):
        """Encode a term pattern to an :data:`IdPattern`.

        ``None`` / :class:`~repro.semantics.rdf.term.Variable` positions
        become wildcards (``None``); ground terms are looked up *without*
        interning.  Returns ``None`` when a ground term is unknown to the
        dictionary — such a pattern cannot match any stored triple.
        """
        lookup = self._dict.lookup
        ids: List[Optional[int]] = []
        for term in pattern:
            if term is None or isinstance(term, Variable):
                ids.append(None)
                continue
            term_id = lookup(term)
            if term_id is None:
                return None
            ids.append(term_id)
        return (ids[0], ids[1], ids[2])

    def triples_ids(self, pattern: IdPattern = (None, None, None)) -> Iterator[TripleIds]:
        """Yield encoded triples matching an encoded pattern.

        This is the join entry point of the SPARQL evaluator and the rule
        engine: all index probing and candidate enumeration stays in id
        space; no term objects are touched.
        """
        s, p, o = pattern
        if s is not None:
            po = self._spo.get(s)
            if po is None:
                return
            if p is not None:
                bucket = po.get(p)
                if bucket is None:
                    return
                if o is not None:
                    if _bucket_contains(bucket, o):
                        yield (s, p, o)
                else:
                    for obj in _bucket_iter(bucket):
                        yield (s, p, obj)
            else:
                for pred, bucket in po.items():
                    if o is not None:
                        if _bucket_contains(bucket, o):
                            yield (s, pred, o)
                    else:
                        for obj in _bucket_iter(bucket):
                            yield (s, pred, obj)
        elif p is not None:
            os_ = self._pos.get(p)
            if os_ is None:
                return
            if o is not None:
                bucket = os_.get(o)
                if bucket is not None:
                    for subj in _bucket_iter(bucket):
                        yield (subj, p, o)
            else:
                for obj, bucket in os_.items():
                    for subj in _bucket_iter(bucket):
                        yield (subj, p, obj)
        elif o is not None:
            sp = self._osp.get(o)
            if sp is None:
                return
            for subj, bucket in sp.items():
                for pred in _bucket_iter(bucket):
                    yield (subj, pred, o)
        else:
            for subj, po in self._spo.items():
                for pred, bucket in po.items():
                    for obj in _bucket_iter(bucket):
                        yield (subj, pred, obj)

    def contains_ids(self, triple_ids: TripleIds) -> bool:
        """Encoded membership test."""
        s, p, o = triple_ids
        po = self._spo.get(s)
        if po is None:
            return False
        return _bucket_contains(po.get(p), o)

    def add_encoded(self, s: int, p: int, o: int) -> bool:
        """Add a triple already encoded in *this graph's* dictionary.

        The caller vouches that ``(s, p, o)`` decodes to a valid ground
        triple (IRI/bnode subject, IRI predicate); the id-space fast paths
        (rule-head assertion, set operations over a shared dictionary) all
        obtain their ids from triples that passed the decoded constructor
        once.  Returns ``True`` when the triple was not present.
        """
        po = self._spo.get(s)
        if po is None:
            po = self._spo[s] = {}
        had_sp = p in po
        if not _bucket_add(po, p, o):
            return False
        if not had_sp:
            # first (s, p, *) triple: s becomes a distinct subject of p
            self._pred_subjects[p] = self._pred_subjects.get(p, 0) + 1
        os_ = self._pos.get(p)
        if os_ is None:
            os_ = self._pos[p] = {}
        _bucket_add(os_, o, s)
        sp = self._osp.get(o)
        if sp is None:
            sp = self._osp[o] = {}
        _bucket_add(sp, s, p)
        self._size += 1
        self._pred_counts[p] = self._pred_counts.get(p, 0) + 1
        self._version += 1
        if self._journals:
            for journal in self._journals:
                journal.log_add((s, p, o))
        if self._trackers:
            self._notify_add((s, p, o))
        return True

    # ------------------------------------------------------------------ #
    # change tracking
    # ------------------------------------------------------------------ #

    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumps on every add / remove / clear)."""
        return self._version

    def track_changes(self) -> ChangeTracker:
        """Register and return a fresh :class:`ChangeTracker`.

        The tracker sees every mutation from this point on.  It is held by
        weak reference: when the consumer drops it, the graph forgets it.
        """
        tracker = ChangeTracker(self._dict)
        self._trackers.append(weakref.ref(tracker, self._forget_tracker))
        return tracker

    def _forget_tracker(self, ref: "weakref.ref[ChangeTracker]") -> None:
        # garbage-collection callback: prune the dead ref eagerly so the
        # notify loops never iterate (or allocate for) dropped trackers
        try:
            self._trackers.remove(ref)
        except ValueError:
            pass

    def _live_trackers(self) -> List[ChangeTracker]:
        return [t for t in (ref() for ref in self._trackers) if t is not None]

    # ------------------------------------------------------------------ #
    # mutation journals (write-ahead logging)
    # ------------------------------------------------------------------ #

    def attach_journal(self, journal: object) -> None:
        """Register a synchronous mutation journal (a WAL sink).

        The journal's ``log_add(ids)`` / ``log_remove(ids)`` /
        ``log_clear()`` methods are invoked *inside* the mutating call, in
        mutation order, and only for mutations that actually changed the
        graph (re-adding a present triple or removing an absent one does
        not log).  Unlike change trackers, journals are strong references —
        detach explicitly via :meth:`detach_journal`.
        """
        if journal not in self._journals:
            self._journals.append(journal)

    def detach_journal(self, journal: object) -> None:
        """Deregister a journal registered via :meth:`attach_journal`."""
        try:
            self._journals.remove(journal)
        except ValueError:
            pass

    def _notify_add(self, triple_ids: TripleIds) -> None:
        # snapshot: a GC-triggered _forget_tracker may prune the list while
        # we iterate, which would make the index-based loop skip a tracker
        for ref in tuple(self._trackers):
            tracker = ref()
            if tracker is not None:
                tracker.record_add(triple_ids)

    def _notify_remove(self, triple_ids: TripleIds) -> None:
        for ref in tuple(self._trackers):
            tracker = ref()
            if tracker is not None:
                tracker.record_remove(triple_ids)

    def _notify_retract(self) -> None:
        for ref in tuple(self._trackers):
            tracker = ref()
            if tracker is not None:
                tracker.record_retract_unitemised()

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def add(self, triple: Union[Triple, Tuple[Term, Term, Term]]) -> bool:
        """Add a ground triple.  Returns ``True`` if it was not present."""
        if not isinstance(triple, Triple):
            s, p, o = triple
            triple = Triple(as_term(s), as_term(p), as_term(o))
        if not triple.is_ground():
            raise ValueError("cannot add a triple containing variables")
        encode = self._dict.encode
        return self.add_encoded(
            encode(triple.subject), encode(triple.predicate), encode(triple.object)
        )

    def add_all(self, triples: Iterable[Union[Triple, Tuple[Term, Term, Term]]]) -> int:
        """Add many triples; returns the number actually inserted.

        Encoding is batch-friendly by construction: the dictionary interns
        each distinct term once, so the repeated sensor IRIs, units and
        properties of an ingest batch cost one dict probe apiece after
        their first occurrence.
        """
        add = self.add
        return sum(1 for t in triples if add(t))

    def remove(self, triple: Union[Triple, Tuple[Term, Term, Term]]) -> bool:
        """Remove a ground triple.  Returns ``True`` if it was present."""
        if not isinstance(triple, Triple):
            s, p, o = triple
            triple = Triple(as_term(s), as_term(p), as_term(o))
        ids = self._dict.lookup_triple(triple)
        if ids is None:
            return False
        s, p, o = ids
        sp_map = self._spo.get(s)
        if sp_map is None or not _bucket_discard(sp_map, p, o):
            return False
        # prune emptied buckets in all three permutations so the
        # len()-based distinct-count statistics stay exact
        if p not in sp_map:
            if not sp_map:
                del self._spo[s]
            remaining = self._pred_subjects.get(p, 0) - 1
            if remaining > 0:
                self._pred_subjects[p] = remaining
            else:
                self._pred_subjects.pop(p, None)
        po_map = self._pos[p]
        _bucket_discard(po_map, o, s)
        if not po_map:
            del self._pos[p]
        os_map = self._osp[o]
        _bucket_discard(os_map, s, p)
        if not os_map:
            del self._osp[o]
        self._size -= 1
        count = self._pred_counts.get(p, 0) - 1
        if count > 0:
            self._pred_counts[p] = count
        else:
            self._pred_counts.pop(p, None)
        self._version += 1
        if self._journals:
            for journal in self._journals:
                journal.log_remove((s, p, o))
        if self._trackers:
            self._notify_remove((s, p, o))
        return True

    def remove_matching(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ) -> int:
        """Remove every triple matching the (possibly wildcard) pattern."""
        victims = list(self.triples((subject, predicate, obj)))
        for t in victims:
            self.remove(t)
        return len(victims)

    def clear(self) -> None:
        """Remove every triple.

        The term dictionary is deliberately *kept*: ids are stable for the
        life of the graph, so encoded journals and shared-dictionary
        consumers survive a clear (they observe it as a retraction).  The
        same retention underpins write-ahead-log id stability — a WAL
        records ``clear`` as a single op and keeps referencing
        previously-defined ids afterwards, which is only sound because a
        clear never renumbers or reuses them.
        """
        had_triples = self._size > 0
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._pred_counts.clear()
        self._pred_subjects.clear()
        self._size = 0
        if had_triples:
            self._version += 1
            if self._journals:
                for journal in self._journals:
                    journal.log_clear()
            if self._trackers:
                self._notify_retract()

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Union[Triple, Tuple]) -> bool:
        if isinstance(triple, Triple):
            s, p, o = triple.subject, triple.predicate, triple.object
        else:
            s, p, o = triple
        lookup = self._dict.lookup
        s_id = lookup(s)
        if s_id is None:
            return False
        p_id = lookup(p)
        if p_id is None:
            return False
        o_id = lookup(o)
        if o_id is None:
            return False
        return self.contains_ids((s_id, p_id, o_id))

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def triples(
        self, pattern: TriplePattern = (None, None, None)
    ) -> Iterator[Triple]:
        """Yield triples matching ``pattern``; ``None`` is a wildcard.

        A :class:`~repro.semantics.rdf.term.Variable` in a position is
        treated as a wildcard too, so SPARQL basic-graph-pattern evaluation
        can pass patterns through unchanged.  Ground terms are resolved to
        ids once; candidates are enumerated in id space and decoded only as
        they are yielded.
        """
        ids = self.encode_pattern(pattern)
        if ids is None:
            return
        terms = self._dict.terms
        for s, p, o in self.triples_ids(ids):
            yield Triple(terms[s], terms[p], terms[o])

    def subjects(
        self, predicate: Optional[Term] = None, obj: Optional[Term] = None
    ) -> Iterator[Term]:
        """Distinct subjects of triples matching ``(?, predicate, obj)``."""
        ids = self.encode_pattern((None, predicate, obj))
        if ids is None:
            return
        terms = self._dict.terms
        seen: Set[int] = set()
        for s, _, _ in self.triples_ids(ids):
            if s not in seen:
                seen.add(s)
                yield terms[s]

    def objects(
        self, subject: Optional[Term] = None, predicate: Optional[Term] = None
    ) -> Iterator[Term]:
        """Distinct objects of triples matching ``(subject, predicate, ?)``."""
        ids = self.encode_pattern((subject, predicate, None))
        if ids is None:
            return
        terms = self._dict.terms
        seen: Set[int] = set()
        for _, _, o in self.triples_ids(ids):
            if o not in seen:
                seen.add(o)
                yield terms[o]

    def predicates(
        self, subject: Optional[Term] = None, obj: Optional[Term] = None
    ) -> Iterator[Term]:
        """Distinct predicates of triples matching ``(subject, ?, obj)``."""
        ids = self.encode_pattern((subject, None, obj))
        if ids is None:
            return
        terms = self._dict.terms
        seen: Set[int] = set()
        for _, p, _ in self.triples_ids(ids):
            if p not in seen:
                seen.add(p)
                yield terms[p]

    def value(
        self, subject: Optional[Term] = None, predicate: Optional[Term] = None,
        obj: Optional[Term] = None, default: Optional[Term] = None,
    ) -> Optional[Term]:
        """Return one term completing the pattern, or ``default``.

        Exactly one of the three positions must be ``None``; that position is
        the value returned.
        """
        holes = [subject is None, predicate is None, obj is None]
        if sum(holes) != 1:
            raise ValueError("value() requires exactly one unspecified position")
        for t in self.triples((subject, predicate, obj)):
            if subject is None:
                return t.subject
            if predicate is None:
                return t.predicate
            return t.object
        return default

    # ------------------------------------------------------------------ #
    # cardinality statistics (consumed by the SPARQL query planner)
    # ------------------------------------------------------------------ #

    def predicate_cardinality(self, predicate: Term) -> int:
        """Exact number of triples carrying ``predicate``."""
        p = self._dict.lookup(predicate)
        if p is None:
            return 0
        return self._pred_counts.get(p, 0)

    def distinct_subjects_count(self, predicate: Optional[Term] = None) -> int:
        """Distinct subjects of triples with ``predicate`` (or of any triple)."""
        if predicate is None:
            return len(self._spo)
        p = self._dict.lookup(predicate)
        if p is None:
            return 0
        return self._pred_subjects.get(p, 0)

    def distinct_objects_count(self, predicate: Optional[Term] = None) -> int:
        """Distinct objects of triples with ``predicate`` (or of any triple)."""
        if predicate is None:
            return len(self._osp)
        p = self._dict.lookup(predicate)
        if p is None:
            return 0
        return len(self._pos.get(p, ()))

    def distinct_predicates_count(self) -> int:
        """Number of distinct predicates in the graph."""
        return len(self._pos)

    def pattern_cardinality(self, pattern: TriplePattern) -> int:
        """Exact number of triples matching ``pattern``.

        ``None`` (or a :class:`~repro.semantics.rdf.term.Variable`) is a
        wildcard.  Answered from the permutation indexes and the maintained
        per-predicate counters without enumerating matches; the worst cases
        — one fixed subject or one fixed object — iterate a single small
        inner dictionary.
        """
        ids = self.encode_pattern(pattern)
        if ids is None:
            return 0
        return self.pattern_cardinality_ids(ids)

    def pattern_cardinality_ids(self, pattern: IdPattern) -> int:
        """Exact number of triples matching an encoded pattern."""
        s, p, o = pattern
        if s is not None:
            if p is not None:
                if o is not None:
                    return 1 if self.contains_ids((s, p, o)) else 0
                return _bucket_len(self._spo.get(s, {}).get(p))
            if o is not None:
                return _bucket_len(self._osp.get(o, {}).get(s))
            return sum(_bucket_len(b) for b in self._spo.get(s, {}).values())
        if p is not None:
            if o is not None:
                return _bucket_len(self._pos.get(p, {}).get(o))
            return self._pred_counts.get(p, 0)
        if o is not None:
            return sum(_bucket_len(b) for b in self._osp.get(o, {}).values())
        return self._size

    # ------------------------------------------------------------------ #
    # conveniences used heavily by the ontology layer
    # ------------------------------------------------------------------ #

    def add_type(self, individual: Term, cls: IRI) -> bool:
        """Assert ``individual rdf:type cls``."""
        return self.add(Triple(individual, RDF.type, cls))

    def types_of(self, individual: Term) -> Set[IRI]:
        """All asserted ``rdf:type`` values for ``individual``."""
        return {o for o in self.objects(individual, RDF.type) if isinstance(o, IRI)}

    def instances_of(self, cls: IRI) -> Set[Term]:
        """All subjects asserted to be of type ``cls``."""
        return set(self.subjects(RDF.type, cls))

    def literal_value(
        self, subject: Term, predicate: Term, default=None
    ):
        """The Python value of the first literal object for the pattern."""
        val = self.value(subject, predicate, None)
        if isinstance(val, Literal):
            return val.to_python()
        return default

    # ------------------------------------------------------------------ #
    # set operations
    # ------------------------------------------------------------------ #
    #
    # All derived graphs share this graph's dictionary, so triples move
    # between them as raw id tuples without decode/re-encode round trips.
    # Graphs with *different* dictionaries still interoperate through the
    # decoded term API.

    def union(self, other: "Graph") -> "Graph":
        """A new graph holding the triples of both graphs."""
        result = self.copy()
        if other._dict is result._dict:
            add_encoded = result.add_encoded
            for s, p, o in other.triples_ids():
                add_encoded(s, p, o)
        else:
            result.add_all(other)
        return result

    def intersection(self, other: "Graph") -> "Graph":
        """A new graph holding only the triples present in both graphs."""
        result = Graph(namespaces=self.namespaces.copy(), dictionary=self._dict)
        if other._dict is self._dict:
            contains = other.contains_ids
            add_encoded = result.add_encoded
            for ids in self.triples_ids():
                if contains(ids):
                    add_encoded(*ids)
        else:
            for t in self:
                if t in other:
                    result.add(t)
        return result

    def difference(self, other: "Graph") -> "Graph":
        """A new graph holding the triples of ``self`` absent from ``other``."""
        result = Graph(namespaces=self.namespaces.copy(), dictionary=self._dict)
        if other._dict is self._dict:
            contains = other.contains_ids
            add_encoded = result.add_encoded
            for ids in self.triples_ids():
                if not contains(ids):
                    add_encoded(*ids)
        else:
            for t in self:
                if t not in other:
                    result.add(t)
        return result

    def copy(self) -> "Graph":
        """An independent copy of this graph (sharing the term dictionary)."""
        result = Graph(
            identifier=self.identifier,
            namespaces=self.namespaces.copy(),
            dictionary=self._dict,
        )
        add_encoded = result.add_encoded
        for s, p, o in self.triples_ids():
            add_encoded(s, p, o)
        return result

    def add_from(self, other: "Graph") -> int:
        """Bulk-load every triple of ``other``; returns the number inserted.

        With a shared dictionary triples move as raw id tuples.  With
        *different* dictionaries (the sharded store replicating ontology
        axioms into per-shard id spaces) each distinct term of ``other`` is
        decoded once and re-encoded once through an id -> id memo, skipping
        per-triple ``Triple`` construction and groundness re-validation —
        the triples already passed them when ``other`` stored them.
        """
        added = 0
        add_encoded = self.add_encoded
        if other._dict is self._dict:
            for ids in other.triples_ids():
                if add_encoded(*ids):
                    added += 1
            return added
        memo: Dict[int, int] = {}
        other_terms = other._dict.terms
        encode = self._dict.encode
        for s, p, o in other.triples_ids():
            ns = memo.get(s)
            if ns is None:
                ns = memo[s] = encode(other_terms[s])
            np = memo.get(p)
            if np is None:
                np = memo[p] = encode(other_terms[p])
            no = memo.get(o)
            if no is None:
                no = memo[o] = encode(other_terms[o])
            if add_encoded(ns, np, no):
                added += 1
        return added

    def __iadd__(self, other: Iterable[Triple]) -> "Graph":
        if isinstance(other, Graph) and other._dict is self._dict:
            add_encoded = self.add_encoded
            for s, p, o in other.triples_ids():
                add_encoded(s, p, o)
        else:
            self.add_all(other)
        return self

    # ------------------------------------------------------------------ #
    # serialisation (delegates)
    # ------------------------------------------------------------------ #

    def serialize(self, format: str = "ntriples") -> str:
        """Serialise to ``ntriples`` or ``turtle``."""
        from repro.semantics.rdf.serializer import serialize_graph

        return serialize_graph(self, format=format)

    def parse(self, text: str, format: str = "ntriples") -> int:
        """Parse ``text`` into this graph; returns triples added."""
        from repro.semantics.rdf.parser import parse_into_graph

        return parse_into_graph(self, text, format=format)

    def __repr__(self) -> str:
        name = self.identifier.value if self.identifier else "anonymous"
        return f"<Graph {name} ({self._size} triples)>"
