"""RDF terms.

The RDF abstract syntax knows three kinds of node -- IRIs, literals and
blank nodes -- plus (for query and rule patterns) variables.  All terms are
immutable value objects: equality and hashing are structural so terms can be
used freely as dictionary keys and set members, which the triple indexes in
:mod:`repro.semantics.rdf.graph` rely on.
"""

from __future__ import annotations

import itertools
import re
from typing import Any, Optional, Union


class Term:
    """Base class for every RDF term.

    Subclasses are :class:`IRI`, :class:`Literal`, :class:`BlankNode` and
    :class:`Variable`.  The base class only provides ordering between
    heterogeneous terms (IRIs < blank nodes < literals < variables) so that
    serialisers can emit deterministic output.
    """

    _ORDER = 0

    def sort_key(self) -> tuple:
        """Return a tuple usable to totally order terms of any kind."""
        return (self._ORDER, str(self))

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def is_concrete(self) -> bool:
        """True for ground terms (everything except :class:`Variable`)."""
        return True


_IRI_FORBIDDEN = re.compile(r"[<>\"{}|^`\\\s]")


class IRI(Term):
    """An Internationalised Resource Identifier.

    Parameters
    ----------
    value:
        The absolute IRI string, e.g. ``"http://example.org/sensor/1"``.

    Raises
    ------
    ValueError
        If the IRI contains characters that RDF forbids inside ``<...>``.
    """

    __slots__ = ("value", "_hash")
    _ORDER = 0

    def __init__(self, value: str):
        if not isinstance(value, str) or not value:
            raise ValueError("IRI value must be a non-empty string")
        if _IRI_FORBIDDEN.search(value):
            raise ValueError(f"invalid character in IRI: {value!r}")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(("IRI", value)))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("IRI is immutable")

    def __str__(self) -> str:
        return self.value

    def __repr__(self) -> str:
        return f"IRI({self.value!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IRI) and other.value == self.value

    def __hash__(self) -> int:
        return self._hash

    def n3(self) -> str:
        """N-Triples / Turtle representation, e.g. ``<http://...>``."""
        return f"<{self.value}>"

    @property
    def local_name(self) -> str:
        """The fragment after the last ``#`` or ``/`` -- a readable label."""
        for sep in ("#", "/"):
            if sep in self.value:
                candidate = self.value.rsplit(sep, 1)[1]
                if candidate:
                    return candidate
        return self.value

    @property
    def namespace(self) -> str:
        """Everything up to and including the last ``#`` or ``/``."""
        idx_hash = self.value.rfind("#")
        idx_slash = self.value.rfind("/")
        idx = max(idx_hash, idx_slash)
        if idx < 0:
            return self.value
        return self.value[: idx + 1]


#: Shared XSD datatype IRIs used by Literal coercion.  Kept here (rather than
#: in namespace.py) to avoid a circular import; namespace.XSD re-exposes them.
_XSD = "http://www.w3.org/2001/XMLSchema#"
XSD_STRING = IRI(_XSD + "string")
XSD_BOOLEAN = IRI(_XSD + "boolean")
XSD_INTEGER = IRI(_XSD + "integer")
XSD_DECIMAL = IRI(_XSD + "decimal")
XSD_DOUBLE = IRI(_XSD + "double")
XSD_DATETIME = IRI(_XSD + "dateTime")
XSD_DATE = IRI(_XSD + "date")


class Literal(Term):
    """An RDF literal: a lexical form plus datatype and optional language tag.

    The constructor accepts native Python values and infers the datatype:

    >>> Literal(3).datatype.local_name
    'integer'
    >>> Literal(2.5).datatype.local_name
    'double'
    >>> Literal(True).datatype.local_name
    'boolean'
    >>> Literal("drought", lang="en").lang
    'en'

    :meth:`to_python` converts back to the corresponding native value, which
    the query FILTER evaluation and the CEP engine use for comparisons.
    """

    __slots__ = ("lexical", "datatype", "lang", "_hash")
    _ORDER = 2

    def __init__(
        self,
        value: Union[str, int, float, bool],
        datatype: Optional[IRI] = None,
        lang: Optional[str] = None,
    ):
        if lang is not None and datatype is not None:
            raise ValueError("a literal cannot have both a language tag and a datatype")
        if isinstance(value, bool):
            lexical = "true" if value else "false"
            datatype = datatype or XSD_BOOLEAN
        elif isinstance(value, int):
            lexical = str(value)
            datatype = datatype or XSD_INTEGER
        elif isinstance(value, float):
            lexical = repr(value)
            datatype = datatype or XSD_DOUBLE
        elif isinstance(value, str):
            lexical = value
            if lang is None and datatype is None:
                datatype = XSD_STRING
        else:
            raise TypeError(f"unsupported literal value type: {type(value)!r}")
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "lang", lang)
        object.__setattr__(self, "_hash", hash(("Literal", lexical, datatype, lang)))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Literal is immutable")

    def __str__(self) -> str:
        return self.lexical

    def __repr__(self) -> str:
        if self.lang:
            return f"Literal({self.lexical!r}, lang={self.lang!r})"
        return f"Literal({self.lexical!r}, datatype={self.datatype})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and other.lexical == self.lexical
            and other.datatype == self.datatype
            and other.lang == self.lang
        )

    def __hash__(self) -> int:
        return self._hash

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )
        if self.lang:
            return f'"{escaped}"@{self.lang}'
        if self.datatype and self.datatype != XSD_STRING:
            return f'"{escaped}"^^{self.datatype.n3()}'
        return f'"{escaped}"'

    def to_python(self) -> Union[str, int, float, bool]:
        """Convert the literal to the closest native Python value."""
        if self.datatype == XSD_BOOLEAN:
            return self.lexical.strip().lower() in ("true", "1")
        if self.datatype == XSD_INTEGER:
            try:
                return int(self.lexical)
            except ValueError:
                return self.lexical
        if self.datatype in (XSD_DOUBLE, XSD_DECIMAL):
            try:
                return float(self.lexical)
            except ValueError:
                return self.lexical
        return self.lexical

    def is_numeric(self) -> bool:
        """True when the literal carries a numeric XSD datatype."""
        return self.datatype in (XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE)


class BlankNode(Term):
    """An anonymous RDF node, locally scoped to a graph.

    Blank nodes created without an explicit identifier receive a fresh
    sequential one (``_:b0``, ``_:b1``, ...).
    """

    __slots__ = ("id", "_hash")
    _ORDER = 1
    _counter = itertools.count()

    def __init__(self, node_id: Optional[str] = None):
        if node_id is None:
            node_id = f"b{next(BlankNode._counter)}"
        node_id = str(node_id)
        object.__setattr__(self, "id", node_id)
        object.__setattr__(self, "_hash", hash(("BlankNode", node_id)))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("BlankNode is immutable")

    def __str__(self) -> str:
        return f"_:{self.id}"

    def __repr__(self) -> str:
        return f"BlankNode({self.id!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BlankNode) and other.id == self.id

    def __hash__(self) -> int:
        return self._hash

    def n3(self) -> str:
        return f"_:{self.id}"


class Variable(Term):
    """A query / rule variable such as ``?sensor``.

    Variables never appear in a stored graph; they occur only in triple
    patterns used by the SPARQL evaluator and the rule engine.
    """

    __slots__ = ("name", "_hash")
    _ORDER = 3

    def __init__(self, name: str):
        name = name.lstrip("?$")
        if not name:
            raise ValueError("variable name must be non-empty")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("Variable", name)))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Variable is immutable")

    def __str__(self) -> str:
        return f"?{self.name}"

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash

    def n3(self) -> str:
        return f"?{self.name}"

    def is_concrete(self) -> bool:
        return False


#: A whole string that is an absolute IRI: a URI scheme (RFC 3986: ALPHA
#: then ALPHA / DIGIT / "+" / "-" / "."), ``://``, then at least one more
#: character, none of which RDF forbids inside ``<...>``.  Anchored at both
#: ends on purpose: free text that merely *embeds* a URL ("see http://x.org
#: for details") must stay a literal.
_ABSOLUTE_IRI_RE = re.compile(
    r"\A[A-Za-z][A-Za-z0-9+.\-]*://[^<>\"{}|^`\\\s]+\Z"
)


def as_term(value: Any) -> Term:
    """Coerce a Python value into an RDF term.

    Strings whose *entire* text parses as an absolute IRI (scheme followed
    by ``://`` and a non-empty remainder with no whitespace or characters
    RDF forbids in ``<...>``) become :class:`IRI`.  Strings that merely
    embed a URL somewhere inside free text — alert messages, descriptions —
    stay :class:`Literal`.  Other native values become :class:`Literal`;
    existing terms pass through.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, str) and _ABSOLUTE_IRI_RE.match(value):
        return IRI(value)
    if isinstance(value, (str, int, float, bool)):
        return Literal(value)
    raise TypeError(f"cannot convert {value!r} to an RDF term")
