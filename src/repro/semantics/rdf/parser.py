"""Parsers for N-Triples and the Turtle subset produced by the serialiser.

Round-tripping (serialise then parse) is exercised by property-based tests;
the interface protocol layer uses these parsers when reading semantically
annotated observations back from the simulated cloud store.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.semantics.rdf.term import BlankNode, IRI, Literal, Term
from repro.semantics.rdf.triple import Triple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.semantics.rdf.graph import Graph


class ParseError(ValueError):
    """Raised when serialised RDF text cannot be parsed."""

    def __init__(self, message: str, line_number: Optional[int] = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


_TOKEN = re.compile(
    r"""
    (?P<iri><[^>]*>)
  | (?P<bnode>_:[A-Za-z0-9_.\-]+)
  | (?P<literal>"(?:[^"\\]|\\.)*"(?:@[A-Za-z\-]+|\^\^<[^>]*>)?)
  | (?P<curie>[A-Za-z_][\w\-]*:[\w\-.]+)
  | (?P<a>\ba\b)
  | (?P<punct>[;,.])
    """,
    re.VERBOSE,
)


def _unescape(text: str) -> str:
    return (
        text.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_literal(token: str) -> Literal:
    match = re.match(r'^"((?:[^"\\]|\\.)*)"(?:@([A-Za-z\-]+)|\^\^<([^>]*)>)?$', token)
    if match is None:
        raise ParseError(f"malformed literal: {token!r}")
    lexical = _unescape(match.group(1))
    lang = match.group(2)
    dtype = match.group(3)
    if lang:
        return Literal(lexical, lang=lang)
    if dtype:
        datatype = IRI(dtype)
        # Re-materialise native types for the common XSD datatypes so the
        # round-trip preserves to_python() behaviour.
        local = datatype.local_name
        if local == "integer":
            return Literal(int(lexical))
        if local in ("double", "decimal"):
            return Literal(float(lexical))
        if local == "boolean":
            return Literal(lexical.strip().lower() in ("true", "1"))
        return Literal(lexical, datatype=datatype)
    return Literal(lexical)


def _term_from_token(kind: str, token: str, graph: "Graph") -> Term:
    if kind == "iri":
        return IRI(token[1:-1])
    if kind == "bnode":
        return BlankNode(token[2:])
    if kind == "literal":
        return _parse_literal(token)
    if kind == "curie":
        return graph.namespaces.expand(token)
    if kind == "a":
        from repro.semantics.rdf.namespace import RDF

        return RDF.type
    raise ParseError(f"unexpected token: {token!r}")


def _tokenize(line: str) -> Iterator[Tuple[str, str]]:
    pos = 0
    while pos < len(line):
        if line[pos].isspace():
            pos += 1
            continue
        match = _TOKEN.match(line, pos)
        if match is None:
            raise ParseError(f"cannot tokenise at: {line[pos:pos + 30]!r}")
        kind = match.lastgroup
        yield kind, match.group(0)
        pos = match.end()


def parse_ntriples(graph: "Graph", text: str) -> int:
    """Parse N-Triples ``text`` into ``graph``; returns triples added."""
    added = 0
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = list(_tokenize(line))
        if len(tokens) != 4 or tokens[-1][1] != ".":
            raise ParseError("expected '<s> <p> <o> .'", line_no)
        try:
            s = _term_from_token(*tokens[0], graph=graph)
            p = _term_from_token(*tokens[1], graph=graph)
            o = _term_from_token(*tokens[2], graph=graph)
        except ParseError as exc:
            raise ParseError(str(exc), line_no) from exc
        if graph.add(Triple(s, p, o)):
            added += 1
    return added


_PREFIX_LINE = re.compile(r"^@prefix\s+([A-Za-z_][\w\-]*):\s+<([^>]*)>\s*\.\s*$")


def parse_turtle(graph: "Graph", text: str) -> int:
    """Parse the Turtle subset emitted by :func:`to_turtle` into ``graph``."""
    from repro.semantics.rdf.namespace import Namespace

    added = 0
    # Collapse statements: a statement ends with '.' at end of line.
    statements: List[str] = []
    current: List[str] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        prefix_match = _PREFIX_LINE.match(line)
        if prefix_match:
            graph.namespaces.bind(prefix_match.group(1), Namespace(prefix_match.group(2)))
            continue
        current.append(line)
        if line.endswith("."):
            statements.append(" ".join(current))
            current = []
    if current:
        raise ParseError("unterminated statement at end of input")

    for statement in statements:
        body = statement[: statement.rfind(".")]
        tokens = list(_tokenize(body))
        if not tokens:
            continue
        subject = _term_from_token(*tokens[0], graph=graph)
        idx = 1
        predicate: Optional[Term] = None
        while idx < len(tokens):
            kind, token = tokens[idx]
            if kind == "punct" and token == ";":
                predicate = None
                idx += 1
                continue
            if kind == "punct" and token == ",":
                idx += 1
                continue
            if predicate is None:
                predicate = _term_from_token(kind, token, graph)
                idx += 1
                continue
            obj = _term_from_token(kind, token, graph)
            if graph.add(Triple(subject, predicate, obj)):
                added += 1
            idx += 1
    return added


def parse_into_graph(graph: "Graph", text: str, format: str = "ntriples") -> int:
    """Dispatch to the parser for ``format`` (``ntriples`` or ``turtle``)."""
    fmt = format.lower()
    if fmt in ("ntriples", "nt", "n-triples"):
        return parse_ntriples(graph, text)
    if fmt in ("turtle", "ttl"):
        return parse_turtle(graph, text)
    raise ValueError(f"unsupported parse format: {format!r}")
