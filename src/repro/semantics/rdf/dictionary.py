"""Dictionary encoding of RDF terms to dense integer ids.

Every hot path of the middleware — batch ingestion, basic-graph-pattern
joins, semi-naive rule firing — ultimately probes the triple indexes of a
:class:`~repro.semantics.rdf.graph.Graph`.  Probing with full term objects
pays for structural hashing and ``__eq__`` calls on every lookup; probing
with small integers is a single C-level compare.  A :class:`TermDictionary`
interns each distinct term once, assigning it a dense id (0, 1, 2, ...),
so the graph can store and join ``(int, int, int)`` tuples and decode back
to terms only at projection / serialisation / listener boundaries.

Guarantees:

* **Append-only / stable ids** — a term's id never changes and is never
  reused, even when the graph is cleared.  Consumers may therefore hold
  encoded triples (change-tracker journals, cached solutions) across
  mutations and decode them later.
* **Structural identity** — ids follow term *equality*, so two ``==``
  -distinct literals that happen to be string-equal (``"5"^^xsd:integer``
  vs ``"5"^^xsd:string`` vs ``"5"@en``) receive distinct ids, while equal
  terms constructed independently share one id.
* **Lookups never intern** — :meth:`lookup` is the read-side API; query
  constants that are absent from the dictionary simply cannot match and
  must not grow it.
* **Ids are dictionary-local** — an id is only meaningful against the
  dictionary that minted it.  Graphs that *share* a dictionary (derived
  graphs, rule-delta graphs) may exchange raw id tuples; graphs with
  different dictionaries — most importantly the per-area shard partitions,
  which each own a private dictionary so ingest never contends on one
  intern table — must cross through decoded terms
  (:meth:`~repro.semantics.rdf.graph.Graph.add_from` translates via an
  id -> id memo; the query federator merges decoded solutions).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.semantics.rdf.term import Term
from repro.semantics.rdf.triple import Triple

#: An encoded triple.
TripleIds = Tuple[int, int, int]


class TermDictionary:
    """A bidirectional, append-only mapping between terms and dense ids."""

    __slots__ = ("_ids", "_terms")

    def __init__(self) -> None:
        self._ids: Dict[Term, int] = {}
        self._terms: List[Term] = []

    # -- encoding (write side) ----------------------------------------- #

    def encode(self, term: Term) -> int:
        """Intern ``term``, returning its (possibly fresh) id."""
        term_id = self._ids.get(term)
        if term_id is None:
            term_id = len(self._terms)
            self._ids[term] = term_id
            self._terms.append(term)
        return term_id

    def encode_triple(self, triple: Triple) -> TripleIds:
        """Intern all three positions of a ground triple."""
        encode = self.encode
        return (encode(triple.subject), encode(triple.predicate), encode(triple.object))

    # -- lookup (read side, never interns) ----------------------------- #

    def lookup(self, term: Term) -> Optional[int]:
        """The id of ``term``, or ``None`` when it was never interned."""
        return self._ids.get(term)

    def lookup_triple(self, triple: Triple) -> Optional[TripleIds]:
        """Encode a ground triple without interning; ``None`` if any part is unknown."""
        ids = self._ids
        s = ids.get(triple.subject)
        if s is None:
            return None
        p = ids.get(triple.predicate)
        if p is None:
            return None
        o = ids.get(triple.object)
        if o is None:
            return None
        return (s, p, o)

    # -- decoding ------------------------------------------------------ #

    @property
    def terms(self) -> List[Term]:
        """The id -> term table (treat as read-only; hot paths index it)."""
        return self._terms

    def decode(self, term_id: int) -> Term:
        """The term interned under ``term_id``."""
        return self._terms[term_id]

    def decode_triple(self, ids: TripleIds) -> Triple:
        """Rebuild a :class:`Triple` from an encoded triple."""
        terms = self._terms
        return Triple(terms[ids[0]], terms[ids[1]], terms[ids[2]])

    def decode_triples(self, encoded: Iterable[TripleIds]) -> List[Triple]:
        """Decode many encoded triples, preserving order."""
        terms = self._terms
        return [Triple(terms[s], terms[p], terms[o]) for s, p, o in encoded]

    # -- restore (persistence) ----------------------------------------- #

    def load_terms(self, terms: Iterable[Term]) -> None:
        """Bulk-restore the id -> term table from a snapshot.

        Only valid on an *empty* dictionary: snapshot restore builds the
        graph from scratch, so there is no existing id space to merge with.
        """
        if self._terms:
            raise ValueError("load_terms requires an empty dictionary")
        for term in terms:
            self._ids[term] = len(self._terms)
            self._terms.append(term)

    def define(self, term_id: int, term: Term) -> None:
        """Replay one WAL dictionary segment: intern ``term`` as ``term_id``.

        WAL segments are written in id order, so a sequential replay always
        appends; a gap or mismatch means the log and the dictionary have
        diverged and recovery must not continue silently.
        """
        if term_id != len(self._terms):
            existing = self._ids.get(term)
            if existing == term_id:
                return  # idempotent re-definition (already restored)
            raise ValueError(
                f"WAL defines id {term_id} but dictionary is at {len(self._terms)}"
            )
        self._ids[term] = term_id
        self._terms.append(term)

    # -- introspection ------------------------------------------------- #

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: object) -> bool:
        return term in self._ids

    def __repr__(self) -> str:
        return f"<TermDictionary {len(self._terms)} terms>"
