"""Per-area graph partitions behind a stable shard router.

One unified graph was the middleware's last global bottleneck: every
ingested annotation bumps the single :attr:`Graph.version`, invalidating
every cached query plan / result and staling the whole reasoner closure,
and every mutation contends on the same indexes.  A
:class:`ShardedGraphStore` keeps **N partition graphs** instead — each with
its *own* :class:`~repro.semantics.rdf.dictionary.TermDictionary` (ids are
shard-local and never compared across shards), its own permutation indexes,
cardinality statistics, change trackers and, one level up, its own reasoner
and query planner caches — with the ontology axioms **replicated into every
shard** so each partition is self-contained for reasoning and querying.

Placement is by *area* (district): a stable router maps the record's area
to one partition, so all of a district's annotations are co-located and
cross-record work (same-area corroboration joins, per-district dashboards,
incremental closure top-ups) stays partition-local.  Writes to one district
leave the other partitions' versions — and therefore their plan / result
caches and materialised closures — untouched.

Queries go through a **scatter-gather federator**
(:func:`~repro.semantics.sparql.planner.federated_query`): the query is
broadcast to every partition, evaluated there through the partition's own
cost-based planner and caches, and the decoded *full* solution mappings
are set-unioned — exact at that level, since identical cross-partition
mappings can only stand on the replicated axioms — before projection and
solution modifiers apply globally, so in-contract results match the
single-graph oracle row for row including duplicate multiplicities.  Each
gathered solution is derived entirely from one partition's triples —
axioms plus that area's annotations — so joins *across* different areas'
instance data must either be area-constrained or run against
:meth:`ShardedGraphStore.union_graph`.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Union

from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.term import IRI
from repro.semantics.rdf.triple import Triple


def _default_router(num_shards: int):
    # imported lazily: repro.core.__init__ pulls in the whole middleware
    # stack, which itself imports this module
    from repro.core.shard_router import ShardRouter

    return ShardRouter(num_shards)


def register_shard_view(
    graph: Graph,
    text: str,
    name: Optional[str] = None,
    federated: bool = True,
    seed=None,
):
    """Register one partition's standing view for ``text`` on ``graph``.

    ``federated`` selects the cache key the federator will hit: SELECT
    views register the modifier-stripped rewrite under the federated
    marker key, ASK views (and non-federated single-shard views) register
    under the plain text.  ``seed`` is a recovered ``base -> rows``
    mapping that skips the initial materialization.  This is the
    single-graph half of :meth:`ShardedGraphStore.register_standing`,
    split out so a process backend can run it inside a shard worker.
    """
    from dataclasses import replace

    from repro.semantics.sparql.planner import _FEDERATED_KEY_PREFIX, planner_for

    planner = planner_for(graph)
    if not federated:
        return planner.register_standing(graph, text, name=name, seed=seed)
    parsed = planner._parse(text)
    if parsed.form == "ASK":
        return planner.register_standing(graph, text, parsed=parsed, name=name, seed=seed)
    full = replace(
        parsed,
        variables=[],
        distinct=False,
        order_by=None,
        descending=False,
        limit=None,
        offset=0,
    )
    return planner.register_standing(
        graph,
        text,
        parsed=full,
        cache_text=_FEDERATED_KEY_PREFIX + text,
        name=name,
        seed=seed,
    )


class ShardedGraphStore:
    """N per-area partition graphs behind a stable area -> shard router.

    Parameters
    ----------
    num_shards:
        Number of partitions (>= 1).
    base_graph:
        Optional graph whose triples (the ontology axioms, typically
        already materialised) are replicated into every partition at
        construction.  The base graph itself is never mutated or queried
        by the store.
    router:
        Custom router exposing ``shard_for(key) -> int`` and ``split``;
        defaults to the CRC-32 :class:`~repro.core.shard_router.ShardRouter`.
    graphs:
        Pre-built partition graphs (one per shard), used by crash recovery
        to adopt graphs restored from snapshots + WAL replay instead of
        building fresh ones.  Mutually exclusive with ``base_graph``: the
        recovered partitions already contain the replicated axioms.
    """

    def __init__(
        self,
        num_shards: int,
        base_graph: Optional[Graph] = None,
        router=None,
        graphs: Optional[List[Graph]] = None,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.router = router if router is not None else _default_router(num_shards)
        if graphs is not None:
            if base_graph is not None:
                raise ValueError("pass base_graph or graphs, not both")
            if len(graphs) != num_shards:
                raise ValueError(
                    f"expected {num_shards} partition graph(s), got {len(graphs)}"
                )
            self.graphs = list(graphs)
            self.replicated_triples = 0
            return
        base_name = (
            base_graph.identifier.value
            if base_graph is not None and base_graph.identifier is not None
            else "urn:sharded-store"
        )
        self.graphs: List[Graph] = []
        for index in range(num_shards):
            namespaces = (
                base_graph.namespaces.copy() if base_graph is not None else None
            )
            shard = Graph(
                identifier=IRI(f"{base_name}/shard/{index}"), namespaces=namespaces
            )
            if base_graph is not None:
                shard.add_from(base_graph)
            self.graphs.append(shard)
        #: Triples per shard right after axiom replication (for statistics).
        self.replicated_triples = len(self.graphs[0]) if self.graphs else 0

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    @property
    def num_shards(self) -> int:
        return len(self.graphs)

    def shard_for(self, area: Optional[str]) -> int:
        """The partition index owning ``area``."""
        return self.router.shard_for(area)

    def graph_for(self, area: Optional[str]) -> Graph:
        """The partition graph owning ``area``."""
        return self.graphs[self.router.shard_for(area)]

    # ------------------------------------------------------------------ #
    # replicated writes (axioms, service catalogue, knowledge base)
    # ------------------------------------------------------------------ #

    def replicate(self, triples: Union[Graph, Iterable[Triple]]) -> int:
        """Add the same triples to *every* partition; returns insertions.

        Used for graph content that must be visible from any partition —
        ontology axioms, service descriptions, indicator definitions — so
        each shard stays self-contained for reasoning and querying.
        """
        added = 0
        if isinstance(triples, Graph):
            for shard in self.graphs:
                added += shard.add_from(triples)
        else:
            materialised = list(triples)
            for shard in self.graphs:
                added += shard.add_all(materialised)
        return added

    def replicate_with(self, writer: Callable[[Graph], object]) -> None:
        """Run a graph-writing callable against every partition."""
        for shard in self.graphs:
            writer(shard)

    # ------------------------------------------------------------------ #
    # federated querying
    # ------------------------------------------------------------------ #

    def query(self, text: str):
        """Scatter-gather the query across every partition.

        Each partition evaluates through its own shared cost-based planner,
        so untouched partitions answer straight from their version-keyed
        result caches; in-contract results match the single-graph oracle as
        a bag — see :func:`~repro.semantics.sparql.planner.federated_query`.
        """
        from repro.semantics.sparql.planner import federated_query

        return federated_query(self.graphs, text)

    def register_standing(
        self, text: str, name: Optional[str] = None, seeds: Optional[list] = None
    ) -> list:
        """Register ``text`` as a per-partition standing view on every shard.

        The federated serving path then maintains one materialized view per
        partition: a write to one district folds its delta into that
        district's view only, while every untouched partition answers from
        its unchanged materialization.  SELECT views are registered under
        the federator's modifier-stripped rewrite (and its marker cache
        key), so :meth:`query` picks them up without any change; ASK views
        are registered under the plain text the per-shard short-circuit
        uses.  ``seeds`` optionally carries one recovered row mapping per
        shard (``None`` entries re-materialize).  Returns the per-shard
        views.
        """
        federated = len(self.graphs) > 1
        views = []
        for index, shard in enumerate(self.graphs):
            seed = seeds[index] if seeds is not None else None
            views.append(
                register_shard_view(
                    shard, text, name=name, federated=federated, seed=seed
                )
            )
        return views

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def triple_count(self) -> int:
        """Total resident triples across partitions (axioms counted per shard)."""
        return sum(len(shard) for shard in self.graphs)

    def shard_sizes(self) -> List[int]:
        """Resident triples per partition."""
        return [len(shard) for shard in self.graphs]

    def versions(self) -> List[int]:
        """The per-partition mutation counters."""
        return [shard.version for shard in self.graphs]

    def union_graph(self) -> Graph:
        """A fresh single graph holding the union of every partition.

        The escape hatch for queries that must join instance data *across*
        areas (outside the scatter-gather contract).  Expensive — it
        re-encodes every partition into one new dictionary — so callers
        should hold on to the result rather than rebuild it per query.
        """
        union = Graph(namespaces=self.graphs[0].namespaces.copy())
        for shard in self.graphs:
            union.add_from(shard)
        return union

    def __len__(self) -> int:
        return self.triple_count()

    def __repr__(self) -> str:
        sizes = ", ".join(str(size) for size in self.shard_sizes())
        return f"<ShardedGraphStore shards={self.num_shards} triples=[{sizes}]>"
