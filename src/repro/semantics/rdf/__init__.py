"""RDF data model: terms, namespaces, triples, graphs and serialisation."""

from repro.semantics.rdf.term import IRI, Literal, BlankNode, Variable, Term
from repro.semantics.rdf.namespace import Namespace, NamespaceManager, RDF, RDFS, OWL, XSD
from repro.semantics.rdf.triple import Triple
from repro.semantics.rdf.dictionary import TermDictionary
from repro.semantics.rdf.graph import ChangeTracker, Graph, GraphDelta

__all__ = [
    "Term",
    "TermDictionary",
    "IRI",
    "Literal",
    "BlankNode",
    "Variable",
    "Namespace",
    "NamespaceManager",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "Triple",
    "Graph",
    "ChangeTracker",
    "GraphDelta",
]
