"""Variable bindings (solution mappings) produced by query evaluation."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.semantics.rdf.term import Term, Variable


class Bindings:
    """An immutable mapping from variables to RDF terms.

    A solution mapping in SPARQL terminology.  Compatible mappings can be
    merged; merging incompatible mappings (same variable bound to different
    terms) returns ``None``, which the join operators interpret as
    "no solution".
    """

    __slots__ = ("_map", "_hash")

    def __init__(self, mapping: Optional[Dict[Variable, Term]] = None):
        object.__setattr__(self, "_map", dict(mapping or {}))
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):
        raise AttributeError("Bindings are immutable")

    def get(self, var: Variable, default: Optional[Term] = None) -> Optional[Term]:
        """The term bound to ``var`` or ``default``."""
        return self._map.get(var, default)

    def __getitem__(self, var: Variable) -> Term:
        return self._map[var]

    def __contains__(self, var: Variable) -> bool:
        return var in self._map

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def items(self):
        """Iterate ``(variable, term)`` pairs."""
        return self._map.items()

    def as_dict(self) -> Dict[Variable, Term]:
        """A mutable copy of the underlying mapping."""
        return dict(self._map)

    def merge(self, other: "Bindings") -> Optional["Bindings"]:
        """Combine two mappings; ``None`` when they conflict."""
        merged = dict(self._map)
        for var, term in other.items():
            existing = merged.get(var)
            if existing is None:
                merged[var] = term
            elif existing != term:
                return None
        return Bindings(merged)

    def extended(self, var: Variable, term: Term) -> Optional["Bindings"]:
        """A new mapping with ``var`` bound to ``term`` (``None`` on conflict)."""
        existing = self._map.get(var)
        if existing is not None:
            return self if existing == term else None
        new_map = dict(self._map)
        new_map[var] = term
        return Bindings(new_map)

    def project(self, variables) -> "Bindings":
        """Restrict to the given variables."""
        return Bindings({v: t for v, t in self._map.items() if v in variables})

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Bindings) and other._map == self._map

    def __hash__(self) -> int:
        # memoised: solutions are hashed repeatedly by DISTINCT projection
        # and by the federator's merge / subsumption passes
        cached = self._hash
        if cached is None:
            cached = hash(frozenset(self._map.items()))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}={t}" for v, t in sorted(
            self._map.items(), key=lambda kv: kv[0].name))
        return f"Bindings({inner})"


def bindings_from_mapping(mapping: Dict[Variable, Term]) -> Bindings:
    """Wrap ``mapping`` in a :class:`Bindings` *without copying it*.

    Fast-path constructor for the id-space join loops, which decode one
    freshly built mapping per solution: the defensive copy in
    ``Bindings.__init__`` would double the allocation on the hottest
    decode boundary.  The caller must hand over ownership of ``mapping``
    and never mutate it afterwards.
    """
    solution = object.__new__(Bindings)
    object.__setattr__(solution, "_map", mapping)
    object.__setattr__(solution, "_hash", None)
    return solution


EMPTY_BINDINGS = Bindings()
