"""SPARQL-like query engine over :class:`repro.semantics.rdf.graph.Graph`.

Supports the algebra the middleware actually needs: basic graph patterns,
FILTER expressions, OPTIONAL, UNION, DISTINCT, ORDER BY, LIMIT/OFFSET and
the SELECT / ASK query forms, with a small textual parser for convenience.
"""

from repro.semantics.sparql.algebra import (
    BGP,
    Filter,
    Join,
    LeftJoin,
    Projection,
    Union,
)
from repro.semantics.sparql.bindings import Bindings
from repro.semantics.sparql.evaluator import QueryResult, evaluate, query
from repro.semantics.sparql.parser import parse_query

__all__ = [
    "BGP",
    "Filter",
    "Join",
    "LeftJoin",
    "Union",
    "Projection",
    "Bindings",
    "QueryResult",
    "evaluate",
    "query",
    "parse_query",
]
