"""SPARQL-like query engine over :class:`repro.semantics.rdf.graph.Graph`.

Supports the algebra the middleware actually needs: basic graph patterns,
FILTER expressions, OPTIONAL, UNION, DISTINCT, ORDER BY, LIMIT/OFFSET and
the SELECT / ASK query forms, with a small textual parser for convenience.

Queries are executed through the cost-based planner in
:mod:`repro.semantics.sparql.planner` by default: join orders are chosen
from the graph's cardinality statistics, filters are pushed down, and plans
and results are cached keyed by query text and invalidated by the graph's
version counter.
"""

from repro.semantics.sparql.algebra import (
    BGP,
    Filter,
    Join,
    LeftJoin,
    Projection,
    Union,
)
from repro.semantics.sparql.bindings import Bindings
from repro.semantics.sparql.evaluator import QueryResult, evaluate, query, select
from repro.semantics.sparql.parser import parse_query
from repro.semantics.sparql.planner import (
    PlannedBGP,
    QueryPlan,
    QueryPlanner,
    build_plan,
    estimate_pattern,
    order_patterns,
    plan_patterns,
    planner_for,
)

__all__ = [
    "BGP",
    "Filter",
    "Join",
    "LeftJoin",
    "Union",
    "Projection",
    "Bindings",
    "QueryResult",
    "evaluate",
    "query",
    "select",
    "parse_query",
    "PlannedBGP",
    "QueryPlan",
    "QueryPlanner",
    "build_plan",
    "estimate_pattern",
    "order_patterns",
    "plan_patterns",
    "planner_for",
]
