"""Query evaluation: turning parsed queries into algebra and executing them."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import RDF
from repro.semantics.rdf.term import IRI, Literal, Term, Variable
from repro.semantics.rdf.triple import Triple
from repro.semantics.sparql.algebra import (
    BGP,
    Filter,
    LeftJoin,
    Operator,
    Projection,
    numeric_filter,
)
from repro.semantics.sparql.bindings import Bindings
from repro.semantics.sparql.parser import ParsedPattern, ParsedQuery, parse_query


class QueryResult:
    """The result of a SELECT or ASK query.

    Iterating yields :class:`Bindings`; :attr:`rows` gives them as plain
    dictionaries keyed by variable name, which is what application code and
    tests normally want.
    """

    def __init__(self, form: str, solutions: List[Bindings], variables: List[Variable]):
        self.form = form
        self.solutions = solutions
        self.variables = variables

    def __iter__(self) -> Iterator[Bindings]:
        return iter(self.solutions)

    def __len__(self) -> int:
        return len(self.solutions)

    def __bool__(self) -> bool:
        return bool(self.solutions)

    @property
    def rows(self) -> List[Dict[str, Term]]:
        """Solutions as ``{variable name: term}`` dictionaries."""
        return [
            {var.name: term for var, term in solution.items()}
            for solution in self.solutions
        ]

    @property
    def scalars(self) -> List[Union[str, int, float, bool]]:
        """For single-variable queries: the bound values as Python scalars."""
        values = []
        for solution in self.solutions:
            for _, term in solution.items():
                if isinstance(term, Literal):
                    values.append(term.to_python())
                else:
                    values.append(str(term))
        return values

    @property
    def ask(self) -> bool:
        """For ASK queries: whether any solution exists."""
        return bool(self.solutions)


def _resolve_term(text: str, graph: Graph) -> Term:
    """Resolve a textual query term against the graph's namespaces."""
    text = text.strip()
    if text.startswith("?"):
        return Variable(text)
    if text == "a":
        return RDF.type
    if text.startswith("<") and text.endswith(">"):
        return IRI(text[1:-1])
    if text.startswith('"'):
        from repro.semantics.rdf.parser import _parse_literal

        return _parse_literal(text)
    try:
        return Literal(int(text))
    except ValueError:
        pass
    try:
        return Literal(float(text))
    except ValueError:
        pass
    return graph.namespaces.expand(text)


def _build_bgp(patterns: Sequence[ParsedPattern], graph: Graph) -> BGP:
    triples = [
        Triple(
            _resolve_term(p.subject, graph),
            _resolve_term(p.predicate, graph),
            _resolve_term(p.object, graph),
        )
        for p in patterns
    ]
    return BGP(triples)


def _build_algebra(parsed: ParsedQuery, graph: Graph) -> Operator:
    root: Operator = _build_bgp(parsed.patterns, graph)
    for optional in parsed.optional_patterns:
        root = LeftJoin(root, _build_bgp(optional, graph))
    for flt in parsed.filters:
        var = Variable(flt.variable)
        value_text = flt.value.strip()
        try:
            value = float(value_text)
            root = Filter(root, numeric_filter(var, flt.op, value))
        except ValueError:
            target = _resolve_term(value_text, graph)

            def equality(bindings: Bindings, _var=var, _target=target, _op=flt.op) -> bool:
                bound = bindings.get(_var)
                if _op in ("=", "=="):
                    return bound == _target
                if _op == "!=":
                    return bound != _target
                return False

            root = Filter(root, equality)
    projection_vars = [Variable(name) for name in parsed.variables] or None
    return Projection(
        root,
        variables=projection_vars,
        distinct=parsed.distinct,
        order_by=Variable(parsed.order_by) if parsed.order_by else None,
        descending=parsed.descending,
        limit=parsed.limit,
        offset=parsed.offset,
    )


def evaluate(graph: Graph, operator: Operator) -> List[Bindings]:
    """Evaluate an algebra tree, materialising all solutions."""
    return list(operator.solutions(graph))


def query(graph: Graph, text: str) -> QueryResult:
    """Parse and evaluate a SELECT or ASK query against ``graph``."""
    parsed = parse_query(text)
    algebra = _build_algebra(parsed, graph)
    solutions = evaluate(graph, algebra)
    if parsed.form == "ASK":
        return QueryResult("ASK", solutions[:1], [])
    variables = algebra.variables()
    return QueryResult("SELECT", solutions, variables)


def select(
    graph: Graph,
    patterns: Sequence[Triple],
    variables: Optional[Sequence[Variable]] = None,
    distinct: bool = False,
) -> QueryResult:
    """Programmatic SELECT over explicit triple patterns (no text parsing)."""
    algebra = Projection(BGP(list(patterns)), variables=variables, distinct=distinct)
    solutions = evaluate(graph, algebra)
    return QueryResult("SELECT", solutions, algebra.variables())
