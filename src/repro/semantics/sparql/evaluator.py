"""Query evaluation: turning parsed queries into algebra and executing them.

By default :func:`query` and :func:`select` route through the cost-based
planner in :mod:`repro.semantics.sparql.planner` (join-order selection from
graph cardinality statistics, filter pushdown, version-keyed plan / result
caches); pass ``use_planner=False`` for the naive written-order evaluation,
which the randomized equivalence tests use as the correctness oracle.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import RDF
from repro.semantics.rdf.term import IRI, Literal, Term, Variable
from repro.semantics.rdf.triple import Triple
from repro.semantics.sparql.algebra import (
    BGP,
    Filter,
    LeftJoin,
    Operator,
    Projection,
    numeric_filter,
)
from repro.semantics.sparql.bindings import Bindings
from repro.semantics.sparql.parser import (
    DECIMAL_LITERAL_RE,
    INTEGER_LITERAL_RE,
    ParsedFilter,
    ParsedPattern,
    ParsedQuery,
    parse_query,
)


class QueryResult:
    """The result of a SELECT or ASK query.

    Iterating yields :class:`Bindings`; :attr:`rows` gives them as plain
    dictionaries keyed by variable name, which is what application code and
    tests normally want.

    :attr:`degraded` / :attr:`missing_shards` mark a *partial* federated
    result: the process backend sets them when a tripped shard was skipped
    under ``degraded_reads``, so callers can distinguish "empty" from
    "missing a partition".  They stay at their class defaults everywhere
    else.
    """

    degraded: bool = False
    missing_shards: tuple = ()

    def __init__(self, form: str, solutions: List[Bindings], variables: List[Variable]):
        self.form = form
        self.solutions = solutions
        self.variables = variables

    def __iter__(self) -> Iterator[Bindings]:
        return iter(self.solutions)

    def __len__(self) -> int:
        return len(self.solutions)

    def __bool__(self) -> bool:
        return bool(self.solutions)

    @property
    def rows(self) -> List[Dict[str, Term]]:
        """Solutions as ``{variable name: term}`` dictionaries."""
        return [
            {var.name: term for var, term in solution.items()}
            for solution in self.solutions
        ]

    @property
    def scalars(self) -> List[Union[str, int, float, bool]]:
        """For single-variable queries: the bound values as Python scalars."""
        values = []
        for solution in self.solutions:
            for _, term in solution.items():
                if isinstance(term, Literal):
                    values.append(term.to_python())
                else:
                    values.append(str(term))
        return values

    @property
    def ask(self) -> bool:
        """For ASK queries: whether any solution exists."""
        return bool(self.solutions)


def _numeric_literal(text: str) -> Optional[Literal]:
    """Parse ``text`` as a numeric literal, or ``None`` if it is not one.

    Only the parser's canonical numeric-token syntax counts.  Python's
    int()/float() accept far more (``nan``, ``inf``, ``1e3``, ``1_000``),
    which would silently turn bare tokens into numbers instead of letting
    them resolve (or loudly fail to resolve) as prefixed names.
    """
    if INTEGER_LITERAL_RE.match(text):
        return Literal(int(text))
    if DECIMAL_LITERAL_RE.match(text):
        return Literal(float(text))
    return None


def _resolve_term(text: str, graph: Graph) -> Term:
    """Resolve a textual query term against the graph's namespaces."""
    text = text.strip()
    if text.startswith("?"):
        return Variable(text)
    if text == "a":
        return RDF.type
    if text.startswith("<") and text.endswith(">"):
        return IRI(text[1:-1])
    if text.startswith('"'):
        from repro.semantics.rdf.parser import _parse_literal

        return _parse_literal(text)
    numeric = _numeric_literal(text)
    if numeric is not None:
        return numeric
    return graph.namespaces.expand(text)


def _build_bgp(patterns: Sequence[ParsedPattern], graph: Graph) -> BGP:
    triples = [
        Triple(
            _resolve_term(p.subject, graph),
            _resolve_term(p.predicate, graph),
            _resolve_term(p.object, graph),
        )
        for p in patterns
    ]
    # the naive evaluation path is the equivalence oracle for *both* the
    # planner's join ordering and the dictionary-encoded join loop, so it
    # deliberately joins decoded term objects
    return BGP(triples, use_ids=False)


def _build_filter(flt: ParsedFilter, graph: Graph) -> Tuple[Variable, Callable[[Bindings], bool]]:
    """Build a FILTER predicate, returning the variable it constrains.

    Shared with the planner, which uses the variable to decide where the
    predicate can be pushed down to.  Values with proper numeric-literal
    syntax become numeric comparisons; everything else resolves as a term
    and supports (in)equality only.
    """
    var = Variable(flt.variable)
    value_text = flt.value.strip()
    numeric = _numeric_literal(value_text)
    if numeric is not None:
        return var, numeric_filter(var, flt.op, numeric.to_python())
    target = _resolve_term(value_text, graph)

    def equality(bindings: Bindings, _var=var, _target=target, _op=flt.op) -> bool:
        bound = bindings.get(_var)
        if _op in ("=", "=="):
            return bound == _target
        if _op == "!=":
            return bound != _target
        return False

    return var, equality


def _build_algebra(parsed: ParsedQuery, graph: Graph) -> Operator:
    root: Operator = _build_bgp(parsed.patterns, graph)
    for optional in parsed.optional_patterns:
        root = LeftJoin(root, _build_bgp(optional, graph))
    for flt in parsed.filters:
        _, predicate = _build_filter(flt, graph)
        root = Filter(root, predicate)
    projection_vars = [Variable(name) for name in parsed.variables] or None
    return Projection(
        root,
        variables=projection_vars,
        distinct=parsed.distinct,
        order_by=Variable(parsed.order_by) if parsed.order_by else None,
        descending=parsed.descending,
        limit=parsed.limit,
        offset=parsed.offset,
    )


def evaluate(graph: Graph, operator: Operator) -> List[Bindings]:
    """Evaluate an algebra tree, materialising all solutions."""
    return list(operator.solutions(graph))


def query(graph: Graph, text: str, use_planner: bool = True) -> QueryResult:
    """Parse and evaluate a SELECT or ASK query against ``graph``.

    With ``use_planner`` (the default) the query runs through the graph's
    shared :class:`~repro.semantics.sparql.planner.QueryPlanner`: triple
    patterns are join-ordered by estimated selectivity, filters are pushed
    down, and both the plan and (bounded) results are cached keyed on the
    query text and invalidated by :attr:`Graph.version`.  Pass
    ``use_planner=False`` for the naive written-order evaluation — the
    correctness oracle of the equivalence tests and the benchmark baseline.
    """
    if use_planner:
        from repro.semantics.sparql.planner import planner_for

        return planner_for(graph).query(graph, text)
    parsed = parse_query(text)
    algebra = _build_algebra(parsed, graph)
    solutions = evaluate(graph, algebra)
    if parsed.form == "ASK":
        return QueryResult("ASK", solutions[:1], [])
    variables = algebra.variables()
    return QueryResult("SELECT", solutions, variables)


def register_standing(graph: Graph, text: str, name: Optional[str] = None):
    """Register ``text`` as a delta-maintained standing view over ``graph``.

    Subsequent :func:`query` calls (the default planner path) serve the
    query from the materialized view, which folds graph mutations in
    incrementally instead of re-evaluating after every write.  Returns the
    :class:`~repro.semantics.sparql.views.StandingView`.
    """
    from repro.semantics.sparql.planner import register_standing as _register

    return _register(graph, text, name=name)


def federated_query(graphs: Sequence[Graph], text: str) -> QueryResult:
    """Evaluate ``text`` across partition graphs, gathering one result.

    Convenience entry point mirroring :func:`query` for sharded stores: the
    query is scattered to every partition (each evaluated through its own
    cost-based planner and version-keyed caches), the full solution
    mappings are set-unioned (which collapses replicated-axiom copies and
    nothing else), and projection / DISTINCT / ORDER BY / LIMIT / OFFSET
    apply globally after the merge — in-contract results match the
    single-graph oracle as a bag.  See
    :func:`repro.semantics.sparql.planner.federated_query` for the
    federation contract.
    """
    from repro.semantics.sparql.planner import federated_query as _federated

    return _federated(graphs, text)


def select(
    graph: Graph,
    patterns: Sequence[Triple],
    variables: Optional[Sequence[Variable]] = None,
    distinct: bool = False,
    use_planner: bool = True,
) -> QueryResult:
    """Programmatic SELECT over explicit triple patterns (no text parsing).

    With ``use_planner`` (the default) the patterns are join-ordered by the
    cost-based planner before evaluation; results are not cached (callers
    holding explicit patterns typically vary them per call).
    """
    if use_planner:
        from repro.semantics.sparql.planner import plan_patterns

        bgp: Operator = plan_patterns(graph, list(patterns))
    else:
        # written-order decoded-object join: the equivalence oracle
        bgp = BGP(list(patterns), use_ids=False)
    algebra = Projection(bgp, variables=variables, distinct=distinct)
    solutions = evaluate(graph, algebra)
    return QueryResult("SELECT", solutions, algebra.variables())
