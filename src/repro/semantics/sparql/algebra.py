"""Query algebra operators.

Queries are evaluated as trees of algebra operators over a graph.  Each
operator exposes ``solutions(graph)`` returning an iterator of
:class:`~repro.semantics.sparql.bindings.Bindings`.  The design mirrors the
SPARQL algebra (BGP, Join, LeftJoin, Union, Filter, Projection, Slice) at
the scale the middleware needs.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.term import Literal, Term, Variable
from repro.semantics.rdf.triple import Triple
from repro.semantics.sparql.bindings import (
    EMPTY_BINDINGS,
    Bindings,
    bindings_from_mapping,
)

FilterFunction = Callable[[Bindings], bool]

#: One position of an id-encoded pattern: a ground term id or a variable.
EncodedEntry = Union[int, Variable]
EncodedPattern = Tuple[EncodedEntry, EncodedEntry, EncodedEntry]


# --------------------------------------------------------------------- #
# id-space join machinery (shared by BGP and the planner's PlannedBGP)
# --------------------------------------------------------------------- #

def encode_bgp_patterns(
    graph: Graph, patterns: Sequence[Triple]
) -> Optional[List[EncodedPattern]]:
    """Encode pattern terms against the graph's dictionary.

    Ground terms become ids (looked up, never interned); variables pass
    through.  Returns ``None`` when any ground term is unknown to the
    dictionary — no stored triple can match such a conjunction, so the
    caller yields nothing.
    """
    lookup = graph.dictionary.lookup
    encoded: List[EncodedPattern] = []
    for pattern in patterns:
        row = []
        for term in pattern:
            if isinstance(term, Variable):
                row.append(term)
            else:
                term_id = lookup(term)
                if term_id is None:
                    return None
                row.append(term_id)
        encoded.append((row[0], row[1], row[2]))
    return encoded


def encode_initial_bindings(
    graph: Graph, bindings: Bindings, pattern_vars: set
) -> Optional[Tuple[Dict[Variable, int], Dict[Variable, Term]]]:
    """Split an initial solution mapping for an id-space join.

    Variables the conjunction mentions are encoded to ids (a binding to a
    term the dictionary has never seen can match nothing: ``None`` is
    returned and the join yields no solutions); variables the conjunction
    never touches are kept decoded and re-attached verbatim to every
    produced solution.
    """
    lookup = graph.dictionary.lookup
    bound: Dict[Variable, int] = {}
    passthrough: Dict[Variable, Term] = {}
    for var, term in bindings.items():
        if var in pattern_vars:
            term_id = lookup(term)
            if term_id is None:
                return None
            bound[var] = term_id
        else:
            passthrough[var] = term
    return bound, passthrough


def _free_positions(pattern: EncodedPattern, bound: Dict[Variable, int]) -> int:
    count = 0
    for entry in pattern:
        if entry.__class__ is not int and entry not in bound:
            count += 1
    return count


def match_encoded(
    graph: Graph,
    remaining: List[EncodedPattern],
    bound: Dict[Variable, int],
    step_filters: Optional[List[List]] = None,
) -> Iterator[Dict[Variable, int]]:
    """Join encoded patterns over the graph's int indexes.

    The one id-space join loop shared by :class:`BGP` (dynamic order: most
    selective pattern first, fewest unbound positions under the current
    ``bound``) and the planner's ``PlannedBGP`` (``step_filters`` given:
    patterns are joined in the planner's fixed order, and each step's
    pushed-down ``(variable, predicate)`` filters run the moment a
    candidate extends the binding, decoding only that one variable).

    Yields the *same* ``bound`` dictionary at every solution, mutated in
    place between yields — consumers must copy or decode it before
    advancing the generator.  Binding, probing and the repeated-variable
    consistency check are all integer operations.
    """
    if not remaining:
        yield bound
        return
    if step_filters is None:
        best_index = min(
            range(len(remaining)), key=lambda i: _free_positions(remaining[i], bound)
        )
        pattern = remaining[best_index]
        rest = remaining[:best_index] + remaining[best_index + 1:]
        filters = None
        rest_filters = None
    else:
        pattern = remaining[0]
        rest = remaining[1:]
        filters = step_filters[0]
        rest_filters = step_filters[1:]
    s, p, o = pattern
    resolved_s = s if s.__class__ is int else bound.get(s)
    resolved_p = p if p.__class__ is int else bound.get(p)
    resolved_o = o if o.__class__ is int else bound.get(o)
    get = bound.get
    terms = graph.dictionary.terms if filters else None
    # the three positions are unrolled (no zip/tuple iteration): this loop
    # body runs once per join candidate and dominates BGP evaluation.  A
    # position is "free" when its resolved id is None; a variable seen
    # again later in the same pattern must re-bind to the same id.
    for candidate in graph.triples_ids((resolved_s, resolved_p, resolved_o)):
        newly: List[Variable] = []
        consistent = True
        if resolved_s is None:
            current = get(s)
            if current is None:
                bound[s] = candidate[0]
                newly.append(s)
            elif current != candidate[0]:
                consistent = False
        if consistent and resolved_p is None:
            current = get(p)
            if current is None:
                bound[p] = candidate[1]
                newly.append(p)
            elif current != candidate[1]:
                consistent = False
        if consistent and resolved_o is None:
            current = get(o)
            if current is None:
                bound[o] = candidate[2]
                newly.append(o)
            elif current != candidate[2]:
                consistent = False
        if consistent and filters:
            for filter_var, predicate in filters:
                # the planner only pushes a filter to a step at which its
                # variable is bound, so the lookup cannot miss
                probe = bindings_from_mapping({filter_var: terms[bound[filter_var]]})
                if not apply_filter(predicate, probe):
                    consistent = False
                    break
        if consistent:
            yield from match_encoded(graph, rest, bound, rest_filters)
        for var in newly:
            del bound[var]


class Operator:
    """Base class for algebra operators."""

    def solutions(self, graph: Graph) -> Iterator[Bindings]:
        """Yield the solution mappings this operator produces over ``graph``."""
        raise NotImplementedError

    def variables(self) -> List[Variable]:
        """The variables this operator can bind (used by projection)."""
        return []


def apply_filter(predicate: FilterFunction, solution: Bindings) -> bool:
    """Evaluate a FILTER predicate; an erroring predicate drops the solution.

    Shared by :class:`Filter` and the planner's pushed-down per-join-step
    filters so both placements have identical error semantics.
    """
    try:
        return bool(predicate(solution))
    except (TypeError, ValueError, KeyError):
        return False


class BGP(Operator):
    """A basic graph pattern: a conjunction of triple patterns.

    Patterns are reordered greedily at evaluation time so that the most
    selective pattern (fewest wildcard positions, respecting already-bound
    variables) is matched first.  This positional heuristic is the naive
    baseline: the default query path instead compiles a
    :class:`~repro.semantics.sparql.planner.PlannedBGP`, whose join order
    is chosen once from the graph's cardinality statistics.

    By default (``use_ids=True``) the join runs over the graph's
    dictionary-encoded indexes: ground terms are resolved to integer ids
    once per evaluation, variables bind to ids, and solutions are decoded
    to terms only as they are yielded.  ``use_ids=False`` keeps the
    original decoded-object join — the equivalence oracle, mirroring the
    ``use_planner=False`` convention of the evaluator.
    """

    def __init__(self, patterns: Sequence[Triple], use_ids: bool = True):
        self.patterns = list(patterns)
        self.use_ids = use_ids

    def variables(self) -> List[Variable]:
        seen: List[Variable] = []
        for p in self.patterns:
            for v in p.variables():
                if v not in seen:
                    seen.append(v)
        return seen

    @staticmethod
    def _selectivity(pattern: Triple, bound: set) -> int:
        score = 0
        for term in pattern:
            if isinstance(term, Variable) and term not in bound:
                score += 1
        return score

    def solutions(self, graph: Graph) -> Iterator[Bindings]:
        yield from self.solutions_from(graph, EMPTY_BINDINGS)

    def solutions_from(self, graph: Graph, bindings: Bindings) -> Iterator[Bindings]:
        """Solutions extending an initial partial solution mapping.

        This is the join entry point the semi-naive rule engine uses: a
        body atom is matched against a delta triple first and the
        resulting bindings seed the join of the remaining atoms.
        """
        if not self.patterns:
            yield bindings
            return
        if self.use_ids:
            yield from self._solutions_from_ids(graph, bindings)
        else:
            yield from self._match(graph, list(self.patterns), bindings)

    def _solutions_from_ids(self, graph: Graph, bindings: Bindings) -> Iterator[Bindings]:
        encoded = encode_bgp_patterns(graph, self.patterns)
        if encoded is None:
            return
        pattern_vars = {v for p in self.patterns for v in p.variables()}
        split = encode_initial_bindings(graph, bindings, pattern_vars)
        if split is None:
            return
        bound, passthrough = split
        terms = graph.dictionary.terms
        for solution in match_encoded(graph, encoded, bound):
            mapping: Dict[Variable, Term] = {
                var: terms[term_id] for var, term_id in solution.items()
            }
            if passthrough:
                mapping.update(passthrough)
            yield bindings_from_mapping(mapping)

    def _match(
        self, graph: Graph, remaining: List[Triple], bindings: Bindings
    ) -> Iterator[Bindings]:
        if not remaining:
            yield bindings
            return
        bound_vars = set(bindings)
        # pick the most selective remaining pattern
        best_idx = min(
            range(len(remaining)),
            key=lambda i: self._selectivity(remaining[i], bound_vars),
        )
        pattern = remaining[best_idx]
        rest = remaining[:best_idx] + remaining[best_idx + 1:]
        concrete = pattern.try_substitute(bindings.as_dict())
        if concrete is None:
            # a bound literal landed in subject/predicate position: this
            # conjunction branch can match nothing
            return
        for triple in graph.triples(tuple(concrete)):
            match = concrete.matches(triple)
            if match is None:
                continue
            extended = bindings.merge(Bindings(match))
            if extended is None:
                continue
            yield from self._match(graph, rest, extended)


class Join(Operator):
    """Inner join of two operators on their shared variables."""

    def __init__(self, left: Operator, right: Operator):
        self.left = left
        self.right = right

    def variables(self) -> List[Variable]:
        seen = list(self.left.variables())
        for v in self.right.variables():
            if v not in seen:
                seen.append(v)
        return seen

    def solutions(self, graph: Graph) -> Iterator[Bindings]:
        right_solutions = list(self.right.solutions(graph))
        for left in self.left.solutions(graph):
            for right in right_solutions:
                merged = left.merge(right)
                if merged is not None:
                    yield merged


class LeftJoin(Operator):
    """OPTIONAL: keep left solutions even when the right side has no match."""

    def __init__(self, left: Operator, right: Operator):
        self.left = left
        self.right = right

    def variables(self) -> List[Variable]:
        seen = list(self.left.variables())
        for v in self.right.variables():
            if v not in seen:
                seen.append(v)
        return seen

    def solutions(self, graph: Graph) -> Iterator[Bindings]:
        right_solutions = list(self.right.solutions(graph))
        for left in self.left.solutions(graph):
            matched = False
            for right in right_solutions:
                merged = left.merge(right)
                if merged is not None:
                    matched = True
                    yield merged
            if not matched:
                yield left


class Union(Operator):
    """UNION: concatenation of the solutions of both sides."""

    def __init__(self, left: Operator, right: Operator):
        self.left = left
        self.right = right

    def variables(self) -> List[Variable]:
        seen = list(self.left.variables())
        for v in self.right.variables():
            if v not in seen:
                seen.append(v)
        return seen

    def solutions(self, graph: Graph) -> Iterator[Bindings]:
        yield from self.left.solutions(graph)
        yield from self.right.solutions(graph)


class Filter(Operator):
    """FILTER: keep solutions satisfying a predicate over the bindings."""

    def __init__(self, child: Operator, predicate: FilterFunction):
        self.child = child
        self.predicate = predicate

    def variables(self) -> List[Variable]:
        return self.child.variables()

    def solutions(self, graph: Graph) -> Iterator[Bindings]:
        for solution in self.child.solutions(graph):
            if apply_filter(self.predicate, solution):
                yield solution


def solution_order_key(order_by: Variable):
    """The ORDER BY sort key for one solution mapping.

    Extracted from :class:`Projection` so any consumer sorting solutions
    (the scatter-gather federator runs its merged set through a
    ``Projection`` and therefore through this key) orders exactly like the
    single-graph oracle: unbound first, then numeric literals by value,
    then everything else by string form.
    """

    def sort_key(solution: Bindings):
        term = solution.get(order_by)
        if term is None:
            return (0, "")
        if isinstance(term, Literal) and term.is_numeric():
            return (1, term.to_python())
        return (2, str(term))

    return sort_key


class Projection(Operator):
    """SELECT projection with optional DISTINCT, ORDER BY and LIMIT/OFFSET."""

    def __init__(
        self,
        child: Operator,
        variables: Optional[Sequence[Variable]] = None,
        distinct: bool = False,
        order_by: Optional[Variable] = None,
        descending: bool = False,
        limit: Optional[int] = None,
        offset: int = 0,
    ):
        self.child = child
        self._variables = list(variables) if variables else None
        self.distinct = distinct
        self.order_by = order_by
        self.descending = descending
        self.limit = limit
        self.offset = offset

    def variables(self) -> List[Variable]:
        if self._variables is not None:
            return list(self._variables)
        return self.child.variables()

    def solutions(self, graph: Graph) -> Iterator[Bindings]:
        wanted = self.variables()
        results: Iterable[Bindings] = (
            s.project(wanted) for s in self.child.solutions(graph)
        )
        if self.distinct:
            seen = set()
            unique: List[Bindings] = []
            for s in results:
                if s not in seen:
                    seen.add(s)
                    unique.append(s)
            results = unique
        if self.order_by is not None:
            results = sorted(
                results,
                key=solution_order_key(self.order_by),
                reverse=self.descending,
            )
        results = list(results)
        if self.offset:
            results = results[self.offset:]
        if self.limit is not None:
            results = results[: self.limit]
        yield from results


def numeric_filter(var: Variable, op: str, value: float) -> FilterFunction:
    """Build a FILTER predicate comparing a numeric variable to a constant.

    ``op`` is one of ``< <= > >= = !=``.
    """
    import operator

    ops = {
        "<": operator.lt,
        "<=": operator.le,
        ">": operator.gt,
        ">=": operator.ge,
        "=": operator.eq,
        "==": operator.eq,
        "!=": operator.ne,
    }
    if op not in ops:
        raise ValueError(f"unsupported comparison operator: {op!r}")
    compare = ops[op]

    def predicate(bindings: Bindings) -> bool:
        term = bindings.get(var)
        if not isinstance(term, Literal):
            return False
        candidate = term.to_python()
        if not isinstance(candidate, (int, float)):
            return False
        return compare(candidate, value)

    return predicate
