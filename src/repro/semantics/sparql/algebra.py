"""Query algebra operators.

Queries are evaluated as trees of algebra operators over a graph.  Each
operator exposes ``solutions(graph)`` returning an iterator of
:class:`~repro.semantics.sparql.bindings.Bindings`.  The design mirrors the
SPARQL algebra (BGP, Join, LeftJoin, Union, Filter, Projection, Slice) at
the scale the middleware needs.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.term import Literal, Term, Variable
from repro.semantics.rdf.triple import Triple
from repro.semantics.sparql.bindings import EMPTY_BINDINGS, Bindings

FilterFunction = Callable[[Bindings], bool]


class Operator:
    """Base class for algebra operators."""

    def solutions(self, graph: Graph) -> Iterator[Bindings]:
        """Yield the solution mappings this operator produces over ``graph``."""
        raise NotImplementedError

    def variables(self) -> List[Variable]:
        """The variables this operator can bind (used by projection)."""
        return []


def apply_filter(predicate: FilterFunction, solution: Bindings) -> bool:
    """Evaluate a FILTER predicate; an erroring predicate drops the solution.

    Shared by :class:`Filter` and the planner's pushed-down per-join-step
    filters so both placements have identical error semantics.
    """
    try:
        return bool(predicate(solution))
    except (TypeError, ValueError, KeyError):
        return False


class BGP(Operator):
    """A basic graph pattern: a conjunction of triple patterns.

    Patterns are reordered greedily at evaluation time so that the most
    selective pattern (fewest wildcard positions, respecting already-bound
    variables) is matched first.  This positional heuristic is the naive
    baseline: the default query path instead compiles a
    :class:`~repro.semantics.sparql.planner.PlannedBGP`, whose join order
    is chosen once from the graph's cardinality statistics.
    """

    def __init__(self, patterns: Sequence[Triple]):
        self.patterns = list(patterns)

    def variables(self) -> List[Variable]:
        seen: List[Variable] = []
        for p in self.patterns:
            for v in p.variables():
                if v not in seen:
                    seen.append(v)
        return seen

    @staticmethod
    def _selectivity(pattern: Triple, bound: set) -> int:
        score = 0
        for term in pattern:
            if isinstance(term, Variable) and term not in bound:
                score += 1
        return score

    def solutions(self, graph: Graph) -> Iterator[Bindings]:
        yield from self.solutions_from(graph, EMPTY_BINDINGS)

    def solutions_from(self, graph: Graph, bindings: Bindings) -> Iterator[Bindings]:
        """Solutions extending an initial partial solution mapping.

        This is the join entry point the semi-naive rule engine uses: a
        body atom is matched against a delta triple first and the
        resulting bindings seed the join of the remaining atoms.
        """
        if not self.patterns:
            yield bindings
            return
        yield from self._match(graph, list(self.patterns), bindings)

    def _match(
        self, graph: Graph, remaining: List[Triple], bindings: Bindings
    ) -> Iterator[Bindings]:
        if not remaining:
            yield bindings
            return
        bound_vars = set(bindings)
        # pick the most selective remaining pattern
        best_idx = min(
            range(len(remaining)),
            key=lambda i: self._selectivity(remaining[i], bound_vars),
        )
        pattern = remaining[best_idx]
        rest = remaining[:best_idx] + remaining[best_idx + 1:]
        concrete = pattern.try_substitute(bindings.as_dict())
        if concrete is None:
            # a bound literal landed in subject/predicate position: this
            # conjunction branch can match nothing
            return
        for triple in graph.triples(tuple(concrete)):
            match = concrete.matches(triple)
            if match is None:
                continue
            extended = bindings.merge(Bindings(match))
            if extended is None:
                continue
            yield from self._match(graph, rest, extended)


class Join(Operator):
    """Inner join of two operators on their shared variables."""

    def __init__(self, left: Operator, right: Operator):
        self.left = left
        self.right = right

    def variables(self) -> List[Variable]:
        seen = list(self.left.variables())
        for v in self.right.variables():
            if v not in seen:
                seen.append(v)
        return seen

    def solutions(self, graph: Graph) -> Iterator[Bindings]:
        right_solutions = list(self.right.solutions(graph))
        for left in self.left.solutions(graph):
            for right in right_solutions:
                merged = left.merge(right)
                if merged is not None:
                    yield merged


class LeftJoin(Operator):
    """OPTIONAL: keep left solutions even when the right side has no match."""

    def __init__(self, left: Operator, right: Operator):
        self.left = left
        self.right = right

    def variables(self) -> List[Variable]:
        seen = list(self.left.variables())
        for v in self.right.variables():
            if v not in seen:
                seen.append(v)
        return seen

    def solutions(self, graph: Graph) -> Iterator[Bindings]:
        right_solutions = list(self.right.solutions(graph))
        for left in self.left.solutions(graph):
            matched = False
            for right in right_solutions:
                merged = left.merge(right)
                if merged is not None:
                    matched = True
                    yield merged
            if not matched:
                yield left


class Union(Operator):
    """UNION: concatenation of the solutions of both sides."""

    def __init__(self, left: Operator, right: Operator):
        self.left = left
        self.right = right

    def variables(self) -> List[Variable]:
        seen = list(self.left.variables())
        for v in self.right.variables():
            if v not in seen:
                seen.append(v)
        return seen

    def solutions(self, graph: Graph) -> Iterator[Bindings]:
        yield from self.left.solutions(graph)
        yield from self.right.solutions(graph)


class Filter(Operator):
    """FILTER: keep solutions satisfying a predicate over the bindings."""

    def __init__(self, child: Operator, predicate: FilterFunction):
        self.child = child
        self.predicate = predicate

    def variables(self) -> List[Variable]:
        return self.child.variables()

    def solutions(self, graph: Graph) -> Iterator[Bindings]:
        for solution in self.child.solutions(graph):
            if apply_filter(self.predicate, solution):
                yield solution


class Projection(Operator):
    """SELECT projection with optional DISTINCT, ORDER BY and LIMIT/OFFSET."""

    def __init__(
        self,
        child: Operator,
        variables: Optional[Sequence[Variable]] = None,
        distinct: bool = False,
        order_by: Optional[Variable] = None,
        descending: bool = False,
        limit: Optional[int] = None,
        offset: int = 0,
    ):
        self.child = child
        self._variables = list(variables) if variables else None
        self.distinct = distinct
        self.order_by = order_by
        self.descending = descending
        self.limit = limit
        self.offset = offset

    def variables(self) -> List[Variable]:
        if self._variables is not None:
            return list(self._variables)
        return self.child.variables()

    def solutions(self, graph: Graph) -> Iterator[Bindings]:
        wanted = self.variables()
        results: Iterable[Bindings] = (
            s.project(wanted) for s in self.child.solutions(graph)
        )
        if self.distinct:
            seen = set()
            unique: List[Bindings] = []
            for s in results:
                if s not in seen:
                    seen.add(s)
                    unique.append(s)
            results = unique
        if self.order_by is not None:
            def sort_key(solution: Bindings):
                term = solution.get(self.order_by)
                if term is None:
                    return (0, "")
                if isinstance(term, Literal) and term.is_numeric():
                    return (1, term.to_python())
                return (2, str(term))

            results = sorted(results, key=sort_key, reverse=self.descending)
        results = list(results)
        if self.offset:
            results = results[self.offset:]
        if self.limit is not None:
            results = results[: self.limit]
        yield from results


def numeric_filter(var: Variable, op: str, value: float) -> FilterFunction:
    """Build a FILTER predicate comparing a numeric variable to a constant.

    ``op`` is one of ``< <= > >= = !=``.
    """
    import operator

    ops = {
        "<": operator.lt,
        "<=": operator.le,
        ">": operator.gt,
        ">=": operator.ge,
        "=": operator.eq,
        "==": operator.eq,
        "!=": operator.ne,
    }
    if op not in ops:
        raise ValueError(f"unsupported comparison operator: {op!r}")
    compare = ops[op]

    def predicate(bindings: Bindings) -> bool:
        term = bindings.get(var)
        if not isinstance(term, Literal):
            return False
        candidate = term.to_python()
        if not isinstance(candidate, (int, float)):
            return False
        return compare(candidate, value)

    return predicate
